"""Quickstart: train TriAD on one synthetic dataset and detect its anomaly.

Run:
    python examples/quickstart.py

What it shows:
1. building a UCR-style dataset (anomaly-free training split, a test
   split hiding one anomalous event);
2. fitting the tri-domain detector on the training split only;
3. inspecting the detection: nominated windows, MERLIN discords, votes,
   and the final point-wise predictions;
4. scoring with the paper's rigorous metrics (PA%K AUC, affiliation).
"""

from __future__ import annotations

import numpy as np

from repro import TriAD, TriADConfig
from repro.data import make_archive
from repro.metrics import affiliation_metrics, pa_k_auc, window_hits_event


def main() -> None:
    # One dataset from the synthetic archive (one hidden event in the
    # test split; the training split is anomaly-free).
    dataset = make_archive(size=6, seed=3, train_length=1500, test_length=2000)[5]
    start, end = dataset.anomaly_interval
    print(f"dataset      : {dataset.name}")
    print(f"train/test   : {len(dataset.train)} / {len(dataset.test)} points")
    print(f"hidden event : [{start}, {end})  ({end - start} points, "
          f"type={dataset.spec.anomaly_type})")

    # Paper defaults are TriADConfig(); epochs reduced here for a fast demo.
    config = TriADConfig(epochs=5, max_window=256, seed=0)
    detector = TriAD(config).fit(dataset.train)
    print(f"\nwindow plan  : length={detector.plan.length} "
          f"stride={detector.plan.stride} (period~{detector.plan.period})")
    print(f"train losses : {[round(l, 3) for l in detector.train_losses]}")

    detection = detector.detect(dataset.test)
    print(f"\ncandidates   : {detection.candidate_windows}")
    print(f"chosen window: {detection.window} "
          f"(hit={window_hits_event(detection.window, (start, end))})")
    print(f"search region: {detection.search_region} "
          f"({detection.search_region[1] - detection.search_region[0]} of "
          f"{len(dataset.test)} points scanned by MERLIN)")
    print(f"discords     : {len(detection.discords.discords)} lengths probed, "
          f"exception={detection.votes.exception_applied}")

    predicted = np.flatnonzero(detection.predictions)
    print(f"predictions  : {len(predicted)} points flagged "
          f"in [{predicted.min()}, {predicted.max()}]")

    curve = pa_k_auc(detection.predictions, dataset.labels)
    affiliation = affiliation_metrics(detection.predictions, dataset.labels)
    print("\nscores")
    print(f"  PA%K  F1-AUC    : {curve.f1_auc:.3f} "
          f"(precision {curve.precision_auc:.3f}, recall {curve.recall_auc:.3f})")
    print(f"  affiliation F1  : {affiliation.f1:.3f} "
          f"(precision {affiliation.precision:.3f}, recall {affiliation.recall:.3f})")


if __name__ == "__main__":
    main()
