"""Bulk scoring jobs: chunked execution, crash, and resume.

The serving stack scores small online windows; `repro.jobs` covers the
other extreme — "score this multi-million-point series overnight and
survive a mid-run kill".  This walkthrough:

1. submits a large series as a job (`JobManager.submit`) — the window
   plan is pinned and the job deduplicated by a content key;
2. runs it chunked: the global window grid is split into
   overlap-preserving chunks, each scored in one batched call and
   journaled as JSONL;
3. simulates a crash by cancelling mid-run, shows the journal holding
   the completed chunks, and resumes by re-running the *same* job —
   the stitched result is bit-identical to an uninterrupted pass.

Run:
    PYTHONPATH=src python examples/bulk_jobs.py

CLI equivalent: `python -m repro submit / jobs / job-result`
(see docs/JOBS.md).
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro.jobs import (
    JobManager,
    JobSpec,
    BatchedSpectralResidualScorer,
    register_job_detector,
)


def make_series(n: int = 200_000) -> np.ndarray:
    rng = np.random.default_rng(5)
    t = np.arange(n)
    series = np.sin(2 * np.pi * t / 256) + 0.05 * rng.standard_normal(n)
    series[120_000:120_040] += 3.5  # the needle in the haystack
    return series


class FlakyScorer(BatchedSpectralResidualScorer):
    """Same math as the batched spectral-residual scorer, but the owning
    manager cancels the job after a few chunks — standing in for a
    crash/preemption mid-run."""

    def __init__(self, manager: JobManager, job_id: str, after_chunks: int):
        super().__init__()
        self.manager = manager
        self.job_id = job_id
        self.remaining = after_chunks

    def score_windows(self, windows, batch):
        self.remaining -= 1
        if self.remaining == 0:
            self.manager.cancel(self.job_id)  # lands at the next chunk boundary
        return super().score_windows(windows, batch)


def main() -> None:
    series = make_series()
    spec = JobSpec(
        detector="example-sr",
        window_length=256,
        stride=64,
        chunk_windows=512,
    )

    with tempfile.TemporaryDirectory(prefix="bulk-jobs-") as root:
        manager = JobManager(root, workers=1)

        # -- 1. an uninterrupted run, for reference -----------------------
        register_job_detector(
            "example-sr",
            lambda train, params: (BatchedSpectralResidualScorer(), 256, 64),
            plan=lambda train, params: (256, 64),
        )
        record = manager.submit(spec, series)
        print(f"submitted {record.job_id}: {record.state}, "
              f"{record.chunks_total} chunks of <= {spec.chunk_windows} windows")
        reference = manager.result(manager.run(record.job_id).job_id)

        # -- 2. the same payload in a fresh store, killed mid-run ---------
        with tempfile.TemporaryDirectory(prefix="bulk-jobs-crash-") as root2:
            crashy = JobManager(root2, workers=1)
            record = crashy.submit(spec, series)
            register_job_detector(
                "example-sr",
                lambda train, params: (
                    FlakyScorer(crashy, record.job_id, after_chunks=3), 256, 64,
                ),
                plan=lambda train, params: (256, 64),
            )
            record = crashy.run(record.job_id)
            print(f"after 'crash':   {record.state}, "
                  f"{record.chunks_done}/{record.chunks_total} chunks journaled")

            # -- 3. resume: same submit dedupes to the same job -----------
            register_job_detector(
                "example-sr",
                lambda train, params: (BatchedSpectralResidualScorer(), 256, 64),
                plan=lambda train, params: (256, 64),
            )
            resumed = crashy.submit(spec, series)
            assert resumed.job_id == record.job_id, "content key must dedupe"
            record = crashy.run(record.job_id)
            scores = crashy.result(record.job_id)
            print(f"after resume:    {record.state}, "
                  f"{record.chunks_done}/{record.chunks_total} chunks")

        identical = np.array_equal(scores, reference)
        peak = int(np.argmax(scores))
        print(f"resumed result bit-identical to uninterrupted run: {identical}")
        print(f"anomaly planted at 120000..120040, peak score at {peak}")
        assert identical
        assert 119_900 <= peak <= 120_200


if __name__ == "__main__":
    main()
