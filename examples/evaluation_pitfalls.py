"""Evaluation pitfalls (paper Sec. II-B, Table II & Fig. 3).

An executable version of the paper's warning about benchmarks and
metrics:

1. *Point adjustment inflates scores*: a detector that flags a single
   point of an event gets a near-perfect F1(PA).
2. *One-liner benchmarks*: on a KPI-style stream with explicit spikes,
   a one-line amplitude threshold — and even a randomly initialized
   LSTM-AE — match or beat a trained model.
3. *PA%K and affiliation* recover an honest ranking.

Run:
    python examples/evaluation_pitfalls.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import LSTMAEDetector, OneLinerDetector, RandomScoreDetector
from repro.data import make_archive, make_kpi_dataset
from repro.eval import render_table
from repro.metrics import (
    affiliation_metrics,
    f1_score,
    pa_k_auc,
    point_adjust,
)


def pitfall_1_pa_inflation() -> None:
    print("pitfall 1: point adjustment rewards a single lucky hit")
    labels = np.zeros(2000, dtype=int)
    labels[800:900] = 1
    lucky = np.zeros(2000, dtype=int)
    lucky[850] = 1  # one point out of a 100-point event

    rows = [
        ["F1 (point-wise)", f"{f1_score(lucky, labels):.3f}"],
        ["F1 (PA)", f"{f1_score(point_adjust(lucky, labels), labels):.3f}"],
        ["F1 (PA%K AUC)", f"{pa_k_auc(lucky, labels).f1_auc:.3f}"],
    ]
    print(render_table(["Metric", "Score of the 1-point detector"], rows))
    print()


def pitfall_2_one_liner_benchmarks() -> None:
    print("pitfall 2: 'one-liner' benchmarks (KPI-style explicit spikes)")
    kpi = make_kpi_dataset(seed=1)
    detectors = [
        OneLinerDetector(),
        RandomScoreDetector(seed=0),
        LSTMAEDetector(trained=False, seed=0),
        LSTMAEDetector(trained=True, epochs=3, seed=0),
    ]
    rows = []
    for detector in detectors:
        predictions = detector.fit(kpi.train).detect(kpi.test)
        rows.append(
            [
                detector.name,
                f"{f1_score(predictions, kpi.labels):.3f}",
                f"{pa_k_auc(predictions, kpi.labels).f1_auc:.3f}",
            ]
        )
    print(render_table(["Detector", "F1(PW)", "F1(PA%K)"], rows))
    print("note: training does not help — the anomalies are explicit.\n")


def pitfall_3_rigorous_data_and_metrics() -> None:
    print("pitfall 3: on UCR-style subtle anomalies the same models collapse")
    dataset = make_archive(size=4, seed=11, train_length=1200, test_length=1500)[0]
    rows = []
    for detector in [
        OneLinerDetector(),
        LSTMAEDetector(trained=True, epochs=3, seed=0),
    ]:
        predictions = detector.fit(dataset.train).detect(dataset.test)
        affiliation = affiliation_metrics(predictions, dataset.labels)
        rows.append(
            [
                detector.name,
                f"{f1_score(predictions, dataset.labels):.3f}",
                f"{pa_k_auc(predictions, dataset.labels).f1_auc:.3f}",
                f"{affiliation.f1:.3f}",
            ]
        )
    print(render_table(["Detector", "F1(PW)", "F1(PA%K)", "Affiliation F1"], rows))
    print("rigorous data + calibrated metrics reveal the real difficulty.")


if __name__ == "__main__":
    pitfall_1_pa_inflation()
    pitfall_2_one_liner_benchmarks()
    pitfall_3_rigorous_data_and_metrics()
