"""Streaming anomaly monitoring (extension beyond the paper).

The paper's pipeline is batch: a full test set arrives, TriAD nominates
windows, MERLIN refines.  Industrial telemetry often needs *online*
detection instead.  This example shows two extensions this library
provides:

1. :class:`repro.discord.StreamingDiscordDetector` — a DAMP-style
   left-matrix-profile monitor that ingests one point at a time and
   alerts the moment an unprecedented subsequence completes;
2. :func:`repro.discord.top_k_discords` — batch top-K discord
   extraction, for streams that may contain several events.

Run:
    python examples/streaming_monitor.py
"""

from __future__ import annotations

import numpy as np

from repro.data import DatasetSpec, make_dataset
from repro.discord import StreamingDiscordDetector, top_k_discords


def main() -> None:
    # A stream with two distinct anomalous events.
    spec = DatasetSpec(
        name="stream",
        family="harmonics",
        period=50,
        train_length=100,  # unused here; the monitor is label- and train-free
        test_length=3000,
        anomaly_type="seasonal",
        anomaly_start=1200,
        anomaly_length=120,
        noise_level=0.04,
        seed=77,
    )
    stream = make_dataset(spec).test
    rng = np.random.default_rng(0)
    stream[2400:2440] += rng.standard_normal(40) * 1.5  # second event: noise burst

    print("=== online monitoring (one point at a time) ===")
    monitor = StreamingDiscordDetector(length=40, warmup=60, sigma=5.0)
    reported: list[int] = []
    for value in stream:
        alert = monitor.update(value)
        if alert is not None:
            # Report once per burst: skip alerts within 100 pts of the last.
            if not reported or alert.index - reported[-1] > 100:
                print(
                    f"  t={monitor.points_seen:5d}  ALERT: novel subsequence at "
                    f"index {alert.index} (left-NN distance {alert.distance:.2f})"
                )
                reported.append(alert.index)
    print(f"  events planted at ~1200-1320 and ~2400-2440; "
          f"{len(reported)} alert bursts raised\n")

    print("=== batch top-K discord extraction ===")
    for discord in top_k_discords(stream, length=60, k=3, suppression=240):
        lo, hi = discord.interval
        print(f"  discord [{lo}, {hi})  NN-distance {discord.distance:.2f}")


if __name__ == "__main__":
    main()
