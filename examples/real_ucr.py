"""Running the library on the real UCR Time Series Anomaly Archive.

The reproduction was developed against a synthetic stand-in archive
(this machine is offline), but everything downstream of the loader is
format-compatible with the genuine archive.  Point ``UCR_DIR`` at a
directory of ``NNN_UCR_Anomaly_<name>_<trainEnd>_<start>_<end>.txt``
files and the full pipeline runs unmodified.

Without the real data available, the example demonstrates the identical
workflow on archive files *written in the real format* by this library,
proving the round trip.

Run:
    UCR_DIR=/path/to/UCR_Anomaly_FullData python examples/real_ucr.py
    python examples/real_ucr.py            # self-contained fallback
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

import numpy as np

from repro import TriAD, TriADConfig
from repro.data import load_ucr_archive, make_archive
from repro.eval import render_table
from repro.metrics import pa_k_auc, window_hits_event


def write_fallback_archive(directory: Path, count: int = 3) -> None:
    """Write synthetic datasets in the genuine UCR file format."""
    archive = make_archive(size=count, seed=9, train_length=1500, test_length=1800)
    for i, ds in enumerate(archive):
        start, end = ds.anomaly_interval
        train_end = len(ds.train)
        name = (
            f"{i + 1:03d}_UCR_Anomaly_{ds.spec.family}{ds.spec.anomaly_type}"
            f"_{train_end}_{train_end + start + 1}_{train_end + end}.txt"
        )
        np.savetxt(directory / name, np.concatenate([ds.train, ds.test]))


def main() -> None:
    ucr_dir = os.environ.get("UCR_DIR")
    if ucr_dir and Path(ucr_dir).is_dir():
        directory = Path(ucr_dir)
        limit = 3  # keep the demo quick; drop for a full run
        print(f"loading real UCR archive from {directory} (first {limit} sets)")
    else:
        tmp = tempfile.mkdtemp(prefix="ucr_fallback_")
        directory = Path(tmp)
        write_fallback_archive(directory)
        limit = None
        print("UCR_DIR not set — using synthetic files in the real format:")
        for path in sorted(directory.iterdir()):
            print(f"  {path.name}")

    datasets = load_ucr_archive(directory, limit=limit)
    rows = []
    for dataset in datasets:
        detector = TriAD(TriADConfig(epochs=5, max_window=256, seed=0))
        detector.fit(dataset.train)
        detection = detector.detect(dataset.test)
        hit = window_hits_event(detection.window, dataset.anomaly_interval)
        auc = pa_k_auc(detection.predictions, dataset.labels).f1_auc
        rows.append(
            [
                dataset.name,
                str(dataset.anomaly_length),
                f"{detection.window}",
                "yes" if hit else "no",
                f"{auc:.3f}",
            ]
        )
    print()
    print(
        render_table(
            ["Dataset", "Anomaly len", "Flagged window", "Hit", "PA%K F1-AUC"],
            rows,
            title="TriAD on UCR-format files",
        )
    )


if __name__ == "__main__":
    main()
