"""Case study (paper Sec. IV-E, Figs. 10-13): walking one detection.

Reproduces the paper's UCR "025" walkthrough on its synthetic twin — an
ECG-like series whose anomaly is a missing secondary peak (a subtle
frequency shift).  Prints every intermediate artifact of the pipeline:

1. per-domain window similarity curves (Fig. 11) as ASCII sparklines;
2. the nominated and selected windows;
3. MERLIN discords per anomaly length (Fig. 12);
4. the voting threshold study (Fig. 13).

Run:
    python examples/case_study.py
"""

from __future__ import annotations

import numpy as np

from repro import TriAD, TriADConfig
from repro.data import DatasetSpec, make_dataset
from repro.metrics import precision_recall_f1

SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: np.ndarray, width: int = 64) -> str:
    """Render values as a unicode sparkline of at most ``width`` chars."""
    if len(values) > width:
        bins = np.array_split(values, width)
        values = np.array([b.mean() for b in bins])
    lo, hi = values.min(), values.max()
    span = max(hi - lo, 1e-12)
    levels = ((values - lo) / span * (len(SPARK) - 1)).astype(int)
    return "".join(SPARK[i] for i in levels)


def main() -> None:
    spec = DatasetSpec(
        name="synthetic-025",
        family="ecg",
        period=56,
        train_length=2000,
        test_length=2400,
        anomaly_type="contextual",
        anomaly_start=1400,
        anomaly_length=27,
        noise_level=0.03,
        seed=25,
    )
    dataset = make_dataset(spec)
    start, end = dataset.anomaly_interval
    print(f"test set of {len(dataset.test)} points; "
          f"anomaly = {end - start} points at [{start}, {end})")
    print("the anomaly omits the secondary ECG peak (subtle frequency shift)\n")

    detector = TriAD(TriADConfig(epochs=6, max_window=256, seed=0)).fit(dataset.train)
    detection = detector.detect(dataset.test)

    print("Fig. 11 — per-domain window similarity (dip = deviant window):")
    for domain, scores in detection.similarity.items():
        deviant = int(np.argmin(scores))
        marker = f"min @ window {deviant}"
        print(f"  {domain:9s} {sparkline(scores)}  {marker}")

    print(f"\ncandidate windows : {detection.candidate_windows}")
    print(f"selected window   : {detection.window}")
    print(f"search region     : {detection.search_region} "
          f"(padding gives MERLIN normal context)")

    print("\nFig. 12 — MERLIN discords per search length:")
    offset = detection.search_region[0]
    for discord in detection.discords.discords:
        lo = offset + discord.index
        hi = lo + discord.length
        near = "<-- anomaly" if lo < end + 50 and hi > start - 50 else ""
        print(f"  length {discord.length:4d}: [{lo}, {hi})  "
              f"distance {discord.distance:6.2f} {near}")

    print("\nFig. 13 — voting threshold study:")
    votes = detection.votes.votes
    voted = votes[votes > 0]
    print(f"  {'threshold':22s} {'precision':>9s} {'recall':>7s} {'F1':>6s}")
    for label, threshold in [
        ("mean (paper default)", float(voted.mean())),
        ("median", float(np.percentile(voted, 50))),
        ("P75", float(np.percentile(voted, 75))),
        ("P90", float(np.percentile(voted, 90))),
    ]:
        predictions = (votes > threshold).astype(int)
        p, r, f1 = precision_recall_f1(predictions, dataset.labels)
        print(f"  {label:22s} {p:9.3f} {r:7.3f} {f1:6.3f}")


if __name__ == "__main__":
    main()
