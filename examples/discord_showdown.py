"""Discord discovery showdown (paper Sec. IV-B2, Table IV & Fig. 7).

Compares three ways to find an anomaly with discord search:

1. brute-force matrix profile over the full series (the O(N^2) classic);
2. MERLIN++ over the full series (the SOTA comparator);
3. TriAD: a trained encoder nominates one window, MERLIN scans only a
   padded region around it.

Prints per-method wall-clock time, scanned length, and whether the
anomaly was hit — demonstrating the search-space reduction the paper
reports (Fig. 7) and the accuracy/time trade of Table IV.

Run:
    python examples/discord_showdown.py
"""

from __future__ import annotations

import numpy as np

from repro import TriAD, TriADConfig
from repro.data import make_archive
from repro.discord import brute_force_discord, merlinpp
from repro.eval import render_table
from repro.metrics import Timer, event_detected, window_hits_event


def main() -> None:
    dataset = make_archive(size=4, seed=19, train_length=1500, test_length=2000)[2]
    start, end = dataset.anomaly_interval
    n = len(dataset.test)
    print(f"dataset {dataset.name}: anomaly [{start}, {end}) in {n} points\n")

    rows = []

    # 1. Brute force at one representative length.
    with Timer() as t_brute:
        discord = brute_force_discord(dataset.test, 64, exclusion=64)
    hit = event_detected(np.arange(*discord.interval), (start, end))
    rows.append(["brute force (L=64)", f"{n}", f"{t_brute.elapsed:.2f}s", str(hit)])

    # 2. MERLIN++ across lengths on the full series.
    with Timer() as t_mpp:
        result = merlinpp(dataset.test, 16, 128, step=16)
    points = (
        np.concatenate([np.arange(d.index, d.index + d.length) for d in result.discords])
        if result.discords
        else np.array([])
    )
    hit = event_detected(points, (start, end))
    rows.append(["MERLIN++ (16..128)", f"{n}", f"{t_mpp.elapsed:.2f}s", str(hit)])

    # 3. TriAD: nomination + windowed MERLIN (training time shown separately).
    with Timer() as t_train:
        detector = TriAD(TriADConfig(epochs=5, max_window=256, seed=0)).fit(dataset.train)
    with Timer() as t_triad:
        detection = detector.detect(dataset.test)
    span = detection.search_region[1] - detection.search_region[0]
    hit = window_hits_event(detection.window, (start, end))
    rows.append(["TriAD (windowed MERLIN)", f"{span}", f"{t_triad.elapsed:.2f}s", str(hit)])

    print(
        render_table(
            ["Method", "scanned points", "inference time", "anomaly hit"],
            rows,
            title="Discord showdown",
        )
    )
    print(f"\n(TriAD one-off training: {t_train.elapsed:.1f}s; "
          f"search-space reduction: {n / span:.1f}x — cf. paper Fig. 7)")


if __name__ == "__main__":
    main()
