"""Anomaly zoo (paper Fig. 16): six anomaly types, one detector.

Builds one dataset per anomaly type the paper showcases — noise,
duration, seasonal, trend, level shift, contextual — trains a TriAD
model on each, and reports whether the flagged window localized the
event, alongside the PA%K and affiliation scores.

Run:
    python examples/anomaly_zoo.py
"""

from __future__ import annotations

from repro import TriAD, TriADConfig
from repro.data import DatasetSpec, make_dataset
from repro.eval import render_table
from repro.metrics import affiliation_metrics, pa_k_auc, window_hits_event

TYPES = ("noise", "duration", "seasonal", "trend", "level_shift", "contextual")


def main() -> None:
    rows = []
    for i, anomaly_type in enumerate(TYPES):
        dataset = make_dataset(
            DatasetSpec(
                name=f"zoo_{anomaly_type}",
                family="harmonics",
                period=44,
                train_length=1500,
                test_length=1800,
                anomaly_type=anomaly_type,
                anomaly_start=800 + 37 * i,
                anomaly_length=90,
                noise_level=0.04,
                seed=100 + i,
            )
        )
        detector = TriAD(TriADConfig(epochs=5, max_window=256, seed=0))
        detector.fit(dataset.train)
        detection = detector.detect(dataset.test)

        hit = window_hits_event(detection.window, dataset.anomaly_interval)
        curve = pa_k_auc(detection.predictions, dataset.labels)
        affiliation = affiliation_metrics(detection.predictions, dataset.labels)
        rows.append(
            [
                anomaly_type,
                "yes" if hit else "no",
                f"{curve.f1_auc:.3f}",
                f"{affiliation.f1:.3f}",
                "yes" if detection.votes.exception_applied else "no",
            ]
        )
        print(f"[{anomaly_type}] window={detection.window} hit={hit}")

    print()
    print(
        render_table(
            ["Anomaly type", "Window hit", "PA%K F1-AUC", "Affiliation F1", "Exception"],
            rows,
            title="TriAD across the paper's six anomaly types (Fig. 16)",
        )
    )


if __name__ == "__main__":
    main()
