"""Sharded multi-worker serving (extension beyond the paper).

One :class:`repro.serve.ScoringEngine` is bounded by a single core and
a single address space.  This example drives the shard fabric
(``docs/SHARDING.md``) end to end:

1. partition a fleet of streams across worker processes by consistent
   hash (:class:`repro.serve.ShardRouter`), with per-stream state
   externalized through a file-backed store;
2. ``kill -9`` a worker mid-run and watch the supervisor heal it —
   respawn, rehydrate from the store, replay unacked batches — with
   the final scores bit-identical to an undisturbed run;
3. scale the fleet from 2 to 3 workers mid-stream; only the streams
   whose hash slot changed migrate, and the move is invisible in the
   score series.

Run:
    python examples/sharded_serving.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.serve import (
    FileBackedStore,
    ShardSupervisor,
    WorkerSpec,
    build_worker_engine,
)

STREAMS = 16
CHUNK = 100
ROUNDS = 8


def make_fleet() -> dict[str, np.ndarray]:
    """16 noisy periodic streams; half of them carry a mid-run spike."""
    rng = np.random.default_rng(7)
    t = np.arange(CHUNK * ROUNDS)
    fleet = {}
    for i in range(STREAMS):
        series = np.sin(2 * np.pi * (t + 13 * i) / 32)
        series += 0.03 * rng.standard_normal(len(t))
        if i % 2 == 0:
            series[420:428] += 6.0  # the event the fleet should alert on
        fleet[f"sensor-{i:02d}"] = series
    return fleet


def main() -> None:
    t = np.arange(800)
    train = np.sin(2 * np.pi * t / 32)
    train += 0.03 * np.random.default_rng(5).standard_normal(len(t))
    # A WorkerSpec is a picklable recipe, not a live model: each worker
    # builds its own scorer by registry name at spawn, which is what
    # makes respawning a dead worker trivial.
    spec = WorkerSpec(
        detector="spectral-residual",
        params={"max_window": 64, "seed": 0},
        train=train,
        window_length=32,
        stride=8,
        engine={"max_batch": 32, "score_baseline": 64, "warmup_scores": 8},
        record_scores=True,  # so we can prove bit-identity below
    )
    fleet = make_fleet()

    print("=== reference: one in-process engine ===")
    engine = build_worker_engine(spec)
    reference_alerts = []
    for position in range(0, CHUNK * ROUNDS, CHUNK):
        for stream_id, series in fleet.items():
            reference_alerts.extend(
                engine.ingest_many(stream_id, series[position : position + CHUNK])
            )
        reference_alerts.extend(engine.drain())
    reference = sorted(engine.take_records())
    print(f"scored {len(reference)} windows, {len(reference_alerts)} alerts")

    print("\n=== sharded run with a kill -9 and a mid-stream scale-out ===")
    store_dir = Path(tempfile.mkdtemp(prefix="shard-example-")) / "store"
    records, alerts = [], []
    with ShardSupervisor(
        spec, workers=2, store=FileBackedStore(store_dir)
    ) as supervisor:
        for round_index, position in enumerate(range(0, CHUNK * ROUNDS, CHUNK)):
            if round_index == 3:
                victim = supervisor.router.workers[0]
                pid = supervisor.kill_worker(victim)
                print(f"round {round_index}: SIGKILLed {victim} (pid {pid})")
            if round_index == 5:
                summary = supervisor.scale_to(3)
                moved = sum(len(ids) for ids in summary["moved"].values())
                print(f"round {round_index}: scaled to 3 workers, "
                      f"{moved}/{STREAMS} streams migrated")
            batch = [
                (stream_id, series[position : position + CHUNK])
                for stream_id, series in fleet.items()
            ]
            alerts.extend(supervisor.submit(batch))
            records.extend(supervisor.router.last_records)
        report = supervisor.report()

    print(f"scored {len(records)} windows, {len(alerts)} alerts, "
          f"heals={report['heals']}, respawns={report['respawns']}")
    for name, count in sorted(report["ring"].items()):
        print(f"  {name}: {count} streams")

    identical = sorted(records) == reference
    print(f"\nbit-identical to the in-process reference: {identical}")
    assert identical, "sharded run diverged from the reference"
    assert sorted(
        (a.stream_id, a.index, a.score) for a in alerts
    ) == sorted((a.stream_id, a.index, a.score) for a in reference_alerts)
    print("every alert matched, through a kill -9 and a rebalance.")


if __name__ == "__main__":
    main()
