"""Multivariate plant monitoring (extension beyond the paper).

SWaT-like plants expose many correlated sensor channels; an anomaly
usually manifests in a subset of them.  This example builds a 4-channel
correlated stream with a seasonal fault on two channels, trains one
TriAD per channel, and pools the votes — reporting both *when* the
fault occurred and *which sensors* carried it.

Run:
    python examples/multivariate_plant.py
"""

from __future__ import annotations

import numpy as np

from repro.core import MultivariateTriAD, TriADConfig
from repro.data import make_multivariate_dataset
from repro.metrics import affiliation_metrics, precision_recall_f1
from repro.viz import mark_intervals, sparkline


def main() -> None:
    dataset = make_multivariate_dataset(
        channels=4,
        affected=2,
        train_length=1500,
        test_length=2000,
        period=48,
        anomaly_type="noise",
        anomaly_start=1100,
        anomaly_length=90,
        coupling=0.5,
        seed=11,
    )
    start, end = dataset.anomaly_interval
    print(f"{dataset.channels} channels; fault on channels "
          f"{list(dataset.affected_channels)} at [{start}, {end})\n")
    for c in range(dataset.channels):
        tag = "  <- faulty" if c in dataset.affected_channels else ""
        print(f"  ch{c}: {sparkline(dataset.test[c], width=64)}{tag}")

    config = TriADConfig(epochs=4, max_window=192, seed=0)
    detector = MultivariateTriAD(config, min_channels=2).fit(dataset)
    detection = detector.detect(dataset)

    print("\nper-channel flagged windows:")
    for c, channel_detection in enumerate(detection.channel_detections):
        print(f"  ch{c}: window {channel_detection.window} "
              f"({int(detection.channel_votes[c].sum())} points flagged)")

    implicated = detection.implicated_channels(start - 100, end + 100)
    print(f"\nchannels implicated near the fault: {implicated}")

    predicted = np.flatnonzero(detection.predictions)
    print(f"pooled prediction: {predicted.size} points "
          f"in [{predicted.min()}, {predicted.max()}]")
    ruler = mark_intervals(64, [(int(start / len(dataset.labels) * 64),
                                 int(np.ceil(end / len(dataset.labels) * 64)))])
    print(f"  truth : {ruler}")
    pred_marks = [(int(predicted.min() / len(dataset.labels) * 64),
                   int(np.ceil(predicted.max() / len(dataset.labels) * 64)))]
    print(f"  pred  : {mark_intervals(64, pred_marks, char='!')}")

    precision, recall, f1 = precision_recall_f1(detection.predictions, dataset.labels)
    affiliation = affiliation_metrics(detection.predictions, dataset.labels)
    print(f"\npoint-wise P/R/F1 : {precision:.3f} / {recall:.3f} / {f1:.3f}")
    print(f"affiliation F1    : {affiliation.f1:.3f}")


if __name__ == "__main__":
    main()
