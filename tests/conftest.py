"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Dataset, DatasetSpec, make_dataset


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def sine_wave() -> np.ndarray:
    """A clean periodic signal with period 50."""
    t = np.arange(1000)
    return np.sin(2 * np.pi * t / 50)


@pytest.fixture
def noisy_wave(rng: np.random.Generator) -> np.ndarray:
    """Periodic signal with period 40 plus mild noise."""
    t = np.arange(1600)
    return np.sin(2 * np.pi * t / 40) + 0.05 * rng.standard_normal(len(t))


@pytest.fixture
def small_dataset() -> Dataset:
    """A small synthetic dataset for fast end-to-end tests."""
    spec = DatasetSpec(
        name="test_ds",
        family="ecg",
        period=40,
        train_length=1000,
        test_length=1200,
        anomaly_type="contextual",
        anomaly_start=600,
        anomaly_length=60,
        noise_level=0.04,
        seed=11,
    )
    return make_dataset(spec)


@pytest.fixture
def spike_dataset() -> Dataset:
    """An 'easy' dataset whose anomaly is an amplitude spike."""
    spec = DatasetSpec(
        name="spike_ds",
        family="sine",
        period=32,
        train_length=800,
        test_length=1000,
        anomaly_type="point",
        anomaly_start=500,
        anomaly_length=5,
        noise_level=0.03,
        seed=5,
    )
    return make_dataset(spec)
