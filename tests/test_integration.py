"""Cross-module integration tests: the full paper pipeline end-to-end."""

from __future__ import annotations

import numpy as np
import pytest

from repro import TriAD, TriADConfig
from repro.data import DatasetSpec, make_dataset
from repro.discord import merlin
from repro.eval import evaluate_predictions
from repro.metrics import window_hits_event


@pytest.fixture(scope="module")
def pipeline_run():
    """Train TriAD once and detect once; several tests inspect the result."""
    spec = DatasetSpec(
        name="integration",
        family="harmonics",
        period=48,
        train_length=1400,
        test_length=1600,
        anomaly_type="noise",
        anomaly_start=800,
        anomaly_length=70,
        noise_level=0.05,
        seed=33,
    )
    dataset = make_dataset(spec)
    config = TriADConfig(depth=3, hidden_dim=16, epochs=4, seed=1, max_window=160)
    detector = TriAD(config).fit(dataset.train)
    detection = detector.detect(dataset.test)
    return dataset, detector, detection


class TestFullPipeline:
    def test_window_localizes_anomaly(self, pipeline_run):
        dataset, _, detection = pipeline_run
        assert window_hits_event(detection.window, dataset.anomaly_interval)

    def test_metrics_beat_trivial_floor(self, pipeline_run):
        dataset, _, detection = pipeline_run
        metrics = evaluate_predictions(detection.predictions, dataset.labels)
        assert metrics["pak_f1_auc"] > 0.1
        assert metrics["affiliation_f1"] > 0.6

    def test_search_region_is_fraction_of_series(self, pipeline_run):
        dataset, _, detection = pipeline_run
        lo, hi = detection.search_region
        assert (hi - lo) < 0.5 * len(dataset.test)

    def test_discords_concentrate_in_region(self, pipeline_run):
        dataset, _, detection = pipeline_run
        lo, hi = detection.search_region
        for discord in detection.discords.discords:
            assert 0 <= discord.index <= (hi - lo)

    def test_votes_consistent_with_predictions(self, pipeline_run):
        _, _, detection = pipeline_run
        votes = detection.votes
        if not votes.exception_applied:
            assert np.array_equal(
                detection.predictions.astype(bool) | (votes.votes > votes.threshold),
                votes.votes > votes.threshold,
            ) or detection.predictions.any()


class TestMerlinOnRawSeries:
    def test_direct_merlin_also_finds_anomaly(self, pipeline_run):
        """Sanity link: discord discovery alone locates the same region."""
        dataset, detector, _ = pipeline_run
        result = merlin(dataset.test, 24, 72, step=24)
        start, end = dataset.anomaly_interval
        hits = sum(
            1
            for d in result.discords
            if d.index + d.length > start - 100 and d.index < end + 100
        )
        assert hits >= 2


class TestSerializationRoundtrip:
    def test_encoder_persists(self, pipeline_run, tmp_path):
        from repro import nn

        dataset, detector, detection = pipeline_run
        path = tmp_path / "encoder.npz"
        nn.save_module(detector.encoder, path)

        clone = TriAD(detector.config)
        clone.fit(dataset.train[:400])  # fit to build architecture/plan
        # Force the same plan so representations are comparable.
        nn.load_module(clone.encoder, path)
        windows = np.random.default_rng(0).normal(size=(3, detector.plan.length))
        a = detector.representations(windows)
        b = {
            d: clone.encoder.encode(feat, d).data
            for d, feat in zip(
                a.keys(),
                [
                    _features(windows, d, detector.plan.period)
                    for d in a.keys()
                ],
            )
        }
        for domain in a:
            assert np.allclose(a[domain], b[domain], atol=1e-10)


def _features(windows, domain, period):
    from repro.core.features import extract_domain

    return extract_domain(windows, domain, period)
