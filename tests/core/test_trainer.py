"""Training loop tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TriADConfig, train_encoder
from repro.core.trainer import contrastive_forward_fusion


@pytest.fixture
def fast_config():
    return TriADConfig(depth=2, hidden_dim=8, epochs=3, seed=0, max_window=128)


class TestTrainEncoder:
    def test_returns_plan_and_losses(self, noisy_wave, fast_config):
        result = train_encoder(noisy_wave, fast_config)
        assert len(result.train_losses) == 3
        assert len(result.val_losses) == 3
        assert result.plan.length <= 128
        assert all(np.isfinite(l) for l in result.train_losses)

    def test_loss_decreases(self, noisy_wave):
        config = TriADConfig(depth=2, hidden_dim=8, epochs=6, seed=1, max_window=128)
        result = train_encoder(noisy_wave, config)
        assert result.train_losses[-1] < result.train_losses[0]

    def test_reproducible_given_seed(self, noisy_wave, fast_config):
        a = train_encoder(noisy_wave, fast_config)
        b = train_encoder(noisy_wave, fast_config)
        assert a.train_losses == b.train_losses
        for (name_a, p_a), (name_b, p_b) in zip(
            a.encoder.named_parameters(), b.encoder.named_parameters()
        ):
            assert name_a == name_b
            assert np.allclose(p_a.data, p_b.data)

    def test_different_seeds_differ(self, noisy_wave, fast_config):
        a = train_encoder(noisy_wave, fast_config)
        b = train_encoder(noisy_wave, fast_config.with_overrides(seed=7))
        assert a.train_losses != b.train_losses

    def test_encoder_left_in_eval_mode(self, noisy_wave, fast_config):
        result = train_encoder(noisy_wave, fast_config)
        assert not result.encoder.training

    def test_ablated_domains_trainable(self, noisy_wave, fast_config):
        config = fast_config.with_overrides(domains=("temporal", "frequency"))
        result = train_encoder(noisy_wave, config)
        assert np.isfinite(result.train_losses[-1])

    def test_intra_only_trainable(self, noisy_wave, fast_config):
        config = fast_config.with_overrides(use_inter=False)
        result = train_encoder(noisy_wave, config)
        assert np.isfinite(result.train_losses[-1])


class TestContrastiveForwardFusion:
    def test_fused_forward_matches_two_pass(self, noisy_wave, fast_config):
        """The concatenated [originals; augmented] pass must reproduce the
        two-pass losses: every encoder op is batch-row independent, so
        the only tolerated difference is BLAS rounding the last ulp
        differently for the doubled row count."""
        with contrastive_forward_fusion(True):
            fused = train_encoder(noisy_wave, fast_config)
        with contrastive_forward_fusion(False):
            two_pass = train_encoder(noisy_wave, fast_config)
        assert np.allclose(fused.train_losses, two_pass.train_losses, rtol=1e-12)
        assert np.allclose(fused.val_losses, two_pass.val_losses, rtol=1e-12)
        for (name_a, p_a), (name_b, p_b) in zip(
            fused.encoder.named_parameters(), two_pass.encoder.named_parameters()
        ):
            assert name_a == name_b
            assert np.allclose(p_a.data, p_b.data, rtol=1e-10, atol=1e-12)


class TestDataParallelTraining:
    def test_parallel_workers_train(self, noisy_wave):
        config = TriADConfig(
            depth=2, hidden_dim=8, epochs=2, seed=0, max_window=128,
            data_parallel_workers=2,
        )
        result = train_encoder(noisy_wave, config)
        assert len(result.train_losses) == 2
        assert all(np.isfinite(l) for l in result.train_losses)
        assert not result.encoder.training

    def test_parallel_reproducible_given_seed(self, noisy_wave):
        config = TriADConfig(
            depth=2, hidden_dim=8, epochs=2, seed=0, max_window=128,
            data_parallel_workers=2,
        )
        a = train_encoder(noisy_wave, config)
        b = train_encoder(noisy_wave, config)
        assert a.train_losses == b.train_losses

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            TriADConfig(data_parallel_workers=-1)
