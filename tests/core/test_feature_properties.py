"""Property tests on tri-domain feature extraction."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import extract_domain


def make_windows(seed: int, batch: int = 3, length: int = 64) -> np.ndarray:
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    base = np.sin(2 * np.pi * t / 16)
    return base[None, :] + 0.3 * rng.standard_normal((batch, length))


@given(
    st.integers(min_value=0, max_value=5_000),
    st.floats(min_value=0.5, max_value=10.0),
    st.floats(min_value=-5.0, max_value=5.0),
)
@settings(max_examples=20, deadline=None)
def test_temporal_features_affine_invariant(seed, scale, offset):
    """Per-window z-normalization makes the temporal view invariant to
    affine amplitude transforms — the property that lets one encoder
    serve datasets of wildly different scales."""
    windows = make_windows(seed)
    original = extract_domain(windows, "temporal", 16)
    transformed = extract_domain(windows * scale + offset, "temporal", 16)
    assert np.allclose(original, transformed, atol=1e-8)


@given(st.integers(min_value=0, max_value=5_000))
@settings(max_examples=20, deadline=None)
def test_all_domains_finite_and_shaped(seed):
    windows = make_windows(seed)
    for domain, channels in (("temporal", 1), ("frequency", 3), ("residual", 1)):
        features = extract_domain(windows, domain, 16)
        assert features.shape == (3, channels, 64)
        assert np.all(np.isfinite(features))


@given(
    st.integers(min_value=0, max_value=5_000),
    st.floats(min_value=0.5, max_value=10.0),
    st.floats(min_value=-5.0, max_value=5.0),
)
@settings(max_examples=15, deadline=None)
def test_frequency_features_affine_invariant_but_shift_sensitive(seed, scale, offset):
    """Windows are z-normalized before the FFT, so a pure gain/offset
    leaves the frequency view unchanged; altering the frequency content
    does not."""
    windows = make_windows(seed, batch=1)
    original = extract_domain(windows, "frequency", 16)
    transformed = extract_domain(windows * scale + offset, "frequency", 16)
    assert np.allclose(original, transformed, atol=1e-6)

    doubled = extract_domain(windows[:, ::2].repeat(2, axis=1), "frequency", 16)
    assert not np.allclose(original[0, 0], doubled[0, 0], atol=0.1)


def test_residual_features_remove_seasonality():
    t = np.arange(96)
    clean = np.sin(2 * np.pi * t / 16)
    features = extract_domain(clean[None, :], "residual", 16)
    # A perfectly periodic window has (near-)zero residual energy.
    assert float(np.abs(features).mean()) < 1.0
