"""Tests for TriAD extensions: persistence, weighted scoring, top-Z."""

from __future__ import annotations

import numpy as np
import pytest

from repro import TriAD, TriADConfig
from repro.core import load_detector, save_detector, score_votes_weighted, weighted_votes
from repro.discord.brute import Discord
from repro.discord.merlin import MerlinResult


@pytest.fixture(scope="module")
def fitted_small(noisy_wave_module):
    config = TriADConfig(depth=2, hidden_dim=8, epochs=2, seed=3, max_window=96)
    return TriAD(config).fit(noisy_wave_module)


@pytest.fixture(scope="module")
def noisy_wave_module():
    rng = np.random.default_rng(12345)
    t = np.arange(1600)
    return np.sin(2 * np.pi * t / 40) + 0.05 * rng.standard_normal(len(t))


class TestPersistence:
    def test_roundtrip_preserves_everything(self, fitted_small, noisy_wave_module, tmp_path):
        path = tmp_path / "triad.npz"
        save_detector(fitted_small, path)
        restored = load_detector(path)

        assert restored.config == fitted_small.config
        assert restored.plan == fitted_small.plan
        assert restored.train_losses == fitted_small.train_losses
        assert np.array_equal(restored._train_series, noisy_wave_module)

        windows = np.random.default_rng(0).normal(size=(3, fitted_small.plan.length))
        a = fitted_small.representations(windows)
        b = restored.representations(windows)
        for domain in a:
            assert np.allclose(a[domain], b[domain], atol=1e-12)

    def test_restored_detector_detects(self, fitted_small, noisy_wave_module, tmp_path):
        path = tmp_path / "triad.npz"
        save_detector(fitted_small, path)
        restored = load_detector(path)
        test = noisy_wave_module.copy()
        test[800:840] += 2.0
        original = fitted_small.detect(test)
        reloaded = restored.detect(test)
        assert original.window == reloaded.window
        assert np.array_equal(original.predictions, reloaded.predictions)

    def test_unfitted_detector_cannot_save(self, tmp_path):
        with pytest.raises(RuntimeError):
            save_detector(TriAD(), tmp_path / "x.npz")


def make_result(*discords):
    return MerlinResult(
        discords=[Discord(index=i, length=l, distance=d) for i, l, d in discords]
    )


class TestWeightedVotes:
    def test_normalized_to_unit_interval(self):
        result = make_result((10, 20, 5.0), (15, 20, 3.0))
        votes = weighted_votes(100, (5, 40), result, search_offset=0)
        assert votes.max() == pytest.approx(1.0)
        assert votes.min() >= 0.0

    def test_stronger_discord_gets_more_weight(self):
        # Same length, different distances, disjoint spans.
        result = make_result((0, 10, 6.0), (50, 10, 2.0))
        votes = weighted_votes(100, (90, 95), result, search_offset=0)
        assert votes[5] > votes[55]

    def test_window_weight_scales(self):
        result = make_result((0, 10, 1.0))
        heavy = weighted_votes(100, (50, 60), result, 0, window_weight=5.0)
        light = weighted_votes(100, (50, 60), result, 0, window_weight=0.5)
        # With a heavy window weight the window region dominates.
        assert heavy[55] == pytest.approx(1.0)
        assert light[55] < 1.0

    def test_no_discords(self):
        votes = weighted_votes(50, (10, 20), make_result(), 0)
        assert votes[10:20].max() == pytest.approx(1.0)
        assert votes[:10].sum() == 0


class TestScoreVotesWeighted:
    def test_exception_still_fires(self):
        result = make_result((0, 10, 1.0), (2, 10, 1.0))
        out = score_votes_weighted(100, (50, 70), result, search_offset=0)
        assert out.exception_applied
        assert out.predictions[50:70].all()

    def test_predictions_cover_strong_region(self):
        result = make_result((30, 10, 5.0), (32, 10, 4.9), (60, 10, 0.5))
        out = score_votes_weighted(100, (25, 45), result, search_offset=0)
        assert not out.exception_applied
        assert out.predictions[33:40].any()
        assert not out.predictions[60:70].any()  # weak discord filtered

    def test_explicit_threshold(self):
        result = make_result((30, 10, 5.0))
        out = score_votes_weighted(100, (25, 45), result, 0, threshold=0.99)
        assert out.threshold == pytest.approx(0.99)
        assert out.predictions.any()


class TestTopZ:
    def test_nominate_top_windows_count_and_separation(self, fitted_small, noisy_wave_module):
        test = noisy_wave_module.copy()
        test[300:340] += 2.0
        test[1200:1240] -= 2.0
        nominations = fitted_small.nominate_top_windows(test, z=3)
        for domain, picks in nominations.items():
            assert 1 <= len(picks) <= 3
            starts = [w[0] for w in picks]
            for i, a in enumerate(starts):
                for b in starts[i + 1 :]:
                    assert abs(a - b) >= fitted_small.plan.length

    def test_detect_with_top_z_config(self, noisy_wave_module):
        config = TriADConfig(
            depth=1, hidden_dim=4, epochs=1, seed=0, max_window=96, top_z=2
        )
        detector = TriAD(config).fit(noisy_wave_module)
        test = noisy_wave_module.copy()
        test[700:760] += 2.5
        detection = detector.detect(test)
        assert detection.predictions.any()

    def test_weighted_scoring_config(self, noisy_wave_module):
        config = TriADConfig(
            depth=1, hidden_dim=4, epochs=1, seed=0, max_window=96, scoring="weighted"
        )
        detector = TriAD(config).fit(noisy_wave_module)
        test = noisy_wave_module.copy()
        test[700:760] += 2.5
        detection = detector.detect(test)
        assert detection.votes.votes.max() <= 1.0 + 1e-12
        assert detection.predictions.any()

    def test_invalid_config_values(self):
        with pytest.raises(ValueError):
            TriADConfig(scoring="fancy")
        with pytest.raises(ValueError):
            TriADConfig(top_z=0)
