"""Tests for MultivariateTriAD."""

from __future__ import annotations

import numpy as np
import pytest

from repro import TriADConfig
from repro.core import MultivariateTriAD
from repro.data import make_multivariate_dataset


@pytest.fixture(scope="module")
def mv_run():
    ds = make_multivariate_dataset(
        channels=3,
        affected=2,
        train_length=1200,
        test_length=1500,
        period=48,
        anomaly_type="noise",
        anomaly_start=800,
        anomaly_length=80,
        seed=3,
    )
    config = TriADConfig(depth=2, hidden_dim=8, epochs=2, seed=0, max_window=128)
    detector = MultivariateTriAD(config).fit(ds)
    detection = detector.detect(ds)
    return ds, detector, detection


class TestMultivariateTriAD:
    def test_one_detector_per_channel(self, mv_run):
        ds, detector, _ = mv_run
        assert len(detector.detectors) == ds.channels
        seeds = {d.config.seed for d in detector.detectors}
        assert len(seeds) == ds.channels  # independent initializations

    def test_detection_shapes(self, mv_run):
        ds, _, detection = mv_run
        assert detection.predictions.shape == ds.labels.shape
        assert detection.channel_votes.shape == (ds.channels, ds.test.shape[1])
        assert len(detection.channel_detections) == ds.channels

    def test_pooled_prediction_nonempty(self, mv_run):
        _, _, detection = mv_run
        assert detection.predictions.any()

    def test_channels_flagging_counts(self, mv_run):
        _, _, detection = mv_run
        counts = detection.channels_flagging
        assert counts.max() <= detection.channel_votes.shape[0]
        assert np.array_equal(counts, detection.channel_votes.sum(axis=0))

    def test_implicated_channels_subset(self, mv_run):
        ds, _, detection = mv_run
        start, end = ds.anomaly_interval
        implicated = detection.implicated_channels(start - 100, end + 100)
        assert set(implicated) <= set(range(ds.channels))

    def test_detect_before_fit_raises(self, mv_run):
        ds, _, _ = mv_run
        with pytest.raises(RuntimeError):
            MultivariateTriAD().detect(ds)

    def test_channel_count_mismatch_raises(self, mv_run):
        ds, detector, _ = mv_run
        with pytest.raises(ValueError):
            detector.detect(ds.test[:2])

    def test_min_channels_validation(self):
        with pytest.raises(ValueError):
            MultivariateTriAD(min_channels=0)

    def test_min_channels_two_is_stricter(self, mv_run):
        ds, detector, detection_one = mv_run
        strict = MultivariateTriAD(detector.config, min_channels=2)
        strict.detectors = detector.detectors  # reuse trained channels
        detection_two = strict.detect(ds)
        assert detection_two.predictions.sum() <= detection_one.predictions.sum() or (
            not (detection_two.channel_votes.sum(axis=0) >= 2).any()
        )

    def test_predict_matches_detect(self, mv_run):
        ds, detector, detection = mv_run
        assert np.array_equal(detector.predict(ds), detection.predictions)
