"""Persistence round-trips across every domain subset, and nn modules.

``save_detector``/``load_detector`` must reproduce the fitted state for
any ``TriADConfig.domains`` choice — each subset persists a different
set of encoders — and ``save_module``/``load_module`` must round-trip
modules whose parameter names contain dots (submodule paths).
"""

from __future__ import annotations

from itertools import combinations

import numpy as np
import pytest

from repro import TriAD, TriADConfig, nn
from repro.core import load_detector, save_detector
from repro.core.config import DOMAINS
from repro.nn import Tensor
from repro.nn.serialize import load_module, save_module

ALL_SUBSETS = [
    subset
    for size in range(1, len(DOMAINS) + 1)
    for subset in combinations(DOMAINS, size)
]


@pytest.fixture(scope="module")
def train_series():
    rng = np.random.default_rng(12345)
    t = np.arange(1600)
    return np.sin(2 * np.pi * t / 40) + 0.05 * rng.standard_normal(len(t))


class TestDomainSubsetRoundTrips:
    @pytest.mark.parametrize("domains", ALL_SUBSETS, ids=lambda d: "+".join(d))
    def test_roundtrip_preserves_representations(self, domains, train_series, tmp_path):
        config = TriADConfig(
            depth=2, hidden_dim=8, epochs=1, seed=3, max_window=96, domains=domains
        )
        fitted = TriAD(config).fit(train_series)
        path = tmp_path / "triad.npz"
        save_detector(fitted, path)
        restored = load_detector(path)

        assert restored.config == fitted.config
        assert restored.config.domains == tuple(domains)
        assert restored.plan == fitted.plan

        windows = np.random.default_rng(0).normal(size=(3, fitted.plan.length))
        original = fitted.representations(windows)
        reloaded = restored.representations(windows)
        assert set(original) == set(reloaded) == set(domains)
        for domain in original:
            assert np.allclose(original[domain], reloaded[domain], atol=1e-12)


class TestModuleRoundTrips:
    def test_lstm_roundtrip(self, tmp_path):
        rng = np.random.default_rng(7)
        original = nn.LSTM(3, 5, num_layers=2, rng=rng)
        path = tmp_path / "lstm.npz"
        save_module(original, path)

        other = nn.LSTM(3, 5, num_layers=2, rng=np.random.default_rng(99))
        x = Tensor(rng.normal(size=(2, 6, 3)))
        before, _ = other(x)
        load_module(other, path)
        after, _ = other(x)
        expected, _ = original(x)

        assert not np.allclose(before.data, expected.data)
        assert np.allclose(after.data, expected.data, atol=1e-12)
        # Dotted submodule names survive the npz round-trip verbatim.
        assert set(other.state_dict()) == set(original.state_dict())
        assert any("." in name for name in original.state_dict())

    def test_attention_roundtrip(self, tmp_path):
        rng = np.random.default_rng(3)
        original = nn.MultiHeadSelfAttention(8, num_heads=2, rng=rng)
        path = tmp_path / "attention.npz"
        save_module(original, path)

        other = nn.MultiHeadSelfAttention(8, num_heads=2, rng=np.random.default_rng(99))
        x = Tensor(rng.normal(size=(2, 5, 8)))
        load_module(other, path)
        ours, our_weights = other(x)
        theirs, their_weights = original(x)
        assert np.allclose(ours.data, theirs.data, atol=1e-12)
        assert np.allclose(our_weights.data, their_weights.data, atol=1e-12)

    def test_shape_mismatch_rejected(self, tmp_path):
        original = nn.LSTM(3, 5, rng=np.random.default_rng(0))
        path = tmp_path / "lstm.npz"
        save_module(original, path)
        wrong = nn.LSTM(3, 6, rng=np.random.default_rng(0))
        with pytest.raises((ValueError, KeyError)):
            load_module(wrong, path)
