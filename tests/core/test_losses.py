"""Contrastive loss tests (Eq. 5-7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor
from repro.core.losses import inter_domain_loss, intra_domain_loss, total_contrastive_loss


def unit_rows(data: np.ndarray) -> np.ndarray:
    return data / np.linalg.norm(data, axis=1, keepdims=True)


@pytest.fixture
def batch(rng):
    return unit_rows(rng.normal(size=(6, 20)))


class TestIntraDomainLoss:
    def test_scalar_and_finite(self, batch, rng):
        aug = unit_rows(rng.normal(size=batch.shape))
        loss = intra_domain_loss(Tensor(batch), Tensor(aug))
        assert loss.data.size == 1
        assert np.isfinite(loss.item())

    def test_lower_when_augmented_far(self, batch):
        """Pushing augmentations away from originals lowers the loss."""
        near_aug = unit_rows(batch + 0.01)
        far_aug = unit_rows(-batch)  # opposite direction = far in cosine
        loss_near = intra_domain_loss(Tensor(batch), Tensor(near_aug)).item()
        loss_far = intra_domain_loss(Tensor(batch), Tensor(far_aug)).item()
        assert loss_far < loss_near

    def test_lower_when_originals_aligned(self, rng):
        aug = unit_rows(rng.normal(size=(6, 20)))
        aligned = np.tile(unit_rows(rng.normal(size=(1, 20))), (6, 1))
        scattered = unit_rows(rng.normal(size=(6, 20)))
        loss_aligned = intra_domain_loss(Tensor(aligned), Tensor(aug)).item()
        loss_scattered = intra_domain_loss(Tensor(scattered), Tensor(aug)).item()
        assert loss_aligned < loss_scattered

    def test_gradients_flow(self, batch, rng):
        r = Tensor(batch, requires_grad=True)
        aug = Tensor(unit_rows(rng.normal(size=batch.shape)), requires_grad=True)
        intra_domain_loss(r, aug).backward()
        assert r.grad is not None and aug.grad is not None
        assert np.any(r.grad != 0)


class TestInterDomainLoss:
    def test_scalar_and_finite(self, rng):
        reps = {
            d: Tensor(unit_rows(rng.normal(size=(5, 16))))
            for d in ("temporal", "frequency", "residual")
        }
        loss = inter_domain_loss(reps)
        assert np.isfinite(loss.item())

    def test_single_domain_is_zero(self, batch):
        loss = inter_domain_loss({"temporal": Tensor(batch)})
        assert loss.item() == 0.0

    def test_lower_when_domains_disagree(self, rng):
        base = unit_rows(rng.normal(size=(5, 16)))
        same = {
            "temporal": Tensor(base),
            "frequency": Tensor(base.copy()),
        }
        different = {
            "temporal": Tensor(base),
            "frequency": Tensor(unit_rows(-base + 0.1 * rng.normal(size=base.shape))),
        }
        assert inter_domain_loss(different).item() < inter_domain_loss(same).item()


class TestTotalLoss:
    def _reps(self, rng):
        originals = {
            d: Tensor(unit_rows(rng.normal(size=(4, 12))), requires_grad=True)
            for d in ("temporal", "frequency")
        }
        augmented = {
            d: Tensor(unit_rows(rng.normal(size=(4, 12))))
            for d in ("temporal", "frequency")
        }
        return originals, augmented

    def test_alpha_weighting(self, rng):
        originals, augmented = self._reps(rng)
        intra_only = total_contrastive_loss(originals, augmented, alpha=0.0).item()
        inter_only = total_contrastive_loss(originals, augmented, alpha=1.0).item()
        mixed = total_contrastive_loss(originals, augmented, alpha=0.4).item()
        assert mixed == pytest.approx(0.6 * intra_only + 0.4 * inter_only, rel=1e-9)

    def test_ablation_toggles(self, rng):
        originals, augmented = self._reps(rng)
        no_inter = total_contrastive_loss(
            originals, augmented, alpha=0.4, use_inter=False
        ).item()
        full = total_contrastive_loss(originals, augmented, alpha=0.4).item()
        assert no_inter != full

    def test_both_disabled_raises(self, rng):
        originals, augmented = self._reps(rng)
        with pytest.raises(ValueError):
            total_contrastive_loss(
                originals, augmented, use_intra=False, use_inter=False
            )

    def test_gradients_flow_through_total(self, rng):
        originals, augmented = self._reps(rng)
        total_contrastive_loss(originals, augmented).backward()
        for r in originals.values():
            assert r.grad is not None
