"""End-to-end TriAD detector tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro import TriAD, TriADConfig
from repro.metrics import window_hits_event


@pytest.fixture(scope="module")
def fitted():
    """One trained detector shared by read-only tests in this module."""
    from repro.data import DatasetSpec, make_dataset

    spec = DatasetSpec(
        name="det_ds",
        family="ecg",
        period=40,
        train_length=1200,
        test_length=1400,
        anomaly_type="seasonal",
        anomaly_start=700,
        anomaly_length=80,
        noise_level=0.04,
        seed=21,
    )
    dataset = make_dataset(spec)
    config = TriADConfig(depth=2, hidden_dim=16, epochs=3, seed=0, max_window=128)
    detector = TriAD(config).fit(dataset.train)
    return detector, dataset


class TestLifecycle:
    def test_unfitted_raises(self):
        detector = TriAD()
        with pytest.raises(RuntimeError):
            detector.detect(np.zeros(100))
        with pytest.raises(RuntimeError):
            _ = detector.plan

    def test_fit_returns_self(self, noisy_wave):
        config = TriADConfig(depth=1, hidden_dim=4, epochs=1, max_window=64)
        detector = TriAD(config)
        assert detector.fit(noisy_wave) is detector
        assert detector.train_losses


class TestDetection:
    def test_detection_artifacts_complete(self, fitted):
        detector, dataset = fitted
        detection = detector.detect(dataset.test)
        assert detection.predictions.shape == dataset.labels.shape
        assert set(detection.similarity) == set(detector.config.domains)
        assert len(detection.candidate_windows) == 3
        assert detection.window in detection.candidate_windows.values()
        assert 1 <= len(detection.candidate_intervals) <= 3
        lo, hi = detection.search_region
        assert lo <= detection.window[0] and hi >= detection.window[1]

    def test_window_contains_anomaly(self, fitted):
        detector, dataset = fitted
        detection = detector.detect(dataset.test)
        assert window_hits_event(detection.window, dataset.anomaly_interval)

    def test_similarity_dips_at_anomaly(self, fitted):
        detector, dataset = fitted
        detection = detector.detect(dataset.test)
        start, end = dataset.anomaly_interval
        # In at least one domain, the minimum-similarity window overlaps
        # the anomaly.
        hits = 0
        for domain, scores in detection.similarity.items():
            idx = int(np.argmin(scores))
            w_start = int(detection.window_starts[idx])
            window = (w_start, w_start + detection.window_length)
            hits += window_hits_event(window, (start, end))
        assert hits >= 1

    def test_predictions_binary(self, fitted):
        detector, dataset = fitted
        predictions = detector.predict(dataset.test)
        assert set(np.unique(predictions)) <= {0, 1}
        assert predictions.any()

    def test_representations_shapes(self, fitted):
        detector, _ = fitted
        length = detector.plan.length
        windows = np.random.default_rng(0).normal(size=(5, length))
        reps = detector.representations(windows)
        for r in reps.values():
            assert r.shape == (5, length)
            assert np.allclose(np.linalg.norm(r, axis=1), 1.0, atol=1e-8)

    def test_window_similarity_range(self, fitted):
        detector, dataset = fitted
        from repro.signal import sliding_windows

        windows, _ = sliding_windows(dataset.test, detector.plan.length, detector.plan.stride)
        sims = detector.window_similarity(windows)
        for values in sims.values():
            assert np.all(values <= 1.0 + 1e-9) and np.all(values >= -1.0 - 1e-9)


class TestConfiguredBehavior:
    def test_merlin_step_bounds_search(self, fitted):
        detector, dataset = fitted
        region = detector.search_region(len(dataset.test), (500, 600))
        result = detector.run_discord_search(dataset.test, region)
        assert len(result.discords) > 0

    def test_padding_override(self, noisy_wave):
        config = TriADConfig(
            depth=1, hidden_dim=4, epochs=1, max_window=64, merlin_padding=10
        )
        detector = TriAD(config).fit(noisy_wave)
        region = detector.search_region(1000, (500, 550))
        assert region == (490, 560)

    def test_padding_clipped_to_series(self, noisy_wave):
        config = TriADConfig(depth=1, hidden_dim=4, epochs=1, max_window=64)
        detector = TriAD(config).fit(noisy_wave)
        region = detector.search_region(600, (0, 64))
        assert region[0] == 0 and region[1] <= 600
