"""TriAD configuration and tri-domain feature tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TriADConfig, domain_channels, extract_all_domains, extract_domain


class TestConfig:
    def test_paper_defaults(self):
        cfg = TriADConfig()
        assert cfg.depth == 6
        assert cfg.hidden_dim == 32
        assert cfg.alpha == 0.4
        assert cfg.batch_size == 8
        assert cfg.learning_rate == pytest.approx(1e-3)
        assert cfg.epochs == 20
        assert cfg.validation_fraction == pytest.approx(0.1)
        assert cfg.periods_per_window == pytest.approx(2.5)
        assert cfg.stride_fraction == pytest.approx(0.25)

    @pytest.mark.parametrize("alpha", [-0.1, 1.1])
    def test_alpha_bounds(self, alpha):
        with pytest.raises(ValueError):
            TriADConfig(alpha=alpha)

    def test_unknown_domain_rejected(self):
        with pytest.raises(ValueError):
            TriADConfig(domains=("temporal", "spectral"))

    def test_empty_domains_rejected(self):
        with pytest.raises(ValueError):
            TriADConfig(domains=())

    def test_both_losses_disabled_rejected(self):
        with pytest.raises(ValueError):
            TriADConfig(use_intra=False, use_inter=False)

    def test_with_overrides(self):
        cfg = TriADConfig().with_overrides(alpha=0.6, depth=4)
        assert cfg.alpha == 0.6 and cfg.depth == 4
        assert TriADConfig().alpha == 0.4  # original untouched


class TestFeatures:
    def test_channel_counts(self):
        assert domain_channels("temporal") == 1
        assert domain_channels("frequency") == 3
        assert domain_channels("residual") == 1
        with pytest.raises(KeyError):
            domain_channels("bogus")

    def test_temporal_shape_and_normalization(self, rng):
        windows = rng.normal(size=(4, 100)) * 5 + 2
        features = extract_domain(windows, "temporal", 20)
        assert features.shape == (4, 1, 100)
        assert np.allclose(features.mean(axis=-1), 0.0, atol=1e-10)

    def test_frequency_shape(self, rng):
        features = extract_domain(rng.normal(size=(4, 100)), "frequency", 20)
        assert features.shape == (4, 3, 100)

    def test_residual_shape(self, rng):
        features = extract_domain(rng.normal(size=(4, 100)), "residual", 20)
        assert features.shape == (4, 1, 100)

    def test_single_window_promoted(self, rng):
        features = extract_domain(rng.normal(size=80), "temporal", 20)
        assert features.shape == (1, 1, 80)

    def test_extract_all_domains(self, rng):
        windows = rng.normal(size=(2, 60))
        features = extract_all_domains(windows, 15)
        assert set(features) == {"temporal", "frequency", "residual"}
        assert features["frequency"].shape == (2, 3, 60)

    def test_subset_of_domains(self, rng):
        features = extract_all_domains(rng.normal(size=(2, 60)), 15, ("temporal",))
        assert set(features) == {"temporal"}

    def test_unknown_domain_raises(self, rng):
        with pytest.raises(KeyError):
            extract_domain(rng.normal(size=(2, 60)), "spectral", 15)

    def test_residual_highlights_shift(self, sine_wave):
        windows = np.stack([sine_wave[:200], sine_wave[200:400]])
        shifted = windows.copy()
        shifted[1, 100:130] += 3.0
        normal = extract_domain(windows, "residual", 50)
        anomalous = extract_domain(shifted, "residual", 50)
        assert not np.allclose(normal[1], anomalous[1], atol=0.1)
