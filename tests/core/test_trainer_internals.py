"""Deeper tests of training-loop internals and detection reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro import TriAD, TriADConfig
from repro.core.trainer import _batches, _epoch_loss, train_encoder
from repro.core.encoder import TriDomainEncoder


class TestBatches:
    def test_partitions_all_indices(self, rng):
        batches = list(_batches(23, 8, rng))
        seen = np.concatenate(batches)
        assert sorted(seen.tolist()) == list(range(23))

    def test_drops_single_element_remainder(self, rng):
        """A contrastive batch needs >= 2 windows; remainders of 1 drop."""
        batches = list(_batches(9, 4, rng))
        assert [len(b) for b in batches] == [4, 4]

    def test_keeps_two_element_remainder(self, rng):
        batches = list(_batches(10, 4, rng))
        assert sorted(len(b) for b in batches) == [2, 4, 4]

    def test_shuffled(self):
        batches = list(_batches(100, 100, np.random.default_rng(0)))
        assert not np.array_equal(batches[0], np.arange(100))


class TestEpochLoss:
    @pytest.fixture
    def setup(self, rng):
        config = TriADConfig(depth=1, hidden_dim=4, epochs=1, seed=0)
        encoder = TriDomainEncoder(config)
        windows = np.stack(
            [np.sin(2 * np.pi * (np.arange(48) + p) / 16) for p in range(12)]
        ) + 0.05 * rng.standard_normal((12, 48))
        return encoder, windows, config

    def test_eval_pass_does_not_update_weights(self, setup, rng):
        encoder, windows, config = setup
        before = {k: v.copy() for k, v in encoder.state_dict().items()}
        loss = _epoch_loss(encoder, windows, 16, config, rng, optimizer=None)
        assert np.isfinite(loss)
        after = encoder.state_dict()
        for key in before:
            assert np.array_equal(before[key], after[key]), key

    def test_train_pass_updates_weights(self, setup, rng):
        from repro import nn

        encoder, windows, config = setup
        optimizer = nn.Adam(encoder.parameters(), lr=1e-3)
        before = {k: v.copy() for k, v in encoder.state_dict().items()}
        _epoch_loss(encoder, windows, 16, config, rng, optimizer=optimizer)
        after = encoder.state_dict()
        changed = sum(
            not np.array_equal(before[k], after[k]) for k in before
        )
        assert changed > 0

    def test_empty_windows_loss_zero(self, setup, rng):
        encoder, _, config = setup
        loss = _epoch_loss(encoder, np.zeros((1, 48)), 16, config, rng, optimizer=None)
        assert loss == 0.0  # a single window cannot form a batch


class TestValidationTracking:
    def test_best_state_restored(self, noisy_wave):
        """The returned encoder corresponds to the best validation epoch,
        so re-evaluating its val loss is not worse than the recorded
        minimum by more than augmentation randomness allows."""
        config = TriADConfig(depth=1, hidden_dim=4, epochs=4, seed=0, max_window=96)
        result = train_encoder(noisy_wave, config)
        assert len(result.val_losses) == 4
        assert min(result.val_losses) <= result.val_losses[0] + 1e-9


class TestDescribe:
    def test_describe_report(self, noisy_wave):
        config = TriADConfig(depth=1, hidden_dim=4, epochs=1, seed=0, max_window=96)
        detector = TriAD(config).fit(noisy_wave)
        test = noisy_wave.copy()
        test[700:760] += 2.0
        detection = detector.detect(test)
        labels = np.zeros(len(test), dtype=int)
        labels[700:760] = 1
        report = detection.describe(labels)
        assert "TriAD detection report" in report
        assert "ground truth" in report
        assert "temporal" in report
