"""Voting and discord-fail exception tests (Eq. 8, Sec. IV-G)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import accumulate_votes, score_votes, threshold_votes
from repro.discord.brute import Discord
from repro.discord.merlin import MerlinResult


def merlin_result(*discords: tuple[int, int]) -> MerlinResult:
    """Build a MerlinResult from (index, length) pairs."""
    return MerlinResult(
        discords=[Discord(index=i, length=l, distance=1.0) for i, l in discords]
    )


class TestAccumulateVotes:
    def test_window_vote(self):
        votes = accumulate_votes(100, (20, 40), merlin_result(), search_offset=0)
        assert votes[20:40].sum() == 20
        assert votes[:20].sum() == 0

    def test_discord_votes_stack(self):
        result = merlin_result((5, 10), (8, 10))
        votes = accumulate_votes(100, (0, 1), result, search_offset=0)
        assert votes[9] == 2.0  # covered by both discords
        assert votes[5] == 1.0

    def test_search_offset_applied(self):
        result = merlin_result((0, 10))
        votes = accumulate_votes(100, (90, 95), result, search_offset=50)
        assert votes[50:60].sum() == 10

    def test_clipping_at_boundaries(self):
        result = merlin_result((95, 20))
        votes = accumulate_votes(100, (0, 1), result, search_offset=0)
        assert votes[95:].sum() == 5  # clipped at the series end


class TestThresholdVotes:
    def test_mean_of_voted(self):
        votes = np.array([0, 0, 1, 1, 3, 0])
        assert threshold_votes(votes) == pytest.approx(5 / 3)

    def test_percentile_mode(self):
        votes = np.array([0.0, 1, 2, 3, 4, 5])
        assert threshold_votes(votes, percentile=90) > threshold_votes(votes, percentile=10)

    def test_no_votes(self):
        assert threshold_votes(np.zeros(5)) == 0.0


class TestScoreVotes:
    def test_high_vote_region_predicted(self):
        # Discords pile up on [30, 40); window covers [25, 45).
        result = merlin_result((30, 10), (31, 10), (32, 8))
        out = score_votes(100, (25, 45), result, search_offset=0)
        assert not out.exception_applied
        assert out.predictions[33:38].all()
        assert out.predictions[:25].sum() == 0

    def test_exception_fires_when_discords_outside_window(self):
        """All discord mass on the padding -> predict the whole window."""
        result = merlin_result((0, 10), (2, 10))
        out = score_votes(100, (50, 70), result, search_offset=0)
        assert out.exception_applied
        assert out.predictions[50:70].all()
        assert out.predictions.sum() == 20

    def test_exception_respects_fraction(self):
        # Half the mass inside: no exception at the 5% default.
        result = merlin_result((55, 10), (0, 10))
        out = score_votes(100, (50, 70), result, search_offset=0)
        assert not out.exception_applied

    def test_no_discords_no_exception_window_predicted(self):
        out = score_votes(100, (50, 70), merlin_result(), search_offset=0)
        assert not out.exception_applied
        assert out.predictions.any()

    def test_predictions_never_empty(self):
        result = merlin_result((10, 5))
        out = score_votes(100, (50, 70), result, search_offset=0)
        assert out.predictions.any()
