"""Tri-domain encoder tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.core import TriADConfig, TriDomainEncoder
from repro.core.encoder import DilatedConvEncoder, ResidualBlock


@pytest.fixture
def small_config():
    return TriADConfig(depth=2, hidden_dim=8, seed=0)


class TestResidualBlock:
    def test_preserves_length(self, rng):
        block = ResidualBlock(1, 8, 3, dilation=4, rng=rng)
        out = block(nn.Tensor(rng.normal(size=(2, 1, 50))))
        assert out.shape == (2, 8, 50)

    def test_skip_identity_when_channels_match(self, rng):
        block = ResidualBlock(8, 8, 3, dilation=1, rng=rng)
        assert isinstance(block.skip, nn.Identity)

    def test_skip_projection_when_channels_differ(self, rng):
        block = ResidualBlock(1, 8, 3, dilation=1, rng=rng)
        assert isinstance(block.skip, nn.Conv1d)


class TestDilatedConvEncoder:
    def test_output_shape(self, small_config, rng):
        encoder = DilatedConvEncoder(3, small_config, rng)
        out = encoder(nn.Tensor(rng.normal(size=(4, 3, 64))))
        assert out.shape == (4, small_config.hidden_dim, 64)

    def test_dilations_double(self, small_config, rng):
        config = small_config.with_overrides(depth=4)
        encoder = DilatedConvEncoder(1, config, rng)
        dilations = [block.conv1.dilation for block in encoder.blocks]
        assert dilations == [1, 2, 4, 8]


class TestTriDomainEncoder:
    def test_all_domains_present(self, small_config):
        encoder = TriDomainEncoder(small_config)
        for domain in small_config.domains:
            assert hasattr(encoder, f"encoder_{domain}")

    def test_representations_unit_norm(self, small_config, rng):
        encoder = TriDomainEncoder(small_config)
        features = {
            "temporal": rng.normal(size=(3, 1, 40)),
            "frequency": rng.normal(size=(3, 3, 40)),
            "residual": rng.normal(size=(3, 1, 40)),
        }
        reps = encoder(features)
        for domain, r in reps.items():
            assert r.shape == (3, 40)
            norms = np.linalg.norm(r.data, axis=1)
            assert np.allclose(norms, 1.0, atol=1e-8), domain

    def test_domains_produce_distinct_outputs(self, small_config, rng):
        encoder = TriDomainEncoder(small_config)
        same = rng.normal(size=(2, 1, 30))
        r_t = encoder.encode(same, "temporal")
        r_r = encoder.encode(same, "residual")
        assert not np.allclose(r_t.data, r_r.data)

    def test_ablated_domain_rejected(self):
        config = TriADConfig(depth=2, hidden_dim=8, domains=("temporal", "frequency"))
        encoder = TriDomainEncoder(config)
        with pytest.raises(KeyError):
            encoder.encode(np.zeros((1, 1, 20)), "residual")

    def test_dense_head_shared_across_domains(self, small_config):
        encoder = TriDomainEncoder(small_config)
        names = [name for name, _ in encoder.named_parameters()]
        dense_names = [n for n in names if n.startswith("dense")]
        # Exactly one shared pair of dense layers, not one per domain.
        assert len(dense_names) == 4  # 2 layers x (weight, bias)

    def test_deterministic_given_seed(self, small_config, rng):
        features = {"temporal": rng.normal(size=(2, 1, 30))}
        config = small_config.with_overrides(domains=("temporal",))
        a = TriDomainEncoder(config).encode(features["temporal"], "temporal")
        b = TriDomainEncoder(config).encode(features["temporal"], "temporal")
        assert np.allclose(a.data, b.data)

    def test_state_dict_roundtrip(self, small_config, rng):
        a = TriDomainEncoder(small_config)
        b = TriDomainEncoder(small_config.with_overrides(seed=99))
        b.load_state_dict(a.state_dict())
        x = rng.normal(size=(1, 1, 25))
        assert np.allclose(
            a.encode(x, "temporal").data, b.encode(x, "temporal").data
        )
