"""Unit tests for the metric primitives and registry."""

from __future__ import annotations

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_increment(self):
        c = Counter("x")
        c.increment()
        c.increment(2.5)
        assert c.value == 3.5

    def test_record(self):
        c = Counter("x")
        c.increment(4)
        assert c.record() == {"type": "counter", "name": "x", "value": 4.0}


class TestGauge:
    def test_last_value_wins(self):
        g = Gauge("lr")
        g.set(0.1)
        g.set(0.05)
        assert g.value == 0.05
        assert g.updates == 2

    def test_unset_records_none(self):
        assert Gauge("lr").record()["value"] is None


class TestHistogram:
    def test_exact_aggregates(self):
        h = Histogram("d")
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        assert h.count == 4
        assert h.sum == 10.0
        assert h.min == 1.0
        assert h.max == 4.0
        assert h.mean == 2.5

    def test_reservoir_is_bounded(self):
        h = Histogram("d", reservoir_size=16)
        for v in range(10_000):
            h.observe(float(v))
        assert len(h._reservoir) == 16
        assert h.count == 10_000
        # Exact aggregates survive reservoir replacement.
        assert h.min == 0.0
        assert h.max == 9999.0

    def test_quantiles_reasonable_under_sampling(self):
        h = Histogram("d", reservoir_size=256)
        for v in range(10_000):
            h.observe(float(v))
        assert 2500 < h.quantile(0.5) < 7500
        assert h.quantile(0.0) <= h.quantile(0.5) <= h.quantile(1.0)

    def test_quantile_validates(self):
        h = Histogram("d")
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_deterministic_reservoir(self):
        def fill():
            h = Histogram("same-name", reservoir_size=8)
            for v in range(1000):
                h.observe(float(v))
            return list(h._reservoir)

        assert fill() == fill()

    def test_empty_record_has_no_min_max(self):
        record = Histogram("d").record()
        assert record["min"] is None and record["max"] is None
        assert record["count"] == 0

    def test_bad_reservoir_size(self):
        with pytest.raises(ValueError):
            Histogram("d", reservoir_size=0)


class TestRegistry:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_records_sorted_and_typed(self):
        reg = MetricsRegistry()
        reg.counter("z").increment()
        reg.counter("a").increment()
        reg.gauge("g").set(1)
        reg.histogram("h").observe(2)
        records = reg.records()
        assert [r["name"] for r in records] == ["a", "z", "g", "h"]
        assert [r["type"] for r in records] == [
            "counter", "counter", "gauge", "histogram",
        ]
