"""Integration tests: the hot paths actually record into a session."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.core.config import TriADConfig
from repro.core.trainer import train_encoder
from repro.data import make_archive
from repro.discord.merlin import merlin
from repro.eval import run_on_archive
from repro.eval.persistence import SweepCheckpoint
from repro.runtime import RetryPolicy


@pytest.fixture(autouse=True)
def _no_leaked_session():
    assert obs.active() is None
    yield
    obs.uninstall()


class _TinyDetector:
    """Constant predictor for fast runner tests."""

    def fit(self, train_series):
        return self

    def predict(self, test_series):
        return np.zeros(len(test_series), dtype=np.int64)


class _FailingDetector:
    def fit(self, train_series):
        raise RuntimeError("synthetic fit failure")

    def predict(self, test_series):  # pragma: no cover - fit always raises
        return np.zeros(len(test_series), dtype=np.int64)


def _tiny_archive(size=1):
    return make_archive(size=size, seed=7, train_length=400, test_length=500)


class TestTrainerInstrumentation:
    def test_epoch_events_and_spans(self, noisy_wave):
        config = TriADConfig(epochs=2, seed=0, max_window=128)
        with obs.observed(trace=True) as session:
            result = train_encoder(noisy_wave, config)
        assert not result.diverged
        epoch_events = [e for e in session.events if e["name"] == "trainer.epoch"]
        assert len(epoch_events) == 2
        for event in epoch_events:
            assert np.isfinite(event["attrs"]["train_loss"])
            assert event["attrs"]["lr"] == config.learning_rate
        assert session.metrics.histograms["trainer.epoch"].count == 2
        assert session.metrics.histograms["trainer.grad_norm"].count == 2
        assert session.metrics.gauges["trainer.lr"].value == config.learning_rate
        names = {s.name for s in session.tracer.spans}
        assert {"trainer.train_encoder", "trainer.epoch"} <= names

    def test_rollback_event_on_divergence(self, monkeypatch, noisy_wave):
        import repro.core.trainer as trainer_module

        # Force every epoch loss to NaN so the guard fires immediately.
        monkeypatch.setattr(
            trainer_module, "_epoch_loss",
            lambda *args, **kwargs: float("nan"),
        )
        config = TriADConfig(epochs=4, seed=0, max_window=128)
        with obs.observed() as session:
            result = train_encoder(noisy_wave, config)
        assert result.rollbacks > 0
        assert session.metrics.counters["trainer.rollbacks"].value == result.rollbacks
        rollback_events = [
            e for e in session.events if e["name"] == "trainer.rollback"
        ]
        assert len(rollback_events) == result.rollbacks
        if result.diverged:
            assert session.metrics.counters["trainer.divergence_aborts"].value == 1
            assert any(
                e["name"] == "trainer.divergence_abort" for e in session.events
            )


class TestRunnerInstrumentation:
    def test_unit_spans_and_counters(self):
        archive = _tiny_archive(size=2)
        with obs.observed(trace=True) as session:
            run_on_archive("tiny", lambda s: _TinyDetector(), archive, seeds=(0, 1))
        assert session.metrics.counters["eval.units"].value == 4
        assert session.metrics.histograms["eval.unit"].count == 4
        unit_spans = [s for s in session.tracer.spans if s.name == "eval.unit"]
        assert len(unit_spans) == 4
        assert all(s.attrs["outcome"] == "result" for s in unit_spans)
        assert {s.attrs["dataset"] for s in unit_spans} == {
            ds.name for ds in archive
        }

    def test_failure_stage_counters(self):
        archive = _tiny_archive()
        policy = RetryPolicy(max_retries=1)
        with obs.observed() as session:
            agg = run_on_archive(
                "failing", lambda s: _FailingDetector(), archive, seeds=(0,),
                policy=policy,
            )
        assert len(agg.failures) == 1
        assert session.metrics.counters["eval.failures"].value == 1
        assert session.metrics.counters["eval.failures.stage.fit"].value == 1
        # One retry happened before the unit was declared failed.
        assert session.metrics.counters["eval.retries"].value == 1

    def test_checkpoint_splice_hits(self, tmp_path):
        archive = _tiny_archive(size=2)
        checkpoint = SweepCheckpoint(tmp_path / "journal.jsonl")
        run_on_archive("tiny", lambda s: _TinyDetector(), archive, seeds=(0,),
                       checkpoint=checkpoint)
        with obs.observed() as session:
            run_on_archive("tiny", lambda s: _TinyDetector(), archive, seeds=(0,),
                           checkpoint=checkpoint)
        assert session.metrics.counters["eval.checkpoint.splice_hits"].value == 2
        assert "eval.units" not in session.metrics.counters


class TestDiscordInstrumentation:
    def test_merlin_counters_and_span(self, sine_wave):
        with obs.observed(trace=True) as session:
            result = merlin(sine_wave[:400], 16, 24, step=4)
        assert result.drag_calls > 0
        assert (
            session.metrics.counters["discord.drag_calls"].value
            == result.drag_calls
        )
        assert session.metrics.histograms["discord.merlin"].count == 1
        assert session.metrics.histograms["discord.drag.candidates"].count > 0
        assert session.metrics.histograms["discord.drag.prune_rate"].count > 0
        (span,) = [s for s in session.tracer.spans if s.name == "discord.merlin"]
        assert span.attrs["discords"] == len(result.discords)
        assert span.attrs["drag_calls"] == result.drag_calls

    def test_brute_force_fallback_counter(self):
        # A wide exclusion zone forces DRAG to fail and the brute-force
        # fallback (which itself fails) to be recorded.
        rng = np.random.default_rng(0)
        series = rng.standard_normal(20)
        with obs.observed() as session:
            merlin(series, 7, 8, exclusion_factor=2.0)
        assert session.metrics.counters["discord.brute_force_fallbacks"].value > 0
        assert session.metrics.counters["discord.skipped_lengths"].value > 0


class TestNnHooks:
    def test_forward_and_backward_histograms(self):
        from repro import nn
        from repro.nn import hooks

        with obs.observed() as session:
            obs.instrument_nn()
            try:
                layer = nn.Linear(4, 3, rng=np.random.default_rng(0))
                out = layer(nn.Tensor(np.ones((2, 4)), requires_grad=True))
                out.sum().backward()
            finally:
                obs.uninstrument_nn()
        assert hooks.get_timing_hook() is None
        assert session.metrics.histograms["nn.forward.Linear"].count == 1
        assert session.metrics.histograms["nn.backward.graph"].count == 1

    def test_hook_inactive_without_session(self):
        from repro import nn

        obs.instrument_nn()
        try:
            layer = nn.Linear(2, 2, rng=np.random.default_rng(0))
            layer(nn.Tensor(np.ones((1, 2))))  # must not raise
        finally:
            obs.uninstrument_nn()


class TestCliIntegration:
    def test_compare_exports_and_profile_renders(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "metrics.jsonl"
        code = main([
            "compare", "--size", "1", "--epochs", "1",
            "--detectors", "one-liner",
            "--metrics-out", str(out), "--trace",
        ])
        assert code == 0
        assert out.exists()
        assert obs.active() is None  # session cleaned up
        capsys.readouterr()
        assert main(["profile", str(out)]) == 0
        text = capsys.readouterr().out
        assert "eval.unit" in text
        assert "timed sections" in text

    def test_trace_requires_metrics_out(self, capsys):
        from repro.cli import main

        assert main(["compare", "--size", "1", "--detectors", "one-liner",
                     "--trace"]) == 2
        assert "--metrics-out" in capsys.readouterr().err

    def test_profile_missing_file(self, capsys):
        from repro.cli import main

        assert main(["profile", "/nonexistent/metrics.jsonl"]) == 2
