"""Sessions, the no-op facade, tracing, export, and profile rendering."""

from __future__ import annotations

import json

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _no_leaked_session():
    """Every test must start and end with observability off."""
    assert obs.active() is None
    yield
    obs.uninstall()


class TestFacadeDisabled:
    def test_all_calls_are_noops(self):
        obs.incr("c")
        obs.gauge("g", 1.0)
        obs.observe("h", 2.0)
        obs.event("e", detail=1)
        with obs.span("s") as span:
            span.set(attr=1)
        with obs.timer("t"):
            pass
        assert obs.active() is None
        assert obs.export_jsonl("/nonexistent/never-written.jsonl") == 0

    def test_span_returns_shared_noop(self):
        assert obs.span("a") is obs.span("b")


class TestSessionLifecycle:
    def test_install_uninstall(self):
        session = obs.install()
        assert obs.active() is session
        assert obs.enabled()
        assert obs.uninstall() is session
        assert obs.active() is None

    def test_observed_restores_previous(self):
        outer = obs.install()
        with obs.observed() as inner:
            assert obs.active() is inner
            assert inner is not outer
        assert obs.active() is outer

    def test_facade_routes_to_active_session(self):
        with obs.observed() as session:
            obs.incr("calls", 3)
            obs.gauge("lr", 0.01)
            obs.observe("sizes", 5)
            obs.event("boom", stage="fit")
        assert session.metrics.counters["calls"].value == 3
        assert session.metrics.gauges["lr"].value == 0.01
        assert session.metrics.histograms["sizes"].count == 1
        assert session.events[0]["name"] == "boom"
        assert session.events[0]["attrs"] == {"stage": "fit"}


class TestSpans:
    def test_span_records_duration_histogram(self):
        with obs.observed() as session:
            with obs.span("work"):
                pass
        hist = session.metrics.histograms["work"]
        assert hist.count == 1
        assert hist.unit == "s"

    def test_untraced_session_records_no_spans(self):
        with obs.observed(trace=False) as session:
            with obs.span("work"):
                pass
        assert session.tracer is None

    def test_traced_nesting_and_attrs(self):
        with obs.observed(trace=True) as session:
            with obs.span("outer", a=1) as outer:
                with obs.span("inner"):
                    pass
                outer.set(b=2)
        spans = {s.name: s for s in session.tracer.spans}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["inner"].depth == 1
        assert spans["outer"].attrs == {"a": 1, "b": 2}
        assert spans["outer"].duration >= spans["inner"].duration >= 0

    def test_exception_marks_span_error(self):
        with obs.observed(trace=True) as session:
            with pytest.raises(RuntimeError):
                with obs.span("doomed"):
                    raise RuntimeError("boom")
        (span,) = session.tracer.spans
        assert span.status == "error"
        assert span.end is not None


class TestExport:
    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        with obs.observed(trace=True) as session:
            obs.incr("n", 2)
            with obs.span("phase"):
                obs.observe("v", 1.5)
            obs.event("done")
            count = session.export_jsonl(path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == count
        records = [json.loads(line) for line in lines]
        assert records[0]["type"] == "meta"
        types = {r["type"] for r in records}
        assert {"counter", "histogram", "span", "event"} <= types

    def test_export_via_facade(self, tmp_path):
        path = tmp_path / "m.jsonl"
        obs.install()
        obs.incr("x")
        assert obs.export_jsonl(path) > 0
        obs.uninstall()
        assert path.exists()

    def test_load_records_skips_corrupt_lines(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text(
            '{"type": "counter", "name": "ok", "value": 1}\n'
            "{torn-write\n"
            "\n"
            '["not-a-dict"]\n'
        )
        records = obs.load_records(path)
        assert len(records) == 1
        assert records[0]["name"] == "ok"


class TestProfileRendering:
    def _export(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        with obs.observed(trace=True) as session:
            obs.incr("discord.drag_calls", 12)
            obs.gauge("trainer.lr", 0.001)
            obs.observe("discord.drag.candidates", 40)
            with obs.span("eval.unit", dataset="d0"):
                with obs.span("trainer.train_encoder"):
                    pass
            obs.event("trainer.rollback", epoch=3)
            session.export_jsonl(path)
        return path

    def test_render_contains_all_sections(self, tmp_path):
        text = obs.render_profile(obs.load_records(self._export(tmp_path)))
        assert "timed sections" in text
        assert "counters & gauges" in text
        assert "value histograms" in text
        assert "trace" in text
        assert "events" in text
        assert "discord.drag_calls" in text
        assert "trainer.train_encoder" in text
        assert "trainer.rollback" in text

    def test_trace_tree_is_indented(self, tmp_path):
        text = obs.render_profile(obs.load_records(self._export(tmp_path)))
        assert "\n  trainer.train_encoder" in text

    def test_empty_records(self):
        assert "no records" in obs.render_profile([])

    def test_top_limits_rows(self, tmp_path):
        path = tmp_path / "m.jsonl"
        with obs.observed() as session:
            for i in range(30):
                obs.incr(f"counter.{i:02d}")
            session.export_jsonl(path)
        text = obs.render_profile(obs.load_records(path), top=5)
        rows = [line for line in text.splitlines() if line.startswith("counter.")]
        assert len(rows) == 5
