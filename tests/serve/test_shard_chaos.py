"""Chaos drills for the shard fabric: ``kill -9`` a worker mid-run and
prove recovery is exact for every store backend."""

from __future__ import annotations

import os
import signal

import pytest

from repro.serve.shard import ShardRouter, WorkerDiedError
from repro.serve.stores import FileBackedStore, InMemoryStore, SharedMemoryStore
from repro.serve.supervisor import ShardSupervisor

from .test_shard import make_feed, make_spec, run_rounds, run_unsharded


def make_store(kind: str, tmp_path):
    if kind == "memory":
        return InMemoryStore()
    if kind == "file":
        return FileBackedStore(tmp_path / "store")
    return SharedMemoryStore(f"repro-chaos-{os.getpid()}")


def kill_worker(router: ShardRouter, name: str) -> None:
    os.kill(router.worker_pid(name), signal.SIGKILL)
    # SIGKILL is asynchronous; wait until the process is truly gone so
    # the next submit observes the death rather than racing it.
    router._workers[name].process.join(timeout=5.0)


@pytest.mark.parametrize("backend", ["memory", "file", "shm"])
def test_kill_nine_recovery_is_bit_identical(backend, tmp_path):
    spec = make_spec()
    feed = make_feed()
    want_records, want_alerts = run_unsharded(spec, feed)
    store = make_store(backend, tmp_path)
    hooks = {4: lambda router: kill_worker(router, router.workers[0])}
    with ShardRouter(spec, workers=3, store=store) as router:
        got_records, got_alerts = run_rounds(router, feed, hooks=hooks)
        assert router.respawns == 1
        # zero lost acknowledged streams: every stream the router ever
        # acked is still in the store and still routable
        assert store.stream_ids() == sorted(feed)
        assert router.known_streams == sorted(feed)
    assert got_records == want_records and len(want_records) > 0
    assert got_alerts == want_alerts and len(want_alerts) > 0


def test_kill_every_worker_once_still_recovers_exactly():
    spec = make_spec()
    feed = make_feed(streams=4)
    want_records, want_alerts = run_unsharded(spec, feed)
    hooks = {
        2: lambda router: kill_worker(router, "w0"),
        4: lambda router: kill_worker(router, "w1"),
    }
    with ShardRouter(spec, workers=2, store=InMemoryStore()) as router:
        got_records, got_alerts = run_rounds(router, feed, hooks=hooks)
        assert router.respawns == 2
    assert got_records == want_records
    assert got_alerts == want_alerts


def test_auto_heal_off_surfaces_worker_died():
    spec = make_spec(record_scores=False)
    feed = make_feed(streams=3, length=96)
    with ShardRouter(
        spec, workers=2, store=InMemoryStore(), auto_heal=False
    ) as router:
        run_rounds(router, feed, chunk=48)
        victim = router.workers[0]
        kill_worker(router, victim)
        items = [(sid, series[:16]) for sid, series in feed.items()]
        with pytest.raises(WorkerDiedError) as caught:
            router.submit(items)
        assert caught.value.worker == victim
        # manual heal path: the drill recovers on demand
        router.heal_worker(victim)
        router.submit(items)


class TestSupervisor:
    def test_check_heals_an_idle_death(self):
        spec = make_spec(record_scores=False)
        feed = make_feed(streams=3, length=96)
        with ShardSupervisor(spec, workers=2, store=InMemoryStore()) as sup:
            run_rounds(sup.router, feed, chunk=48)
            sup.kill_worker("w0")
            healed = sup.check()
            assert healed == ["w0"]
            assert sup.heals == 1
            assert sup.check() == []  # nothing left to heal
            report = sup.report()
            assert report["heals"] == 1 and report["respawns"] == 1

    def test_submit_checks_before_routing(self):
        spec = make_spec()
        feed = make_feed(streams=4)
        want_records, want_alerts = run_unsharded(spec, feed)
        alerts, records = [], []
        with ShardSupervisor(spec, workers=2, store=InMemoryStore()) as sup:
            length = max(len(series) for series in feed.values())
            for round_index, position in enumerate(range(0, length, 64)):
                if round_index == 3:
                    sup.kill_worker("w1")  # dies while idle
                items = [
                    (sid, series[position : position + 64])
                    for sid, series in feed.items()
                ]
                alerts.extend(sup.submit(items))
                records.extend(sup.router.last_records)
            assert sup.heals == 1
        assert sorted(records) == want_records
        assert sorted(
            (a.stream_id, a.index, a.score) for a in alerts
        ) == want_alerts

    def test_scale_to_grows_and_shrinks(self):
        spec = make_spec(record_scores=False)
        feed = make_feed(streams=6, length=96)
        with ShardSupervisor(spec, workers=2, store=InMemoryStore()) as sup:
            run_rounds(sup.router, feed, chunk=48)
            grown = sup.scale_to(4)
            assert grown["workers"] == ["w0", "w1", "w2", "w3"]
            assert grown["was"] == ["w0", "w1"]
            assert set(grown["moved"]) == {"+w2", "+w3"}
            shrunk = sup.scale_to(3)
            assert shrunk["workers"] == ["w0", "w1", "w2"]
            assert set(shrunk["moved"]) == {"-w3"}
            run_rounds(sup.router, feed, chunk=48)
