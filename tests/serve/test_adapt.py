"""Tests for the self-healing adaptive serving loop (``serve.adapt``).

The two drill tests at the bottom are the PR's acceptance criteria: a
level shift mid-replay must drive drift detection, a guarded background
retrain, shadow evaluation, and an auto-promotion that restores alert
precision — with zero operator input; and a NaN-poisoned retrain must
be rejected by the guardrails while the incumbent keeps serving.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data.spec import Dataset
from repro.serve import (
    AdaptConfig,
    AdaptationDecision,
    AdaptationJournal,
    AdaptiveController,
    DriftMonitor,
    LevelShift,
    MomentShiftScorer,
    ScoreShiftMonitor,
    build_engine,
    build_registry,
    moment_trainer,
    nan_poisoned,
    replay_dataset,
    shadow_evaluate,
)
from repro.serve.registry import ModelRegistry, WindowScorer


class ArrayScorer(WindowScorer):
    """Scores every window with a fixed per-call value; optional calibration."""

    def __init__(self, name="fixed", value=0.0, calibration=None, nan=False):
        self.name = name
        self.value = value
        self.nan = nan
        self._calibration = calibration

    def score_windows(self, windows, batch):
        scores = np.full(len(windows), float(self.value))
        if self.nan:
            scores[:] = np.nan
        return scores

    def calibration_scores(self, length, stride):
        return self._calibration


class TestMomentShiftScorer:
    def test_shifted_windows_score_higher(self, rng):
        series = rng.normal(size=512) * 0.2
        scorer = MomentShiftScorer(series)
        normal = np.stack([series[i : i + 32] for i in range(0, 128, 32)])
        shifted = normal + 5.0
        assert scorer.score_windows(shifted, None).min() > (
            scorer.score_windows(normal, None).max()
        )

    def test_calibration_matches_live_scale(self, rng):
        series = rng.normal(size=512) * 0.2
        scorer = MomentShiftScorer(series)
        calibration = scorer.calibration_scores(32, 8)
        assert calibration is not None
        live = scorer.score_windows(
            np.stack([series[i : i + 32] for i in range(0, 64, 8)]), None
        )
        assert live.max() < calibration.mean() + 6 * calibration.std()

    def test_calibration_none_when_series_too_short(self, rng):
        scorer = MomentShiftScorer(rng.normal(size=16))
        assert scorer.calibration_scores(32, 8) is None


class TestShadowEvaluate:
    def make_holdout(self, rng, level=0.0, n=200):
        return rng.normal(size=n) * 0.2 + level

    def test_label_free_promotes_calm_candidate(self, rng):
        old = self.make_holdout(rng, level=0.0, n=400)
        new = self.make_holdout(rng, level=5.0, n=400)
        report = shadow_evaluate(
            incumbent=MomentShiftScorer(old),
            candidate=MomentShiftScorer(new),
            holdout=new[:200],
            window_length=32,
            stride=8,
        )
        assert report.mode == "label-free"
        assert report.promote
        assert report.candidate["alert_rate"] <= report.incumbent["alert_rate"]

    def test_label_free_rejects_noisy_candidate(self, rng):
        old = self.make_holdout(rng, level=0.0, n=400)
        new = self.make_holdout(rng, level=5.0, n=400)
        report = shadow_evaluate(
            incumbent=MomentShiftScorer(old),
            candidate=MomentShiftScorer(old),
            holdout=new[:200],
            window_length=32,
            stride=8,
        )
        assert report.mode == "label-free"
        assert not report.promote

    def test_guard_mode_on_non_finite_candidate(self, rng):
        holdout = self.make_holdout(rng)
        report = shadow_evaluate(
            incumbent=ArrayScorer(value=0.0),
            candidate=ArrayScorer(nan=True),
            holdout=holdout,
            window_length=32,
            stride=8,
        )
        assert report.mode == "guard"
        assert not report.promote
        assert "non-finite" in report.reason

    def labeled_setup(self, rng):
        holdout = self.make_holdout(rng, n=256)
        holdout[128:144] += 6.0
        labels = np.zeros(256, dtype=np.int64)
        labels[128:144] = 1
        reference = self.make_holdout(rng, n=512)
        return holdout, labels, reference

    def test_labeled_promotes_matching_candidate(self, rng):
        holdout, labels, reference = self.labeled_setup(rng)
        report = shadow_evaluate(
            incumbent=MomentShiftScorer(reference),
            candidate=MomentShiftScorer(reference),
            holdout=holdout,
            window_length=32,
            stride=8,
            labels=labels,
        )
        assert report.mode == "labeled"
        assert report.promote
        assert report.incumbent["pa_k_f1_auc"] > 0

    def test_labeled_rejects_blind_candidate(self, rng):
        holdout, labels, reference = self.labeled_setup(rng)
        report = shadow_evaluate(
            incumbent=MomentShiftScorer(reference),
            # Constant scores never cross any threshold: the candidate
            # is blind to the labelled event the incumbent catches.
            candidate=ArrayScorer(value=0.0),
            holdout=holdout,
            window_length=32,
            stride=8,
            labels=labels,
        )
        assert report.mode == "labeled"
        assert not report.promote
        assert "regresses" in report.reason

    def test_firehose_incumbent_bypasses_labeled_gate(self, rng):
        # An incumbent in a false-alarm storm earns PA%K/affiliation F1
        # from recall alone; comparing against it would be vacuous, so
        # the gate must fall back to the alert-rate criterion.
        holdout, labels, reference = self.labeled_setup(rng)
        firehose = ArrayScorer(
            value=100.0, calibration=np.zeros(64)  # alerts on everything
        )
        report = shadow_evaluate(
            incumbent=firehose,
            candidate=MomentShiftScorer(reference),
            holdout=holdout,
            window_length=32,
            stride=8,
            labels=labels,
        )
        assert report.mode == "label-free"
        assert report.promote


class TestJournal:
    def make_decision(self, action="promoted", at_index=100):
        return AdaptationDecision(
            stream_id="s", at_index=at_index, action=action, reason="because"
        )

    def test_appends_one_json_line_per_decision(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = AdaptationJournal(path)
        journal.record(self.make_decision("promoted", 100))
        journal.record(self.make_decision("rejected", 200))
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        entries = [json.loads(line) for line in lines]
        assert [e["action"] for e in entries] == ["promoted", "rejected"]
        assert journal.entries == entries

    def test_in_memory_without_path(self):
        journal = AdaptationJournal()
        journal.record(self.make_decision())
        assert len(journal.entries) == 1


def make_adaptive(
    trainer,
    primary=None,
    config=None,
    monitor=None,
    rng=None,
    **engine_overrides,
):
    """A small engine + controller on a moment-shift primary."""
    train = rng.normal(size=512) * 0.2
    primary = primary or MomentShiftScorer(train)
    registry = ModelRegistry()
    registry.register(primary)
    monitor = monitor or ScoreShiftMonitor(
        reference_size=8, recent_size=4, threshold_sigma=3.0, cooldown=16
    )
    engine = build_engine(
        registry,
        window_length=32,
        stride=8,
        drift=DriftMonitor(score_monitor=monitor),
        max_batch=8,
        score_baseline=4096,
        **engine_overrides,
    )
    controller = AdaptiveController(engine, trainer, config=config)
    return controller, engine, registry, train


class TestControllerGuardrails:
    def test_requires_drift_monitor(self, rng):
        registry = ModelRegistry()
        registry.register(MomentShiftScorer(rng.normal(size=256)))
        engine = build_engine(registry, window_length=32, stride=8, monitor_drift=False)
        with pytest.raises(ValueError, match="drift monitor"):
            AdaptiveController(engine, moment_trainer())

    def test_failed_retrains_back_off_exponentially(self, rng):
        def exploding(history, seed):
            raise RuntimeError("fit blew up")

        config = AdaptConfig(
            history_points=64,
            min_history=8,
            settle_points=0,
            cooldown_points=16,
            backoff_factor=2.0,
            max_retries=0,
            budget_seconds=None,
        )
        controller, engine, _, train = make_adaptive(exploding, config=config, rng=rng)
        feed = np.concatenate([train[:128], rng.normal(size=600) * 0.2 + 5.0])
        for value in feed:
            controller.ingest("s", float(value))
        controller.drain()

        failed = [d for d in controller.decisions if d.action == "failed"]
        assert len(failed) >= 2, "expected repeated guarded failures"
        assert all("blew up" in d.reason for d in failed)
        gaps = np.diff([d.at_index for d in failed])
        # cooldown_points * backoff^k: every retry waits strictly longer.
        assert (gaps >= 32).all()
        assert (np.diff(gaps) > 0).all()
        # A failed retrain never takes down serving.
        assert engine.stats.windows_scored > 0
        assert engine.registry.describe()[0]["tripped"] is False

    def test_settle_delays_retrain_until_history_renews(self, rng):
        promoted_at = []

        def trainer(history, seed):
            return MomentShiftScorer(history)

        config = AdaptConfig(
            history_points=64,
            min_history=8,
            settle_points=200,
            cooldown_points=16,
            budget_seconds=None,
        )
        controller, engine, _, train = make_adaptive(trainer, config=config, rng=rng)
        feed = np.concatenate([train[:128], rng.normal(size=600) * 0.2 + 5.0])
        for value in feed:
            controller.ingest("s", float(value))
        controller.drain()
        trigger_index = engine.drift.signals[0].at_index
        for decision in controller.decisions:
            assert decision.at_index >= trigger_index + 200


class TestProbationRollback:
    class TwoFaced(WindowScorer):
        """Calm during shadow evaluation, pathological once serving."""

        def __init__(self, shadow_calls):
            self.name = "two-faced"
            self.shadow_calls = shadow_calls
            self.calls = 0

        def score_windows(self, windows, batch):
            self.calls += 1
            value = 0.0 if self.calls <= self.shadow_calls else 100.0
            return np.full(len(windows), value)

        def calibration_scores(self, length, stride):
            return np.zeros(64)

    def test_pathological_promotion_is_rolled_back(self, rng):
        def trainer(history, seed):
            # Shadow evaluation scores the candidate once (one
            # score_series call batches all holdout windows).
            return self.TwoFaced(shadow_calls=1)

        config = AdaptConfig(
            history_points=64,
            min_history=8,
            settle_points=0,
            cooldown_points=16,
            probation_points=400,
            probation_alert_cap=0.1,
            budget_seconds=None,
        )
        controller, engine, registry, train = make_adaptive(
            trainer, config=config, rng=rng
        )
        feed = np.concatenate([train[:128], rng.normal(size=600) * 0.2 + 5.0])
        for value in feed:
            controller.ingest("s", float(value))
        controller.drain()

        actions = [d.action for d in controller.decisions]
        assert "promoted" in actions
        assert "rolled_back" in actions
        assert actions.index("promoted") < actions.index("rolled_back")
        # The incumbent is back in charge.
        assert registry.active_version("moment-shift") == 1
        rolled = next(d for d in controller.decisions if d.action == "rolled_back")
        assert "pathological" in rolled.reason


# ----------------------------------------------------------------------
# The acceptance drills (ISSUE: chaos drill + poisoned retrain)
# ----------------------------------------------------------------------
def make_drill(seed=7):
    """Sine feed with a labelled spike each side of a +5 level shift.

    Pre-shift spike: alerts must fire (precision baseline) without
    triggering adaptation.  Shift at 700: sustained regime change the
    loop must recover from.  Post-recovery spike at 1300: proof the
    promoted model still detects real anomalies.
    """
    rng = np.random.default_rng(seed)
    period = 40
    n_train, n_test = 800, 1600
    t = np.arange(n_train + n_test)
    base = np.sin(2 * np.pi * t / period) + rng.normal(0, 0.1, t.size)
    train = base[:n_train]
    test = base[n_train:].copy()
    labels = np.zeros(n_test, dtype=np.int64)
    test[300:316] += 4.0
    labels[300:316] = 1
    test[1300:1316] += 4.0
    labels[1300:1316] = 1
    return Dataset(name="drill", train=train, test=test, labels=labels), train


def run_drill(trainer, train, dataset):
    primary = MomentShiftScorer(train)
    registry = build_registry(train_series=train, primary=primary)
    drift = DriftMonitor(
        score_monitor=ScoreShiftMonitor(
            reference_size=24,
            recent_size=24,
            threshold_sigma=4.0,
            cooldown=48,
            statistic="median",
        )
    )
    engine = build_engine(
        registry,
        window_length=32,
        stride=8,
        drift=drift,
        max_batch=16,
        score_baseline=4096,
    )
    controller = AdaptiveController(
        engine,
        trainer,
        config=AdaptConfig(
            history_points=256,
            min_history=128,
            holdout_fraction=0.25,
            settle_points=192,
            cooldown_points=256,
            budget_seconds=10.0,
            probation_points=256,
        ),
    )
    report = replay_dataset(
        dataset,
        engine,
        streams=1,
        controller=controller,
        chaos=LevelShift(at=700, delta=5.0),
    )
    return report, controller, engine, registry


def spike_hit(alert, window_length=32):
    return (300 < alert.index and alert.index - window_length < 316) or (
        1300 < alert.index and alert.index - window_length < 1316
    )


class TestChaosDrill:
    def test_level_shift_drill_self_heals(self):
        dataset, train = make_drill()
        report, controller, engine, registry = run_drill(
            moment_trainer(), train, dataset
        )

        # A transient labelled spike alerts but does not trigger
        # adaptation: every drift signal postdates the regime change.
        pre = [a for a in report.alerts if a.index < 700]
        assert pre and all(spike_hit(a) for a in pre)
        assert engine.drift.signals, "level shift never detected"
        assert all(s.at_index > 700 for s in engine.drift.signals)

        # Degradation: the stale incumbent storms false alarms after
        # the shift, until the loop promotes a retrained candidate.
        promotions = [d for d in controller.decisions if d.action == "promoted"]
        assert len(promotions) == 1
        promoted_at = promotions[0].at_index
        storm = [a for a in report.alerts if 700 <= a.index <= promoted_at]
        assert len(storm) >= 5 and not any(spike_hit(a) for a in storm)

        # Promotion went through the registry: v2 is serving.
        assert registry.active_version("moment-shift") == 2
        assert promotions[0].candidate == "moment-shift@v2"
        assert promotions[0].shadow is not None

        # Recovery: post-promotion precision within 10% of the
        # pre-shift baseline (both 1.0 here), with zero operator input.
        post = [a for a in report.alerts if a.index > promoted_at]
        assert post, "promoted model went silent"
        pre_precision = sum(spike_hit(a) for a in pre) / len(pre)
        post_precision = sum(spike_hit(a) for a in post) / len(post)
        assert post_precision >= pre_precision - 0.1
        # The promoted model still catches real anomalies.
        assert any(
            1300 < a.index and a.index - 32 < 1316 and a.model == "moment-shift@v2"
            for a in post
        )

    def test_nan_poisoned_retrain_is_rejected(self):
        dataset, train = make_drill()
        report, controller, engine, registry = run_drill(
            nan_poisoned(moment_trainer()), train, dataset
        )

        # The guardrails rejected every diverging candidate...
        assert controller.decisions, "drift never triggered a retrain"
        assert all(d.action == "rejected" for d in controller.decisions)
        assert all(
            d.shadow is not None and d.shadow["mode"] == "guard"
            for d in controller.decisions
        )
        # ...the incumbent keeps serving (never swapped, never tripped)...
        assert registry.active_version("moment-shift") == 1
        assert engine.registry.describe()[0]["tripped"] is False
        # ...and scoring ran to the end of the feed.
        expected = 1 + (len(dataset.test) - 32) // 8
        assert engine.stats.windows_scored == expected

    def test_drill_decisions_are_journaled(self, tmp_path):
        dataset, train = make_drill()
        primary = MomentShiftScorer(train)
        registry = build_registry(train_series=train, primary=primary)
        drift = DriftMonitor(
            score_monitor=ScoreShiftMonitor(
                reference_size=24,
                recent_size=24,
                threshold_sigma=4.0,
                cooldown=48,
                statistic="median",
            )
        )
        engine = build_engine(
            registry, window_length=32, stride=8, drift=drift, score_baseline=4096
        )
        path = tmp_path / "audit.jsonl"
        controller = AdaptiveController(
            engine,
            moment_trainer(),
            config=AdaptConfig(
                history_points=256,
                min_history=128,
                settle_points=192,
                cooldown_points=256,
            ),
            journal_path=path,
        )
        replay_dataset(
            dataset,
            engine,
            streams=1,
            controller=controller,
            chaos=LevelShift(at=700, delta=5.0),
        )
        entries = [json.loads(line) for line in path.read_text().splitlines()]
        assert entries == controller.timeline()
        for entry in entries:
            assert entry["trigger"] is not None
            assert entry["shadow"] is not None
            assert entry["incumbent"] is not None
