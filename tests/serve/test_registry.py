"""Tests for the versioned registry and its degradation chain."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import RetryPolicy
from repro.serve.registry import (
    DegradationExhaustedError,
    DiscordWindowScorer,
    ModelRegistry,
    SpectralResidualWindowScorer,
    WindowScorer,
)


class ConstantScorer(WindowScorer):
    """Returns the same score for every window; optionally misbehaves."""

    def __init__(self, name, value=1.0, fail=False, bad_shape=False, nan=False):
        self.name = name
        self.value = value
        self.fail = fail
        self.bad_shape = bad_shape
        self.nan = nan
        self.calls = 0

    def score_windows(self, windows, batch):
        self.calls += 1
        if self.fail:
            raise RuntimeError(f"{self.name} is down")
        if self.bad_shape:
            return np.zeros(len(windows) + 1)
        scores = np.full(len(windows), self.value)
        if self.nan:
            scores[0] = np.nan
        return scores


class FakeClock:
    """Monotonic clock advancing a fixed amount per read."""

    def __init__(self, step: float):
        self.step = step
        self.now = 0.0

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def windows_batch(n=4, length=32):
    return np.zeros((n, length)), []


class TestRegistration:
    def test_first_version_is_active(self):
        registry = ModelRegistry()
        entry = registry.register(ConstantScorer("m"))
        assert entry.key() == "m@v1"
        assert registry.active_entry("m") is entry
        assert registry.chain == ["m"]

    def test_later_versions_wait_for_promote(self):
        registry = ModelRegistry()
        registry.register(ConstantScorer("m", value=1.0))
        v2 = registry.register(ConstantScorer("m", value=2.0))
        assert v2.version == 2
        assert registry.active_entry("m").version == 1
        assert registry.versions("m") == [1, 2]

        windows, batch = windows_batch()
        scores, used = registry.score(windows, batch)
        assert used.version == 1
        assert np.all(scores == 1.0)

    def test_promote_hot_swaps_on_next_batch(self):
        registry = ModelRegistry()
        registry.register(ConstantScorer("m", value=1.0))
        registry.register(ConstantScorer("m", value=2.0))
        registry.promote("m", 2)
        windows, batch = windows_batch()
        scores, used = registry.score(windows, batch)
        assert used.key() == "m@v2"
        assert np.all(scores == 2.0)

    def test_promote_clears_breaker(self):
        registry = ModelRegistry()
        entry = registry.register(ConstantScorer("m", fail=True), max_failures=1)
        registry.register(ConstantScorer("backup", value=9.0))
        windows, batch = windows_batch()
        registry.score(windows, batch)
        assert entry.tripped
        registry.register(ConstantScorer("m", value=5.0))
        registry.promote("m", 2)
        scores, used = registry.score(windows, batch)
        assert used.key() == "m@v2"
        assert np.all(scores == 5.0)

    def test_duplicate_version_rejected(self):
        registry = ModelRegistry()
        registry.register(ConstantScorer("m"), version=3)
        with pytest.raises(ValueError):
            registry.register(ConstantScorer("m"), version=3)

    def test_unknown_lookups_raise(self):
        registry = ModelRegistry()
        with pytest.raises(KeyError):
            registry.active_entry("ghost")
        with pytest.raises(KeyError):
            registry.promote("ghost", 1)
        with pytest.raises(KeyError):
            registry.set_chain(["ghost"])


class TestDegradation:
    def test_error_trips_and_falls_through(self):
        registry = ModelRegistry()
        primary = registry.register(ConstantScorer("primary", fail=True), max_failures=2)
        registry.register(ConstantScorer("backup", value=7.0))
        windows, batch = windows_batch()

        scores, used = registry.score(windows, batch)
        assert used.name == "backup"
        assert np.all(scores == 7.0)
        assert primary.failures == 1 and not primary.tripped

        registry.score(windows, batch)
        assert primary.tripped

        # Tripped entries are skipped without even being called.
        calls_before = primary.scorer.calls
        registry.score(windows, batch)
        assert primary.scorer.calls == calls_before

    def test_reset_rearms_a_tripped_entry(self):
        registry = ModelRegistry()
        scorer = ConstantScorer("m", fail=True)
        entry = registry.register(scorer, max_failures=1)
        registry.register(ConstantScorer("backup"))
        windows, batch = windows_batch()
        registry.score(windows, batch)
        assert entry.tripped
        scorer.fail = False
        registry.reset("m")
        _, used = registry.score(windows, batch)
        assert used.name == "m"

    def test_exhausted_chain_raises(self):
        registry = ModelRegistry()
        registry.register(ConstantScorer("a", fail=True), max_failures=1)
        registry.register(ConstantScorer("b", fail=True), max_failures=1)
        windows, batch = windows_batch()
        with pytest.raises(DegradationExhaustedError):
            registry.score(windows, batch)
        with pytest.raises(DegradationExhaustedError):
            ModelRegistry().score(windows, batch)

    def test_retry_policy_grants_extra_attempts(self):
        registry = ModelRegistry(policy=RetryPolicy(max_retries=2))
        scorer = ConstantScorer("flaky", fail=True)
        registry.register(scorer, max_failures=10)
        registry.register(ConstantScorer("backup"))
        windows, batch = windows_batch()
        registry.score(windows, batch)
        assert scorer.calls == 3  # 1 try + 2 retries before degrading

    def test_bad_shape_and_nan_count_as_failures(self):
        registry = ModelRegistry()
        shape = registry.register(ConstantScorer("shape", bad_shape=True), max_failures=1)
        registry.register(ConstantScorer("backup"))
        windows, batch = windows_batch()
        _, used = registry.score(windows, batch)
        assert used.name == "backup" and shape.tripped

        registry = ModelRegistry()
        nan = registry.register(ConstantScorer("nan", nan=True), max_failures=1)
        registry.register(ConstantScorer("backup"))
        _, used = registry.score(windows, batch)
        assert used.name == "backup" and nan.tripped


class TestLatencyBudget:
    def test_overrun_is_late_not_wrong(self):
        # Each clock read advances 10s; any 5s budget is always blown.
        clock = FakeClock(step=10.0)
        registry = ModelRegistry(clock=clock)
        entry = registry.register(
            ConstantScorer("slow", value=3.0), latency_budget=5.0, max_failures=3
        )
        windows, batch = windows_batch()
        scores, used = registry.score(windows, batch)
        # Scores come back even though the budget was blown...
        assert used.name == "slow"
        assert np.all(scores == 3.0)
        # ...but the breaker advanced.
        assert entry.failures == 1

    def test_consecutive_overruns_trip(self):
        clock = FakeClock(step=10.0)
        registry = ModelRegistry(clock=clock)
        entry = registry.register(
            ConstantScorer("slow"), latency_budget=5.0, max_failures=2
        )
        registry.register(ConstantScorer("fast", value=8.0))
        windows, batch = windows_batch()
        registry.score(windows, batch)
        registry.score(windows, batch)
        assert entry.tripped
        _, used = registry.score(windows, batch)
        assert used.name == "fast"

    def test_within_budget_resets_streak(self):
        clock = FakeClock(step=10.0)
        registry = ModelRegistry(clock=clock)
        entry = registry.register(
            ConstantScorer("slow"), latency_budget=5.0, max_failures=3
        )
        windows, batch = windows_batch()
        registry.score(windows, batch)
        assert entry.failures == 1
        entry.latency_budget = 1e9  # generous budget: next call is on time
        registry.score(windows, batch)
        assert entry.failures == 0


class TestBuiltinScorers:
    def test_spectral_residual_scores_every_window(self, rng):
        scorer = SpectralResidualWindowScorer()
        windows = rng.normal(size=(5, 64))
        scores = scorer.score_windows(windows, [])
        assert scores.shape == (5,)
        assert np.all(np.isfinite(scores))

    def test_spectral_residual_calibration_matches_live_scale(self, sine_wave):
        scorer = SpectralResidualWindowScorer(calibration_series=sine_wave)
        calibration = scorer.calibration_scores(100, 25)
        assert calibration is not None and len(calibration) > 10
        live = scorer.score_windows(sine_wave[:100][None, :], [])
        assert abs(live[0] - calibration.mean()) < 6 * max(calibration.std(), 1e-9)

    def test_calibration_default_is_none(self):
        assert SpectralResidualWindowScorer().calibration_scores(64, 16) is None
        assert DiscordWindowScorer().calibration_scores(64, 16) is None

    def test_discord_calibration_is_max_aggregated(self, sine_wave):
        scorer = DiscordWindowScorer(subsequence_length=16, calibration_series=sine_wave)
        calibration = scorer.calibration_scores(100, 25)
        assert calibration is not None
        # Block maxima over the raw distance stream.
        raw = scorer._calibration_distances
        assert calibration.max() == pytest.approx(raw[: len(calibration) * 25].max())


class TestChainReset:
    def test_reset_chain_rearms_every_tripped_entry(self):
        registry = ModelRegistry()
        first = ConstantScorer("first", fail=True)
        second = ConstantScorer("second", fail=True)
        registry.register(first, max_failures=1)
        registry.register(second, max_failures=1)
        registry.register(ConstantScorer("last", value=3.0))
        windows, batch = windows_batch()
        _, used = registry.score(windows, batch)
        assert used.name == "last"
        assert all(entry["tripped"] for entry in registry.describe()[:2])

        first.fail = second.fail = False
        registry.reset_chain()
        assert not any(entry["tripped"] for entry in registry.describe())
        _, used = registry.score(windows, batch)
        assert used.name == "first"

    def test_active_version_tracks_promotion(self):
        registry = ModelRegistry()
        registry.register(ConstantScorer("m", value=1.0))
        assert registry.active_version("m") == 1
        entry = registry.register(ConstantScorer("m", value=2.0), name="m")
        assert registry.active_version("m") == 1  # not yet promoted
        registry.promote("m", entry.version)
        assert registry.active_version("m") == 2
