"""Tests for the online drift monitors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.drift import DriftMonitor, PeriodChangeMonitor, ScoreShiftMonitor


def feed_scores(monitor, stream, values, start_index=0):
    signals = []
    for i, value in enumerate(values):
        signal = monitor.update(stream, float(value), start_index + i)
        if signal is not None:
            signals.append(signal)
    return signals


class TestScoreShiftMonitor:
    def make(self, **kwargs):
        defaults = dict(reference_size=32, recent_size=16, threshold_sigma=3.0, cooldown=64)
        defaults.update(kwargs)
        return ScoreShiftMonitor(**defaults)

    def test_no_signal_on_stationary_scores(self, rng):
        monitor = self.make()
        scores = rng.normal(size=300) * 0.1 + 1.0
        assert feed_scores(monitor, "s", scores) == []

    def test_mean_shift_signals_once_then_cools_down(self, rng):
        monitor = self.make()
        normal = rng.normal(size=40) * 0.1 + 1.0
        shifted = rng.normal(size=60) * 0.1 + 3.0
        signals = feed_scores(monitor, "s", np.concatenate([normal, shifted]))
        assert len(signals) == 1
        signal = signals[0]
        assert signal.kind == "score_shift"
        assert signal.value > monitor.threshold_sigma
        assert signal.reference == pytest.approx(1.0, abs=0.1)

    def test_signal_repeats_after_cooldown(self, rng):
        monitor = self.make(cooldown=32)
        normal = rng.normal(size=40) * 0.1 + 1.0
        shifted = rng.normal(size=200) * 0.1 + 3.0
        signals = feed_scores(monitor, "s", np.concatenate([normal, shifted]))
        assert len(signals) >= 2

    def test_streams_are_independent(self, rng):
        monitor = self.make()
        normal = rng.normal(size=40) * 0.1 + 1.0
        shifted = rng.normal(size=60) * 0.1 + 5.0
        feed_scores(monitor, "healthy", np.concatenate([normal, normal]))
        signals = feed_scores(monitor, "drifting", np.concatenate([normal, shifted]))
        assert {s.stream_id for s in signals} == {"drifting"}

    def test_reset_all_rebanks_references(self, rng):
        monitor = self.make()
        normal = rng.normal(size=40) * 0.1 + 1.0
        feed_scores(monitor, "s", normal)
        monitor.reset_all()
        # Scores on a totally different scale: with a fresh reference
        # bank this is the new normal, so no signal.
        other_scale = rng.normal(size=60) * 0.1 + 50.0
        assert feed_scores(monitor, "s", other_scale) == []


class TestPeriodChangeMonitor:
    def test_no_signal_while_period_holds(self):
        monitor = PeriodChangeMonitor(expected_period=20, buffer_size=160, check_every=40)
        t = np.arange(2000)
        wave = np.sin(2 * np.pi * t / 20)
        signals = []
        for i, value in enumerate(wave):
            signal = monitor.update("s", float(value), i)
            if signal is not None:
                signals.append(signal)
        assert signals == []

    def test_period_doubling_signals(self):
        monitor = PeriodChangeMonitor(
            expected_period=20, buffer_size=160, check_every=40, tolerance=0.25
        )
        t = np.arange(800)
        slow = np.sin(2 * np.pi * t / 40)  # double the expected period
        signals = []
        for i, value in enumerate(slow):
            signal = monitor.update("s", float(value), i)
            if signal is not None:
                signals.append(signal)
        assert signals
        assert signals[0].kind == "period_change"
        assert signals[0].value == pytest.approx(40, abs=6)

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodChangeMonitor(expected_period=1)


class TestDriftMonitorFacade:
    def test_signals_accumulate_and_flag_streams(self, rng):
        monitor = DriftMonitor(
            score_monitor=ScoreShiftMonitor(reference_size=16, recent_size=8)
        )
        normal = rng.normal(size=20) * 0.1 + 1.0
        shifted = rng.normal(size=20) * 0.1 + 4.0
        for i, value in enumerate(np.concatenate([normal, shifted])):
            monitor.observe_score("s", float(value), i)
        assert monitor.signals
        assert monitor.retrain_recommended("s")
        assert not monitor.retrain_recommended("other")
        monitor.acknowledge("s")
        assert not monitor.retrain_recommended("s")

    def test_model_changed_invalidates_references(self, rng):
        score_monitor = ScoreShiftMonitor(reference_size=16, recent_size=8)
        monitor = DriftMonitor(score_monitor=score_monitor)
        for i, value in enumerate(rng.normal(size=20) * 0.1 + 1.0):
            monitor.observe_score("s", float(value), i)
        monitor.model_changed()
        # New scale after a failover: no score_shift false alarm.
        for i, value in enumerate(rng.normal(size=40) * 0.1 + 99.0):
            monitor.observe_score("s", float(value), 20 + i)
        assert [s for s in monitor.signals if s.kind == "score_shift"] == []

    def test_monitors_are_optional(self):
        monitor = DriftMonitor()
        monitor.observe_score("s", 1.0, 0)
        monitor.observe_point("s", 1.0, 0)
        assert monitor.signals == []

    def test_as_dict_round_trips(self, rng):
        import json

        monitor = DriftMonitor(
            score_monitor=ScoreShiftMonitor(reference_size=16, recent_size=8)
        )
        for i, value in enumerate(
            np.concatenate([rng.normal(size=20) * 0.1, rng.normal(size=20) * 0.1 + 5.0])
        ):
            monitor.observe_score("s", float(value), i)
        assert monitor.signals
        json.dumps([s.as_dict() for s in monitor.signals])
