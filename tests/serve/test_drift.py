"""Tests for the online drift monitors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.drift import DriftMonitor, PeriodChangeMonitor, ScoreShiftMonitor


def feed_scores(monitor, stream, values, start_index=0):
    signals = []
    for i, value in enumerate(values):
        signal = monitor.update(stream, float(value), start_index + i)
        if signal is not None:
            signals.append(signal)
    return signals


class TestScoreShiftMonitor:
    def make(self, **kwargs):
        defaults = dict(reference_size=32, recent_size=16, threshold_sigma=3.0, cooldown=64)
        defaults.update(kwargs)
        return ScoreShiftMonitor(**defaults)

    def test_no_signal_on_stationary_scores(self, rng):
        monitor = self.make()
        scores = rng.normal(size=300) * 0.1 + 1.0
        assert feed_scores(monitor, "s", scores) == []

    def test_mean_shift_signals_once_then_cools_down(self, rng):
        monitor = self.make()
        normal = rng.normal(size=40) * 0.1 + 1.0
        shifted = rng.normal(size=60) * 0.1 + 3.0
        signals = feed_scores(monitor, "s", np.concatenate([normal, shifted]))
        assert len(signals) == 1
        signal = signals[0]
        assert signal.kind == "score_shift"
        assert signal.value > monitor.threshold_sigma
        assert signal.reference == pytest.approx(1.0, abs=0.1)

    def test_signal_repeats_after_cooldown(self, rng):
        monitor = self.make(cooldown=32)
        normal = rng.normal(size=40) * 0.1 + 1.0
        shifted = rng.normal(size=200) * 0.1 + 3.0
        signals = feed_scores(monitor, "s", np.concatenate([normal, shifted]))
        assert len(signals) >= 2

    def test_streams_are_independent(self, rng):
        monitor = self.make()
        normal = rng.normal(size=40) * 0.1 + 1.0
        shifted = rng.normal(size=60) * 0.1 + 5.0
        feed_scores(monitor, "healthy", np.concatenate([normal, normal]))
        signals = feed_scores(monitor, "drifting", np.concatenate([normal, shifted]))
        assert {s.stream_id for s in signals} == {"drifting"}

    def test_reset_all_rebanks_references(self, rng):
        monitor = self.make()
        normal = rng.normal(size=40) * 0.1 + 1.0
        feed_scores(monitor, "s", normal)
        monitor.reset_all()
        # Scores on a totally different scale: with a fresh reference
        # bank this is the new normal, so no signal.
        other_scale = rng.normal(size=60) * 0.1 + 50.0
        assert feed_scores(monitor, "s", other_scale) == []


class TestPeriodChangeMonitor:
    def test_no_signal_while_period_holds(self):
        monitor = PeriodChangeMonitor(expected_period=20, buffer_size=160, check_every=40)
        t = np.arange(2000)
        wave = np.sin(2 * np.pi * t / 20)
        signals = []
        for i, value in enumerate(wave):
            signal = monitor.update("s", float(value), i)
            if signal is not None:
                signals.append(signal)
        assert signals == []

    def test_period_doubling_signals(self):
        monitor = PeriodChangeMonitor(
            expected_period=20, buffer_size=160, check_every=40, tolerance=0.25
        )
        t = np.arange(800)
        slow = np.sin(2 * np.pi * t / 40)  # double the expected period
        signals = []
        for i, value in enumerate(slow):
            signal = monitor.update("s", float(value), i)
            if signal is not None:
                signals.append(signal)
        assert signals
        assert signals[0].kind == "period_change"
        assert signals[0].value == pytest.approx(40, abs=6)

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodChangeMonitor(expected_period=1)


class TestDriftMonitorFacade:
    def test_signals_accumulate_and_flag_streams(self, rng):
        monitor = DriftMonitor(
            score_monitor=ScoreShiftMonitor(reference_size=16, recent_size=8)
        )
        normal = rng.normal(size=20) * 0.1 + 1.0
        shifted = rng.normal(size=20) * 0.1 + 4.0
        for i, value in enumerate(np.concatenate([normal, shifted])):
            monitor.observe_score("s", float(value), i)
        assert monitor.signals
        assert monitor.retrain_recommended("s")
        assert not monitor.retrain_recommended("other")
        monitor.acknowledge("s")
        assert not monitor.retrain_recommended("s")

    def test_model_changed_invalidates_references(self, rng):
        score_monitor = ScoreShiftMonitor(reference_size=16, recent_size=8)
        monitor = DriftMonitor(score_monitor=score_monitor)
        for i, value in enumerate(rng.normal(size=20) * 0.1 + 1.0):
            monitor.observe_score("s", float(value), i)
        monitor.model_changed()
        # New scale after a failover: no score_shift false alarm.
        for i, value in enumerate(rng.normal(size=40) * 0.1 + 99.0):
            monitor.observe_score("s", float(value), 20 + i)
        assert [s for s in monitor.signals if s.kind == "score_shift"] == []

    def test_monitors_are_optional(self):
        monitor = DriftMonitor()
        monitor.observe_score("s", 1.0, 0)
        monitor.observe_point("s", 1.0, 0)
        assert monitor.signals == []

    def test_as_dict_round_trips(self, rng):
        import json

        monitor = DriftMonitor(
            score_monitor=ScoreShiftMonitor(reference_size=16, recent_size=8)
        )
        for i, value in enumerate(
            np.concatenate([rng.normal(size=20) * 0.1, rng.normal(size=20) * 0.1 + 5.0])
        ):
            monitor.observe_score("s", float(value), i)
        assert monitor.signals
        json.dumps([s.as_dict() for s in monitor.signals])


class TestMedianStatistic:
    def test_transient_spike_moves_mean_but_not_median(self, rng):
        """A short anomaly burst must alert, not trigger a retrain."""
        normal = rng.normal(size=64) * 0.1 + 1.0
        burst = np.concatenate(
            [normal, rng.normal(size=6) * 0.1 + 8.0, normal]
        )
        kwargs = dict(reference_size=32, recent_size=16, threshold_sigma=4.0)
        mean_monitor = ScoreShiftMonitor(statistic="mean", **kwargs)
        median_monitor = ScoreShiftMonitor(statistic="median", **kwargs)
        assert feed_scores(mean_monitor, "s", burst), (
            "control failed: the burst should move the recent mean"
        )
        assert feed_scores(median_monitor, "s", burst) == []

    def test_sustained_shift_still_signals_on_median(self, rng):
        monitor = ScoreShiftMonitor(
            reference_size=32, recent_size=16, threshold_sigma=4.0,
            statistic="median",
        )
        normal = rng.normal(size=40) * 0.1 + 1.0
        shifted = rng.normal(size=60) * 0.1 + 4.0
        signals = feed_scores(monitor, "s", np.concatenate([normal, shifted]))
        assert signals and signals[0].kind == "score_shift"

    def test_unknown_statistic_rejected(self):
        with pytest.raises(ValueError, match="statistic"):
            ScoreShiftMonitor(statistic="mode")


class TestAcknowledge:
    def test_acknowledge_resets_both_monitors(self):
        """Satellite: acknowledge() must clear per-stream references in
        the score AND period monitors, or the stale windows immediately
        re-signal and start a retrain storm."""
        score_monitor = ScoreShiftMonitor(reference_size=8, recent_size=4)
        period_monitor = PeriodChangeMonitor(
            expected_period=20, buffer_size=80, check_every=40
        )
        monitor = DriftMonitor(
            score_monitor=score_monitor, period_monitor=period_monitor
        )
        t = np.arange(200)
        for i, value in enumerate(np.sin(2 * np.pi * t / 40)):
            monitor.observe_point("s", float(value), i)
        for i, value in enumerate(np.concatenate([np.ones(10), np.full(10, 5.0)])):
            monitor.observe_score("s", float(value), i)
        assert monitor.retrain_recommended("s")
        assert "s" in period_monitor._buffers

        monitor.acknowledge("s")
        assert not monitor.retrain_recommended("s")
        assert "s" not in period_monitor._buffers
        assert "s" not in score_monitor._frozen

    def test_no_retrain_storm_after_acknowledge(self, rng):
        """After acknowledge, continued post-shift scores re-bank the
        reference at the new level instead of immediately re-flagging."""
        monitor = DriftMonitor(
            score_monitor=ScoreShiftMonitor(reference_size=16, recent_size=8)
        )
        normal = rng.normal(size=20) * 0.1 + 1.0
        shifted = rng.normal(size=120) * 0.1 + 5.0
        index = 0
        for value in np.concatenate([normal, shifted[:20]]):
            monitor.observe_score("s", float(value), index)
            index += 1
        assert monitor.retrain_recommended("s")
        monitor.acknowledge("s")
        before = len(monitor.signals)
        for value in shifted[20:]:
            monitor.observe_score("s", float(value), index)
            index += 1
        assert len(monitor.signals) == before
        assert not monitor.retrain_recommended("s")

    def test_last_signal_returns_most_recent_for_stream(self, rng):
        monitor = DriftMonitor(
            score_monitor=ScoreShiftMonitor(
                reference_size=16, recent_size=8, cooldown=16
            )
        )
        feed = np.concatenate(
            [rng.normal(size=20) * 0.1 + 1.0, rng.normal(size=80) * 0.1 + 5.0]
        )
        for i, value in enumerate(feed):
            monitor.observe_score("s", float(value), i)
        assert monitor.last_signal("other") is None
        last = monitor.last_signal("s")
        assert last is not None
        assert last.at_index == max(s.at_index for s in monitor.signals)
        assert monitor.flagged == {"s"}
