"""Tests for per-stream sliding-window state (repro.serve.stream)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.stream import RingBuffer, StreamState
from repro.signal.windows import sliding_windows


class TestRingBuffer:
    def test_moments_match_numpy_before_wrap(self, rng):
        buffer = RingBuffer(64)
        values = rng.normal(size=40)
        for value in values:
            buffer.append(value)
        assert len(buffer) == 40
        assert buffer.mean == pytest.approx(values.mean())
        assert buffer.std == pytest.approx(values.std())
        assert np.array_equal(buffer.view(), values)

    def test_moments_match_numpy_after_wrap(self, rng):
        buffer = RingBuffer(32)
        values = rng.normal(size=200) * 3.0 + 7.0
        for value in values:
            buffer.append(value)
        live = values[-32:]
        assert len(buffer) == 32
        assert buffer.mean == pytest.approx(live.mean())
        assert buffer.std == pytest.approx(live.std())
        assert np.array_equal(buffer.view(), live)

    def test_view_is_chronological_and_a_copy(self):
        buffer = RingBuffer(4)
        for value in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]:
            buffer.append(value)
        view = buffer.view()
        assert list(view) == [3.0, 4.0, 5.0, 6.0]
        view[0] = 99.0
        assert list(buffer.view()) == [3.0, 4.0, 5.0, 6.0]

    def test_periodic_refresh_bounds_drift(self, rng):
        # Drive well past the refresh interval with values whose running
        # sums would otherwise accumulate float error.
        buffer = RingBuffer(16)
        values = rng.normal(size=20_000) * 1e6
        for value in values:
            buffer.append(value)
        live = values[-16:]
        assert buffer.mean == pytest.approx(live.mean(), rel=1e-9)
        assert buffer.std == pytest.approx(live.std(), rel=1e-6)

    def test_empty_and_invalid(self):
        buffer = RingBuffer(8)
        assert len(buffer) == 0
        assert buffer.mean == 0.0
        assert buffer.std == 0.0
        with pytest.raises(ValueError):
            RingBuffer(0)


class TestStreamState:
    def test_emission_cadence_matches_offline_segmentation(self, rng):
        # The online cadence must reproduce the offline sliding_windows
        # segmentation (modulo the tail-anchored final window).
        series = rng.normal(size=500)
        length, stride = 96, 24
        state = StreamState("s", length, stride)
        emitted = [ready for ready in (state.push(v) for v in series) if ready]

        offline, starts = sliding_windows(series, length, stride)
        regular = [s for s in starts if s % stride == 0]
        assert [r.start_index for r in emitted] == regular
        for ready in emitted:
            assert np.array_equal(ready.window, series[ready.start_index : ready.end_index])

    def test_window_moments_are_window_moments(self, rng):
        series = rng.normal(size=300) * 2.0 + 5.0
        state = StreamState("s", 50, 10)
        for value in series:
            ready = state.push(value)
            if ready is not None:
                assert ready.mean == pytest.approx(ready.window.mean())
                assert ready.std == pytest.approx(ready.window.std())

    def test_znormed_matches_manual(self, rng):
        series = rng.normal(size=120)
        state = StreamState("s", 64, 16)
        ready = None
        for value in series:
            ready = state.push(value) or ready
        assert ready is not None
        expected = (ready.window - ready.window.mean()) / ready.window.std()
        assert np.allclose(ready.znormed(), expected)

    def test_znormed_constant_window_is_zeros(self):
        state = StreamState("s", 8, 4)
        ready = None
        for _ in range(8):
            ready = state.push(3.25) or ready
        assert ready is not None
        assert np.array_equal(ready.znormed(), np.zeros(8))

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamState("s", 1, 1)
        with pytest.raises(ValueError):
            StreamState("s", 8, 0)


class TestRingBufferExtend:
    """RingBuffer.extend must be indistinguishable from per-point append."""

    @pytest.mark.parametrize("capacity", [1, 3, 8, 50])
    @pytest.mark.parametrize(
        "chunks",
        [[5], [2, 2, 2], [60], [7, 49, 3], [0, 8], [1] * 17, [4, 100, 2]],
    )
    def test_extend_matches_append_exactly(self, rng, capacity, chunks):
        sequential = RingBuffer(capacity)
        chunked = RingBuffer(capacity)
        for size in chunks:
            values = rng.normal(size=size)
            for value in values:
                sequential.append(value)
            chunked.extend(values)
        a, b = sequential.snapshot(), chunked.snapshot()
        assert np.array_equal(a["data"], b["data"])
        assert (a["size"], a["next"], a["appends"]) == (
            b["size"], b["next"], b["appends"],
        )
        assert a["sum"] == pytest.approx(b["sum"])
        assert a["sumsq"] == pytest.approx(b["sumsq"])
        assert np.array_equal(sequential.view(), chunked.view())

    def test_extend_crossing_refresh_epoch_rebuilds_sums(self, rng):
        from repro.serve.stream import _REFRESH_EVERY

        buffer = RingBuffer(16)
        buffer.extend(rng.normal(size=_REFRESH_EVERY - 4))
        before = buffer.snapshot()["appends"]
        buffer.extend(rng.normal(size=8))  # crosses the refresh boundary
        live = buffer.view()
        # the refresh re-derives the sums exactly from the live window
        assert buffer.snapshot()["sum"] == float(live.sum())
        assert buffer.snapshot()["appends"] == before + 8

    def test_extend_empty_chunk_is_a_noop(self):
        buffer = RingBuffer(4)
        buffer.append(1.0)
        snapshot = buffer.snapshot()
        buffer.extend(np.array([]))
        after = buffer.snapshot()
        assert np.array_equal(snapshot["data"], after["data"])
        assert snapshot["appends"] == after["appends"]


class TestRingBufferSnapshot:
    def test_round_trip_is_exact(self, rng):
        buffer = RingBuffer(16)
        for value in rng.normal(size=41):
            buffer.append(value)
        restored = RingBuffer.from_snapshot(buffer.snapshot())
        future = rng.normal(size=30)
        for value in future:
            buffer.append(value)
            restored.append(value)
        a, b = buffer.snapshot(), restored.snapshot()
        assert np.array_equal(a["data"], b["data"])
        assert a["sum"] == b["sum"] and a["sumsq"] == b["sumsq"]
        assert a["next"] == b["next"] and a["appends"] == b["appends"]
        assert buffer.mean == restored.mean and buffer.std == restored.std

    def test_snapshot_data_is_a_copy(self):
        buffer = RingBuffer(4)
        buffer.append(1.0)
        snapshot = buffer.snapshot()
        buffer.append(2.0)
        assert snapshot["data"][1] == 0.0  # unaffected by later appends

    def test_from_snapshot_rejects_wrong_shape(self):
        buffer = RingBuffer(4)
        snapshot = buffer.snapshot()
        snapshot["data"] = np.zeros(7)
        with pytest.raises(ValueError, match="shape"):
            RingBuffer.from_snapshot(snapshot)


class TestStreamStateSnapshotAndExtend:
    def test_round_trip_emits_identical_windows(self, rng):
        state = StreamState("s", 10, 3)
        for value in rng.normal(size=27):
            state.push(value)
        restored = StreamState.from_snapshot(state.snapshot())
        future = rng.normal(size=25)
        original_windows = [w for v in future if (w := state.push(v))]
        restored_windows = [w for v in future if (w := restored.push(v))]
        assert len(original_windows) == len(restored_windows) > 0
        for a, b in zip(original_windows, restored_windows):
            assert np.array_equal(a.window, b.window)
            assert a.end_index == b.end_index
            assert a.mean == b.mean and a.std == b.std

    def test_extend_rejects_chunks_crossing_the_emission_boundary(self, rng):
        state = StreamState("s", 8, 4)
        with pytest.raises(ValueError, match="emission"):
            state.extend(rng.normal(size=9))
        # exactly reaching the boundary emits
        ready = state.extend(rng.normal(size=8))
        assert ready is not None and ready.end_index == 8

    def test_until_next_emit_tracks_the_cadence(self):
        state = StreamState("s", 8, 4)
        assert state.until_next_emit == 8
        state.extend(np.zeros(8))
        assert state.until_next_emit == 4
        state.push(0.0)
        assert state.until_next_emit == 3
