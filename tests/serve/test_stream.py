"""Tests for per-stream sliding-window state (repro.serve.stream)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.stream import RingBuffer, StreamState
from repro.signal.windows import sliding_windows


class TestRingBuffer:
    def test_moments_match_numpy_before_wrap(self, rng):
        buffer = RingBuffer(64)
        values = rng.normal(size=40)
        for value in values:
            buffer.append(value)
        assert len(buffer) == 40
        assert buffer.mean == pytest.approx(values.mean())
        assert buffer.std == pytest.approx(values.std())
        assert np.array_equal(buffer.view(), values)

    def test_moments_match_numpy_after_wrap(self, rng):
        buffer = RingBuffer(32)
        values = rng.normal(size=200) * 3.0 + 7.0
        for value in values:
            buffer.append(value)
        live = values[-32:]
        assert len(buffer) == 32
        assert buffer.mean == pytest.approx(live.mean())
        assert buffer.std == pytest.approx(live.std())
        assert np.array_equal(buffer.view(), live)

    def test_view_is_chronological_and_a_copy(self):
        buffer = RingBuffer(4)
        for value in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]:
            buffer.append(value)
        view = buffer.view()
        assert list(view) == [3.0, 4.0, 5.0, 6.0]
        view[0] = 99.0
        assert list(buffer.view()) == [3.0, 4.0, 5.0, 6.0]

    def test_periodic_refresh_bounds_drift(self, rng):
        # Drive well past the refresh interval with values whose running
        # sums would otherwise accumulate float error.
        buffer = RingBuffer(16)
        values = rng.normal(size=20_000) * 1e6
        for value in values:
            buffer.append(value)
        live = values[-16:]
        assert buffer.mean == pytest.approx(live.mean(), rel=1e-9)
        assert buffer.std == pytest.approx(live.std(), rel=1e-6)

    def test_empty_and_invalid(self):
        buffer = RingBuffer(8)
        assert len(buffer) == 0
        assert buffer.mean == 0.0
        assert buffer.std == 0.0
        with pytest.raises(ValueError):
            RingBuffer(0)


class TestStreamState:
    def test_emission_cadence_matches_offline_segmentation(self, rng):
        # The online cadence must reproduce the offline sliding_windows
        # segmentation (modulo the tail-anchored final window).
        series = rng.normal(size=500)
        length, stride = 96, 24
        state = StreamState("s", length, stride)
        emitted = [ready for ready in (state.push(v) for v in series) if ready]

        offline, starts = sliding_windows(series, length, stride)
        regular = [s for s in starts if s % stride == 0]
        assert [r.start_index for r in emitted] == regular
        for ready in emitted:
            assert np.array_equal(ready.window, series[ready.start_index : ready.end_index])

    def test_window_moments_are_window_moments(self, rng):
        series = rng.normal(size=300) * 2.0 + 5.0
        state = StreamState("s", 50, 10)
        for value in series:
            ready = state.push(value)
            if ready is not None:
                assert ready.mean == pytest.approx(ready.window.mean())
                assert ready.std == pytest.approx(ready.window.std())

    def test_znormed_matches_manual(self, rng):
        series = rng.normal(size=120)
        state = StreamState("s", 64, 16)
        ready = None
        for value in series:
            ready = state.push(value) or ready
        assert ready is not None
        expected = (ready.window - ready.window.mean()) / ready.window.std()
        assert np.allclose(ready.znormed(), expected)

    def test_znormed_constant_window_is_zeros(self):
        state = StreamState("s", 8, 4)
        ready = None
        for _ in range(8):
            ready = state.push(3.25) or ready
        assert ready is not None
        assert np.array_equal(ready.znormed(), np.zeros(8))

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamState("s", 1, 1)
        with pytest.raises(ValueError):
            StreamState("s", 8, 0)
