"""Tests for the pluggable stream-state stores (repro.serve.stores)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.stores import (
    FileBackedStore,
    InMemoryStore,
    SharedMemoryStore,
    StreamSnapshot,
    payload_from_bytes,
    payload_to_bytes,
)
from repro.serve.stream import RingBuffer, StreamState


def make_snapshot(rng, stream_id="unit/7") -> StreamSnapshot:
    state = StreamState(stream_id, 12, 4)
    for value in rng.normal(size=37):
        state.push(value)
    baseline = RingBuffer(8)
    for value in rng.normal(size=5):
        baseline.append(value)
    return StreamSnapshot(
        stream_id=stream_id,
        stream=state.snapshot(),
        baseline=baseline.snapshot(),
        drift={"flagged": True, "score": {"seen": 9}},
    )


@pytest.fixture(params=["memory", "file", "shm"])
def store(request, tmp_path):
    if request.param == "memory":
        backend = InMemoryStore()
    elif request.param == "file":
        backend = FileBackedStore(tmp_path / "store")
    else:
        backend = SharedMemoryStore(f"repro-test-{request.node.callspec.id}")
    yield backend
    backend.close()


class TestPayloadCodec:
    def test_round_trips_scalars_lists_and_arrays(self, rng):
        payload = {
            "int": 3,
            "float": 1.5,
            "none": None,
            "bool": True,
            "text": "stream/α",
            "list": [1, "two", {"nested": np.arange(4.0)}],
            "matrix": rng.normal(size=(3, 5)),
        }
        back = payload_from_bytes(payload_to_bytes(payload))
        assert back["int"] == 3 and back["float"] == 1.5
        assert back["none"] is None and back["bool"] is True
        assert back["text"] == "stream/α"
        assert back["list"][:2] == [1, "two"]
        assert np.array_equal(back["list"][2]["nested"], np.arange(4.0))
        assert np.array_equal(back["matrix"], payload["matrix"])

    def test_floats_round_trip_bit_exactly(self):
        # json shortest-repr round-trips doubles exactly — the running
        # sums in a snapshot must come back with the same bit pattern.
        value = 0.1 + 0.2  # not representable "nicely"
        back = payload_from_bytes(payload_to_bytes({"sum": value}))
        assert back["sum"] == value

    def test_numpy_scalars_become_plain_scalars(self):
        payload = {"n": np.int64(7), "x": np.float64(2.5)}
        back = payload_from_bytes(payload_to_bytes(payload))
        assert back["n"] == 7 and back["x"] == 2.5

    def test_no_pickle_in_the_container(self, rng):
        data = payload_to_bytes({"a": rng.normal(size=8)})
        # np.load with allow_pickle=False must be sufficient to read it
        assert payload_from_bytes(data)["a"].shape == (8,)


class TestProviderContract:
    def test_save_load_round_trip(self, store, rng):
        snapshot = make_snapshot(rng)
        store.save(snapshot)
        loaded = store.load(snapshot.stream_id)
        assert loaded is not None
        assert loaded.stream_id == snapshot.stream_id
        assert np.array_equal(
            loaded.stream["buffer"]["data"], snapshot.stream["buffer"]["data"]
        )
        assert loaded.stream["next_emit"] == snapshot.stream["next_emit"]
        assert loaded.baseline["sum"] == snapshot.baseline["sum"]
        assert loaded.drift == {"flagged": True, "score": {"seen": 9}}

    def test_loaded_snapshot_restores_an_exact_stream(self, store, rng):
        snapshot = make_snapshot(rng)
        store.save(snapshot)
        restored = StreamState.from_snapshot(store.load(snapshot.stream_id).stream)
        original = StreamState.from_snapshot(snapshot.stream)
        future = rng.normal(size=20)
        a = [w for v in future if (w := original.push(v))]
        b = [w for v in future if (w := restored.push(v))]
        assert len(a) == len(b) > 0
        for wa, wb in zip(a, b):
            assert np.array_equal(wa.window, wb.window)
            assert wa.mean == wb.mean and wa.std == wb.std

    def test_missing_stream_loads_none(self, store):
        assert store.load("never-saved") is None

    def test_overwrite_keeps_latest(self, store, rng):
        first = make_snapshot(rng)
        second = make_snapshot(rng, stream_id=first.stream_id)
        store.save(first)
        store.save(second)
        loaded = store.load(first.stream_id)
        assert np.array_equal(
            loaded.stream["buffer"]["data"], second.stream["buffer"]["data"]
        )
        assert store.stream_ids() == [first.stream_id]

    def test_delete_and_ids(self, store, rng):
        a, b = make_snapshot(rng, "a"), make_snapshot(rng, "b")
        store.save_many([a, b])
        assert store.stream_ids() == ["a", "b"]
        store.delete("a")
        assert store.stream_ids() == ["b"]
        assert store.load("a") is None
        store.delete("a")  # idempotent

    def test_none_fields_round_trip(self, store, rng):
        bare = StreamSnapshot(
            stream_id="bare",
            stream=make_snapshot(rng).stream,
            baseline=None,
            drift=None,
        )
        store.save(bare)
        loaded = store.load("bare")
        assert loaded.baseline is None and loaded.drift is None


class TestFileBackedStore:
    def test_survives_reopen(self, tmp_path, rng):
        snapshot = make_snapshot(rng)
        first = FileBackedStore(tmp_path / "s")
        first.save(snapshot)
        first.close()
        second = FileBackedStore(tmp_path / "s")
        assert second.stream_ids() == [snapshot.stream_id]
        assert second.load(snapshot.stream_id).stream["count"] == (
            snapshot.stream["count"]
        )

    def test_deletion_tombstone_survives_reopen(self, tmp_path, rng):
        store = FileBackedStore(tmp_path / "s")
        store.save_many([make_snapshot(rng, "a"), make_snapshot(rng, "b")])
        store.delete("a")
        reopened = FileBackedStore(tmp_path / "s")
        assert reopened.stream_ids() == ["b"]

    def test_torn_index_line_is_skipped_with_a_warning(self, tmp_path, rng):
        store = FileBackedStore(tmp_path / "s")
        store.save(make_snapshot(rng, "ok"))
        index = tmp_path / "s" / "streams.jsonl"
        with open(index, "a", encoding="utf-8") as handle:
            handle.write('{"stream_id": "torn-')  # simulated torn write
        with pytest.warns(UserWarning, match="torn"):
            reopened = FileBackedStore(tmp_path / "s")
        assert reopened.stream_ids() == ["ok"]

    def test_corrupt_blob_is_treated_as_missing(self, tmp_path, rng):
        store = FileBackedStore(tmp_path / "s")
        snapshot = make_snapshot(rng)
        store.save(snapshot)
        blob = next((tmp_path / "s").glob("*.npz"))
        blob.write_bytes(b"not an npz at all")
        with pytest.warns(UserWarning, match="unreadable"):
            assert store.load(snapshot.stream_id) is None

    def test_no_tmp_files_left_behind(self, tmp_path, rng):
        store = FileBackedStore(tmp_path / "s")
        for i in range(4):
            store.save(make_snapshot(rng, f"s{i}"))
        assert not list((tmp_path / "s").glob("*.tmp"))


class TestSharedMemoryStore:
    def test_reattach_by_namespace(self, rng):
        snapshot = make_snapshot(rng)
        owner = SharedMemoryStore("repro-test-reattach")
        try:
            owner.save(snapshot)
            attacher = SharedMemoryStore("repro-test-reattach")
            assert attacher.stream_ids() == [snapshot.stream_id]
            loaded = attacher.load(snapshot.stream_id)
            assert np.array_equal(
                loaded.stream["buffer"]["data"],
                snapshot.stream["buffer"]["data"],
            )
            attacher.close(unlink=False)
        finally:
            owner.close()

    def test_grows_segment_when_snapshot_outgrows_it(self, rng):
        store = SharedMemoryStore("repro-test-grow")
        try:
            small = StreamSnapshot("s", StreamState("s", 4, 2).snapshot())
            store.save(small)
            big_state = StreamState("s", 512, 2)
            big_state.extend(rng.normal(size=512))
            store.save(StreamSnapshot("s", big_state.snapshot()))
            loaded = store.load("s")
            assert loaded.stream["length"] == 512
        finally:
            store.close()

    def test_close_unlink_removes_segments(self, rng):
        store = SharedMemoryStore("repro-test-unlink")
        store.save(make_snapshot(rng))
        store.close(unlink=True)
        fresh = SharedMemoryStore("repro-test-unlink")
        try:
            assert fresh.stream_ids() == []
        finally:
            fresh.close()
