"""Tests for the micro-batching scoring engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.engine import EngineConfig, ScoringEngine
from repro.serve.registry import ModelRegistry, WindowScorer


class RecordingScorer(WindowScorer):
    """Scores each window by its max value; records batch compositions."""

    def __init__(self, name="recorder", offset=0.0, calibration=None):
        self.name = name
        self.offset = offset
        self.batches = []
        self._calibration = calibration

    def score_windows(self, windows, batch):
        self.batches.append([ready.stream_id for ready in batch])
        return np.asarray(windows).max(axis=1) + self.offset

    def calibration_scores(self, length, stride):
        return self._calibration


class FailingScorer(WindowScorer):
    def __init__(self, name="broken"):
        self.name = name

    def score_windows(self, windows, batch):
        raise RuntimeError("down")


def make_engine(scorer, **config_kwargs):
    registry = ModelRegistry()
    registry.register(scorer)
    defaults = dict(window_length=16, stride=4, warmup_scores=4)
    defaults.update(config_kwargs)
    return ScoringEngine(registry, EngineConfig(**defaults)), registry


class TestMicroBatching:
    def test_batches_mix_windows_from_many_streams(self, rng):
        scorer = RecordingScorer()
        engine, _ = make_engine(scorer, max_batch=8)
        streams = [f"s{i}" for i in range(4)]
        for value in rng.normal(size=200):
            for stream in streams:
                engine.ingest(stream, float(value))
        engine.drain()

        multi = [batch for batch in scorer.batches if len(set(batch)) > 1]
        assert multi, "no batch contained windows from more than one stream"
        sizes = [len(batch) for batch in scorer.batches]
        assert max(sizes) == 8  # full micro-batches while the feed is hot
        assert engine.stats.windows_scored == sum(sizes)

    def test_every_emitted_window_is_scored_exactly_once(self, rng):
        scorer = RecordingScorer()
        engine, _ = make_engine(scorer, max_batch=8, queue_capacity=10_000)
        for value in rng.normal(size=150):
            engine.ingest("only", float(value))
        engine.drain()
        expected = 1 + (150 - 16) // 4  # first full window, then every stride
        assert engine.stats.windows_scored == expected
        assert engine.stats.shed == 0


class TestAlerting:
    def test_spike_alerts_only_on_the_spiked_stream(self, rng):
        scorer = RecordingScorer()
        engine, _ = make_engine(scorer, max_batch=4, alert_sigma=6.0)
        quiet = rng.normal(size=400) * 0.1
        spiked = quiet.copy()
        spiked[300] = 50.0

        alerts = []
        for q, s in zip(quiet, spiked):
            alerts.extend(engine.ingest("quiet", float(q)))
            alerts.extend(engine.ingest("spiked", float(s)))
        alerts.extend(engine.drain())

        assert alerts, "spike did not alert"
        assert {alert.stream_id for alert in alerts} == {"spiked"}
        assert all(alert.score > alert.threshold for alert in alerts)
        # The alerting window must cover the spike position.
        assert any(
            alert.index - engine.config.window_length <= 300 < alert.index
            for alert in alerts
        )

    def test_no_alerts_during_cold_warmup(self, rng):
        scorer = RecordingScorer()
        engine, _ = make_engine(scorer, max_batch=1, warmup_scores=10)
        # Spike inside the first few windows: baseline has no calibration
        # and too few scores, so the engine must stay quiet.
        series = rng.normal(size=40) * 0.1
        series[20] = 50.0
        alerts = engine.ingest_many("s", series)
        alerts.extend(engine.drain())
        assert alerts == []

    def test_calibration_seeding_alerts_from_the_first_window(self, rng):
        calibration = rng.normal(size=64) * 0.1
        scorer = RecordingScorer(calibration=calibration)
        engine, _ = make_engine(scorer, max_batch=1, warmup_scores=10)
        series = rng.normal(size=40) * 0.1
        series[20] = 50.0
        alerts = engine.ingest_many("s", series)
        alerts.extend(engine.drain())
        assert alerts, "seeded baseline should alert without live warmup"


class TestAdmissionControl:
    def test_oldest_windows_are_shed_at_capacity(self, rng):
        scorer = RecordingScorer()
        # max_batch larger than capacity: flush never triggers during
        # ingestion, so the queue must shed to stay bounded.
        engine, _ = make_engine(scorer, max_batch=64, queue_capacity=4)
        for value in rng.normal(size=200):
            engine.ingest("s", float(value))
        assert engine.queue_depth <= 4
        assert engine.stats.shed > 0
        engine.drain()
        # Only the freshest windows survived.
        kept = scorer.batches[0]
        assert len(kept) == 4


class TestFailover:
    def test_failover_keeps_streams_flowing_and_resets_baselines(self, rng):
        registry = ModelRegistry()
        primary = RecordingScorer(name="primary", offset=0.0)
        fallback = RecordingScorer(name="fallback", offset=100.0)
        entry = registry.register(primary, max_failures=1)
        registry.register(fallback)
        engine = ScoringEngine(
            registry,
            EngineConfig(
                window_length=16,
                stride=4,
                max_batch=4,
                warmup_scores=4,
                alert_sigma=8.0,
            ),
        )

        streams = ["a", "b"]
        alerts = []
        values = rng.normal(size=300) * 0.1
        for i, value in enumerate(values):
            if i == 150:
                primary.score_windows = FailingScorer().score_windows
            for stream in streams:
                alerts.extend(engine.ingest(stream, float(value)))
        alerts.extend(engine.drain())

        assert entry.tripped
        assert engine.stats.fallback_batches > 0
        assert {"primary@v1", "fallback@v1"} <= engine.stats.models_used
        # The +100 scale jump must not alert: baselines reset on failover.
        assert alerts == []
        # Both streams kept producing scored windows after the switch.
        post_switch = [b for b in fallback.batches]
        assert any("a" in batch for batch in post_switch)
        assert any("b" in batch for batch in post_switch)


class TestAdaptiveBatching:
    def test_limit_halves_on_overrun_and_recovers(self):
        scorer = RecordingScorer()
        engine, _ = make_engine(scorer, max_batch=16, latency_budget_s=1.0)
        assert engine.batch_limit == 16
        engine._adapt_batch_limit(2.0)
        assert engine.batch_limit == 8
        engine._adapt_batch_limit(2.0)
        assert engine.batch_limit == 4
        engine._adapt_batch_limit(0.1)  # comfortably under budget / 4
        assert engine.batch_limit == 8
        engine._adapt_batch_limit(0.5)  # between budget/4 and budget: hold
        assert engine.batch_limit == 8

    def test_limit_never_leaves_bounds(self):
        scorer = RecordingScorer()
        engine, _ = make_engine(scorer, max_batch=4, latency_budget_s=1.0)
        for _ in range(10):
            engine._adapt_batch_limit(5.0)
        assert engine.batch_limit == 1
        for _ in range(10):
            engine._adapt_batch_limit(0.01)
        assert engine.batch_limit == 4


class TestReport:
    def test_report_is_json_ready(self, rng):
        import json

        scorer = RecordingScorer()
        engine, _ = make_engine(scorer, max_batch=4)
        for value in rng.normal(size=100):
            engine.ingest("s", float(value))
        engine.drain()
        report = engine.report()
        json.dumps(report)
        assert report["streams"] == 1
        assert report["windows_scored"] > 0
        assert report["latency_ms"]["p50"] >= 0.0
        assert report["chain"][0]["model"] == "recorder@v1"


class ScaledScorer(WindowScorer):
    """|max| of each window times a scale; calibration on the same scale."""

    def __init__(self, name, scale, calibration):
        self.name = name
        self.scale = scale
        self._calibration = calibration

    def score_windows(self, windows, batch):
        return np.abs(np.asarray(windows)).max(axis=1) * self.scale

    def calibration_scores(self, length, stride):
        return self._calibration


class TestPromotionCalibration:
    """Satellite: promote() mid-batch must not leak old calibration.

    v1 scores on a ~0.3 scale, v2 on a x100 scale.  Windows queued
    before the hot-swap are scored by v2 after it — judging them
    against a baseline banked on v1's scale would alert on all of
    them (or, after a rollback, never alert again).
    """

    def make(self, rng):
        calibration = rng.normal(size=256) * 0.05 + 0.35
        v1 = ScaledScorer("m", 1.0, calibration)
        v2 = ScaledScorer("m", 100.0, calibration * 100.0)
        registry = ModelRegistry()
        registry.register(v1)
        engine = ScoringEngine(
            registry,
            EngineConfig(
                window_length=16,
                stride=4,
                max_batch=8,
                warmup_scores=4,
                alert_sigma=6.0,
            ),
        )
        return engine, registry, v2

    def test_mid_batch_promotion_judges_queued_windows_on_new_scale(self, rng):
        engine, registry, v2 = self.make(rng)
        quiet = rng.normal(size=200) * 0.1
        alerts = []
        for value in quiet:
            alerts.extend(engine.ingest("s", float(value)))
        alerts.extend(engine.drain())
        assert alerts == []

        # Queue a few windows, then hot-swap before they are scored.
        for value in rng.normal(size=12) * 0.1:
            alerts.extend(engine.ingest("s", float(value)))
        assert engine.queue_depth > 0
        entry = registry.register(v2, name="m")
        registry.promote("m", entry.version)
        engine.reset_alert_baselines()
        alerts.extend(engine.drain())
        assert alerts == [], "old calibration leaked into the new model's scale"

        # The re-seeded baseline still catches real anomalies, at v2 scale.
        spike_alerts = []
        for value in np.full(20, 5.0):
            spike_alerts.extend(engine.ingest("s", float(value)))
        spike_alerts.extend(engine.drain())
        assert spike_alerts
        assert all(a.model == "m@v2" for a in spike_alerts)
        assert all(a.threshold > 10.0 for a in spike_alerts)

    def test_rollback_re_seeds_v1_scale(self, rng):
        engine, registry, v2 = self.make(rng)
        entry = registry.register(v2, name="m")
        registry.promote("m", entry.version)
        quiet = rng.normal(size=200) * 0.1
        alerts = []
        for value in quiet:
            alerts.extend(engine.ingest("s", float(value)))
        alerts.extend(engine.drain())
        assert alerts == []

        # Roll back to v1 mid-stream: baselines banked at x100 would
        # swallow every v1-scale anomaly without a reset.
        registry.promote("m", 1)
        engine.reset_alert_baselines()
        spike_alerts = []
        for value in np.full(24, 5.0):
            spike_alerts.extend(engine.ingest("s", float(value)))
        spike_alerts.extend(engine.drain())
        assert spike_alerts
        assert all(a.model == "m@v1" for a in spike_alerts)


class TestEngineConfigValidation:
    def test_valid_config_accepts_boundaries(self):
        EngineConfig(window_length=2, stride=1, score_baseline=4,
                     warmup_scores=4, alert_sigma=0.5, min_spread=0.0)

    @pytest.mark.parametrize("overrides", [
        {"score_baseline": 0},
        {"alert_sigma": 0.0},
        {"alert_sigma": -1.0},
        {"min_spread": -1e-12},
        {"warmup_scores": 20, "score_baseline": 10},
        {"warmup_scores": 0},
    ])
    def test_rejects_unusable_alert_settings(self, overrides):
        with pytest.raises(ValueError):
            EngineConfig(window_length=16, stride=4, **overrides)


class TestIngestManyFastPath:
    def _spiked_feed(self, rng, streams=4, points=300):
        feed = {f"s{i}": rng.normal(size=points) for i in range(streams)}
        feed["s1"][200:210] += 8.0  # make alerts actually fire
        return feed

    @pytest.mark.parametrize("chunk", [1, 3, 37, 100, 300])
    def test_chunked_equals_per_point(self, rng, chunk):
        feed = self._spiked_feed(rng)
        baseline_engine, _ = make_engine(RecordingScorer(), max_batch=8)
        chunked_engine, _ = make_engine(RecordingScorer(), max_batch=8)
        per_point, chunked = [], []
        for stream, values in feed.items():
            for value in values:
                per_point.extend(baseline_engine.ingest(stream, float(value)))
        per_point.extend(baseline_engine.drain())
        for stream, values in feed.items():
            for start in range(0, len(values), chunk):
                chunked.extend(
                    chunked_engine.ingest_many(stream, values[start:start + chunk])
                )
        chunked.extend(chunked_engine.drain())

        key = lambda alerts: [
            (a.stream_id, a.index, a.score, a.threshold) for a in alerts
        ]
        assert sorted(key(per_point)) == sorted(key(chunked))
        assert (
            baseline_engine.stats.windows_scored
            == chunked_engine.stats.windows_scored > 0
        )
        assert (
            baseline_engine.stats.points_ingested
            == chunked_engine.stats.points_ingested
        )

    def test_empty_chunk_is_a_noop(self, rng):
        engine, _ = make_engine(RecordingScorer())
        assert engine.ingest_many("s", np.array([])) == []
        assert engine.stats.points_ingested == 0

    def test_drift_monitor_still_sees_every_point(self, rng):
        from repro.serve.drift import DriftMonitor, PeriodChangeMonitor

        registry = ModelRegistry()
        registry.register(RecordingScorer())
        drift = DriftMonitor(period_monitor=PeriodChangeMonitor(16))
        engine = ScoringEngine(
            registry,
            EngineConfig(window_length=16, stride=4, warmup_scores=4),
            drift=drift,
        )
        values = rng.normal(size=400)
        engine.ingest_many("s", values)
        buffers = drift.period_monitor._buffers
        assert "s" in buffers and len(buffers["s"]) > 0


class TestStreamExternalization:
    def test_export_import_round_trip_is_bit_identical(self, rng):
        feed = {f"s{i}": rng.normal(size=260) for i in range(3)}
        feed["s0"][200:240] += 9.0
        source, _ = make_engine(RecordingScorer(), max_batch=8)
        resumed, _ = make_engine(RecordingScorer(), max_batch=8)
        uninterrupted, _ = make_engine(RecordingScorer(), max_batch=8)

        for stream, values in feed.items():
            source.ingest_many(stream, values[:130])
            uninterrupted.ingest_many(stream, values[:130])
        source.drain()
        uninterrupted.drain()

        for snapshot in source.export_streams(evict=True):
            resumed.import_stream(snapshot)
        assert source.streams == []

        continued, reference = [], []
        for stream, values in feed.items():
            continued.extend(resumed.ingest_many(stream, values[130:]))
            reference.extend(uninterrupted.ingest_many(stream, values[130:]))
        continued.extend(resumed.drain())
        reference.extend(uninterrupted.drain())

        key = lambda alerts: sorted(
            (a.stream_id, a.index, a.score, a.threshold) for a in alerts
        )
        assert key(continued) == key(reference)
        assert len(key(reference)) > 0

    def test_export_unknown_stream_returns_none(self):
        engine, _ = make_engine(RecordingScorer())
        assert engine.export_stream("ghost") is None

    def test_remove_stream_drops_queued_windows_as_shed(self, rng):
        engine, _ = make_engine(RecordingScorer(), max_batch=64)
        engine.ingest_many("doomed", rng.normal(size=40))
        engine.ingest_many("kept", rng.normal(size=40))
        assert engine.queue_depth > 0
        before = engine.stats.shed
        engine.remove_stream("doomed")
        assert engine.stats.shed > before
        assert all(r.stream_id == "kept" for r in engine._queue)
        assert "doomed" not in engine.streams
