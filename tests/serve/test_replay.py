"""End-to-end tests: replay harness, failover drill, and the CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data import make_archive
from repro.serve import (
    FailAfter,
    build_engine,
    build_registry,
    replay_dataset,
)


@pytest.fixture(scope="module")
def unit():
    """Archive unit 4 (005_sine_seasonal): clean separation for both the
    TriAD primary and the spectral-residual fallback."""
    return make_archive(size=5, seed=7, train_length=1600, test_length=2000)[4]


class TestTrainingFreeReplay:
    def test_detects_the_labelled_anomaly(self, unit):
        from repro.signal.windows import plan_windows

        plan = plan_windows(unit.train, max_length=256)
        registry = build_registry(train_series=unit.train)
        engine = build_engine(
            registry,
            window_length=plan.length,
            stride=plan.stride,
            expected_period=plan.period,
            max_batch=32,
        )
        report = replay_dataset(unit, engine, streams=2)

        assert report.points == 2 * len(unit.test)
        assert report.throughput_pps > 0
        assert report.anomaly_interval == unit.anomaly_interval
        assert report.detected, "replay missed the labelled anomaly"
        assert report.engine_report["shed"] == 0
        # Only the healthy primary was needed.
        assert report.engine_report["fallback_batches"] == 0

    def test_report_serializes_and_renders(self, unit):
        from repro.signal.windows import plan_windows

        plan = plan_windows(unit.train, max_length=256)
        registry = build_registry(train_series=unit.train)
        engine = build_engine(registry, window_length=plan.length, stride=plan.stride)
        report = replay_dataset(unit, engine, streams=1)
        json.dumps(report.as_dict())
        rendered = report.render()
        assert "replayed" in rendered
        assert "anomaly" in rendered

    def test_streams_must_be_positive(self, unit):
        registry = build_registry(train_series=unit.train)
        engine = build_engine(registry, window_length=64, stride=16)
        with pytest.raises(ValueError):
            replay_dataset(unit, engine, streams=0)


class TestFailoverDrill:
    def test_forced_failure_degrades_without_dropping_streams(self, unit):
        from repro.signal.windows import plan_windows

        from repro.serve.registry import SpectralResidualWindowScorer

        plan = plan_windows(unit.train, max_length=256)
        registry = build_registry(
            train_series=unit.train,
            fail_primary_after=2,
        )
        # Mirror the trained chain shape (primary -> healthy SR -> discord)
        # without paying for a TriAD fit: the fallback that takes over must
        # be one that separates this unit's anomaly.
        registry.register(
            SpectralResidualWindowScorer(calibration_series=unit.train),
            name="spectral-residual-backup",
        )
        registry.set_chain(
            ["spectral-residual", "spectral-residual-backup", "streaming-discord"]
        )
        engine = build_engine(
            registry,
            window_length=plan.length,
            stride=plan.stride,
            max_batch=16,
        )
        report = replay_dataset(unit, engine, streams=4)

        chain = report.engine_report["chain"]
        assert chain[0]["tripped"], "forced failure did not trip the primary"
        assert report.engine_report["fallback_batches"] > 0
        # No stream dropped: every emitted window was scored (none lost
        # to the failure) and all four streams produced alerts/windows.
        expected_windows = 4 * (1 + (len(unit.test) - plan.length) // plan.stride)
        assert report.engine_report["windows_scored"] == expected_windows
        # The fallback still catches the anomaly thanks to the seeded
        # calibration baselines.
        assert report.detected

    def test_fail_after_delegates_until_the_injected_failure(self, unit):
        from repro.serve.registry import SpectralResidualWindowScorer

        inner = SpectralResidualWindowScorer(calibration_series=unit.train)
        wrapped = FailAfter(inner, healthy_calls=2)
        windows = np.random.default_rng(0).normal(size=(3, 64))
        wrapped.score_windows(windows, [])
        wrapped.score_windows(windows, [])
        with pytest.raises(RuntimeError, match="injected failure"):
            wrapped.score_windows(windows, [])
        # Calibration passes through to the wrapped scorer.
        assert np.array_equal(
            wrapped.calibration_scores(64, 16), inner.calibration_scores(64, 16)
        )


class TestTriADReplay:
    def test_trained_primary_detects(self, unit):
        from repro import TriAD, TriADConfig

        detector = TriAD(
            TriADConfig(depth=2, hidden_dim=8, epochs=1, seed=1, max_window=256)
        ).fit(unit.train)
        registry = build_registry(detector, train_series=unit.train)
        # The deliberately tiny encoder separates this unit at ~4.4 sigma
        # (vs ~2.6 for the worst normal window), so alert at 3 sigma.
        engine = build_engine(
            registry,
            window_length=detector.plan.length,
            stride=detector.plan.stride,
            expected_period=detector.plan.period,
            alert_sigma=3.0,
        )
        report = replay_dataset(unit, engine, streams=2)
        assert report.engine_report["models_used"] == ["triad-encoder@v1"]
        assert report.detected


class TestServeReplayCLI:
    def test_training_free_run_writes_json_and_metrics(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.json"
        metrics = tmp_path / "metrics.jsonl"
        code = main(
            [
                "serve-replay",
                "--dataset", "4",
                "--epochs", "0",
                "--streams", "2",
                "--json", str(out),
                "--metrics-out", str(metrics),
            ]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert report["detected"] is True
        assert report["points"] == 2 * 2000
        assert metrics.exists() and metrics.stat().st_size > 0
        stdout = capsys.readouterr().out
        assert "DETECTED" in stdout
