"""Tests for the shard fabric: hash ring, worker engines, router
parity, migration, and off-path retraining (repro.serve.shard)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.shard import (
    HashRing,
    RecordingEngine,
    ShardRouter,
    WorkerSpec,
    build_worker_engine,
    subprocess_trainer,
)
from repro.serve.stores import InMemoryStore


# ----------------------------------------------------------------------
# Shared scenario: a small spectral-residual spec plus a spiked feed so
# the runs produce real alerts, not just zero-alert score streams.
# ----------------------------------------------------------------------
def make_spec(record_scores: bool = True) -> WorkerSpec:
    t = np.arange(800)
    train = np.sin(2 * np.pi * t / 32)
    train += 0.03 * np.random.default_rng(5).standard_normal(len(t))
    return WorkerSpec(
        detector="spectral-residual",
        params={"max_window": 64, "seed": 0},
        train=train,
        window_length=32,
        stride=8,
        engine={"max_batch": 16, "score_baseline": 64, "warmup_scores": 8},
        record_scores=record_scores,
    )


def make_feed(streams: int = 6, length: int = 480) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(77)
    t = np.arange(length)
    feed = {}
    for i in range(streams):
        series = np.sin(2 * np.pi * (t + 7 * i) / 32)
        series += 0.03 * rng.standard_normal(length)
        if i % 2 == 0:
            series[length // 2 : length // 2 + 6] += 6.0
        feed[f"stream-{i}"] = series
    return feed


def run_unsharded(spec: WorkerSpec, feed, chunk: int = 64):
    """Reference run: one engine, same chunk cadence as the router."""
    engine = build_worker_engine(spec)
    assert isinstance(engine, RecordingEngine)
    alerts = []
    length = max(len(series) for series in feed.values())
    for position in range(0, length, chunk):
        for stream_id, series in feed.items():
            alerts.extend(
                engine.ingest_many(stream_id, series[position : position + chunk])
            )
        alerts.extend(engine.drain())
    return sorted(engine.take_records()), sorted(
        (a.stream_id, a.index, a.score) for a in alerts
    )


def run_rounds(router: ShardRouter, feed, chunk: int = 64, hooks=None):
    """Drive the router round by round; ``hooks[round] -> callable``."""
    alerts, records = [], []
    length = max(len(series) for series in feed.values())
    rounds = range(0, length, chunk)
    for round_index, position in enumerate(rounds):
        if hooks and round_index in hooks:
            hooks[round_index](router)
        items = [
            (stream_id, series[position : position + chunk])
            for stream_id, series in feed.items()
        ]
        alerts.extend(router.submit(items))
        records.extend(router.last_records)
    return sorted(records), sorted(
        (a.stream_id, a.index, a.score) for a in alerts
    )


class TestHashRing:
    def test_deterministic_across_instances(self):
        keys = [f"k{i}" for i in range(200)]
        a = HashRing(["w0", "w1", "w2"])
        b = HashRing(["w2", "w0", "w1"])  # insertion order must not matter
        assert [a.owner(k) for k in keys] == [b.owner(k) for k in keys]

    def test_join_moves_keys_only_to_the_new_node(self):
        keys = [f"stream/{i}" for i in range(500)]
        ring = HashRing(["w0", "w1", "w2"])
        before = {k: ring.owner(k) for k in keys}
        ring.add_node("w3")
        moved = {k for k in keys if ring.owner(k) != before[k]}
        assert 0 < len(moved) < len(keys)
        assert all(ring.owner(k) == "w3" for k in moved)

    def test_leave_restores_prior_ownership_exactly(self):
        keys = [f"stream/{i}" for i in range(500)]
        ring = HashRing(["w0", "w1", "w2"])
        before = {k: ring.owner(k) for k in keys}
        ring.add_node("w3")
        ring.remove_node("w3")
        assert {k: ring.owner(k) for k in keys} == before

    def test_leave_moves_only_the_departed_nodes_keys(self):
        keys = [f"stream/{i}" for i in range(500)]
        ring = HashRing(["w0", "w1", "w2", "w3"])
        before = {k: ring.owner(k) for k in keys}
        ring.remove_node("w1")
        for key in keys:
            if before[key] != "w1":
                assert ring.owner(key) == before[key]
            else:
                assert ring.owner(key) != "w1"

    def test_every_node_gets_a_fair_share(self):
        keys = [f"stream/{i}" for i in range(3000)]
        ring = HashRing(["w0", "w1", "w2", "w3"])
        counts = {n: len(ids) for n, ids in ring.assignments(keys).items()}
        assert set(counts) == {"w0", "w1", "w2", "w3"}
        assert min(counts.values()) > 0.5 * (len(keys) / 4)

    def test_validation(self):
        with pytest.raises(ValueError, match="vnodes"):
            HashRing(vnodes=0)
        ring = HashRing(["w0"])
        with pytest.raises(ValueError, match="already"):
            ring.add_node("w0")
        with pytest.raises(KeyError):
            ring.remove_node("nope")
        with pytest.raises(RuntimeError, match="no nodes"):
            HashRing().owner("k")


class TestBuildWorkerEngine:
    def test_needs_train_series_without_detector_file(self):
        with pytest.raises(ValueError, match="train"):
            build_worker_engine(WorkerSpec(detector="spectral-residual"))

    def test_builds_recording_engine_on_request(self):
        plain = build_worker_engine(make_spec(record_scores=False))
        recording = build_worker_engine(make_spec(record_scores=True))
        assert not isinstance(plain, RecordingEngine)
        assert isinstance(recording, RecordingEngine)
        assert recording.config.window_length == 32
        assert recording.config.stride == 8


class TestShardedParity:
    def test_sharded_run_matches_unsharded_bit_for_bit(self):
        spec = make_spec()
        feed = make_feed()
        want_records, want_alerts = run_unsharded(spec, feed)
        with ShardRouter(spec, workers=3, store=InMemoryStore()) as router:
            got_records, got_alerts = run_rounds(router, feed)
        assert got_records == want_records
        assert len(want_records) > 0
        assert got_alerts == want_alerts
        assert len(want_alerts) > 0

    def test_store_holds_every_acked_stream(self):
        spec = make_spec(record_scores=False)
        feed = make_feed(streams=4)
        store = InMemoryStore()
        with ShardRouter(spec, workers=2, store=store) as router:
            run_rounds(router, feed)
            assert store.stream_ids() == sorted(feed)
            assert router.known_streams == sorted(feed)

    def test_report_covers_every_worker(self):
        spec = make_spec(record_scores=False)
        with ShardRouter(spec, workers=2, store=InMemoryStore()) as router:
            run_rounds(router, make_feed(streams=3, length=96))
            report = router.report()
        assert sorted(report["workers"]) == ["w0", "w1"]
        assert all(w["alive"] for w in report["workers"].values())
        assert report["streams"] == 3
        assert sum(report["ring"].values()) == 3


class TestMigration:
    def test_scale_out_and_in_mid_stream_is_bit_identical(self):
        spec = make_spec()
        feed = make_feed()
        want_records, want_alerts = run_unsharded(spec, feed)
        hooks = {
            3: lambda r: r.add_worker("w2"),
            5: lambda r: r.remove_worker("w0"),
        }
        with ShardRouter(spec, workers=2, store=InMemoryStore()) as router:
            got_records, got_alerts = run_rounds(router, feed, hooks=hooks)
        assert got_records == want_records
        assert got_alerts == want_alerts

    def test_join_migrates_exactly_the_reassigned_streams(self):
        spec = make_spec(record_scores=False)
        feed = make_feed(streams=12, length=96)
        with ShardRouter(spec, workers=2, store=InMemoryStore()) as router:
            run_rounds(router, feed)
            before = {
                sid: router.ring.owner(sid) for sid in router.known_streams
            }
            moved = router.add_worker("w2")
            assert moved == sorted(
                sid for sid in before if router.ring.owner(sid) != before[sid]
            )
            assert all(router.ring.owner(sid) == "w2" for sid in moved)

    def test_cannot_remove_the_last_worker(self):
        spec = make_spec(record_scores=False)
        with ShardRouter(spec, workers=1, store=InMemoryStore()) as router:
            with pytest.raises(ValueError, match="last worker"):
                router.remove_worker("w0")


class TestSubprocessTrainer:
    def test_offloaded_scorer_matches_inline(self, noisy_wave):
        from repro.serve.adapt import moment_trainer

        factory = moment_trainer()
        inline = factory(noisy_wave[:800], 3)
        offloaded = subprocess_trainer(factory)(noisy_wave[:800], 3)
        windows = np.lib.stride_tricks.sliding_window_view(
            noisy_wave[800:1000], 32
        )[::8].copy()
        np.testing.assert_array_equal(
            inline.score_windows(windows, None),
            offloaded.score_windows(windows, None),
        )

    def test_unpicklable_scorer_falls_back_inline(self):
        calls = []

        def trainer(train_series, seed):
            calls.append(seed)
            return lambda w, b: np.zeros(len(w))  # lambdas don't pickle

        scorer = subprocess_trainer(trainer)(np.zeros(64), 1)
        # once in the child (discarded), once inline in the parent
        assert calls == [1]
        assert scorer(np.zeros((3, 4)), None).shape == (3,)

    def test_child_error_propagates(self):
        def trainer(train_series, seed):
            raise RuntimeError("bad fit")

        with pytest.raises(RuntimeError, match="bad fit"):
            subprocess_trainer(trainer)(np.zeros(64), 1)


class TestServeShardCLI:
    def test_run_with_file_store_and_chaos_writes_report(self, tmp_path, capsys):
        import json

        from repro.cli import main

        out = tmp_path / "fabric.json"
        code = main([
            "serve-shard", "--dataset", "4", "--workers", "2",
            "--streams", "4", "--chunk", "512", "--store", "file",
            "--store-dir", str(tmp_path / "store"), "--kill-worker",
            "--json", str(out),
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "sharded replay" in stdout and "chaos: SIGKILL" in stdout
        payload = json.loads(out.read_text())
        assert payload["streams"] == 4 and payload["workers"] == 2
        assert payload["report"]["respawns"] == 1
        assert payload["report"]["heals"] >= 1
        assert sum(payload["report"]["ring"].values()) == 4

    def test_serve_replay_routes_through_the_fabric(self, tmp_path, capsys):
        import json

        from repro.cli import main

        out = tmp_path / "fabric.json"
        code = main([
            "serve-replay", "--dataset", "4", "--epochs", "0",
            "--workers", "2", "--streams", "2", "--json", str(out),
        ])
        assert code == 0
        assert "sharded replay" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["workers"] == 2 and payload["points"] == 2 * 2000

    def test_serve_replay_workers_rejects_adapt_and_chaos(self, capsys):
        from repro.cli import main

        assert main([
            "serve-replay", "--dataset", "4", "--epochs", "0",
            "--workers", "2", "--adapt",
        ]) == 2
        assert "incompatible" in capsys.readouterr().err
