"""Public API surface tests: exports exist, docstrings present."""

from __future__ import annotations

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.nn",
    "repro.signal",
    "repro.data",
    "repro.augment",
    "repro.core",
    "repro.discord",
    "repro.baselines",
    "repro.metrics",
    "repro.eval",
    "repro.viz",
    "repro.validation",
]


@pytest.mark.parametrize("package_name", PACKAGES)
class TestExports:
    def test_all_exports_resolve(self, package_name):
        package = importlib.import_module(package_name)
        assert hasattr(package, "__all__"), f"{package_name} lacks __all__"
        for name in package.__all__:
            assert hasattr(package, name), f"{package_name}.{name} missing"

    def test_package_docstring(self, package_name):
        package = importlib.import_module(package_name)
        assert package.__doc__ and package.__doc__.strip()

    def test_public_callables_documented(self, package_name):
        """Every public class/function reachable from __all__ has a docstring."""
        package = importlib.import_module(package_name)
        for name in package.__all__:
            obj = getattr(package, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__ and obj.__doc__.strip(), (
                    f"{package_name}.{name} lacks a docstring"
                )


class TestTopLevel:
    def test_version(self):
        import repro

        assert repro.__version__

    def test_headline_imports(self):
        from repro import TriAD, TriADConfig, TriADDetection  # noqa: F401

    def test_cli_importable(self):
        from repro.cli import build_parser, main  # noqa: F401

        parser = build_parser()
        assert parser.prog == "repro"
