"""Regression tests for the MERLIN length schedule after failed lengths.

Pre-fix, a first length whose DRAG retries were exhausted *and* whose
brute-force fallback raised (``exclusion_factor > 1.0`` on a short
series leaves no non-trivial neighbor) hit ``continue`` while
``recent_norm`` stayed empty — and the next length crashed with
``IndexError`` on ``recent_norm[-1]``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.discord.brute import brute_force_discord
from repro.discord.merlin import merlin


class TestScheduleAfterFailedLength:
    def test_wide_exclusion_on_short_series_completes(self):
        """The exact pre-fix crash: every length fails, none may assume a
        previous discord distance exists."""
        rng = np.random.default_rng(0)
        series = rng.standard_normal(20)
        # length 7: 14 subsequences, exclusion 14 -> DRAG degenerate and
        # brute force unsatisfiable; length 8 then crashed pre-fix.
        result = merlin(series, 7, 8, exclusion_factor=2.0)
        assert result.discords == []
        assert result.drag_calls > 0

    def test_exclusion_factor_two_short_series_multiple_lengths(self):
        rng = np.random.default_rng(1)
        series = rng.standard_normal(60)
        result = merlin(series, 8, 24, step=2, exclusion_factor=2.0)
        # Must terminate without IndexError; whatever lengths were
        # satisfiable produced discords at those lengths.
        for discord in result.discords:
            assert 8 <= discord.length <= 24

    def test_schedule_recovers_after_initial_failures(self):
        """Lengths that fail contribute nothing; the first *successful*
        length must use the first-length rule and still find the true
        discord."""
        t = np.arange(300)
        series = np.sin(2 * np.pi * t / 30)
        series[150:160] += 3.0  # an obvious discord
        # min_length 16 with a huge exclusion fails; later, shorter
        # effective geometry is impossible here, so instead verify the
        # equivalent: a from-scratch schedule on the satisfiable lengths
        # matches brute force.
        result = merlin(series, 16, 32, step=8, exclusion_factor=1.0)
        assert result.discords, "satisfiable lengths must produce discords"
        for discord in result.discords:
            exact = brute_force_discord(
                series, discord.length, exclusion=discord.length
            )
            assert discord.distance == pytest.approx(exact.distance, rel=1e-9)

    def test_empty_length_range(self):
        series = np.random.default_rng(2).standard_normal(10)
        result = merlin(series, 8, 9)  # 2*8 > 10: no admissible lengths
        assert result.discords == []
        assert result.drag_calls == 0
