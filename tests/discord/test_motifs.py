"""Tests for motif discovery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.discord import Motif, top_k_motifs


@pytest.fixture
def motif_series(rng):
    """Noise with an identical pattern planted twice."""
    x = rng.normal(size=600) * 0.5
    pattern = np.sin(np.linspace(0, 4 * np.pi, 40))
    x[100:140] += pattern * 3
    x[400:440] += pattern * 3
    return x


class TestTopKMotifs:
    def test_finds_planted_pair(self, motif_series):
        motifs = top_k_motifs(motif_series, length=40, k=1)
        assert len(motifs) == 1
        motif = motifs[0]
        assert abs(motif.first - 100) < 8
        assert abs(motif.second - 400) < 8
        # Far closer than random 40-point subsequences (~2*sqrt(40) ~ 12.6).
        assert motif.distance < 4.0

    def test_intervals_property(self, motif_series):
        motif = top_k_motifs(motif_series, length=40)[0]
        (a_lo, a_hi), (b_lo, b_hi) = motif.intervals
        assert a_hi - a_lo == 40
        assert b_hi - b_lo == 40
        assert a_lo <= b_lo

    def test_motifs_non_overlapping(self, rng):
        x = np.sin(2 * np.pi * np.arange(800) / 40) + 0.05 * rng.standard_normal(800)
        motifs = top_k_motifs(x, length=40, k=3)
        occupied: list[tuple[int, int]] = []
        for motif in motifs:
            for lo, hi in motif.intervals:
                for prev_lo, prev_hi in occupied:
                    assert hi <= prev_lo or lo >= prev_hi
                occupied.append((lo, hi))

    def test_distances_non_decreasing(self, rng):
        x = np.sin(2 * np.pi * np.arange(800) / 40) + 0.05 * rng.standard_normal(800)
        motifs = top_k_motifs(x, length=40, k=3)
        distances = [m.distance for m in motifs]
        assert distances == sorted(distances)

    def test_motif_beats_discord(self, motif_series):
        """The motif pair is closer than the series' top discord is to
        anything — the two ends of the profile."""
        from repro.discord import brute_force_discord

        motif = top_k_motifs(motif_series, length=40)[0]
        discord = brute_force_discord(motif_series, 40)
        assert motif.distance < discord.distance

    def test_invalid_k(self, motif_series):
        with pytest.raises(ValueError):
            top_k_motifs(motif_series, length=10, k=0)
