"""Tests for top-K discords and the streaming (left-profile) detector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.discord import (
    StreamingDiscordDetector,
    brute_force_discord,
    left_matrix_profile,
    top_k_discords,
)


@pytest.fixture
def two_anomaly_series(rng):
    t = np.arange(1500)
    x = np.sin(2 * np.pi * t / 50) + 0.04 * rng.standard_normal(len(t))
    x[400:440] = -x[400:440]  # event 1: inverted cycles
    x[1000:1040] += np.sin(2 * np.pi * np.arange(40) / 10)  # event 2: fast ripple
    return x


class TestTopKDiscords:
    def test_k1_matches_brute_force(self, two_anomaly_series):
        top = top_k_discords(two_anomaly_series, 50, k=1)
        reference = brute_force_discord(two_anomaly_series, 50, exclusion=50)
        assert top[0].index == reference.index
        assert top[0].distance == pytest.approx(reference.distance)

    def test_finds_both_events(self, two_anomaly_series):
        # Suppress a wide neighborhood so the two picks are distinct
        # events, not two shoulders of the same one.
        top = top_k_discords(two_anomaly_series, 50, k=2, suppression=200)
        assert len(top) == 2
        centers = sorted(d.index + 25 for d in top)
        assert abs(centers[0] - 420) < 80
        assert abs(centers[1] - 1020) < 80

    def test_results_non_overlapping(self, two_anomaly_series):
        top = top_k_discords(two_anomaly_series, 50, k=5)
        indices = [d.index for d in top]
        for i, a in enumerate(indices):
            for b in indices[i + 1 :]:
                assert abs(a - b) >= 50

    def test_distances_non_increasing(self, two_anomaly_series):
        top = top_k_discords(two_anomaly_series, 50, k=4)
        distances = [d.distance for d in top]
        assert distances == sorted(distances, reverse=True)

    def test_k_larger_than_possible(self, rng):
        x = rng.normal(size=120)
        top = top_k_discords(x, 40, k=10)
        assert 0 < len(top) <= 2  # only ~2 non-overlapping length-40 slots

    def test_invalid_k(self, rng):
        with pytest.raises(ValueError):
            top_k_discords(rng.normal(size=100), 10, k=0)


class TestLeftMatrixProfile:
    def test_past_only_semantics(self, rng):
        x = rng.normal(size=200)
        length = 12
        profile = left_matrix_profile(x, length)
        # First `length` entries have no fully-past neighbor.
        assert np.all(np.isinf(profile[:length]))
        assert np.all(np.isfinite(profile[length:]))

    def test_matches_python_loop_reference(self, rng):
        from repro.discord.distance import znorm_subsequences

        x = rng.normal(size=300)
        length = 14
        profile = left_matrix_profile(x, length)
        z = znorm_subsequences(x, length)
        reference = np.full(len(z), np.inf)
        for i in range(length, len(z)):
            eligible = z[: i - length + 1]
            sq = ((eligible - z[i]) ** 2).sum(axis=1)
            reference[i] = np.sqrt(max(float(sq.min()), 0.0))
        finite = np.isfinite(reference)
        np.testing.assert_allclose(profile[finite], reference[finite], atol=1e-9)
        assert np.all(np.isinf(profile[~finite]))

    def test_chunk_invariance(self, rng):
        x = rng.normal(size=250)
        a = left_matrix_profile(x, 10, chunk=3)
        b = left_matrix_profile(x, 10, chunk=1024)
        np.testing.assert_allclose(a, b, equal_nan=True)

    def test_manual_check(self, rng):
        from repro.discord.distance import znorm_subsequences

        x = rng.normal(size=80)
        length = 10
        profile = left_matrix_profile(x, length)
        z = znorm_subsequences(x, length)
        i = 40
        expected = min(np.linalg.norm(z[j] - z[i]) for j in range(i - length + 1))
        assert profile[i] == pytest.approx(expected, abs=1e-9)

    def test_novel_pattern_has_high_left_distance(self, two_anomaly_series):
        profile = left_matrix_profile(two_anomaly_series[:600], 50)
        peak = int(np.argmax(np.where(np.isfinite(profile), profile, -np.inf)))
        assert 350 <= peak <= 450  # the inverted-cycle event


class TestStreamingDetector:
    def test_alerts_on_planted_anomaly(self, two_anomaly_series):
        detector = StreamingDiscordDetector(length=25, warmup=40, sigma=4.0)
        for value in two_anomaly_series[:700]:
            detector.update(value)
        assert detector.alerts, "no alert raised on a strong anomaly"
        first = detector.alerts[0]
        assert 350 <= first.index <= 460

    def test_quiet_on_clean_periodic_data(self, sine_wave):
        detector = StreamingDiscordDetector(length=25, warmup=40, sigma=6.0)
        for value in sine_wave:
            detector.update(value)
        assert len(detector.alerts) == 0

    def test_points_seen_counter(self):
        detector = StreamingDiscordDetector(length=5, warmup=5)
        for value in range(42):
            detector.update(float(value))
        assert detector.points_seen == 42

    def test_max_history_bounds_memory(self, rng):
        detector = StreamingDiscordDetector(length=5, warmup=5, max_history=50)
        for value in rng.normal(size=500):
            detector.update(float(value))
        assert len(detector._history) <= 50

    def test_distance_baseline_is_bounded(self, rng):
        from repro.discord.streaming import BASELINE_WINDOW

        detector = StreamingDiscordDetector(length=5, warmup=5)
        for value in rng.normal(size=3000):
            detector.update(float(value))
        # The threshold baseline only ever reads the trailing
        # BASELINE_WINDOW entries, so the list must not grow past that
        # (plus the one in-flight distance) on an unbounded stream.
        assert len(detector._distances) <= BASELINE_WINDOW + 1
        assert detector._distances_seen > BASELINE_WINDOW + 1

    def test_trimming_does_not_change_alerts(self, two_anomaly_series):
        # warmup accounting uses the total-seen counter, not the trimmed
        # list length, so alerts match the untrimmed implementation.
        detector = StreamingDiscordDetector(length=25, warmup=40, sigma=4.0)
        for value in two_anomaly_series[:700]:
            detector.update(value)
        assert detector.alerts
        assert 350 <= detector.alerts[0].index <= 460

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamingDiscordDetector(length=1)
        with pytest.raises(ValueError):
            StreamingDiscordDetector(length=5, warmup=1)
