"""Discord algorithm tests: brute force, DRAG, MERLIN, MERLIN++, matrix profile."""

from __future__ import annotations

import numpy as np
import pytest

from repro.discord import (
    brute_force_discord,
    drag,
    matrix_profile,
    merlin,
    merlinpp,
)


@pytest.fixture
def discord_series(rng):
    """Periodic series with a planted shape anomaly around index 600."""
    t = np.arange(1200)
    x = np.sin(2 * np.pi * t / 50) + 0.05 * rng.standard_normal(len(t))
    x[600:650] = np.sin(2 * np.pi * np.arange(50) / 12.5) + 0.05 * rng.standard_normal(50)
    return x


class TestBruteForce:
    def test_finds_planted_discord(self, discord_series):
        found = brute_force_discord(discord_series, 50, exclusion=50)
        assert 550 <= found.index <= 655

    def test_interval_property(self, discord_series):
        found = brute_force_discord(discord_series, 50)
        assert found.interval == (found.index, found.index + 50)

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            brute_force_discord(np.zeros(20), 15, exclusion=15)


class TestDrag:
    def test_agrees_with_brute_force_when_r_valid(self, discord_series):
        reference = brute_force_discord(discord_series, 50, exclusion=50)
        found = drag(discord_series, 50, r=reference.distance * 0.9, exclusion=50)
        assert found is not None
        assert found.index == reference.index
        assert found.distance == pytest.approx(reference.distance, abs=1e-9)

    def test_tiny_r_equals_brute_force(self, discord_series):
        reference = brute_force_discord(discord_series, 40, exclusion=40)
        found = drag(discord_series, 40, r=1e-6, exclusion=40)
        assert found is not None
        assert found.index == reference.index

    def test_huge_r_fails(self, discord_series):
        assert drag(discord_series, 50, r=1e6, exclusion=50) is None

    def test_series_too_short_returns_none(self):
        assert drag(np.zeros(30), 20, r=1.0, exclusion=20) is None


class TestMerlin:
    def test_discords_cluster_on_anomaly(self, discord_series):
        result = merlin(discord_series, 30, 70, step=10)
        assert len(result.discords) == 5
        hits = sum(1 for d in result.discords if 540 <= d.index <= 660)
        assert hits >= 4

    def test_lengths_covered(self, discord_series):
        result = merlin(discord_series, 20, 60, step=20)
        assert [d.length for d in result.discords] == [20, 40, 60]

    def test_each_length_matches_brute_force(self, discord_series):
        result = merlin(discord_series, 25, 55, step=15)
        for found in result.discords:
            reference = brute_force_discord(
                discord_series, found.length, exclusion=found.length
            )
            assert found.index == reference.index
            assert found.distance == pytest.approx(reference.distance, abs=1e-9)

    def test_intervals_and_best(self, discord_series):
        result = merlin(discord_series, 30, 50, step=20)
        assert len(result.intervals()) == len(result.discords)
        assert result.best() in result.discords

    def test_empty_result_for_too_short_series(self):
        result = merlin(np.zeros(20), 15, 30)
        assert result.discords == []
        assert result.best() is None

    def test_skips_lengths_exceeding_half_series(self, discord_series):
        result = merlin(discord_series[:100], 30, 80, step=10)
        assert all(d.length <= 50 for d in result.discords)


class TestMerlinPP:
    def test_exactly_matches_merlin(self, discord_series):
        a = merlin(discord_series, 20, 70, step=10)
        b = merlinpp(discord_series, 20, 70, step=10)
        assert len(a.discords) == len(b.discords)
        for x, y in zip(a.discords, b.discords):
            assert x.length == y.length
            assert x.index == y.index
            assert x.distance == pytest.approx(y.distance, abs=1e-6)

    def test_handles_short_series(self):
        result = merlinpp(np.sin(np.arange(60) / 3.0), 10, 25, step=5)
        assert all(d.length <= 30 for d in result.discords)


class TestMatrixProfile:
    def test_profile_shape(self, rng):
        x = rng.normal(size=150)
        mp = matrix_profile(x, 20)
        assert mp.profile.shape == (131,)
        assert mp.indices.shape == (131,)

    def test_discord_index_matches_brute(self, discord_series):
        mp = matrix_profile(discord_series, 50, exclusion=50)
        reference = brute_force_discord(discord_series, 50, exclusion=50)
        assert mp.discord_index() == reference.index

    def test_motif_pair_is_mutual_and_close(self, sine_wave):
        mp = matrix_profile(sine_wave, 25)
        i, j = mp.motif_pair()
        assert abs(i - j) >= 12  # outside the exclusion zone
        assert mp.profile[i] == pytest.approx(mp.profile.min())

    def test_nn_indices_respect_exclusion(self, rng):
        x = rng.normal(size=120)
        mp = matrix_profile(x, 10, exclusion=8)
        positions = np.arange(len(mp.indices))
        assert np.all(np.abs(mp.indices - positions) >= 8)
