"""Distance kernel tests, including metric properties."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.discord import (
    nearest_neighbor_distances,
    trivial_match_mask,
    znorm_distance,
    znorm_subsequences,
)

vectors = hnp.arrays(
    dtype=np.float64,
    shape=st.just(16),
    elements=st.floats(min_value=-10, max_value=10, allow_nan=False),
)


class TestZnormSubsequences:
    def test_shape(self, rng):
        z = znorm_subsequences(rng.normal(size=100), 20)
        assert z.shape == (81, 20)

    def test_rows_normalized(self, rng):
        z = znorm_subsequences(rng.normal(size=200) * 5 + 3, 25)
        assert np.allclose(z.mean(axis=1), 0.0, atol=1e-10)
        assert np.allclose(z.std(axis=1), 1.0)

    def test_length_too_long_raises(self):
        with pytest.raises(ValueError):
            znorm_subsequences(np.zeros(10), 11)

    def test_constant_subsequence_zeroed(self):
        x = np.concatenate([np.ones(30), np.sin(np.arange(30))])
        z = znorm_subsequences(x, 10)
        assert np.allclose(z[0], 0.0)


class TestZnormDistance:
    def test_identical_is_zero(self, rng):
        x = rng.normal(size=32)
        assert znorm_distance(x, x) == pytest.approx(0.0, abs=1e-9)

    def test_amplitude_invariance(self, rng):
        x = rng.normal(size=32)
        assert znorm_distance(x, 5 * x + 3) == pytest.approx(0.0, abs=1e-9)

    def test_inverted_is_maximal(self, rng):
        x = rng.normal(size=64)
        d = znorm_distance(x, -x)
        assert d == pytest.approx(2 * np.sqrt(len(x)), rel=1e-6)

    @given(vectors, vectors, vectors)
    @settings(max_examples=30, deadline=None)
    def test_property_triangle_inequality(self, a, b, c):
        """z-norm Euclidean distance is a metric on the z-normed points."""
        dab = znorm_distance(a, b)
        dbc = znorm_distance(b, c)
        dac = znorm_distance(a, c)
        assert dac <= dab + dbc + 1e-6

    @given(vectors, vectors)
    @settings(max_examples=30, deadline=None)
    def test_property_symmetry_nonnegativity(self, a, b):
        assert znorm_distance(a, b) == pytest.approx(znorm_distance(b, a), abs=1e-9)
        assert znorm_distance(a, b) >= 0


class TestTrivialMatchMask:
    def test_band_structure(self):
        mask = trivial_match_mask(5, 2)
        assert mask[0, 0] and mask[0, 1] and not mask[0, 2]
        assert np.array_equal(mask, mask.T)


class TestNearestNeighborDistances:
    def test_matches_naive_computation(self, rng):
        x = rng.normal(size=80)
        length, exclusion = 10, 5
        fast = nearest_neighbor_distances(x, length, exclusion=exclusion)
        z = znorm_subsequences(x, length)
        count = len(z)
        naive = np.empty(count)
        for i in range(count):
            dists = [
                np.linalg.norm(z[i] - z[j])
                for j in range(count)
                if abs(i - j) >= exclusion
            ]
            naive[i] = min(dists)
        assert np.allclose(fast, naive, atol=1e-8)

    def test_chunking_invariance(self, rng):
        x = rng.normal(size=300)
        a = nearest_neighbor_distances(x, 16, chunk=7)
        b = nearest_neighbor_distances(x, 16, chunk=512)
        assert np.allclose(a, b)

    def test_planted_discord_has_max_distance(self, sine_wave):
        x = sine_wave.copy()
        x[500:520] = x[500:520] * -1.0  # inverted cycle = discord
        profile = nearest_neighbor_distances(x, 25, exclusion=25)
        peak = int(np.argmax(profile))
        assert 470 <= peak <= 525


class TestExclusionZoneContract:
    def test_banned_rows_return_inf_not_error(self, rng):
        """Documented contract: a subsequence whose every pair falls in
        the exclusion zone gets an inf entry, not an exception."""
        x = rng.normal(size=20)
        length = 7  # 14 subsequences
        profile = nearest_neighbor_distances(x, length, exclusion=14)
        assert profile.shape == (14,)
        assert np.isinf(profile).all()

    def test_partial_ban_mixes_inf_and_finite(self, rng):
        x = rng.normal(size=24)
        length = 5  # 20 subsequences, exclusion 15: only edges have pairs
        profile = nearest_neighbor_distances(x, length, exclusion=15)
        assert np.isfinite(profile[0])
        assert np.isfinite(profile[-1])
        assert np.isinf(profile[10])

    def test_brute_force_error_names_geometry(self, rng):
        from repro.discord import brute_force_discord

        x = rng.normal(size=20)
        with pytest.raises(ValueError) as exc_info:
            brute_force_discord(x, 7, exclusion=14)
        message = str(exc_info.value)
        assert "length=7" in message
        assert "exclusion=14" in message

    def test_brute_force_error_reports_default_exclusion(self, rng):
        from repro.discord import brute_force_discord

        x = rng.normal(size=8)
        with pytest.raises(ValueError, match="exclusion=3"):
            brute_force_discord(x, 6)  # default exclusion = 6 // 2
