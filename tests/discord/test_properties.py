"""Hypothesis property tests on discord-discovery invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.discord import (
    brute_force_discord,
    drag,
    matrix_profile,
    nearest_neighbor_distances,
    top_k_discords,
)


def make_series(seed: int, n: int = 160) -> np.ndarray:
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    period = int(rng.integers(10, 30))
    return np.sin(2 * np.pi * t / period) + 0.1 * rng.standard_normal(n)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_drag_with_small_r_equals_brute_force(seed):
    """DRAG's correctness guarantee: r <= discord distance => exact result."""
    series = make_series(seed)
    length = 16
    reference = brute_force_discord(series, length, exclusion=length)
    found = drag(series, length, r=reference.distance * 0.5, exclusion=length)
    assert found is not None
    assert found.index == reference.index
    assert found.distance == pytest.approx(reference.distance, abs=1e-9)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_profile_bounds(seed):
    """NN distances are bounded by 2*sqrt(length) for z-normed vectors."""
    series = make_series(seed)
    length = 12
    profile = nearest_neighbor_distances(series, length, exclusion=length)
    finite = profile[np.isfinite(profile)]
    assert np.all(finite >= 0)
    assert np.all(finite <= 2.0 * np.sqrt(length) + 1e-6)


@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=4))
@settings(max_examples=15, deadline=None)
def test_top_k_prefix_property(seed, k):
    """top_k(k) is a prefix of top_k(k+1)."""
    series = make_series(seed, n=200)
    length = 15
    smaller = top_k_discords(series, length, k=k)
    larger = top_k_discords(series, length, k=k + 1)
    for a, b in zip(smaller, larger):
        assert a.index == b.index
        assert a.distance == pytest.approx(b.distance)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_matrix_profile_symmetric_reachability(seed):
    """Each NN index must point at a finite-distance subsequence that is
    outside the exclusion zone."""
    series = make_series(seed)
    length = 10
    mp = matrix_profile(series, length)
    positions = np.arange(len(mp.indices))
    exclusion = max(length // 2, 1)
    assert np.all(np.abs(mp.indices - positions) >= exclusion)
    assert np.all(mp.profile[np.isfinite(mp.profile)] >= 0)
