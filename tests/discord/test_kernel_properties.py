"""Hypothesis property suite: kernel modes match the reference oracle.

The contract the whole refactor rests on (and docs/PERF.md documents):
for any series, subsequence length, and exclusion zone, the blocked and
fft kernel modes return *identical discord indices* and distances within
``1e-9`` of the original scalar implementations — including degenerate
constant subsequences and the short-series all-``inf`` contract of
``nearest_neighbor_distances``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.discord import (
    brute_force_discord,
    damp,
    discord_mode,
    drag,
    matrix_profile,
    merlin,
    nearest_neighbor_distances,
)
from repro.discord.distance import (
    nearest_neighbor_distances as reference_nn_distances,
)

FAST_MODES = ("blocked", "fft")


def make_series(seed: int, n: int = 180, constant_run: bool = False) -> np.ndarray:
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    period = int(rng.integers(8, 40))
    series = np.sin(2 * np.pi * t / period) + 0.15 * rng.standard_normal(n)
    if constant_run:
        start = int(rng.integers(0, n - 40))
        series[start : start + 40] = series[start]
    return series


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    length=st.integers(min_value=3, max_value=48),
    exclusion_num=st.integers(min_value=1, max_value=8),
    constant_run=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_nn_profile_matches_reference(seed, length, exclusion_num, constant_run):
    """Every mode reproduces the reference NN profile to 1e-9."""
    series = make_series(seed, constant_run=constant_run)
    # Exclusion factors from 1/4 of the length up to 2x it.
    exclusion = max(length * exclusion_num // 4, 1)
    oracle = reference_nn_distances(series, length, exclusion=exclusion)
    for mode in FAST_MODES:
        with discord_mode(mode):
            fast = nearest_neighbor_distances(series, length, exclusion=exclusion)
        np.testing.assert_array_equal(np.isinf(fast), np.isinf(oracle), err_msg=mode)
        finite = np.isfinite(oracle)
        np.testing.assert_allclose(fast[finite], oracle[finite], atol=1e-9, err_msg=mode)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_drag_matches_reference(seed):
    """Blocked DRAG returns the same discord as the sequential scan."""
    series = make_series(seed)
    length = 16
    with discord_mode("reference"):
        oracle = drag(series, length, r=1.0)
    for mode in FAST_MODES:
        with discord_mode(mode):
            fast = drag(series, length, r=1.0)
        if oracle is None:
            assert fast is None, mode
        else:
            assert fast is not None, mode
            assert fast.index == oracle.index, mode
            assert fast.distance == pytest.approx(oracle.distance, abs=1e-9)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_drag_success_threshold_agrees(seed):
    """Both paths succeed/fail together at r just around the discord
    distance (the property MERLIN's schedule depends on)."""
    series = make_series(seed)
    length = 12
    top = brute_force_discord(series, length, exclusion=length)
    for r, should_find in ((top.distance * 0.999, True), (top.distance * 1.5, None)):
        with discord_mode("reference"):
            oracle = drag(series, length, r)
        with discord_mode("blocked"):
            fast = drag(series, length, r)
        assert (oracle is None) == (fast is None)
        if should_find:
            assert fast is not None and fast.index == top.index


@given(seed=st.integers(min_value=0, max_value=10_000), constant_run=st.booleans())
@settings(max_examples=15, deadline=None)
def test_merlin_matches_reference(seed, constant_run):
    """The full MERLIN sweep — lower-bound seeding, pre-pruning and all —
    finds identical discords in every mode."""
    series = make_series(seed, constant_run=constant_run)
    with discord_mode("reference"):
        oracle = merlin(series, 8, 40, step=8)
    for mode in FAST_MODES:
        with discord_mode(mode):
            fast = merlin(series, 8, 40, step=8)
        assert [(d.index, d.length) for d in fast.discords] == [
            (d.index, d.length) for d in oracle.discords
        ], mode
        for a, b in zip(fast.discords, oracle.discords):
            assert a.distance == pytest.approx(b.distance, abs=1e-9)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_matrix_profile_and_damp_match_reference(seed):
    series = make_series(seed)
    length = 14
    with discord_mode("reference"):
        mp_oracle = matrix_profile(series, length)
        damp_oracle = damp(series, length)
    for mode in FAST_MODES:
        with discord_mode(mode):
            mp_fast = matrix_profile(series, length)
            damp_fast = damp(series, length)
        np.testing.assert_array_equal(mp_fast.indices, mp_oracle.indices, err_msg=mode)
        np.testing.assert_allclose(
            mp_fast.profile, mp_oracle.profile, atol=1e-9, err_msg=mode
        )
        assert (damp_fast.discord is None) == (damp_oracle.discord is None)
        if damp_oracle.discord is not None:
            assert damp_fast.discord.index == damp_oracle.discord.index
            assert damp_fast.discord.distance == pytest.approx(
                damp_oracle.discord.distance, abs=1e-9
            )


@given(
    n=st.integers(min_value=8, max_value=24),
    length=st.integers(min_value=4, max_value=8),
)
@settings(max_examples=25, deadline=None)
def test_short_series_all_inf_contract(n, length):
    """A zone wide enough to ban every pair yields all-inf, not an error,
    in every mode."""
    series = np.sin(np.arange(n) / 2.0)
    count = n - length + 1
    exclusion = count  # |i - j| < count always holds
    for mode in ("reference", *FAST_MODES):
        with discord_mode(mode):
            profile = nearest_neighbor_distances(series, length, exclusion=exclusion)
        assert profile.shape == (count,)
        assert np.isinf(profile).all(), mode
