"""Tests for DAMP-style left-discord discovery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.discord import damp, left_matrix_profile


@pytest.fixture
def anomalous_stream(rng):
    t = np.arange(1200)
    x = np.sin(2 * np.pi * t / 40) + 0.05 * rng.standard_normal(len(t))
    x[700:750] += np.sin(2 * np.pi * np.arange(50) / 8) * 1.5
    return x


class TestDamp:
    def test_matches_exact_left_profile_argmax(self, anomalous_stream):
        length = 40
        train_size = 4 * length
        result = damp(anomalous_stream, length, train_size=train_size)
        exact = left_matrix_profile(anomalous_stream, length)
        exact_region = np.where(np.isfinite(exact), exact, -np.inf)
        exact_region[:train_size] = -np.inf
        expected_index = int(np.argmax(exact_region))
        assert result.discord is not None
        assert result.discord.index == expected_index
        assert result.discord.distance == pytest.approx(
            float(exact_region[expected_index]), abs=1e-9
        )

    def test_discord_lands_on_anomaly(self, anomalous_stream):
        result = damp(anomalous_stream, 40)
        assert result.discord is not None
        assert 650 <= result.discord.index <= 760

    def test_early_abandon_saves_work(self, anomalous_stream):
        """DAMP must do less distance work than the exhaustive left MP."""
        length = 40
        result = damp(anomalous_stream, length)
        count = len(anomalous_stream) - length + 1
        exhaustive = sum(max(i - length + 1, 0) for i in range(count))
        assert result.distances_computed < 0.8 * exhaustive

    def test_profile_upper_bounds_exact(self, anomalous_stream):
        length = 40
        result = damp(anomalous_stream, length, train_size=4 * length)
        exact = left_matrix_profile(anomalous_stream, length)
        mask = np.isfinite(exact)
        mask[: 4 * length] = False
        # DAMP's recorded values never fall below the exact left-NN
        # distance minus numerical slack (they abandon early, from a
        # *subset* of the past, so they are upper bounds).
        assert np.all(result.profile[mask] >= exact[mask] - 1e-9)

    def test_too_short_series(self):
        result = damp(np.zeros(30), 20)
        assert result.discord is None

    def test_deterministic(self, anomalous_stream):
        a = damp(anomalous_stream, 32)
        b = damp(anomalous_stream, 32)
        assert a.discord == b.discord
        assert a.distances_computed == b.distances_computed
