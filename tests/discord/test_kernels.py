"""Unit tests for the shared discord kernel layer.

Covers the mode-dispatch family, ``SeriesContext`` moment/z-norm reuse,
the one documented home for exclusion-zone defaults (pinning each
algorithm's effective zone), and the ``StreamingDiscordDetector``
``baseline_window`` parameter.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.discord import (
    StreamingDiscordDetector,
    default_exclusion,
    discord_mode,
    drag,
    get_discord_mode,
    matrix_profile,
    nearest_neighbor_distances,
    set_discord_mode,
    top_k_discords,
    top_k_motifs,
    znorm_subsequences,
)
from repro.discord.distance import (
    nearest_neighbor_distances as reference_nn_distances,
)
from repro.discord.kernels import (
    AUTO_FFT_MIN_COUNT,
    AUTO_FFT_MIN_LENGTH,
    SeriesContext,
    resolve_mode,
)
from repro.discord.streaming import BASELINE_WINDOW


@pytest.fixture
def series(rng):
    s = rng.normal(size=400)
    s[250:270] += 3.0
    return s


# ----------------------------------------------------------------------
# Mode dispatch
# ----------------------------------------------------------------------
class TestModeDispatch:
    def test_default_mode_is_auto(self):
        assert get_discord_mode() == "auto"

    def test_set_returns_previous_and_rejects_unknown(self):
        previous = set_discord_mode("blocked")
        try:
            assert previous == "auto"
            assert get_discord_mode() == "blocked"
            with pytest.raises(ValueError, match="unknown discord mode"):
                set_discord_mode("simd")
            assert get_discord_mode() == "blocked"
        finally:
            set_discord_mode(previous)

    def test_context_manager_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with discord_mode("reference"):
                assert get_discord_mode() == "reference"
                raise RuntimeError("boom")
        assert get_discord_mode() == "auto"

    def test_auto_resolution_thresholds(self):
        assert resolve_mode("auto", 16, 10_000) == "blocked"
        assert resolve_mode("auto", AUTO_FFT_MIN_LENGTH, AUTO_FFT_MIN_COUNT) == "fft"
        assert resolve_mode("auto", AUTO_FFT_MIN_LENGTH, 10) == "blocked"
        assert resolve_mode("blocked", 10_000, 10_000) == "blocked"
        assert resolve_mode("reference", 10_000, 10_000) == "reference"
        with pytest.raises(ValueError, match="unknown discord mode"):
            resolve_mode("simd", 16, 16)


# ----------------------------------------------------------------------
# SeriesContext
# ----------------------------------------------------------------------
class TestSeriesContext:
    def test_moments_match_two_pass(self, series):
        ctx = SeriesContext(series)
        for length in (3, 16, 33):
            mean, std = ctx.moments(length)
            subs = np.lib.stride_tricks.sliding_window_view(series, length)
            np.testing.assert_allclose(mean, subs.mean(axis=1), atol=1e-12)
            np.testing.assert_allclose(std, subs.std(axis=1), atol=1e-12)

    def test_constant_windows_match_bitwise(self):
        # Catastrophic cancellation in the prefix sums would leave a tiny
        # spurious std on constant windows; the suspect-row recompute must
        # reproduce the two-pass result exactly.
        s = np.concatenate([np.full(50, 7.123456), np.sin(np.arange(60))])
        ctx = SeriesContext(s)
        length = 8
        mean, std = ctx.moments(length)
        subs = np.lib.stride_tricks.sliding_window_view(s, length)
        constant = subs.std(axis=1) == 0.0
        assert constant.any()
        # Constant windows go through the exact two-pass recompute and
        # must match bitwise; mixed windows only to fp accuracy.
        np.testing.assert_array_equal(mean[constant], subs.mean(axis=1)[constant])
        np.testing.assert_array_equal(std[constant], subs.std(axis=1)[constant])
        np.testing.assert_allclose(mean, subs.mean(axis=1), atol=1e-12)
        np.testing.assert_allclose(std, subs.std(axis=1), atol=1e-12)
        z = ctx.znorm(length)
        oracle = znorm_subsequences(s, length)
        np.testing.assert_array_equal(z[constant], oracle[constant])
        np.testing.assert_allclose(z, oracle, atol=1e-9)

    def test_znorm_matches_reference(self, series):
        ctx = SeriesContext(series)
        np.testing.assert_allclose(
            ctx.znorm(16), znorm_subsequences(series, 16), atol=1e-9
        )

    def test_count_validation(self, series):
        ctx = SeriesContext(series)
        assert ctx.count(16) == len(series) - 15
        with pytest.raises(ValueError, match="exceeds series length"):
            ctx.count(len(series) + 1)
        with pytest.raises(ValueError, match="must be positive"):
            ctx.count(0)

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError, match="1-D"):
            SeriesContext(np.zeros((4, 4)))

    def test_context_reuse_across_algorithms(self, series):
        ctx = SeriesContext(series)
        direct = nearest_neighbor_distances(series, 16)
        shared = nearest_neighbor_distances(series, 16, ctx=ctx)
        np.testing.assert_array_equal(direct, shared)
        mp = matrix_profile(series, 16, ctx=ctx)
        assert mp.profile.shape == shared.shape

    def test_sliding_dots_match_direct(self, series):
        ctx = SeriesContext(series)
        length = 16
        subs = np.lib.stride_tricks.sliding_window_view(series, length)
        dots = ctx.sliding_dots(np.asarray([0, 5, 100]), length)
        expected = subs[[0, 5, 100]] @ subs.T
        np.testing.assert_allclose(dots, expected, atol=1e-8)


# ----------------------------------------------------------------------
# Exclusion-zone conventions (satellite: one documented default)
# ----------------------------------------------------------------------
class TestExclusionConventions:
    def test_default_exclusion_values(self):
        assert default_exclusion(16, "discord") == 16
        assert default_exclusion(16, "profile") == 8
        # Odd lengths pin the floor-divide (not round-half-even).
        assert default_exclusion(7, "profile") == 3
        assert default_exclusion(1, "profile") == 1
        assert default_exclusion(1, "discord") == 1
        with pytest.raises(ValueError, match="unknown exclusion convention"):
            default_exclusion(16, "both")

    def test_drag_defaults_to_discord_convention(self, series):
        """DRAG's effective default zone is the full subsequence length."""
        found_default = drag(series, 16, r=1.0)
        found_explicit = drag(series, 16, r=1.0, exclusion=16)
        assert found_default is not None
        assert found_default == found_explicit

    def test_nn_profile_defaults_to_profile_convention(self, series):
        default = nearest_neighbor_distances(series, 17)
        explicit = nearest_neighbor_distances(series, 17, exclusion=8)
        np.testing.assert_array_equal(default, explicit)
        wider = nearest_neighbor_distances(series, 17, exclusion=17)
        assert (wider >= default - 1e-12).all() and not np.array_equal(wider, default)

    def test_topk_defaults_to_discord_convention(self, series):
        default = top_k_discords(series, 16, k=2)
        explicit = top_k_discords(series, 16, k=2, exclusion=16)
        assert [(d.index, d.distance) for d in default] == [
            (d.index, d.distance) for d in explicit
        ]

    def test_matrix_profile_and_motifs_default_to_profile_convention(self, series):
        mp_default = matrix_profile(series, 16)
        mp_explicit = matrix_profile(series, 16, exclusion=8)
        np.testing.assert_array_equal(mp_default.profile, mp_explicit.profile)
        np.testing.assert_array_equal(mp_default.indices, mp_explicit.indices)
        motifs_default = top_k_motifs(series, 16, k=1)
        motifs_explicit = top_k_motifs(series, 16, k=1, exclusion=8)
        assert motifs_default == motifs_explicit


# ----------------------------------------------------------------------
# Kernel entry point contracts
# ----------------------------------------------------------------------
class TestKernelEntryPoint:
    def test_short_series_all_inf_contract_in_every_mode(self):
        # count = 5 subsequences under exclusion 8: every pair banned.
        s = np.sin(np.arange(12))
        for mode in ("reference", "blocked", "fft"):
            with discord_mode(mode):
                profile = nearest_neighbor_distances(s, 8, exclusion=8)
            assert profile.shape == (5,)
            assert np.isinf(profile).all(), mode

    def test_matches_reference_oracle(self, series):
        oracle = reference_nn_distances(series, 16)
        for mode in ("blocked", "fft"):
            with discord_mode(mode):
                fast = nearest_neighbor_distances(series, 16)
            np.testing.assert_allclose(fast, oracle, atol=1e-9)

    def test_too_long_subsequence_raises(self, series):
        with pytest.raises(ValueError, match="exceeds series length"):
            nearest_neighbor_distances(series, len(series) + 1)


# ----------------------------------------------------------------------
# StreamingDiscordDetector.baseline_window (satellite)
# ----------------------------------------------------------------------
class TestBaselineWindow:
    @staticmethod
    def _stream(rng, n=900):
        s = np.sin(np.arange(n) / 3.0) + 0.05 * rng.normal(size=n)
        s[700:710] += 4.0
        return s

    def test_default_matches_module_constant(self):
        detector = StreamingDiscordDetector(length=8)
        assert detector.baseline_window == BASELINE_WINDOW == 512

    def test_default_is_behavior_identical_to_explicit_512(self, rng):
        stream = self._stream(rng)
        default = StreamingDiscordDetector(length=8, warmup=16)
        explicit = StreamingDiscordDetector(length=8, warmup=16, baseline_window=512)
        for value in stream:
            a, b = default.update(value), explicit.update(value)
            assert (a is None) == (b is None)
            if a is not None:
                assert a.index == b.index and a.distance == b.distance
        assert default._distances == explicit._distances
        assert [alert.index for alert in default.alerts] == [
            alert.index for alert in explicit.alerts
        ]
        assert default.alerts  # the spike actually fired

    def test_validated_against_subsequence_length(self):
        with pytest.raises(ValueError, match="baseline_window must be >="):
            StreamingDiscordDetector(length=32, baseline_window=16)
        # Equal to the length is the smallest legal window.
        detector = StreamingDiscordDetector(length=32, baseline_window=32)
        assert detector.baseline_window == 32

    def test_small_window_bounds_the_trailing_buffer(self, rng):
        detector = StreamingDiscordDetector(length=8, warmup=8, baseline_window=16)
        for value in self._stream(rng, n=600):
            detector.update(value)
        assert len(detector._distances) <= 16 + 1
