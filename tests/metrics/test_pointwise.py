"""Point-wise metric tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import Confusion, confusion, f1_score, precision_recall_f1


class TestConfusion:
    def test_counts(self):
        pred = np.array([1, 1, 0, 0, 1])
        labels = np.array([1, 0, 1, 0, 1])
        c = confusion(pred, labels)
        assert (c.tp, c.fp, c.fn, c.tn) == (2, 1, 1, 1)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            confusion(np.zeros(3), np.zeros(4))

    def test_zero_division_guards(self):
        c = Confusion(tp=0, fp=0, fn=0, tn=10)
        assert c.precision == 0.0
        assert c.recall == 0.0
        assert c.f1 == 0.0

    def test_perfect(self):
        labels = np.array([0, 1, 1, 0])
        p, r, f1 = precision_recall_f1(labels, labels)
        assert (p, r, f1) == (1.0, 1.0, 1.0)

    def test_f1_harmonic_mean(self):
        pred = np.array([1, 1, 0, 0])
        labels = np.array([1, 0, 1, 0])
        assert f1_score(pred, labels) == pytest.approx(0.5)

    def test_boolean_and_int_inputs_agree(self):
        pred = np.array([True, False, True])
        labels = np.array([1, 0, 0])
        assert f1_score(pred, labels) == f1_score(pred.astype(int), labels)
