"""Tests for range-based P/R and the threshold-free AUC metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import (
    average_precision,
    best_f1_over_thresholds,
    range_precision_recall,
    roc_auc,
)


def binary(length: int, *spans: tuple[int, int]) -> np.ndarray:
    out = np.zeros(length, dtype=int)
    for start, end in spans:
        out[start:end] = 1
    return out


class TestRangePrecisionRecall:
    def test_perfect(self):
        labels = binary(100, (40, 60))
        score = range_precision_recall(labels, labels)
        assert score.precision == pytest.approx(1.0)
        assert score.recall == pytest.approx(1.0)
        assert score.f1 == pytest.approx(1.0)

    def test_partial_overlap(self):
        labels = binary(100, (40, 60))
        pred = binary(100, (50, 70))  # half inside, half outside
        score = range_precision_recall(pred, labels)
        assert score.precision == pytest.approx(0.5)
        assert score.recall == pytest.approx(0.5)

    def test_existence_reward(self):
        labels = binary(100, (40, 60))
        pred = binary(100, (59, 61))  # tiny overlap
        plain = range_precision_recall(pred, labels, alpha=0.0)
        rewarded = range_precision_recall(pred, labels, alpha=1.0)
        assert plain.recall == pytest.approx(0.05)
        assert rewarded.recall == pytest.approx(1.0)

    def test_false_positive_range_hurts_precision(self):
        labels = binary(100, (40, 60))
        pred = binary(100, (40, 60), (80, 90))
        score = range_precision_recall(pred, labels)
        assert score.precision == pytest.approx(0.5)  # one of two ranges valid
        assert score.recall == pytest.approx(1.0)

    def test_empty_prediction(self):
        labels = binary(50, (10, 20))
        score = range_precision_recall(np.zeros(50, dtype=int), labels)
        assert score.precision == 0.0
        assert score.recall == 0.0
        assert score.f1 == 0.0

    def test_no_labels_raises(self):
        with pytest.raises(ValueError):
            range_precision_recall(binary(10, (1, 2)), np.zeros(10, dtype=int))

    def test_multiple_events_averaged(self):
        labels = binary(100, (10, 20), (60, 80))
        pred = binary(100, (10, 20))
        score = range_precision_recall(pred, labels)
        assert score.precision == pytest.approx(1.0)
        assert score.recall == pytest.approx(0.5)


class TestRocAuc:
    def test_perfect_separation(self):
        scores = np.array([0.1, 0.2, 0.9, 0.8])
        labels = np.array([0, 0, 1, 1])
        assert roc_auc(scores, labels) == pytest.approx(1.0)

    def test_inverted(self):
        scores = np.array([0.9, 0.8, 0.1, 0.2])
        labels = np.array([0, 0, 1, 1])
        assert roc_auc(scores, labels) == pytest.approx(0.0)

    def test_random_is_half(self, rng):
        scores = rng.random(4000)
        labels = (rng.random(4000) < 0.3).astype(int)
        assert roc_auc(scores, labels) == pytest.approx(0.5, abs=0.04)

    def test_ties_handled(self):
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        labels = np.array([0, 1, 0, 1])
        assert roc_auc(scores, labels) == pytest.approx(0.5)

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            roc_auc(np.array([0.1, 0.2]), np.array([1, 1]))


class TestAveragePrecision:
    def test_perfect(self):
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        labels = np.array([1, 1, 0, 0])
        assert average_precision(scores, labels) == pytest.approx(1.0)

    def test_hand_computed(self):
        # Order by score: labels 1, 0, 1, 0 -> precisions at hits: 1, 2/3.
        scores = np.array([0.9, 0.8, 0.7, 0.6])
        labels = np.array([1, 0, 1, 0])
        assert average_precision(scores, labels) == pytest.approx((1.0 + 2 / 3) / 2)

    def test_no_positives_raises(self):
        with pytest.raises(ValueError):
            average_precision(np.array([0.5]), np.array([0]))


class TestBestF1:
    def test_finds_optimal_threshold(self):
        scores = np.array([0.9, 0.8, 0.3, 0.2, 0.1])
        labels = np.array([1, 1, 0, 0, 0])
        f1, threshold = best_f1_over_thresholds(scores, labels)
        assert f1 == pytest.approx(1.0)
        assert threshold == pytest.approx(0.8)

    def test_upper_bounds_any_fixed_threshold(self, rng):
        scores = rng.random(500)
        labels = (scores + 0.3 * rng.random(500) > 0.8).astype(int)
        best, _ = best_f1_over_thresholds(scores, labels)
        from repro.metrics import f1_score

        for threshold in (0.3, 0.5, 0.7, 0.9):
            assert best >= f1_score((scores > threshold).astype(int), labels) - 1e-12
