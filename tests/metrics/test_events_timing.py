"""Event-accuracy protocol and timer tests."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.metrics import Timer, event_accuracy, event_detected, window_hits_event


class TestEventDetected:
    def test_inside_event(self):
        assert event_detected(np.array([425]), (400, 450))

    def test_within_margin(self):
        assert event_detected(np.array([330]), (400, 450), margin=100)
        assert event_detected(np.array([540]), (400, 450), margin=100)

    def test_outside_margin(self):
        assert not event_detected(np.array([250]), (400, 450), margin=100)

    def test_empty_prediction(self):
        assert not event_detected(np.array([]), (400, 450))

    def test_margin_boundaries(self):
        # start - margin is inclusive; end + margin is exclusive.
        assert event_detected(np.array([300]), (400, 450), margin=100)
        assert not event_detected(np.array([299]), (400, 450), margin=100)
        assert event_detected(np.array([549]), (400, 450), margin=100)
        assert not event_detected(np.array([550]), (400, 450), margin=100)


class TestWindowHitsEvent:
    def test_overlap(self):
        assert window_hits_event((350, 420), (400, 450))

    def test_near_miss_within_margin(self):
        assert window_hits_event((460, 500), (400, 450), margin=20)

    def test_far_window(self):
        assert not window_hits_event((700, 800), (400, 450), margin=100)


class TestEventAccuracy:
    def test_fraction(self):
        assert event_accuracy([True, False, True, True]) == pytest.approx(0.75)

    def test_empty(self):
        assert event_accuracy([]) == 0.0


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.02)
        assert 0.015 < t.elapsed < 0.5
        assert t.minutes == pytest.approx(t.elapsed / 60.0)
