"""Tests for label-free threshold calibration (sigma / quantile / POT)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import (
    fit_gpd_moments,
    pot_threshold,
    quantile_threshold,
    sigma_threshold,
)


class TestSimpleStrategies:
    def test_sigma(self):
        scores = np.array([0.0, 2.0])  # mean 1, std 1
        assert sigma_threshold(scores, sigma=2.0) == pytest.approx(3.0)

    def test_quantile(self, rng):
        scores = rng.random(10_000)
        assert quantile_threshold(scores, 0.99) == pytest.approx(0.99, abs=0.01)

    def test_quantile_validation(self, rng):
        with pytest.raises(ValueError):
            quantile_threshold(rng.random(10), 1.5)


class TestGpdFit:
    def test_exponential_excesses(self, rng):
        """Exponential data has GPD shape ~0 and scale ~ its mean."""
        excesses = rng.exponential(scale=2.0, size=50_000)
        shape, scale = fit_gpd_moments(excesses)
        assert abs(shape) < 0.05
        assert scale == pytest.approx(2.0, rel=0.1)

    def test_uniform_excesses_negative_shape(self, rng):
        """Bounded tails give negative shape (short-tailed GPD)."""
        shape, _ = fit_gpd_moments(rng.uniform(0, 1, 50_000))
        assert shape < -0.2

    def test_degenerate_falls_back_to_exponential(self):
        shape, scale = fit_gpd_moments(np.full(10, 3.0))
        assert shape == 0.0
        assert scale == pytest.approx(3.0)

    def test_too_few_raises(self):
        with pytest.raises(ValueError):
            fit_gpd_moments(np.array([1.0]))


class TestPotThreshold:
    def test_exceeds_initial_quantile(self, rng):
        scores = rng.exponential(size=5000)
        threshold = pot_threshold(scores, risk=1e-4)
        assert threshold > np.quantile(scores, 0.98)

    def test_smaller_risk_higher_threshold(self, rng):
        scores = rng.exponential(size=5000)
        t_loose = pot_threshold(scores, risk=1e-2)
        t_tight = pot_threshold(scores, risk=1e-5)
        assert t_tight > t_loose

    def test_calibrated_exceedance_rate(self, rng):
        """On held-out data from the same distribution, the exceedance
        frequency should be near the requested risk."""
        calibration = rng.exponential(size=20_000)
        held_out = rng.exponential(size=200_000)
        risk = 1e-3
        threshold = pot_threshold(calibration, risk=risk)
        observed = float((held_out > threshold).mean())
        assert observed == pytest.approx(risk, rel=0.8)

    def test_separates_anomalies_from_normal_scores(self, rng):
        normal_scores = np.abs(rng.normal(size=3000))
        threshold = pot_threshold(normal_scores, risk=1e-4)
        anomalous_scores = np.abs(rng.normal(size=50)) + 8.0
        assert np.all(anomalous_scores > threshold)
        assert float((normal_scores > threshold).mean()) < 0.01

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            pot_threshold(np.zeros(5))
        with pytest.raises(ValueError):
            pot_threshold(rng.random(100), risk=2.0)

    def test_few_excesses_falls_back(self):
        # Nearly constant scores: no real tail to fit.
        scores = np.concatenate([np.zeros(98), [1.0, 1.0]])
        threshold = pot_threshold(scores, risk=1e-3, initial_quantile=0.99)
        assert np.isfinite(threshold)


class TestHuberLoss:
    def test_quadratic_region(self):
        from repro.nn import Tensor
        from repro.nn.functional import huber_loss

        loss = huber_loss(Tensor([0.5]), np.array([0.0]), delta=1.0)
        assert loss.item() == pytest.approx(0.125)

    def test_linear_region(self):
        from repro.nn import Tensor
        from repro.nn.functional import huber_loss

        loss = huber_loss(Tensor([3.0]), np.array([0.0]), delta=1.0)
        assert loss.item() == pytest.approx(2.5)  # delta*(|r| - delta/2)

    def test_gradient(self, rng):
        from repro.nn import Tensor, check_gradients
        from repro.nn.functional import huber_loss

        x = Tensor(rng.normal(size=6) * 2 + 0.1, requires_grad=True)
        check_gradients(lambda a: huber_loss(a, np.zeros(6)), [x], atol=1e-4)

    def test_robust_to_outliers_vs_mse(self, rng):
        from repro.nn import Tensor
        from repro.nn.functional import huber_loss, mse_loss

        residuals = np.concatenate([rng.normal(size=50) * 0.1, [100.0]])
        huber = huber_loss(Tensor(residuals), np.zeros(51)).item()
        mse = mse_loss(Tensor(residuals), np.zeros(51)).item()
        assert huber < mse / 10
