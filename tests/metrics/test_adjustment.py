"""PA and PA%K tests (paper Eq. 9 semantics)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import f1_score, label_events, pa_k, pa_k_auc, point_adjust


@pytest.fixture
def one_event():
    labels = np.zeros(200, dtype=int)
    labels[80:120] = 1
    return labels


class TestLabelEvents:
    def test_multiple_runs(self):
        labels = np.array([0, 1, 1, 0, 1, 0, 0, 1, 1, 1])
        assert label_events(labels) == [(1, 3), (4, 5), (7, 10)]

    def test_empty(self):
        assert label_events(np.zeros(5, dtype=int)) == []

    def test_full(self):
        assert label_events(np.ones(4, dtype=int)) == [(0, 4)]


class TestPointAdjust:
    def test_single_hit_floods_event(self, one_event):
        pred = np.zeros(200, dtype=int)
        pred[100] = 1
        adjusted = point_adjust(pred, one_event)
        assert adjusted[80:120].all()
        assert adjusted.sum() == 40

    def test_miss_leaves_unchanged(self, one_event):
        pred = np.zeros(200, dtype=int)
        pred[10] = 1
        adjusted = point_adjust(pred, one_event)
        assert np.array_equal(adjusted, pred)

    def test_false_positives_preserved(self, one_event):
        pred = np.zeros(200, dtype=int)
        pred[100] = 1
        pred[5] = 1
        adjusted = point_adjust(pred, one_event)
        assert adjusted[5] == 1

    def test_inflates_f1_dramatically(self, one_event):
        """The paper's central criticism: one hit -> perfect event score."""
        pred = np.zeros(200, dtype=int)
        pred[100] = 1
        raw = f1_score(pred, one_event)
        adjusted = f1_score(point_adjust(pred, one_event), one_event)
        assert adjusted > 10 * raw


class TestPaK:
    def test_k100_equals_pointwise(self, one_event):
        pred = np.zeros(200, dtype=int)
        pred[80:100] = 1  # 50% of the event
        assert np.array_equal(pa_k(pred, one_event, 100), pred)

    def test_k_near_zero_equals_pa(self, one_event):
        pred = np.zeros(200, dtype=int)
        pred[85] = 1
        assert np.array_equal(
            pa_k(pred, one_event, 1e-9), point_adjust(pred, one_event)
        )

    @pytest.mark.parametrize("k", [0, -5, 100.001, 150, float("nan"), float("inf")])
    def test_out_of_range_k_raises(self, one_event, k):
        pred = np.zeros(200, dtype=int)
        pred[85] = 1
        with pytest.raises(ValueError, match=r"\(0, 100\]"):
            pa_k(pred, one_event, k)

    def test_k100_boundary_full_event_flagged(self, one_event):
        # Even a fully-flagged event is not "more than 100%" flagged, so
        # k=100 must behave exactly point-wise (no adjustment ever).
        pred = np.zeros(200, dtype=int)
        pred[80:120] = 1
        pred[90] = 1
        assert np.array_equal(pa_k(pred, one_event, 100), pred)

    def test_exact_threshold_fraction_not_adjusted(self, one_event):
        # 10 of 40 points flagged = exactly 25%; the condition is strict
        # (> k), so k=25 leaves the prediction untouched while any
        # slightly smaller k floods the event.
        pred = np.zeros(200, dtype=int)
        pred[80:90] = 1
        assert np.array_equal(pa_k(pred, one_event, 25), pred)
        assert pa_k(pred, one_event, 24.999)[80:120].all()

    def test_threshold_strict(self, one_event):
        pred = np.zeros(200, dtype=int)
        pred[80:100] = 1  # exactly 50%
        assert np.array_equal(pa_k(pred, one_event, 50), pred)  # 50 > 50 is false
        assert pa_k(pred, one_event, 49)[80:120].all()

    def test_no_hits_never_adjusted(self, one_event):
        pred = np.zeros(200, dtype=int)
        assert pa_k(pred, one_event, 1).sum() == 0

    @given(st.integers(min_value=1, max_value=100))
    @settings(max_examples=20, deadline=None)
    def test_property_adjusted_f1_between_pw_and_pa(self, k):
        labels = np.zeros(100, dtype=int)
        labels[30:60] = 1
        pred = np.zeros(100, dtype=int)
        pred[35:45] = 1
        pred[80] = 1
        f1_pw = f1_score(pred, labels)
        f1_pa = f1_score(point_adjust(pred, labels), labels)
        f1_k = f1_score(pa_k(pred, labels, k), labels)
        assert f1_pw - 1e-9 <= f1_k <= f1_pa + 1e-9


class TestPaKAuc:
    def test_curve_shape_and_defaults(self, one_event):
        pred = np.zeros(200, dtype=int)
        pred[90:110] = 1
        curve = pa_k_auc(pred, one_event)
        assert len(curve.ks) == 100
        assert 0.0 <= curve.f1_auc <= 1.0
        assert curve.precision_auc >= 0 and curve.recall_auc >= 0

    def test_f1_monotone_nonincreasing_in_k(self, one_event):
        pred = np.zeros(200, dtype=int)
        pred[90:110] = 1
        curve = pa_k_auc(pred, one_event)
        assert np.all(np.diff(curve.f1) <= 1e-12)

    def test_perfect_prediction_auc_one(self, one_event):
        curve = pa_k_auc(one_event, one_event)
        assert curve.f1_auc == pytest.approx(1.0)

    def test_custom_ks(self, one_event):
        pred = one_event.copy()
        curve = pa_k_auc(pred, one_event, ks=np.array([10.0, 50.0]))
        assert len(curve.f1) == 2

    def test_invalid_custom_ks_raise(self, one_event):
        with pytest.raises(ValueError, match=r"\(0, 100\]"):
            pa_k_auc(one_event, one_event, ks=np.array([50.0, 0.0]))

    def test_events_segmented_once_per_curve(self, one_event, monkeypatch):
        import repro.metrics.adjustment as adjustment

        calls = {"n": 0}
        real = adjustment.label_events

        def counting(labels):
            calls["n"] += 1
            return real(labels)

        monkeypatch.setattr(adjustment, "label_events", counting)
        pred = np.zeros(200, dtype=int)
        pred[90:110] = 1
        adjustment.pa_k_auc(pred, one_event)
        assert calls["n"] == 1
