"""Affiliation metric tests (paper Eq. 10 semantics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import affiliation_metrics


@pytest.fixture
def labels():
    out = np.zeros(1000, dtype=int)
    out[400:450] = 1
    return out


class TestAffiliation:
    def test_perfect_prediction(self, labels):
        score = affiliation_metrics(labels, labels)
        assert score.precision == pytest.approx(1.0)
        assert score.recall > 0.99
        assert score.f1 > 0.99

    def test_requires_an_event(self):
        with pytest.raises(ValueError):
            affiliation_metrics(np.zeros(10, dtype=int), np.zeros(10, dtype=int))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            affiliation_metrics(np.zeros(5, dtype=int), np.zeros(6, dtype=int))

    def test_empty_prediction_scores_zero_recall(self, labels):
        score = affiliation_metrics(np.zeros(1000, dtype=int), labels)
        assert score.recall == 0.0
        assert score.f1 == 0.0

    def test_near_miss_beats_far_miss(self, labels):
        near = np.zeros(1000, dtype=int)
        near[455:465] = 1
        far = np.zeros(1000, dtype=int)
        far[900:910] = 1
        near_score = affiliation_metrics(near, labels)
        far_score = affiliation_metrics(far, labels)
        assert near_score.precision > far_score.precision
        assert near_score.recall > far_score.recall

    def test_random_dense_prediction_precision_near_half(self, labels):
        """Documented affiliation baseline: random predictions ~ 0.5."""
        rng = np.random.default_rng(0)
        pred = (rng.random(1000) < 0.4).astype(int)
        score = affiliation_metrics(pred, labels)
        assert 0.35 < score.precision < 0.65

    def test_all_points_flagged_gives_full_recall(self, labels):
        score = affiliation_metrics(np.ones(1000, dtype=int), labels)
        assert score.recall == pytest.approx(1.0)
        assert score.precision < 0.7  # pays a precision penalty

    def test_multiple_events_averaged(self):
        labels = np.zeros(1000, dtype=int)
        labels[100:150] = 1
        labels[700:760] = 1
        pred = np.zeros(1000, dtype=int)
        pred[100:150] = 1  # hit first event only
        score = affiliation_metrics(pred, labels)
        assert score.precision == pytest.approx(1.0)  # no prediction in zone 2
        assert 0.3 < score.recall < 0.7  # one of two events recalled

    def test_f1_zero_when_both_zero(self):
        labels = np.zeros(10, dtype=int)
        labels[5] = 1
        pred = np.zeros(10, dtype=int)
        score = affiliation_metrics(pred, labels)
        assert score.f1 == 0.0
