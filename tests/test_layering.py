"""Tier-1 gate: the import-layering lint must pass on the source tree.

``scripts/check_layering.py`` enforces the layer DAG documented in
``docs/PIPELINE.md`` (pipeline below core/baselines, which sit below
eval/serve).  Running it as a test means a PR that reintroduces an
upward module-scope import fails CI, not just a manual lint run.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "scripts" / "check_layering.py"


def _load_checker():
    spec = importlib.util.spec_from_file_location("check_layering", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_layering", module)
    spec.loader.exec_module(module)
    return module


def test_source_tree_respects_the_layering():
    checker = _load_checker()
    violations = checker.check()
    assert violations == [], "\n".join(violations)


def test_checker_flags_upward_imports(tmp_path):
    checker = _load_checker()
    fake = tmp_path / "repro"
    (fake / "signal").mkdir(parents=True)
    (fake / "signal" / "__init__.py").write_text("from ..core import thing\n")
    (fake / "core").mkdir()
    (fake / "core" / "__init__.py").write_text("")
    original = checker.PACKAGE_ROOT
    checker.PACKAGE_ROOT = fake
    try:
        violations = checker.check(fake)
    finally:
        checker.PACKAGE_ROOT = original
    assert len(violations) == 1
    assert "signal" in violations[0] and "core" in violations[0]


def test_checker_exempts_lazy_and_typing_imports(tmp_path):
    checker = _load_checker()
    fake = tmp_path / "repro"
    (fake / "signal").mkdir(parents=True)
    (fake / "signal" / "__init__.py").write_text(
        "from typing import TYPE_CHECKING\n"
        "if TYPE_CHECKING:\n"
        "    from ..core import thing\n"
        "def lazy():\n"
        "    from ..core import thing\n"
        "    return thing\n"
    )
    (fake / "core").mkdir()
    (fake / "core" / "__init__.py").write_text("")
    original = checker.PACKAGE_ROOT
    checker.PACKAGE_ROOT = fake
    try:
        violations = checker.check(fake)
    finally:
        checker.PACKAGE_ROOT = original
    assert violations == []


def test_checker_flags_discord_sublayer_inversions(tmp_path):
    checker = _load_checker()
    fake = tmp_path / "repro"
    (fake / "discord").mkdir(parents=True)
    (fake / "discord" / "__init__.py").write_text("")
    # distance is the bottom sublayer: importing the kernels above it is
    # exactly the inversion the sublayer map exists to prevent.
    (fake / "discord" / "distance.py").write_text(
        "from .kernels import SeriesContext\n"
    )
    (fake / "discord" / "kernels.py").write_text("")
    original = checker.PACKAGE_ROOT
    checker.PACKAGE_ROOT = fake
    try:
        violations = checker.check(fake)
    finally:
        checker.PACKAGE_ROOT = original
    assert len(violations) == 1
    assert "discord.distance" in violations[0]
    assert "kernels" in violations[0]


def test_discord_sublayer_map_covers_the_package():
    checker = _load_checker()
    modules = {
        path.stem
        for path in (REPO_ROOT / "src" / "repro" / "discord").glob("*.py")
    }
    assert modules == set(checker.DISCORD_SUBLAYERS)
