"""Tests for extended activations (GELU, LeakyReLU, Softplus, ELU)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor, check_gradients


@pytest.mark.parametrize(
    "module,fn",
    [
        (nn.GELU(), nn.gelu),
        (nn.LeakyReLU(), nn.leaky_relu),
        (nn.Softplus(), nn.softplus),
        (nn.ELU(), nn.elu),
    ],
)
class TestCommon:
    def test_module_matches_functional(self, module, fn, rng):
        x = Tensor(rng.normal(size=(3, 4)))
        assert np.allclose(module(x).data, fn(x).data)

    def test_gradcheck(self, module, fn, rng):
        x = Tensor(rng.normal(size=(3, 4)) + 0.05, requires_grad=True)
        check_gradients(lambda a: fn(a).sum(), [x], atol=1e-4)

    def test_finite_for_extreme_inputs(self, module, fn):
        x = Tensor(np.array([-100.0, 0.0, 100.0]))
        assert np.all(np.isfinite(fn(x).data))


class TestSpecificValues:
    def test_gelu_at_zero(self):
        assert nn.gelu(Tensor([0.0])).data[0] == pytest.approx(0.0)

    def test_gelu_approximates_identity_for_large_x(self):
        assert nn.gelu(Tensor([10.0])).data[0] == pytest.approx(10.0, rel=1e-4)

    def test_leaky_relu_slope(self):
        out = nn.leaky_relu(Tensor([-2.0, 2.0]), negative_slope=0.1)
        assert np.allclose(out.data, [-0.2, 2.0])

    def test_softplus_positive(self, rng):
        out = nn.softplus(Tensor(rng.normal(size=100)))
        assert np.all(out.data > 0)

    def test_softplus_approaches_relu(self):
        out = nn.softplus(Tensor([30.0]), beta=1.0)
        assert out.data[0] == pytest.approx(30.0, abs=1e-6)

    def test_elu_continuity_at_zero(self):
        left = nn.elu(Tensor([-1e-8])).data[0]
        right = nn.elu(Tensor([1e-8])).data[0]
        assert abs(left - right) < 1e-7

    def test_elu_lower_bound(self, rng):
        out = nn.elu(Tensor(rng.normal(size=100) * 10), alpha=1.5)
        assert np.all(out.data > -1.5)
