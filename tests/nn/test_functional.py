"""Tests for repro.nn.functional against scipy/numpy oracles."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import signal as sp_signal
from scipy.special import log_softmax as sp_log_softmax
from scipy.special import logsumexp as sp_logsumexp
from scipy.special import softmax as sp_softmax

from repro.nn import Tensor, check_gradients
from repro.nn import functional as F


class TestConv1d:
    def test_same_padding_preserves_length(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 17)))
        w = Tensor(rng.normal(size=(5, 3, 3)))
        out = F.conv1d(x, w, padding="same")
        assert out.shape == (2, 5, 17)

    @pytest.mark.parametrize("dilation", [1, 2, 4])
    def test_same_padding_with_dilation(self, rng, dilation):
        x = Tensor(rng.normal(size=(1, 2, 32)))
        w = Tensor(rng.normal(size=(4, 2, 3)))
        assert F.conv1d(x, w, dilation=dilation).shape == (1, 4, 32)

    def test_valid_padding_length(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 10)))
        w = Tensor(rng.normal(size=(1, 1, 3)))
        assert F.conv1d(x, w, padding="valid").shape == (1, 1, 8)

    def test_matches_scipy_correlate(self, rng):
        """conv1d is cross-correlation, the NN convention."""
        x = rng.normal(size=10)
        w = rng.normal(size=3)
        out = F.conv1d(
            Tensor(x[None, None, :]), Tensor(w[None, None, :]), padding="valid"
        ).data.ravel()
        expected = np.correlate(x, w, mode="valid")
        assert np.allclose(out, expected)

    def test_bias_added_per_channel(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 8)))
        w = Tensor(np.zeros((2, 1, 3)))
        b = Tensor(np.array([1.5, -2.0]))
        out = F.conv1d(x, w, b).data
        assert np.allclose(out[0, 0], 1.5)
        assert np.allclose(out[0, 1], -2.0)

    def test_channel_mismatch_raises(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 8)))
        w = Tensor(rng.normal(size=(1, 3, 3)))
        with pytest.raises(ValueError, match="channels"):
            F.conv1d(x, w)

    def test_too_short_input_raises(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 2)))
        w = Tensor(rng.normal(size=(1, 1, 5)))
        with pytest.raises(ValueError, match="too short"):
            F.conv1d(x, w, padding="valid")

    @pytest.mark.parametrize("dilation,padding", [(1, "same"), (2, "same"), (1, "valid"), (3, 2)])
    def test_gradients(self, rng, dilation, padding):
        x = Tensor(rng.normal(size=(2, 2, 12)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        check_gradients(
            lambda a, ww, bb: (F.conv1d(a, ww, bb, dilation=dilation, padding=padding) ** 2).sum(),
            [x, w, b],
        )


class TestSoftmaxFamily:
    def test_softmax_matches_scipy(self, rng):
        x = rng.normal(size=(3, 5)) * 10
        assert np.allclose(F.softmax(Tensor(x), axis=-1).data, sp_softmax(x, axis=-1))

    def test_softmax_rows_sum_to_one(self, rng):
        out = F.softmax(Tensor(rng.normal(size=(4, 7))), axis=1).data
        assert np.allclose(out.sum(axis=1), 1.0)

    def test_softmax_stable_for_large_inputs(self):
        out = F.softmax(Tensor([1000.0, 1001.0]), axis=0).data
        assert np.all(np.isfinite(out))

    def test_log_softmax_matches_scipy(self, rng):
        x = rng.normal(size=(2, 6))
        assert np.allclose(
            F.log_softmax(Tensor(x), axis=-1).data, sp_log_softmax(x, axis=-1)
        )

    @pytest.mark.parametrize("keepdims", [True, False])
    def test_logsumexp_matches_scipy(self, rng, keepdims):
        x = rng.normal(size=(3, 4))
        assert np.allclose(
            F.logsumexp(Tensor(x), axis=1, keepdims=keepdims).data,
            sp_logsumexp(x, axis=1, keepdims=keepdims),
        )

    def test_softmax_gradient(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 4)))
        check_gradients(lambda a: (F.softmax(a, axis=-1) * w).sum(), [x])

    def test_log_softmax_gradient(self, rng):
        x = Tensor(rng.normal(size=(2, 5)), requires_grad=True)
        w = Tensor(rng.normal(size=(2, 5)))
        check_gradients(lambda a: (F.log_softmax(a, axis=-1) * w).sum(), [x])

    def test_logsumexp_gradient(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        check_gradients(lambda a: F.logsumexp(a, axis=1).sum(), [x])


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        x = Tensor(rng.normal(size=(10,)))
        out = F.dropout(x, 0.5, training=False, rng=rng)
        assert out is x

    def test_training_zeroes_and_rescales(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones(10000))
        out = F.dropout(x, 0.5, training=True, rng=rng).data
        assert np.isclose((out == 0).mean(), 0.5, atol=0.05)
        assert np.isclose(out.mean(), 1.0, atol=0.05)  # inverted scaling

    def test_p_zero_is_identity(self, rng):
        x = Tensor(np.ones(5))
        assert F.dropout(x, 0.0, training=True, rng=rng) is x


class TestLosses:
    def test_mse(self):
        loss = F.mse_loss(Tensor([1.0, 2.0]), np.array([0.0, 0.0]))
        assert np.isclose(loss.item(), 2.5)

    def test_l1(self):
        loss = F.l1_loss(Tensor([1.0, -3.0]), np.array([0.0, 0.0]))
        assert np.isclose(loss.item(), 2.0)

    def test_bce_bounds(self):
        p = Tensor([0.9, 0.1])
        t = np.array([1.0, 0.0])
        loss = F.binary_cross_entropy(p, t)
        assert np.isclose(loss.item(), -np.log(0.9), atol=1e-6)

    def test_bce_finite_at_extremes(self):
        loss = F.binary_cross_entropy(Tensor([0.0, 1.0]), np.array([1.0, 0.0]))
        assert np.isfinite(loss.item())

    def test_cosine_similarity_identical(self, rng):
        x = Tensor(rng.normal(size=(3, 8)))
        assert np.allclose(F.cosine_similarity(x, x).data, 1.0)

    def test_cosine_similarity_orthogonal(self):
        a = Tensor([[1.0, 0.0]])
        b = Tensor([[0.0, 1.0]])
        assert np.allclose(F.cosine_similarity(a, b).data, 0.0)

    def test_mse_gradient(self, rng):
        x = Tensor(rng.normal(size=(4,)), requires_grad=True)
        check_gradients(lambda a: F.mse_loss(a, np.zeros(4)), [x])
