"""Tests for the module system: registration, modes, state dicts."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn


class Small(nn.Module):
    def __init__(self) -> None:
        super().__init__()
        self.linear = nn.Linear(3, 2, rng=np.random.default_rng(0))
        self.scale = nn.Parameter(np.ones(2))

    def forward(self, x):
        return self.linear(x) * self.scale


class TestRegistration:
    def test_parameters_discovered_recursively(self):
        model = Small()
        names = dict(model.named_parameters())
        assert set(names) == {"linear.weight", "linear.bias", "scale"}

    def test_num_parameters(self):
        model = Small()
        assert model.num_parameters() == 3 * 2 + 2 + 2

    def test_zero_grad_clears_all(self):
        model = Small()
        out = model(nn.Tensor(np.ones((1, 3))))
        out.sum().backward()
        assert all(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_parameter_stays_trainable_inside_no_grad(self):
        with nn.no_grad():
            p = nn.Parameter(np.zeros(3))
        assert p.requires_grad


class TestModes:
    def test_train_eval_propagates(self):
        seq = nn.Sequential(nn.Dropout(0.5), nn.ReLU())
        assert seq.training
        seq.eval()
        assert not seq.training
        assert not seq[0].training
        seq.train()
        assert seq[0].training


class TestStateDict:
    def test_roundtrip(self):
        a = Small()
        b = Small()
        b.linear.weight.data[...] = 0.0
        b.load_state_dict(a.state_dict())
        assert np.allclose(b.linear.weight.data, a.linear.weight.data)

    def test_missing_key_raises(self):
        model = Small()
        state = model.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        model = Small()
        state = model.state_dict()
        state["scale"] = np.zeros(5)
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_buffers_roundtrip(self):
        bn1 = nn.BatchNorm1d(2)
        bn1._buffer_running_mean[:] = [1.0, 2.0]
        bn2 = nn.BatchNorm1d(2)
        bn2.load_state_dict(bn1.state_dict())
        assert np.allclose(bn2._buffer_running_mean, [1.0, 2.0])

    def test_save_load_npz(self, tmp_path):
        a = Small()
        path = tmp_path / "model.npz"
        nn.save_module(a, path)
        b = Small()
        b.scale.data[:] = 99.0
        nn.load_module(b, path)
        assert np.allclose(b.scale.data, a.scale.data)


class TestContainers:
    def test_sequential_applies_in_order(self):
        rng = np.random.default_rng(0)
        seq = nn.Sequential(nn.Linear(3, 4, rng=rng), nn.ReLU(), nn.Linear(4, 2, rng=rng))
        out = seq(nn.Tensor(np.ones((5, 3))))
        assert out.shape == (5, 2)
        assert len(seq) == 3

    def test_sequential_iteration_and_indexing(self):
        seq = nn.Sequential(nn.ReLU(), nn.Tanh())
        assert isinstance(seq[1], nn.Tanh)
        assert len(list(seq)) == 2

    def test_module_list_registers_parameters(self):
        rng = np.random.default_rng(0)
        modules = nn.ModuleList([nn.Linear(2, 2, rng=rng) for _ in range(3)])
        assert len(modules) == 3
        assert len(dict(modules.named_parameters())) == 6

    def test_module_list_append(self):
        modules = nn.ModuleList()
        modules.append(nn.ReLU())
        assert len(modules) == 1
        assert isinstance(modules[0], nn.ReLU)

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            nn.Module()(1)
