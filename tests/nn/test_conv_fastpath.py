"""Equivalence and gradient tests for the ``conv1d`` fast paths.

The reference implementation (per-tap ``np.stack`` + einsum) is the
oracle: every fast path — per-tap GEMM, im2col pack, FFT — must agree
with it in forward values and in the gradients it routes to ``x``,
``weight`` and ``bias``, across the full padding × stride × dilation
grid.  ``BENCH_nn.json`` leans on exactly this equivalence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor, check_gradients
from repro.nn import functional as F

PADDINGS = ["same", "valid", "causal", 2, 0]
STRIDES = [1, 2, 3]
DILATIONS = [1, 2, 3]


def _run(mode, x_data, w_data, b_data, **kwargs):
    """Forward + backward under ``mode``; returns (out, grads)."""
    with F.conv1d_mode(mode):
        x = Tensor(x_data, requires_grad=True)
        w = Tensor(w_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True) if b_data is not None else None
        out = F.conv1d(x, w, b, **kwargs)
        # A fixed non-uniform cotangent so backward bugs can't cancel.
        seed = np.sin(np.arange(out.data.size)).reshape(out.shape)
        (out * Tensor(seed)).sum().backward()
    grads = [x.grad, w.grad] + ([b.grad] if b is not None else [])
    return out.data, grads


class TestModeEquivalence:
    @pytest.mark.parametrize("padding", PADDINGS)
    @pytest.mark.parametrize("stride", STRIDES)
    @pytest.mark.parametrize("dilation", DILATIONS)
    def test_gemm_matches_reference(self, rng, padding, stride, dilation):
        x = rng.normal(size=(2, 3, 23))
        w = rng.normal(size=(4, 3, 3))
        b = rng.normal(size=4)
        ref_out, ref_grads = _run(
            "reference", x, w, b, padding=padding, stride=stride, dilation=dilation
        )
        out, grads = _run(
            "gemm", x, w, b, padding=padding, stride=stride, dilation=dilation
        )
        assert np.allclose(out, ref_out, atol=1e-12)
        for got, want in zip(grads, ref_grads):
            assert np.allclose(got, want, atol=1e-12)

    @pytest.mark.parametrize("padding", ["same", "valid", "causal"])
    @pytest.mark.parametrize("dilation", [1, 2])
    def test_fft_matches_reference(self, rng, padding, dilation):
        x = rng.normal(size=(2, 2, 40))
        w = rng.normal(size=(3, 2, 5))
        b = rng.normal(size=3)
        ref_out, ref_grads = _run(
            "reference", x, w, b, padding=padding, dilation=dilation
        )
        out, grads = _run("fft", x, w, b, padding=padding, dilation=dilation)
        assert np.allclose(out, ref_out, atol=1e-10)
        for got, want in zip(grads, ref_grads):
            assert np.allclose(got, want, atol=1e-10)

    def test_wide_kernel_im2col_branch(self, rng):
        """K > TAP_GEMM_MAX_K on a small input packs via im2col."""
        k = F.TAP_GEMM_MAX_K + 2
        x = rng.normal(size=(2, 2, 30))
        w = rng.normal(size=(3, 2, k))
        ref_out, ref_grads = _run("reference", x, w, None, padding="same")
        out, grads = _run("gemm", x, w, None, padding="same")
        assert np.allclose(out, ref_out, atol=1e-12)
        for got, want in zip(grads, ref_grads):
            assert np.allclose(got, want, atol=1e-12)

    def test_wide_kernel_large_input_taps_branch(self, rng):
        """Packed bytes above IM2COL_MAX_BYTES fall back to per-tap GEMM."""
        k = F.TAP_GEMM_MAX_K + 2
        length = F.IM2COL_MAX_BYTES // (4 * k * 8) + 64
        x = rng.normal(size=(2, 2, length))
        w = rng.normal(size=(1, 2, k))
        ref_out, ref_grads = _run("reference", x, w, None, padding="valid")
        out, grads = _run("gemm", x, w, None, padding="valid")
        assert np.allclose(out, ref_out, atol=1e-11)
        for got, want in zip(grads, ref_grads):
            assert np.allclose(got, want, atol=1e-11)

    def test_auto_prefers_fft_for_wide_spans(self, rng):
        """auto at stride 1 with K >= FFT_MIN_TAPS and a wide span agrees
        with the forced fft path bit-for-bit (same impl selected)."""
        k = F.FFT_MIN_TAPS
        dilation = max(1, (F.FFT_MIN_SPAN // (k - 1)) + 1)
        length = dilation * (k - 1) + 16
        x = rng.normal(size=(1, 1, length))
        w = rng.normal(size=(1, 1, k))
        auto_out, _ = _run("auto", x, w, None, padding="same", dilation=dilation)
        fft_out, _ = _run("fft", x, w, None, padding="same", dilation=dilation)
        assert np.array_equal(auto_out, fft_out)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown conv1d mode"):
            F.set_conv1d_mode("winograd")

    def test_mode_context_restores_previous(self):
        assert F.get_conv1d_mode() == "auto"
        with F.conv1d_mode("reference"):
            assert F.get_conv1d_mode() == "reference"
        assert F.get_conv1d_mode() == "auto"


class TestStridedCeilMode:
    """stride > 1 with length-preserving padding is ceil-mode: the
    stride-1 output subsampled from position 0."""

    @pytest.mark.parametrize("padding", ["same", "causal"])
    @pytest.mark.parametrize("stride", [2, 3, 4])
    def test_output_length_is_ceil(self, rng, padding, stride):
        length = 17
        x = Tensor(rng.normal(size=(1, 1, length)))
        w = Tensor(rng.normal(size=(1, 1, 3)))
        out = F.conv1d(x, w, padding=padding, stride=stride)
        assert out.shape[-1] == -(-length // stride)

    @pytest.mark.parametrize("mode", ["gemm", "reference"])
    def test_strided_is_subsampled_stride1(self, rng, mode):
        x = Tensor(rng.normal(size=(1, 2, 19)))
        w = Tensor(rng.normal(size=(3, 2, 3)))
        with F.conv1d_mode(mode):
            dense = F.conv1d(x, w, padding="same", dilation=2).data
            strided = F.conv1d(x, w, padding="same", dilation=2, stride=2).data
        assert np.allclose(strided, dense[:, :, ::2])


class TestFastPathGradients:
    """Finite-difference checks on the fast paths themselves, including
    the asymmetric-padding backward branches."""

    @pytest.mark.parametrize("mode", ["gemm", "fft"])
    def test_causal_pad_right_zero_backward(self, rng, mode):
        """causal padding gives pad_left > 0, pad_right == 0 — the
        backward slice must still drop the left padding only."""
        x = Tensor(rng.normal(size=(1, 2, 12)), requires_grad=True)
        w = Tensor(rng.normal(size=(2, 2, 3)), requires_grad=True)
        with F.conv1d_mode(mode):
            check_gradients(
                lambda a, b: F.conv1d(a, b, padding="causal", dilation=2).sum(),
                [x, w],
            )

    @pytest.mark.parametrize("stride", STRIDES)
    @pytest.mark.parametrize("padding", ["same", "valid", 1])
    def test_gemm_gradients(self, rng, stride, padding):
        x = Tensor(rng.normal(size=(2, 2, 11)), requires_grad=True)
        w = Tensor(rng.normal(size=(2, 2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=2), requires_grad=True)
        with F.conv1d_mode("gemm"):
            check_gradients(
                lambda a, c, d: F.conv1d(
                    a, c, d, padding=padding, stride=stride
                ).sum(),
                [x, w, b],
            )

    def test_fft_gradients(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 16)), requires_grad=True)
        w = Tensor(rng.normal(size=(2, 2, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=2), requires_grad=True)
        with F.conv1d_mode("fft"):
            check_gradients(
                lambda a, c, d: F.conv1d(a, c, d, padding="same").sum(),
                [x, w, b],
            )

    def test_im2col_gradients(self, rng):
        k = F.TAP_GEMM_MAX_K + 1
        x = Tensor(rng.normal(size=(1, 1, 20)), requires_grad=True)
        w = Tensor(rng.normal(size=(1, 1, k)), requires_grad=True)
        with F.conv1d_mode("gemm"):
            check_gradients(
                lambda a, c: F.conv1d(a, c, padding="same", stride=2).sum(),
                [x, w],
            )
