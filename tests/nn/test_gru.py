"""Tests for GRU layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor, check_gradients


@pytest.fixture
def gru_rng():
    return np.random.default_rng(13)


class TestGRUCell:
    def test_output_shape(self, gru_rng):
        cell = nn.GRUCell(3, 6, rng=gru_rng)
        h = cell.initial_state(4)
        out = cell(Tensor(gru_rng.normal(size=(4, 3))), h)
        assert out.shape == (4, 6)

    def test_hidden_bounded(self, gru_rng):
        cell = nn.GRUCell(2, 4, rng=gru_rng)
        h = cell.initial_state(8)
        for _ in range(20):
            h = cell(Tensor(gru_rng.normal(size=(8, 2)) * 10), h)
        assert np.all(np.abs(h.data) <= 1.0 + 1e-9)

    def test_gradcheck(self, gru_rng):
        cell = nn.GRUCell(2, 3, rng=gru_rng)
        x = Tensor(gru_rng.normal(size=(2, 2)), requires_grad=True)
        check_gradients(lambda a: (cell(a, cell.initial_state(2)) ** 2).sum(), [x])


class TestGRU:
    def test_shapes_multi_layer(self, gru_rng):
        gru = nn.GRU(3, 8, num_layers=2, rng=gru_rng)
        out, state = gru(Tensor(gru_rng.normal(size=(4, 7, 3))))
        assert out.shape == (4, 7, 8)
        assert len(state) == 2

    def test_state_continuation(self, gru_rng):
        gru = nn.GRU(1, 4, rng=gru_rng)
        x = gru_rng.normal(size=(1, 6, 1))
        full, _ = gru(Tensor(x))
        first, state = gru(Tensor(x[:, :3]))
        second, _ = gru(Tensor(x[:, 3:]), state)
        assert np.allclose(full.data[:, :3], first.data, atol=1e-12)
        assert np.allclose(full.data[:, 3:], second.data, atol=1e-12)

    def test_gradients_reach_all_weights(self, gru_rng):
        gru = nn.GRU(2, 4, num_layers=2, rng=gru_rng)
        out, _ = gru(Tensor(gru_rng.normal(size=(2, 5, 2))))
        (out * out).mean().backward()
        for name, param in gru.named_parameters():
            assert param.grad is not None, name

    def test_learns_simple_task(self, gru_rng):
        gru = nn.GRU(1, 8, rng=gru_rng)
        head = nn.Linear(8, 1, rng=gru_rng)
        optimizer = nn.Adam(gru.parameters() + head.parameters(), lr=0.02)
        x = gru_rng.normal(size=(4, 5, 1))
        target = np.cumsum(x, axis=1)  # running sum task
        first = last = None
        for step in range(40):
            out, _ = gru(Tensor(x))
            loss = nn.functional.mse_loss(head(out), target)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            first = first if first is not None else loss.item()
            last = loss.item()
        assert last < first * 0.7
