"""Tests for LSTM cell and multi-layer LSTM."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor, check_gradients


@pytest.fixture
def lstm_rng():
    return np.random.default_rng(7)


class TestLSTMCell:
    def test_output_shapes(self, lstm_rng):
        cell = nn.LSTMCell(3, 5, rng=lstm_rng)
        h, c = cell.initial_state(batch=4)
        h2, c2 = cell(Tensor(lstm_rng.normal(size=(4, 3))), (h, c))
        assert h2.shape == (4, 5)
        assert c2.shape == (4, 5)

    def test_hidden_bounded_by_tanh(self, lstm_rng):
        cell = nn.LSTMCell(2, 4, rng=lstm_rng)
        h, c = cell.initial_state(batch=8)
        x = Tensor(lstm_rng.normal(size=(8, 2)) * 100)
        h2, _ = cell(x, (h, c))
        assert np.all(np.abs(h2.data) <= 1.0)

    def test_gradcheck(self, lstm_rng):
        cell = nn.LSTMCell(2, 3, rng=lstm_rng)
        x = Tensor(lstm_rng.normal(size=(2, 2)), requires_grad=True)

        def fn(inp):
            h, c = cell.initial_state(batch=2)
            h2, c2 = cell(inp, (h, c))
            return (h2 * h2).sum() + c2.sum()

        check_gradients(fn, [x])

    def test_state_carries_information(self, lstm_rng):
        """The same input after different histories gives different outputs."""
        cell = nn.LSTMCell(1, 4, rng=lstm_rng)
        x = Tensor(np.ones((1, 1)))
        state_a = cell.initial_state(1)
        state_b = cell(Tensor(np.full((1, 1), 5.0)), cell.initial_state(1))
        out_a, _ = cell(x, state_a)
        out_b, _ = cell(x, state_b)
        assert not np.allclose(out_a.data, out_b.data)


class TestLSTM:
    def test_output_shapes(self, lstm_rng):
        lstm = nn.LSTM(3, 8, num_layers=2, rng=lstm_rng)
        out, state = lstm(Tensor(lstm_rng.normal(size=(4, 10, 3))))
        assert out.shape == (4, 10, 8)
        assert len(state) == 2
        assert state[0][0].shape == (4, 8)

    def test_gradients_reach_all_weights(self, lstm_rng):
        lstm = nn.LSTM(2, 4, num_layers=2, rng=lstm_rng)
        out, _ = lstm(Tensor(lstm_rng.normal(size=(2, 5, 2))))
        (out * out).mean().backward()
        for name, param in lstm.named_parameters():
            assert param.grad is not None, name
            assert np.any(param.grad != 0), name

    def test_deterministic_given_weights(self, lstm_rng):
        lstm = nn.LSTM(1, 4, rng=lstm_rng)
        x = Tensor(np.linspace(0, 1, 6).reshape(1, 6, 1))
        out1, _ = lstm(x)
        out2, _ = lstm(x)
        assert np.allclose(out1.data, out2.data)

    def test_state_continuation(self, lstm_rng):
        """Feeding a split sequence with carried state equals one pass."""
        lstm = nn.LSTM(1, 3, rng=lstm_rng)
        x = lstm_rng.normal(size=(1, 8, 1))
        full, _ = lstm(Tensor(x))
        first, state = lstm(Tensor(x[:, :4]))
        second, _ = lstm(Tensor(x[:, 4:]), state)
        assert np.allclose(full.data[:, :4], first.data, atol=1e-10)
        assert np.allclose(full.data[:, 4:], second.data, atol=1e-10)

    def test_can_learn_to_memorize(self, lstm_rng):
        """Tiny optimization sanity check: loss decreases."""
        lstm = nn.LSTM(1, 8, rng=lstm_rng)
        head = nn.Linear(8, 1, rng=lstm_rng)
        params = lstm.parameters() + head.parameters()
        optimizer = nn.Adam(params, lr=0.02)
        x = lstm_rng.normal(size=(4, 6, 1))
        target = x[:, ::-1, :].copy()  # reverse task
        first_loss = last_loss = None
        for step in range(30):
            out, _ = lstm(Tensor(x))
            loss = nn.functional.mse_loss(head(out), target)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            if step == 0:
                first_loss = loss.item()
            last_loss = loss.item()
        assert last_loss < first_loss * 0.8
