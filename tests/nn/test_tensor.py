"""Tests for the autodiff engine in repro.nn.tensor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor, as_tensor, check_gradients, concatenate, no_grad, stack
from repro.nn.tensor import is_grad_enabled


def t(data, grad=True) -> Tensor:
    return Tensor(np.asarray(data, dtype=np.float64), requires_grad=grad)


class TestBasics:
    def test_wraps_data_as_float64(self):
        x = Tensor([1, 2, 3])
        assert x.data.dtype == np.float64
        assert x.shape == (3,)
        assert x.size == 3
        assert x.ndim == 1

    def test_item_on_scalar(self):
        assert Tensor(3.5).item() == 3.5

    def test_len(self):
        assert len(Tensor(np.zeros((4, 2)))) == 4

    def test_detach_cuts_graph(self):
        x = t([1.0, 2.0])
        y = (x * 2).detach()
        assert not y.requires_grad

    def test_as_tensor_idempotent(self):
        x = Tensor([1.0])
        assert as_tensor(x) is x
        assert isinstance(as_tensor([1.0, 2.0]), Tensor)

    def test_backward_requires_grad(self):
        x = Tensor([1.0])
        with pytest.raises(RuntimeError):
            x.backward()

    def test_backward_nonscalar_needs_grad(self):
        x = t([1.0, 2.0])
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_no_grad_suppresses_graph(self):
        x = t([1.0, 2.0])
        with no_grad():
            assert not is_grad_enabled()
            y = x * 2
        assert is_grad_enabled()
        assert not y.requires_grad


class TestArithmeticValues:
    def test_add_sub_mul_div(self):
        x = Tensor([2.0, 4.0])
        y = Tensor([1.0, 2.0])
        assert np.allclose((x + y).data, [3, 6])
        assert np.allclose((x - y).data, [1, 2])
        assert np.allclose((x * y).data, [2, 8])
        assert np.allclose((x / y).data, [2, 2])

    def test_scalar_operands(self):
        x = Tensor([2.0])
        assert np.allclose((1 + x).data, [3])
        assert np.allclose((1 - x).data, [-1])
        assert np.allclose((3 * x).data, [6])
        assert np.allclose((4 / x).data, [2])

    def test_pow(self):
        x = Tensor([2.0, 3.0])
        assert np.allclose((x**2).data, [4, 9])
        with pytest.raises(TypeError):
            _ = x ** Tensor([2.0])

    def test_matmul_2d(self):
        a = Tensor(np.arange(6.0).reshape(2, 3))
        b = Tensor(np.arange(12.0).reshape(3, 4))
        assert np.allclose((a @ b).data, a.data @ b.data)

    def test_matmul_batched(self):
        a = Tensor(np.random.default_rng(0).normal(size=(5, 2, 3)))
        b = Tensor(np.random.default_rng(1).normal(size=(5, 3, 4)))
        assert np.allclose((a @ b).data, a.data @ b.data)

    def test_comparison_returns_arrays(self):
        x = Tensor([1.0, 3.0])
        assert np.array_equal(x > 2.0, [False, True])
        assert np.array_equal(x < 2.0, [True, False])


class TestGradients:
    """Analytic gradients must match finite differences for every op."""

    def test_add_broadcast(self, rng):
        x = t(rng.normal(size=(3, 4)))
        y = t(rng.normal(size=(4,)))
        check_gradients(lambda a, b: (a + b).sum(), [x, y])

    def test_mul_broadcast(self, rng):
        x = t(rng.normal(size=(2, 3, 4)))
        y = t(rng.normal(size=(3, 1)))
        check_gradients(lambda a, b: (a * b).sum(), [x, y])

    def test_div(self, rng):
        x = t(rng.normal(size=(3, 4)))
        y = t(rng.uniform(1.0, 2.0, size=(3, 4)))
        check_gradients(lambda a, b: (a / b).sum(), [x, y])

    def test_matmul(self, rng):
        a = t(rng.normal(size=(3, 4)))
        b = t(rng.normal(size=(4, 2)))
        check_gradients(lambda x, y: (x @ y).sum(), [a, b])

    def test_matmul_batched_broadcast(self, rng):
        a = t(rng.normal(size=(5, 3, 4)))
        b = t(rng.normal(size=(4, 2)))
        check_gradients(lambda x, y: ((x @ y) ** 2).sum(), [a, b])

    @pytest.mark.parametrize(
        "op",
        ["exp", "log", "sqrt", "tanh", "sigmoid", "relu", "abs"],
    )
    def test_unary_ops(self, rng, op):
        if op in ("log", "sqrt"):
            x = t(rng.uniform(0.5, 2.0, size=(3, 4)))
        else:
            x = t(rng.normal(size=(3, 4)) + 0.1)  # avoid relu/abs kinks at 0
        check_gradients(lambda a: getattr(a, op)().sum(), [x])

    @pytest.mark.parametrize("axis,keepdims", [(None, False), (0, False), (1, True)])
    def test_sum_mean(self, rng, axis, keepdims):
        x = t(rng.normal(size=(3, 4)))
        check_gradients(lambda a: (a.sum(axis=axis, keepdims=keepdims) ** 2).sum(), [x])
        check_gradients(lambda a: (a.mean(axis=axis, keepdims=keepdims) ** 2).sum(), [x])

    def test_max(self, rng):
        x = t(rng.normal(size=(3, 4)))
        check_gradients(lambda a: a.max(axis=1).sum(), [x])

    def test_var(self, rng):
        x = t(rng.normal(size=(3, 4)))
        check_gradients(lambda a: a.var(axis=1).sum(), [x])

    def test_reshape_transpose(self, rng):
        x = t(rng.normal(size=(2, 3, 4)))
        check_gradients(lambda a: (a.reshape(6, 4).transpose() ** 2).sum(), [x])

    def test_swapaxes(self, rng):
        x = t(rng.normal(size=(2, 3, 4)))
        check_gradients(lambda a: (a.swapaxes(0, 2) ** 3).sum(), [x])

    def test_getitem_slice(self, rng):
        x = t(rng.normal(size=(4, 5)))
        check_gradients(lambda a: (a[1:3, ::2] ** 2).sum(), [x])

    def test_getitem_fancy(self, rng):
        x = t(rng.normal(size=(5,)))
        idx = np.array([0, 2, 2, 4])
        check_gradients(lambda a: (a[idx] ** 2).sum(), [x])

    def test_pad(self, rng):
        x = t(rng.normal(size=(2, 3)))
        check_gradients(lambda a: (a.pad(((1, 2), (0, 1))) ** 2).sum(), [x])

    def test_concatenate(self, rng):
        x = t(rng.normal(size=(2, 3)))
        y = t(rng.normal(size=(2, 2)))
        check_gradients(lambda a, b: (concatenate([a, b], axis=1) ** 2).sum(), [x, y])

    def test_stack(self, rng):
        x = t(rng.normal(size=(3,)))
        y = t(rng.normal(size=(3,)))
        check_gradients(lambda a, b: (stack([a, b], axis=1) ** 2).sum(), [x, y])

    def test_grad_accumulates_over_reuse(self):
        x = t([2.0])
        y = x * x + x  # x used three times
        y.backward()
        assert np.allclose(x.grad, [5.0])  # 2x + 1

    def test_diamond_graph(self):
        x = t([3.0])
        a = x * 2
        b = x + 1
        y = (a * b).sum()
        y.backward()
        # d/dx (2x (x+1)) = 4x + 2
        assert np.allclose(x.grad, [14.0])

    def test_zero_grad(self):
        x = t([1.0])
        (x * 2).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None


class TestGradBufferRecycling:
    """zero_grad parks the released gradient array and the next backward
    refills that exact storage instead of allocating a fresh one."""

    def test_zero_grad_parks_buffer(self):
        x = t([1.0, 2.0])
        (x * 2).sum().backward()
        released = x.grad
        x.zero_grad()
        assert x.grad is None
        assert x._grad_buffer is released

    def test_accumulate_refills_parked_buffer(self):
        x = t([1.0, 2.0])
        (x * 2).sum().backward()
        first = x.grad
        x.zero_grad()
        (x * 3).sum().backward()
        assert x.grad is first  # same array object, refilled in place
        assert x._grad_buffer is None
        assert np.allclose(x.grad, [3.0, 3.0])

    def test_shape_mismatch_falls_back_to_fresh_array(self):
        x = t([1.0, 2.0])
        (x * 2).sum().backward()
        x.zero_grad()
        x._grad_buffer = np.zeros(5)  # wrong shape: must not be reused
        (x * 3).sum().backward()
        assert x.grad.shape == (2,)
        assert np.allclose(x.grad, [3.0, 3.0])

    def test_recycled_gradient_values_stay_correct(self):
        x = t([[1.0, -2.0], [0.5, 4.0]])
        for scale in (2.0, -1.0, 0.25):
            x.zero_grad()
            (x * scale).sum().backward()
            assert np.allclose(x.grad, scale)
