"""Tests for standard layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn


@pytest.fixture
def layer_rng():
    return np.random.default_rng(42)


class TestLinear:
    def test_matches_manual_affine(self, layer_rng):
        layer = nn.Linear(4, 3, rng=layer_rng)
        x = layer_rng.normal(size=(5, 4))
        out = layer(nn.Tensor(x)).data
        expected = x @ layer.weight.data.T + layer.bias.data
        assert np.allclose(out, expected)

    def test_no_bias(self, layer_rng):
        layer = nn.Linear(4, 3, bias=False, rng=layer_rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_applies_over_last_axis(self, layer_rng):
        layer = nn.Linear(4, 3, rng=layer_rng)
        out = layer(nn.Tensor(layer_rng.normal(size=(2, 7, 4))))
        assert out.shape == (2, 7, 3)


class TestConv1dLayer:
    def test_same_length_output(self, layer_rng):
        layer = nn.Conv1d(2, 6, 3, dilation=4, rng=layer_rng)
        out = layer(nn.Tensor(layer_rng.normal(size=(3, 2, 25))))
        assert out.shape == (3, 6, 25)

    def test_parameters_registered(self, layer_rng):
        layer = nn.Conv1d(2, 6, 3, rng=layer_rng)
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}


class TestLayerNorm:
    def test_normalizes_last_axis(self, layer_rng):
        layer = nn.LayerNorm(16)
        x = layer_rng.normal(size=(4, 16)) * 5 + 3
        out = layer(nn.Tensor(x)).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_affine_parameters_apply(self, layer_rng):
        layer = nn.LayerNorm(4)
        layer.weight.data[:] = 2.0
        layer.bias.data[:] = 1.0
        out = layer(nn.Tensor(layer_rng.normal(size=(3, 4)))).data
        assert np.allclose(out.mean(axis=-1), 1.0, atol=1e-6)


class TestBatchNorm1d:
    def test_training_normalizes_batch(self, layer_rng):
        layer = nn.BatchNorm1d(3)
        x = layer_rng.normal(size=(8, 3, 20)) * 4 + 2
        out = layer(nn.Tensor(x)).data
        assert np.allclose(out.mean(axis=(0, 2)), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=(0, 2)), 1.0, atol=1e-2)

    def test_running_stats_updated(self, layer_rng):
        layer = nn.BatchNorm1d(2, momentum=1.0)
        x = layer_rng.normal(size=(4, 2, 10)) + 5.0
        layer(nn.Tensor(x))
        assert np.allclose(layer._buffer_running_mean, x.mean(axis=(0, 2)), atol=1e-6)

    def test_eval_uses_running_stats(self, layer_rng):
        layer = nn.BatchNorm1d(1, momentum=1.0)
        train_batch = layer_rng.normal(size=(16, 1, 8))
        layer(nn.Tensor(train_batch))
        layer.eval()
        x = np.full((2, 1, 4), 7.0)
        out = layer(nn.Tensor(x)).data
        expected = (7.0 - layer._buffer_running_mean[0]) / np.sqrt(
            layer._buffer_running_var[0] + layer.eps
        )
        assert np.allclose(out, expected, atol=1e-6)

    def test_rejects_wrong_rank(self, layer_rng):
        layer = nn.BatchNorm1d(2)
        with pytest.raises(ValueError):
            layer(nn.Tensor(layer_rng.normal(size=(4, 2))))

    def test_running_var_uses_unbiased_estimator(self, layer_rng):
        # Regression: the running buffer must track the unbiased (ddof=1)
        # variance, not the biased batch variance used for normalization.
        layer = nn.BatchNorm1d(2, momentum=1.0)
        x = layer_rng.normal(size=(3, 2, 4)) * 3.0
        layer(nn.Tensor(x))
        unbiased = x.var(axis=(0, 2), ddof=1)
        biased = x.var(axis=(0, 2), ddof=0)
        assert np.allclose(layer._buffer_running_var, unbiased, atol=1e-12)
        assert not np.allclose(layer._buffer_running_var, biased, atol=1e-12)

    def test_training_normalization_stays_biased(self, layer_rng):
        # The unbiased correction applies only to the running buffer; the
        # batch itself is still normalized with ddof=0 statistics.
        layer = nn.BatchNorm1d(1)
        x = layer_rng.normal(size=(2, 1, 3)) * 5.0
        out = layer(nn.Tensor(x)).data
        expected = (x - x.mean(axis=(0, 2), keepdims=True)) / np.sqrt(
            x.var(axis=(0, 2), keepdims=True) + layer.eps
        )
        assert np.allclose(out, expected, atol=1e-12)

    def test_single_element_batch_skips_correction(self):
        # count == 1 would divide by zero; the correction must be skipped.
        layer = nn.BatchNorm1d(1, momentum=1.0)
        layer(nn.Tensor(np.full((1, 1, 1), 3.0)))
        assert np.isfinite(layer._buffer_running_var).all()


class TestActivationsAndDropout:
    def test_relu(self):
        out = nn.ReLU()(nn.Tensor([-1.0, 2.0])).data
        assert np.allclose(out, [0.0, 2.0])

    def test_tanh_sigmoid_ranges(self, layer_rng):
        x = nn.Tensor(layer_rng.normal(size=100) * 10)
        assert np.all(np.abs(nn.Tanh()(x).data) <= 1.0)
        sig = nn.Sigmoid()(x).data
        assert np.all((sig > 0) & (sig < 1))

    def test_identity(self, layer_rng):
        x = nn.Tensor(layer_rng.normal(size=5))
        assert nn.Identity()(x) is not None
        assert np.allclose(nn.Identity()(x).data, x.data)

    def test_dropout_respects_mode(self, layer_rng):
        layer = nn.Dropout(0.9, rng=layer_rng)
        x = nn.Tensor(np.ones(1000))
        train_out = layer(x).data
        assert (train_out == 0).mean() > 0.5
        layer.eval()
        assert np.allclose(layer(x).data, 1.0)
