"""Tests for pooling layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor, check_gradients


class TestMaxPool1d:
    def test_values(self):
        x = Tensor(np.array([[[1.0, 3.0, 2.0, 5.0, 4.0, 0.0]]]))
        out = nn.MaxPool1d(2)(x)
        assert np.allclose(out.data, [[[3.0, 5.0, 4.0]]])

    def test_stride_overrides_kernel(self):
        x = Tensor(np.arange(8.0).reshape(1, 1, 8))
        out = nn.MaxPool1d(3, stride=2)(x)
        assert np.allclose(out.data, [[[2.0, 4.0, 6.0]]])

    def test_gradient_routes_to_argmax(self):
        x = Tensor(np.array([[[1.0, 3.0, 2.0, 5.0]]]), requires_grad=True)
        out = nn.MaxPool1d(2)(x)
        out.sum().backward()
        assert np.allclose(x.grad, [[[0.0, 1.0, 0.0, 1.0]]])

    def test_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 9)), requires_grad=True)
        check_gradients(lambda a: (nn.MaxPool1d(3)(a) ** 2).sum(), [x])

    def test_rejects_bad_rank(self, rng):
        with pytest.raises(ValueError):
            nn.MaxPool1d(2)(Tensor(rng.normal(size=(3, 4))))

    def test_rejects_bad_kernel(self):
        with pytest.raises(ValueError):
            nn.MaxPool1d(0)


class TestAvgPool1d:
    def test_values(self):
        x = Tensor(np.array([[[2.0, 4.0, 6.0, 8.0]]]))
        out = nn.AvgPool1d(2)(x)
        assert np.allclose(out.data, [[[3.0, 7.0]]])

    def test_gradient_spread_evenly(self):
        x = Tensor(np.zeros((1, 1, 4)), requires_grad=True)
        nn.AvgPool1d(2)(x).sum().backward()
        assert np.allclose(x.grad, 0.5)

    def test_gradcheck_strided(self, rng):
        x = Tensor(rng.normal(size=(2, 2, 10)), requires_grad=True)
        check_gradients(lambda a: (nn.AvgPool1d(4, stride=2)(a) ** 2).sum(), [x])


class TestGlobalPools:
    def test_shapes(self, rng):
        x = Tensor(rng.normal(size=(4, 5, 16)))
        assert nn.GlobalMaxPool1d()(x).shape == (4, 5)
        assert nn.GlobalAvgPool1d()(x).shape == (4, 5)

    def test_values(self):
        x = Tensor(np.array([[[1.0, 5.0, 3.0]]]))
        assert nn.GlobalMaxPool1d()(x).data[0, 0] == 5.0
        assert nn.GlobalAvgPool1d()(x).data[0, 0] == 3.0
