"""Bit-identity tests for the fused optimizer fast paths.

The fused ``step()`` implementations replay the reference update rules
with in-place ufuncs over preallocated scratch — same operations, same
rounding order — so trajectories must be *bit-identical* to the
allocation-per-step reference, not merely close.  ``np.array_equal``
(no tolerance) is the whole point of these tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import Parameter
from repro.nn.optim import fused_enabled, fused_optimizers, set_fused_optimizers

FACTORIES = {
    "sgd": lambda params: nn.SGD(params, lr=0.05),
    "sgd_momentum": lambda params: nn.SGD(params, lr=0.05, momentum=0.9),
    "sgd_wd": lambda params: nn.SGD(params, lr=0.05, weight_decay=0.01),
    "sgd_momentum_wd": lambda params: nn.SGD(
        params, lr=0.05, momentum=0.9, weight_decay=0.01
    ),
    "adam": lambda params: nn.Adam(params, lr=0.01),
    "adam_wd": lambda params: nn.Adam(params, lr=0.01, weight_decay=0.01),
    "adamw": lambda params: nn.AdamW(params, lr=0.01, weight_decay=0.02),
    "rmsprop": lambda params: nn.RMSProp(params, lr=0.01),
}


def _trajectory(factory, fused: bool, steps: int = 50) -> list[np.ndarray]:
    """Parameter snapshots after each step on a fixed gradient stream."""
    rng = np.random.default_rng(99)
    params = [
        Parameter(rng.normal(size=(4, 3))),
        Parameter(rng.normal(size=7)),
    ]
    optimizer = factory(params)
    grad_rng = np.random.default_rng(7)
    snapshots = []
    with fused_optimizers(fused):
        for _ in range(steps):
            for p in params:
                p.grad = grad_rng.normal(size=p.shape)
            optimizer.step()
            snapshots.append([p.data.copy() for p in params])
    return snapshots


class TestBitIdentity:
    @pytest.mark.parametrize("name", sorted(FACTORIES))
    def test_fused_matches_reference_exactly(self, name):
        fused = _trajectory(FACTORIES[name], fused=True)
        reference = _trajectory(FACTORIES[name], fused=False)
        for step, (got, want) in enumerate(zip(fused, reference)):
            for g, w in zip(got, want):
                assert np.array_equal(g, w), (
                    f"{name}: fused step {step} diverged from reference"
                )

    def test_fused_skips_missing_gradients(self):
        p = Parameter(np.ones(3))
        q = Parameter(np.ones(3))
        optimizer = nn.Adam([p, q], lr=0.1)
        p.grad = np.full(3, 0.5)
        optimizer.step()  # q.grad is None — must be left untouched
        assert np.array_equal(q.data, np.ones(3))
        assert not np.array_equal(p.data, np.ones(3))


class TestToggle:
    def test_default_is_fused(self):
        assert fused_enabled()

    def test_set_returns_previous(self):
        assert set_fused_optimizers(False) is True
        try:
            assert fused_enabled() is False
            assert set_fused_optimizers(True) is False
        finally:
            set_fused_optimizers(True)

    def test_context_manager_restores(self):
        with fused_optimizers(False):
            assert not fused_enabled()
            with fused_optimizers(True):
                assert fused_enabled()
            assert not fused_enabled()
        assert fused_enabled()

    def test_exports_on_nn_namespace(self):
        assert nn.fused_enabled is fused_enabled
        assert nn.fused_optimizers is fused_optimizers
        assert nn.set_fused_optimizers is set_fused_optimizers
