"""Tests for the BatchIterator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.data import BatchIterator


class TestBatchIterator:
    def test_covers_all_rows_once(self, rng):
        data = np.arange(50).reshape(25, 2)
        batches = BatchIterator(data, batch_size=4, rng=rng)
        seen = np.concatenate([batch[0][:, 0] for batch in batches])
        assert sorted(seen.tolist()) == sorted(data[:, 0].tolist())

    def test_multiple_arrays_stay_aligned(self, rng):
        x = np.arange(20)
        y = np.arange(20) * 10
        for bx, by in BatchIterator(x, y, batch_size=6, rng=rng):
            assert np.array_equal(by, bx * 10)

    def test_drop_last(self, rng):
        data = np.zeros(10)
        batches = list(BatchIterator(data, batch_size=4, rng=rng, drop_last=True))
        assert [len(b[0]) for b in batches] == [4, 4]

    def test_len_matches_iteration(self, rng):
        for n, bs, drop in [(10, 4, False), (10, 4, True), (12, 4, False), (3, 5, False)]:
            it = BatchIterator(np.zeros(n), batch_size=bs, rng=rng, drop_last=drop)
            assert len(it) == len(list(it)), (n, bs, drop)

    def test_min_batch_skips_tiny_remainder(self, rng):
        data = np.zeros(9)
        batches = list(BatchIterator(data, batch_size=4, rng=rng, min_batch=2))
        assert [len(b[0]) for b in batches] == [4, 4]

    def test_shuffles(self):
        data = np.arange(100)
        it = BatchIterator(data, batch_size=100, rng=np.random.default_rng(0))
        (batch,) = list(it)
        assert not np.array_equal(batch[0], data)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            BatchIterator(batch_size=2, rng=rng)
        with pytest.raises(ValueError):
            BatchIterator(np.zeros(5), batch_size=0, rng=rng)
        with pytest.raises(ValueError):
            BatchIterator(np.zeros(5), np.zeros(6), rng=rng)
