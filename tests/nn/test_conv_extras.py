"""Tests for strided and causal conv1d."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor, check_gradients
from repro.nn import functional as F


class TestStride:
    def test_output_length(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 20)))
        w = Tensor(rng.normal(size=(1, 1, 3)))
        out = F.conv1d(x, w, padding="valid", stride=2)
        assert out.shape == (1, 1, 9)  # (20-3)//2 + 1

    def test_stride_subsamples_stride_one_result(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 30)))
        w = Tensor(rng.normal(size=(4, 3, 3)))
        dense = F.conv1d(x, w, padding="valid", stride=1).data
        strided = F.conv1d(x, w, padding="valid", stride=3).data
        assert np.allclose(strided, dense[:, :, ::3])

    def test_invalid_stride(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 10)))
        w = Tensor(rng.normal(size=(1, 1, 3)))
        with pytest.raises(ValueError):
            F.conv1d(x, w, stride=0)

    @pytest.mark.parametrize("stride", [2, 3])
    def test_gradcheck(self, rng, stride):
        x = Tensor(rng.normal(size=(2, 2, 14)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 2, 3)), requires_grad=True)
        check_gradients(
            lambda a, b: (F.conv1d(a, b, padding="valid", stride=stride) ** 2).sum(),
            [x, w],
        )

    def test_layer_stride_parameter(self, rng):
        layer = nn.Conv1d(1, 2, 3, padding="valid", stride=2, rng=rng)
        out = layer(Tensor(rng.normal(size=(1, 1, 21))))
        assert out.shape == (1, 2, 10)


class TestCausalPadding:
    def test_preserves_length(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 16)))
        w = Tensor(rng.normal(size=(1, 1, 3)))
        assert F.conv1d(x, w, padding="causal", dilation=2).shape == (1, 1, 16)

    def test_no_lookahead(self, rng):
        """Output at t must be unchanged by perturbing the future."""
        x_data = rng.normal(size=(1, 1, 24))
        w = Tensor(rng.normal(size=(2, 1, 3)))
        out_a = F.conv1d(Tensor(x_data), w, padding="causal", dilation=2).data
        perturbed = x_data.copy()
        perturbed[:, :, 12:] += 100.0
        out_b = F.conv1d(Tensor(perturbed), w, padding="causal", dilation=2).data
        assert np.allclose(out_a[:, :, :12], out_b[:, :, :12])

    def test_same_padding_does_look_ahead(self, rng):
        """Contrast: symmetric padding is not causal."""
        x_data = rng.normal(size=(1, 1, 24))
        w = Tensor(rng.normal(size=(1, 1, 3)))
        out_a = F.conv1d(Tensor(x_data), w, padding="same").data
        perturbed = x_data.copy()
        perturbed[:, :, 12:] += 100.0
        out_b = F.conv1d(Tensor(perturbed), w, padding="same").data
        assert not np.allclose(out_a[:, :, :12], out_b[:, :, :12])

    def test_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 10)), requires_grad=True)
        w = Tensor(rng.normal(size=(2, 2, 3)), requires_grad=True)
        check_gradients(
            lambda a, b: (F.conv1d(a, b, padding="causal", dilation=2) ** 2).sum(),
            [x, w],
        )
