"""Hypothesis property tests for the autodiff engine.

The central invariant: for any composition of supported ops, the
analytic gradient matches central finite differences.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Tensor, check_gradients

SETTINGS = dict(max_examples=25, deadline=None)

small_arrays = hnp.arrays(
    dtype=np.float64,
    shape=hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=4),
    elements=st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
)


@given(small_arrays)
@settings(**SETTINGS)
def test_add_gradient_is_ones(data):
    x = Tensor(data, requires_grad=True)
    (x + x).sum().backward()
    assert np.allclose(x.grad, 2.0)


@given(small_arrays)
@settings(**SETTINGS)
def test_sum_then_backward_matches_numeric(data):
    x = Tensor(data + 0.2, requires_grad=True)  # keep away from kinks
    check_gradients(lambda a: (a * a).sum(), [x])


@given(small_arrays, st.sampled_from(["tanh", "sigmoid", "exp"]))
@settings(**SETTINGS)
def test_smooth_unary_gradients(data, op):
    x = Tensor(np.clip(data, -2.0, 2.0), requires_grad=True)
    check_gradients(lambda a: getattr(a, op)().sum(), [x], atol=1e-4)


@given(
    hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 4), st.integers(1, 4)),
        elements=st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
    )
)
@settings(**SETTINGS)
def test_matmul_chain_gradient(data):
    x = Tensor(data, requires_grad=True)
    w = Tensor(np.linspace(-1, 1, data.shape[1] * 2).reshape(data.shape[1], 2))
    check_gradients(lambda a: ((a @ w) ** 2).sum(), [x])


@given(small_arrays)
@settings(**SETTINGS)
def test_reshape_preserves_gradient_mass(data):
    x = Tensor(data, requires_grad=True)
    x.reshape(-1).sum().backward()
    assert np.allclose(x.grad, 1.0)


@given(small_arrays)
@settings(**SETTINGS)
def test_detach_blocks_gradient(data):
    x = Tensor(data, requires_grad=True)
    y = x * 2
    z = y.detach() * 3 + x
    z.sum().backward()
    # Only the direct `+ x` path contributes.
    assert np.allclose(x.grad, 1.0)


@given(
    hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(2, 5),),
        elements=st.floats(min_value=-5.0, max_value=5.0, allow_nan=False),
    )
)
@settings(**SETTINGS)
def test_mean_gradient_uniform(data):
    x = Tensor(data, requires_grad=True)
    x.mean().backward()
    assert np.allclose(x.grad, 1.0 / data.size)
