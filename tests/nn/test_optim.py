"""Tests for optimizers and gradient clipping."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import Parameter, Tensor


def quadratic_loss(param: Parameter) -> Tensor:
    """(p - 3)^2 summed — minimized at 3."""
    diff = param - Tensor(np.full(param.shape, 3.0))
    return (diff * diff).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(4))
        optimizer = nn.SGD([p], lr=0.1)
        for _ in range(100):
            optimizer.zero_grad()
            quadratic_loss(p).backward()
            optimizer.step()
        assert np.allclose(p.data, 3.0, atol=1e-3)

    def test_momentum_accelerates(self):
        def run(momentum):
            p = Parameter(np.zeros(1))
            optimizer = nn.SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                optimizer.zero_grad()
                quadratic_loss(p).backward()
                optimizer.step()
            return abs(float(p.data[0]) - 3.0)

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.ones(1) * 10)
        optimizer = nn.SGD([p], lr=0.1, weight_decay=1.0)
        optimizer.zero_grad()
        (p * 0.0).sum().backward()  # zero task gradient
        optimizer.step()
        assert float(p.data[0]) < 10.0

    def test_skips_parameters_without_grad(self):
        p = Parameter(np.ones(1))
        optimizer = nn.SGD([p], lr=0.1)
        optimizer.step()  # no backward happened; must not crash
        assert np.allclose(p.data, 1.0)

    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(4))
        optimizer = nn.Adam([p], lr=0.2)
        for _ in range(200):
            optimizer.zero_grad()
            quadratic_loss(p).backward()
            optimizer.step()
        assert np.allclose(p.data, 3.0, atol=1e-3)

    def test_bias_correction_first_step(self):
        """First Adam step should move by roughly lr regardless of grad scale."""
        for scale in (1e-3, 1e3):
            p = Parameter(np.zeros(1))
            optimizer = nn.Adam([p], lr=0.1)
            optimizer.zero_grad()
            (p * scale).sum().backward()
            optimizer.step()
            assert np.isclose(abs(float(p.data[0])), 0.1, rtol=1e-3)

    def test_weight_decay(self):
        p = Parameter(np.ones(1) * 5)
        optimizer = nn.Adam([p], lr=0.1, weight_decay=1.0)
        optimizer.zero_grad()
        (p * 0.0).sum().backward()
        optimizer.step()
        assert float(p.data[0]) < 5.0


class TestClipGradNorm:
    def test_clips_large_gradients(self):
        p = Parameter(np.zeros(3))
        p.grad = np.array([3.0, 4.0, 0.0])  # norm 5
        norm = nn.clip_grad_norm([p], max_norm=1.0)
        assert np.isclose(norm, 5.0)
        assert np.isclose(np.linalg.norm(p.grad), 1.0)

    def test_leaves_small_gradients(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([0.3, 0.4])
        nn.clip_grad_norm([p], max_norm=1.0)
        assert np.allclose(p.grad, [0.3, 0.4])

    def test_ignores_gradless_parameters(self):
        p = Parameter(np.zeros(2))
        assert nn.clip_grad_norm([p], max_norm=1.0) == 0.0
