"""Tests for weight initializers."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.nn import init


class TestFans:
    def test_linear_shape(self):
        fan_in, fan_out = init._fans((8, 3))
        assert (fan_in, fan_out) == (3, 8)

    def test_conv_shape(self):
        fan_in, fan_out = init._fans((16, 4, 3))
        assert (fan_in, fan_out) == (12, 48)


class TestInitializers:
    def test_xavier_bound(self, rng):
        shape = (64, 32)
        weights = init.xavier_uniform(shape, rng)
        bound = math.sqrt(6.0 / (32 + 64))
        assert weights.shape == shape
        assert np.all(np.abs(weights) <= bound)

    def test_kaiming_bound(self, rng):
        shape = (16, 8, 3)
        weights = init.kaiming_uniform(shape, rng)
        bound = math.sqrt(6.0 / 24)
        assert np.all(np.abs(weights) <= bound)

    def test_uniform_fan_in_bound(self, rng):
        values = init.uniform_fan_in((100,), fan_in=25, rng=rng)
        assert np.all(np.abs(values) <= 0.2)

    def test_uniform_fan_in_zero_fan_safe(self, rng):
        values = init.uniform_fan_in((4,), fan_in=0, rng=rng)
        assert np.all(np.abs(values) <= 1.0)

    def test_zeros(self):
        assert np.array_equal(init.zeros((3, 2)), np.zeros((3, 2)))

    def test_variance_scales_with_fan(self, rng):
        wide = init.kaiming_uniform((8, 1000), np.random.default_rng(0))
        narrow = init.kaiming_uniform((8, 10), np.random.default_rng(0))
        assert wide.std() < narrow.std()

    def test_deterministic_given_rng(self):
        a = init.xavier_uniform((5, 5), np.random.default_rng(3))
        b = init.xavier_uniform((5, 5), np.random.default_rng(3))
        assert np.array_equal(a, b)
