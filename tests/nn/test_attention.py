"""Tests for multi-head self-attention."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor, check_gradients


@pytest.fixture
def attn_rng():
    return np.random.default_rng(3)


class TestMultiHeadSelfAttention:
    def test_output_and_weight_shapes(self, attn_rng):
        attention = nn.MultiHeadSelfAttention(8, num_heads=2, rng=attn_rng)
        out, weights = attention(Tensor(attn_rng.normal(size=(3, 7, 8))))
        assert out.shape == (3, 7, 8)
        assert weights.shape == (3, 2, 7, 7)

    def test_attention_rows_are_distributions(self, attn_rng):
        attention = nn.MultiHeadSelfAttention(8, num_heads=4, rng=attn_rng)
        _, weights = attention(Tensor(attn_rng.normal(size=(2, 5, 8))))
        assert np.allclose(weights.data.sum(axis=-1), 1.0)
        assert np.all(weights.data >= 0)

    def test_dim_must_divide_heads(self):
        with pytest.raises(ValueError):
            nn.MultiHeadSelfAttention(10, num_heads=3)

    def test_gradients_flow(self, attn_rng):
        attention = nn.MultiHeadSelfAttention(4, num_heads=2, rng=attn_rng)
        x = Tensor(attn_rng.normal(size=(1, 3, 4)), requires_grad=True)
        out, _ = attention(x)
        (out * out).sum().backward()
        assert x.grad is not None
        for name, param in attention.named_parameters():
            assert param.grad is not None, name

    def test_gradcheck_small(self, attn_rng):
        attention = nn.MultiHeadSelfAttention(4, num_heads=1, rng=attn_rng)
        x = Tensor(attn_rng.normal(size=(1, 3, 4)), requires_grad=True)
        check_gradients(lambda a: (attention(a)[0] ** 2).sum(), [x], atol=1e-4)

    def test_permutation_equivariance(self, attn_rng):
        """Self-attention without positional encoding is permutation
        equivariant — permuting inputs permutes outputs."""
        attention = nn.MultiHeadSelfAttention(6, num_heads=2, rng=attn_rng)
        x = attn_rng.normal(size=(1, 5, 6))
        perm = np.array([3, 1, 4, 0, 2])
        out, _ = attention(Tensor(x))
        out_perm, _ = attention(Tensor(x[:, perm]))
        assert np.allclose(out.data[:, perm], out_perm.data, atol=1e-10)
