"""Tests for LR schedulers, extra optimizers, and early stopping."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import Parameter, Tensor


def make_optimizer(lr=1.0):
    return nn.SGD([Parameter(np.zeros(1))], lr=lr)


class TestStepLR:
    def test_decay_schedule(self):
        optimizer = make_optimizer(lr=1.0)
        scheduler = nn.StepLR(optimizer, step_size=2, gamma=0.5)
        lrs = [scheduler.step() for _ in range(5)]
        assert lrs == [1.0, 0.5, 0.5, 0.25, 0.25]

    def test_invalid_step_size(self):
        with pytest.raises(ValueError):
            nn.StepLR(make_optimizer(), step_size=0)


class TestExponentialLR:
    def test_decay(self):
        scheduler = nn.ExponentialLR(make_optimizer(lr=2.0), gamma=0.5)
        assert scheduler.step() == pytest.approx(1.0)
        assert scheduler.step() == pytest.approx(0.5)


class TestCosineAnnealingLR:
    def test_endpoints(self):
        scheduler = nn.CosineAnnealingLR(make_optimizer(lr=1.0), t_max=10, eta_min=0.1)
        values = [scheduler.step() for _ in range(10)]
        assert values[0] < 1.0
        assert values[-1] == pytest.approx(0.1)
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_clamps_after_t_max(self):
        scheduler = nn.CosineAnnealingLR(make_optimizer(), t_max=2)
        for _ in range(5):
            lr = scheduler.step()
        assert lr == pytest.approx(0.0)


class TestSchedulerRebase:
    """External lr changes (trainer divergence backoff) must re-base the
    schedule instead of being clobbered by the next ``step()``."""

    def test_step_lr_respects_external_backoff(self):
        optimizer = make_optimizer(lr=1.0)
        scheduler = nn.StepLR(optimizer, step_size=10, gamma=0.1)
        scheduler.step()
        assert optimizer.lr == pytest.approx(1.0)
        # The trainer's divergence guard halves the lr out from under us.
        optimizer.lr *= 0.5
        lr = scheduler.step()
        # Pre-fix this restored the original schedule (1.0); re-based it
        # continues at the reduced level.
        assert lr == pytest.approx(0.5)
        assert scheduler.base_lr == pytest.approx(0.5)

    def test_exponential_lr_backoff_then_schedule(self):
        optimizer = make_optimizer(lr=1.0)
        scheduler = nn.ExponentialLR(optimizer, gamma=0.5)
        scheduler.step()  # 0.5
        optimizer.lr *= 0.25  # backoff to 0.125
        assert scheduler.step() == pytest.approx(0.0625)  # decays from 0.125
        assert scheduler.step() == pytest.approx(0.03125)

    def test_cosine_rebases_eta_min_too(self):
        optimizer = make_optimizer(lr=1.0)
        scheduler = nn.CosineAnnealingLR(optimizer, t_max=4, eta_min=0.2)
        scheduler.step()
        optimizer.lr *= 0.5
        for _ in range(5):
            lr = scheduler.step()
        assert lr == pytest.approx(scheduler.eta_min)
        assert scheduler.eta_min == pytest.approx(0.1)

    def test_unchanged_lr_does_not_rebase(self):
        optimizer = make_optimizer(lr=2.0)
        scheduler = nn.StepLR(optimizer, step_size=2, gamma=0.5)
        lrs = [scheduler.step() for _ in range(4)]
        assert lrs == [pytest.approx(v) for v in [2.0, 1.0, 1.0, 0.5]]
        assert scheduler.base_lr == pytest.approx(2.0)

    def test_rebase_from_zero_adopts_new_lr(self):
        optimizer = make_optimizer(lr=1.0)
        scheduler = nn.CosineAnnealingLR(optimizer, t_max=2, eta_min=0.0)
        for _ in range(3):
            scheduler.step()
        assert optimizer.lr == pytest.approx(0.0)
        optimizer.lr = 0.3  # external reset from a zero lr
        scheduler.step()
        assert scheduler.base_lr == pytest.approx(0.3)


class TestEarlyStopping:
    def test_stops_after_patience(self):
        stopper = nn.EarlyStopping(patience=3)
        assert not stopper.update(1.0)
        assert not stopper.update(1.0)
        assert not stopper.update(1.0)
        assert stopper.update(1.0)  # 4th non-improving epoch

    def test_improvement_resets(self):
        stopper = nn.EarlyStopping(patience=2)
        stopper.update(1.0)
        stopper.update(1.0)  # bad 1
        assert not stopper.update(0.5)  # improvement resets
        assert stopper.bad_epochs == 0

    def test_min_delta(self):
        stopper = nn.EarlyStopping(patience=1, min_delta=0.1)
        stopper.update(1.0)
        assert stopper.update(0.95)  # not enough improvement

    def test_invalid_patience(self):
        with pytest.raises(ValueError):
            nn.EarlyStopping(patience=0)


class TestExtraOptimizers:
    def _fit(self, optimizer_factory):
        p = Parameter(np.zeros(3))
        optimizer = optimizer_factory(p)
        for _ in range(150):
            optimizer.zero_grad()
            ((p - Tensor(np.full(3, 2.0))) ** 2).sum().backward()
            optimizer.step()
        return p.data

    def test_adamw_converges(self):
        result = self._fit(lambda p: nn.AdamW([p], lr=0.1, weight_decay=0.0))
        assert np.allclose(result, 2.0, atol=1e-2)

    def test_adamw_decay_shrinks_weights(self):
        no_decay = self._fit(lambda p: nn.AdamW([p], lr=0.1, weight_decay=0.0))
        with_decay = self._fit(lambda p: nn.AdamW([p], lr=0.1, weight_decay=0.05))
        assert np.all(np.abs(with_decay) < np.abs(no_decay))

    def test_rmsprop_converges(self):
        result = self._fit(lambda p: nn.RMSProp([p], lr=0.05))
        assert np.allclose(result, 2.0, atol=1e-2)
