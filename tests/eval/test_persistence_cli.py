"""Tests for result persistence and the command-line interface."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.eval import (
    AggregateScores,
    DatasetScores,
    load_results,
    per_type_breakdown,
    save_results,
)


def make_aggregate() -> AggregateScores:
    runs = [
        DatasetScores("001_sine_noise", 0, {"pak_f1_auc": 0.5, "f1_pw": 0.2}),
        DatasetScores("002_ecg_noise", 0, {"pak_f1_auc": 0.3, "f1_pw": 0.1}),
        DatasetScores("003_am_level_shift", 0, {"pak_f1_auc": 0.9, "f1_pw": 0.7}),
    ]
    return AggregateScores(
        detector="demo",
        mean={"pak_f1_auc": 0.57, "f1_pw": 0.33},
        std={"pak_f1_auc": 0.0, "f1_pw": 0.0},
        per_run=runs,
    )


class TestResultPersistence:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "results.json"
        save_results([make_aggregate()], path)
        loaded = load_results(path)
        assert len(loaded) == 1
        assert loaded[0].detector == "demo"
        assert loaded[0].mean["pak_f1_auc"] == pytest.approx(0.57)
        assert loaded[0].per_run[2].dataset == "003_am_level_shift"

    def test_json_is_valid_and_sorted(self, tmp_path):
        path = tmp_path / "results.json"
        save_results([make_aggregate()], path)
        payload = json.loads(path.read_text())
        assert payload[0]["detector"] == "demo"


class TestPerTypeBreakdown:
    def test_groups_by_suffix(self):
        breakdown = per_type_breakdown(make_aggregate())
        assert breakdown["noise"] == pytest.approx(0.4)
        assert breakdown["level_shift"] == pytest.approx(0.9)

    def test_unknown_bucket(self):
        agg = make_aggregate()
        agg.per_run.append(DatasetScores("mystery", 0, {"pak_f1_auc": 0.1}))
        assert "unknown" in per_type_breakdown(agg)


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["archive", "--size", "3"])
        assert args.command == "archive" and args.size == 3
        args = parser.parse_args(["detect", "--dataset", "1"])
        assert args.command == "detect"

    def test_experiments_command(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "bench_fig9_ablation" in out

    def test_archive_command(self, capsys):
        assert main(["archive", "--size", "3", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "001_" in out and "Length distribution" in out

    def test_archive_writes_ucr_files(self, tmp_path, capsys):
        assert main(["archive", "--size", "2", "--out", str(tmp_path / "ucr")]) == 0
        files = sorted((tmp_path / "ucr").glob("*.txt"))
        assert len(files) == 2
        # The written files must be loadable by the real-UCR loader.
        from repro.data import load_ucr_file

        dataset = load_ucr_file(files[0])
        assert dataset.labels.sum() > 0

    def test_detect_command_on_written_file(self, tmp_path, capsys):
        main(["archive", "--size", "1", "--out", str(tmp_path / "ucr")])
        capsys.readouterr()
        path = next((tmp_path / "ucr").glob("*.txt"))
        assert main(["detect", "--dataset", str(path), "--epochs", "1"]) == 0
        out = capsys.readouterr().out
        assert "PA%K F1-AUC" in out

    def test_detect_saves_detector(self, tmp_path, capsys):
        save_path = tmp_path / "model.npz"
        assert (
            main(["detect", "--dataset", "0", "--epochs", "1", "--save", str(save_path)])
            == 0
        )
        assert save_path.exists()
        from repro.core import load_detector

        detector = load_detector(save_path)
        assert detector.plan.length > 0

    def test_compare_command_with_json(self, tmp_path, capsys):
        json_path = tmp_path / "board.json"
        code = main(
            [
                "compare",
                "--size",
                "2",
                "--epochs",
                "1",
                "--detectors",
                "one-liner,spectral-residual",
                "--json",
                str(json_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "one-liner" in out
        loaded = load_results(json_path)
        assert {a.detector for a in loaded} == {"one-liner", "spectral-residual"}

    def test_compare_unknown_detector(self, capsys):
        assert main(["compare", "--detectors", "hal9000"]) == 2


class TestCliReportAndTune:
    def test_report_from_fixture_dir(self, tmp_path, capsys):
        (tmp_path / "table2_pa_inflation.txt").write_text("Table II body")
        assert main(["report", "--results", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Table II body" in out

    def test_report_to_file(self, tmp_path, capsys):
        (tmp_path / "fig6_length_dist.txt").write_text("Fig 6 body")
        out_path = tmp_path / "report.md"
        assert main(["report", "--results", str(tmp_path), "--out", str(out_path)]) == 0
        assert "Fig 6 body" in out_path.read_text()

    def test_report_missing_dir_fails_cleanly(self, tmp_path, capsys):
        assert main(["report", "--results", str(tmp_path / "nope")]) == 2

    def test_tune_sweeps_alpha(self, capsys):
        assert main(["tune", "--size", "1", "--epochs", "1", "--alpha", "0.3,0.5"]) == 0
        out = capsys.readouterr().out
        assert "alpha=0.3" in out
        assert "best:" in out

    def test_tune_without_grid_fails(self, capsys):
        assert main(["tune", "--alpha", "", "--depth", ""]) == 2


class TestCliScoresMode:
    def test_scores_leaderboard(self, capsys):
        assert main(["compare", "--size", "2", "--epochs", "1",
                     "--mode", "scores",
                     "--detectors", "one-liner,changepoint"]) == 0
        out = capsys.readouterr().out
        assert "roc_auc" in out
        assert "one-liner" in out

    def test_triad_rejected_in_scores_mode(self, capsys):
        assert main(["compare", "--mode", "scores", "--detectors", "triad"]) == 2
