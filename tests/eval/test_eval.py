"""Evaluation harness tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_archive
from repro.eval import (
    BENCH_SEEDS,
    EXPERIMENTS,
    METRIC_NAMES,
    bench_archive,
    bench_config,
    evaluate_predictions,
    render_table,
    run_on_archive,
)


class OracleDetector:
    """Test double: knows the labels, predicts them exactly."""

    def __init__(self, archive):
        self._labels = {len(ds.test) + i: ds for i, ds in enumerate(archive)}
        self._archive = archive
        self._index = 0

    def fit(self, train_series):
        return self

    def predict(self, test_series):
        # Match by content: find the dataset whose test equals the input.
        for ds in self._archive:
            if len(ds.test) == len(test_series) and np.allclose(ds.test, test_series):
                return ds.labels.copy()
        raise AssertionError("unknown test series")


class TestEvaluatePredictions:
    def test_metric_names_complete(self, small_dataset):
        metrics = evaluate_predictions(small_dataset.labels, small_dataset.labels)
        assert set(metrics) == set(METRIC_NAMES)

    def test_perfect_prediction(self, small_dataset):
        metrics = evaluate_predictions(small_dataset.labels, small_dataset.labels)
        assert metrics["f1_pw"] == pytest.approx(1.0)
        assert metrics["pak_f1_auc"] == pytest.approx(1.0)
        assert metrics["affiliation_f1"] > 0.99

    def test_all_zero_prediction(self, small_dataset):
        pred = np.zeros_like(small_dataset.labels)
        metrics = evaluate_predictions(pred, small_dataset.labels)
        assert metrics["f1_pw"] == 0.0
        assert metrics["affiliation_recall"] == 0.0


class TestRunOnArchive:
    @pytest.fixture(scope="class")
    def archive(self):
        return make_archive(size=3, seed=1, train_length=400, test_length=500)

    def test_oracle_scores_perfect(self, archive):
        agg = run_on_archive("oracle", lambda s: OracleDetector(archive), archive)
        assert agg.mean["f1_pw"] == pytest.approx(1.0)
        assert agg.std["f1_pw"] == pytest.approx(0.0)
        assert len(agg.per_run) == 3

    def test_multiple_seeds_tracked(self, archive):
        agg = run_on_archive(
            "oracle", lambda s: OracleDetector(archive), archive, seeds=(0, 1)
        )
        assert len(agg.per_run) == 6
        assert {r.seed for r in agg.per_run} == {0, 1}

    def test_row_formatting(self, archive):
        agg = run_on_archive("oracle", lambda s: OracleDetector(archive), archive)
        row = agg.row()
        assert row[0] == "oracle"
        assert all("±" in cell for cell in row[1:])

    def test_on_detection_hook_called(self, archive):
        calls = []
        run_on_archive(
            "oracle",
            lambda s: OracleDetector(archive),
            archive,
            on_detection=lambda ds, seed, det, pred: calls.append(ds.name),
        )
        assert len(calls) == 3


class TestTables:
    def test_render_alignment(self):
        table = render_table(["a", "bbb"], [["x", "1"], ["yyyy", "22"]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert all(len(line) == len(lines[1]) for line in lines[1:])

    def test_cells_stringified(self):
        table = render_table(["n"], [[42]])
        assert "42" in table


class TestExperimentRegistry:
    def test_all_paper_artifacts_covered(self):
        artifacts = {e.paper_artifact for e in EXPERIMENTS.values()}
        for required in ["Table II", "Table III", "Table IV", "Fig. 6", "Fig. 7",
                         "Fig. 8", "Fig. 9", "Figs. 10-13", "Fig. 15"]:
            assert any(required in a for a in artifacts), required

    def test_bench_modules_exist(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[2]
        for experiment in EXPERIMENTS.values():
            assert (root / experiment.bench_module).exists(), experiment.bench_module

    def test_bench_archive_settings(self):
        archive = bench_archive(size=2)
        assert len(archive) == 2
        assert len(archive[0].train) == 1600

    def test_bench_config_overrides(self):
        config = bench_config(alpha=0.5)
        assert config.alpha == 0.5
        assert config.epochs == 5

    def test_bench_seeds(self):
        assert len(BENCH_SEEDS) >= 2
