"""SweepCheckpoint journal loading must survive damage, loudly.

A process killed mid-``_append`` leaves a truncated final JSONL line;
editors and stray writers can leave non-object or wrong-schema lines.
``load`` skips every such line with a warning naming the file and line
number, so a damaged journal degrades to re-running the affected units
instead of aborting the resume.
"""

from __future__ import annotations

import json

import pytest

from repro.eval import DatasetScores, SweepCheckpoint
from repro.runtime import FailureReport


def make_checkpoint(tmp_path) -> SweepCheckpoint:
    checkpoint = SweepCheckpoint(tmp_path / "sweep.jsonl")
    checkpoint.append_result(
        DatasetScores("001_sine_noise", 0, {"roc_auc": 0.8})
    )
    checkpoint.append_failure(
        FailureReport(
            dataset="002_ecg_noise",
            seed=0,
            stage="fit",
            error_type="RuntimeError",
            message="boom",
            attempts=2,
            detector="demo",
        )
    )
    return checkpoint


def test_truncated_final_line_skipped_with_warning(tmp_path):
    checkpoint = make_checkpoint(tmp_path)
    intact = checkpoint.path.read_text()
    full_line = json.dumps(
        {"kind": "result", "dataset": "003_am_point", "seed": 0,
         "metrics": {"roc_auc": 0.5}, "warnings": [], "attempts": 1}
    )
    checkpoint.path.write_text(intact + full_line[: len(full_line) // 2])

    with pytest.warns(RuntimeWarning, match=r"sweep\.jsonl:3.*torn write"):
        results, failures = checkpoint.load()
    # the intact prefix is fully recovered
    assert ("001_sine_noise", 0) in results
    assert ("002_ecg_noise", 0) in failures
    # the torn unit is simply absent, so it will re-run
    assert ("003_am_point", 0) not in results


def test_non_object_line_skipped_with_warning(tmp_path):
    checkpoint = make_checkpoint(tmp_path)
    with open(checkpoint.path, "a", encoding="utf-8") as handle:
        handle.write('"just a string"\n')
    with pytest.warns(RuntimeWarning, match="expected an object, got str"):
        results, failures = checkpoint.load()
    assert len(results) == 1 and len(failures) == 1


def test_wrong_schema_line_skipped_with_warning(tmp_path):
    checkpoint = make_checkpoint(tmp_path)
    with open(checkpoint.path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps({"kind": "result", "unexpected": True}) + "\n")
        handle.write(json.dumps({"kind": "mystery"}) + "\n")
    with pytest.warns(RuntimeWarning) as caught:
        results, _ = checkpoint.load()
    messages = [str(w.message) for w in caught]
    assert any("TypeError" in m for m in messages)
    assert any("unknown kind 'mystery'" in m for m in messages)
    assert len(results) == 1


def test_clean_journal_loads_without_warnings(tmp_path):
    checkpoint = make_checkpoint(tmp_path)
    import warnings as warnings_module

    with warnings_module.catch_warnings():
        warnings_module.simplefilter("error")
        results, failures = checkpoint.load()
    assert len(results) == 1 and len(failures) == 1
