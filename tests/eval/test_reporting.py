"""Tests for the markdown report builder."""

from __future__ import annotations

import pytest

from repro.eval import build_report, write_report


@pytest.fixture
def results_dir(tmp_path):
    (tmp_path / "table2_pa_inflation.txt").write_text("Table II content\nrow | row")
    (tmp_path / "fig6_length_dist.txt").write_text("Fig 6 content")
    (tmp_path / "custom_extra.txt").write_text("extra artifact")
    return tmp_path


class TestBuildReport:
    def test_groups_by_experiment(self, results_dir):
        report = build_report(results_dir)
        assert "# Benchmark results" in report
        assert "## Table II" in report
        assert "Table II content" in report
        assert "## Fig. 6" in report

    def test_unknown_artifacts_in_additional_section(self, results_dir):
        report = build_report(results_dir)
        assert "## Additional results" in report
        assert "extra artifact" in report

    def test_artifacts_fenced(self, results_dir):
        report = build_report(results_dir)
        assert report.count("```") % 2 == 0
        assert report.count("```") >= 6

    def test_empty_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            build_report(tmp_path)

    def test_write_report(self, results_dir, tmp_path):
        out = write_report(results_dir, tmp_path / "report.md")
        assert out.exists()
        assert "Table II content" in out.read_text()

    def test_real_results_if_present(self):
        """When the benches have run, the real results build cleanly."""
        import pathlib

        real = pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "results"
        if not real.is_dir() or not list(real.glob("*.txt")):
            pytest.skip("benchmarks have not produced artifacts yet")
        report = build_report(real)
        assert "Table III" in report
