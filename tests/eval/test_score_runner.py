"""Tests for the score-based archive runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_archive
from repro.eval import (
    SCORE_METRIC_NAMES,
    evaluate_scores,
    run_scores_on_archive,
)


class OracleScorer:
    """Scores equal to the labels (plus tiny noise to break ties)."""

    def __init__(self, archive):
        self._archive = archive

    def fit(self, train_series):
        return self

    def score_series(self, test_series):
        for ds in self._archive:
            if len(ds.test) == len(test_series) and np.allclose(ds.test, test_series):
                rng = np.random.default_rng(0)
                return ds.labels + 1e-6 * rng.random(len(ds.labels))
        raise AssertionError("unknown test series")


class TestEvaluateScores:
    def test_metric_names(self, small_dataset):
        metrics = evaluate_scores(
            small_dataset.labels.astype(float), small_dataset.labels
        )
        assert set(metrics) == set(SCORE_METRIC_NAMES)

    def test_perfect_scores(self, small_dataset):
        metrics = evaluate_scores(
            small_dataset.labels.astype(float), small_dataset.labels
        )
        assert metrics["roc_auc"] == pytest.approx(1.0)
        assert metrics["pr_auc"] == pytest.approx(1.0)
        assert metrics["best_f1"] == pytest.approx(1.0)

    def test_random_scores_midline(self, small_dataset, rng):
        metrics = evaluate_scores(rng.random(len(small_dataset.test)), small_dataset.labels)
        assert 0.2 < metrics["roc_auc"] < 0.8


class TestRunScoresOnArchive:
    @pytest.fixture(scope="class")
    def archive(self):
        return make_archive(size=3, seed=2, train_length=400, test_length=500)

    def test_oracle_perfect(self, archive):
        agg = run_scores_on_archive("oracle", lambda s: OracleScorer(archive), archive)
        assert agg.mean["roc_auc"] == pytest.approx(1.0)
        assert agg.std["roc_auc"] == pytest.approx(0.0)
        assert len(agg.per_run) == 3

    def test_row_with_score_metrics(self, archive):
        agg = run_scores_on_archive("oracle", lambda s: OracleScorer(archive), archive)
        row = agg.row(metrics=SCORE_METRIC_NAMES)
        assert row[0] == "oracle"
        assert len(row) == 1 + len(SCORE_METRIC_NAMES)

    def test_real_detector_runs(self, archive):
        from repro.baselines import OneLinerDetector

        agg = run_scores_on_archive(
            "one-liner", lambda s: OneLinerDetector(), archive, seeds=(0, 1)
        )
        assert {r.seed for r in agg.per_run} == {0, 1}
        assert 0.0 <= agg.mean["roc_auc"] <= 1.0
