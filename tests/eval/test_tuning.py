"""Tests for the grid-search tuning helper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TriADConfig
from repro.data import make_archive
from repro.eval import grid_search, tri_window_accuracy
from repro.eval.tuning import pak_f1_score


@pytest.fixture(scope="module")
def tiny_archive():
    return make_archive(size=2, seed=13, train_length=900, test_length=1100)


@pytest.fixture(scope="module")
def base_config():
    return TriADConfig(depth=1, hidden_dim=4, epochs=1, max_window=96, seed=0)


class TestGridSearch:
    def test_sweeps_all_combinations(self, tiny_archive, base_config):
        result = grid_search(
            tiny_archive,
            {"alpha": [0.2, 0.6], "temperature": [0.2, 0.5]},
            base_config=base_config,
        )
        assert len(result.points) == 4
        combos = {p.overrides for p in result.points}
        assert (("alpha", 0.2), ("temperature", 0.5)) in combos

    def test_points_sorted_best_first(self, tiny_archive, base_config):
        result = grid_search(tiny_archive, {"alpha": [0.2, 0.8]}, base_config=base_config)
        scores = [p.score for p in result.points]
        assert scores == sorted(scores, reverse=True)
        assert result.best_score == scores[0]

    def test_best_config_carries_overrides(self, tiny_archive, base_config):
        result = grid_search(tiny_archive, {"depth": [1, 2]}, base_config=base_config)
        assert result.best_config.depth in (1, 2)
        assert result.best_config.hidden_dim == base_config.hidden_dim

    def test_empty_grid_rejected(self, tiny_archive, base_config):
        with pytest.raises(ValueError):
            grid_search(tiny_archive, {}, base_config=base_config)

    def test_table_rows(self, tiny_archive, base_config):
        result = grid_search(tiny_archive, {"alpha": [0.4]}, base_config=base_config)
        rows = result.table_rows()
        assert rows[0][0] == "alpha=0.4"
        assert float(rows[0][1]) == pytest.approx(result.best_score, abs=5e-4)

    def test_custom_score_function(self, tiny_archive, base_config):
        calls = []

        def scorer(detector, dataset):
            calls.append(dataset.name)
            return 0.5

        result = grid_search(
            tiny_archive, {"alpha": [0.4]}, base_config=base_config, score=scorer
        )
        assert result.best_score == pytest.approx(0.5)
        assert len(calls) == len(tiny_archive)


class TestScorers:
    def test_tri_window_accuracy_binary(self, tiny_archive, base_config):
        from repro import TriAD

        detector = TriAD(base_config).fit(tiny_archive[0].train)
        value = tri_window_accuracy(detector, tiny_archive[0])
        assert value in (0.0, 1.0)

    def test_pak_f1_score_range(self, tiny_archive, base_config):
        from repro import TriAD

        detector = TriAD(base_config).fit(tiny_archive[0].train)
        value = pak_f1_score(detector, tiny_archive[0])
        assert 0.0 <= value <= 1.0
