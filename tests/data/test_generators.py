"""Signal family generator tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import FAMILIES, generate_base, list_families
from repro.signal import autocorrelation


class TestFamilies:
    def test_registry_contents(self):
        assert set(list_families()) == {"sine", "harmonics", "ecg", "sawtooth", "am", "square"}

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_output_shape_and_finiteness(self, family, rng):
        x = generate_base(family, 500, 40, rng)
        assert x.shape == (500,)
        assert np.all(np.isfinite(x))

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_periodicity(self, family):
        """Every family should autocorrelate strongly at its period."""
        rng = np.random.default_rng(0)
        period = 50
        x = generate_base(family, 2000, period, rng, noise_level=0.01)
        acf = autocorrelation(x)
        assert acf[period] > 0.5, f"{family} acf[{period}]={acf[period]:.2f}"

    def test_noise_level_scales_noise(self):
        quiet = generate_base("sine", 1000, 40, np.random.default_rng(1), noise_level=0.0)
        noisy = generate_base("sine", 1000, 40, np.random.default_rng(1), noise_level=0.5)
        assert noisy.std() > quiet.std()

    def test_unknown_family_raises(self, rng):
        with pytest.raises(KeyError):
            generate_base("nope", 100, 10, rng)

    def test_deterministic_given_rng_seed(self):
        a = generate_base("ecg", 300, 30, np.random.default_rng(9))
        b = generate_base("ecg", 300, 30, np.random.default_rng(9))
        assert np.array_equal(a, b)

    def test_ecg_has_secondary_peak_structure(self):
        """The ECG family must show two peaks per cycle (case-study morphology)."""
        x = generate_base("ecg", 400, 100, np.random.default_rng(3), noise_level=0.0)
        cycle = x[100:200]
        # Count local maxima above the baseline.
        peaks = [
            i
            for i in range(1, 99)
            if cycle[i] > cycle[i - 1] and cycle[i] > cycle[i + 1] and cycle[i] > 0.15
        ]
        assert len(peaks) >= 2
