"""Tests for KPI/SWaT-style one-liner streams."""

from __future__ import annotations

import numpy as np

from repro.data import make_kpi_dataset, make_swat_dataset
from repro.signal import robust_zscore


class TestKpiDataset:
    def test_shapes_and_split(self):
        ds = make_kpi_dataset(length=4000, train_fraction=0.5, seed=0)
        assert len(ds.train) == 2000
        assert len(ds.test) == 2000
        assert len(ds.labels) == 2000

    def test_multiple_events(self):
        ds = make_kpi_dataset(events=8, seed=1)
        assert len(ds.events()) >= 4  # some may merge if adjacent

    def test_train_half_clean(self):
        ds = make_kpi_dataset(seed=2)
        assert np.abs(robust_zscore(ds.train)).max() < 6.0

    def test_anomalies_are_one_liner_detectable(self):
        """The whole point: a robust z-score threshold finds the events."""
        ds = make_kpi_dataset(seed=3)
        scores = np.abs(robust_zscore(ds.test))
        flagged = scores > 5.0
        for start, end in ds.events():
            assert flagged[start:end].any(), (start, end)

    def test_reproducible(self):
        a = make_kpi_dataset(seed=4)
        b = make_kpi_dataset(seed=4)
        assert np.array_equal(a.test, b.test)
        assert np.array_equal(a.labels, b.labels)


class TestSwatDataset:
    def test_long_saturation_events(self):
        ds = make_swat_dataset(seed=0)
        for start, end in ds.events():
            assert end - start >= 50
            assert ds.test[start:end].mean() > 2.0  # pinned to extreme value

    def test_labels_cover_events_only(self):
        ds = make_swat_dataset(seed=1)
        normal = ds.test[ds.labels == 0]
        assert np.abs(normal).max() < 3.0

    def test_reproducible(self):
        a = make_swat_dataset(seed=2)
        b = make_swat_dataset(seed=2)
        assert np.array_equal(a.test, b.test)
