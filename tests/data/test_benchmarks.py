"""Tests for the Yahoo/NASA-style flawed-benchmark simulators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_nasa_dataset, make_yahoo_dataset
from repro.metrics import affiliation_metrics, f1_score
from repro.signal import robust_zscore


class TestYahoo:
    def test_dense_explicit_anomalies(self):
        ds = make_yahoo_dataset(events=12, seed=0)
        events = ds.events()
        assert len(events) >= 8  # unrealistic density preserved
        assert all(end - start <= 3 for start, end in events)

    def test_one_liner_detectable(self):
        """Every event crosses a plain robust-z threshold (triviality)."""
        ds = make_yahoo_dataset(seed=1)
        flagged = np.abs(robust_zscore(ds.test)) > 3.5
        for start, end in ds.events():
            assert flagged[start:end].any(), (start, end)

    def test_train_clean(self):
        ds = make_yahoo_dataset(seed=2)
        assert np.abs(robust_zscore(ds.train)).max() < 5.0

    def test_reproducible(self):
        assert np.array_equal(
            make_yahoo_dataset(seed=3).test, make_yahoo_dataset(seed=3).test
        )


class TestNasa:
    def test_single_regime_anomaly(self):
        ds = make_nasa_dataset(seed=0)
        events = ds.events()
        assert len(events) == 1
        start, end = events[0]
        assert end - start == 150

    def test_anomaly_is_a_drift(self):
        ds = make_nasa_dataset(seed=1)
        start, end = ds.anomaly_interval
        segment = ds.test[start:end]
        slope = np.polyfit(np.arange(len(segment)), segment, 1)[0]
        assert slope > 0.005  # ramping regime

    def test_label_offset_creates_mislabeling(self):
        """With offset labels, a perfect detector of the TRUE event is
        punished — the mislabeled-ground-truth pathology."""
        clean = make_nasa_dataset(seed=4, label_offset=0)
        shifted = make_nasa_dataset(seed=4, label_offset=200)
        # Identical data; only labels moved.
        assert np.array_equal(clean.test, shifted.test)
        true_event = clean.labels
        f1_against_clean = f1_score(true_event, clean.labels)
        f1_against_shifted = f1_score(true_event, shifted.labels)
        assert f1_against_clean == 1.0
        assert f1_against_shifted < 0.6
        # Affiliation partially forgives the offset — exactly why the
        # paper pairs PA%K with an event-distance metric.
        affiliation = affiliation_metrics(true_event, shifted.labels)
        assert affiliation.f1 > f1_against_shifted

    def test_reproducible(self):
        assert np.array_equal(
            make_nasa_dataset(seed=5).test, make_nasa_dataset(seed=5).test
        )
