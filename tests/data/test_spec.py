"""Dataset container tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Dataset, DatasetSpec


def make_spec(**overrides) -> DatasetSpec:
    defaults = dict(
        name="d",
        family="sine",
        period=20,
        train_length=200,
        test_length=300,
        anomaly_type="noise",
        anomaly_start=100,
        anomaly_length=30,
    )
    defaults.update(overrides)
    return DatasetSpec(**defaults)


class TestDatasetSpec:
    def test_valid_spec(self):
        spec = make_spec()
        assert spec.anomaly_start + spec.anomaly_length <= spec.test_length

    def test_anomaly_exceeding_test_raises(self):
        with pytest.raises(ValueError):
            make_spec(anomaly_start=290, anomaly_length=20)

    def test_negative_start_raises(self):
        with pytest.raises(ValueError):
            make_spec(anomaly_start=-1)

    def test_zero_length_raises(self):
        with pytest.raises(ValueError):
            make_spec(anomaly_length=0)

    def test_tiny_period_raises(self):
        with pytest.raises(ValueError):
            make_spec(period=1)

    def test_frozen(self):
        spec = make_spec()
        with pytest.raises(AttributeError):
            spec.period = 5


class TestDataset:
    def test_anomaly_interval(self):
        labels = np.zeros(100, dtype=int)
        labels[40:60] = 1
        ds = Dataset("x", np.zeros(50), np.zeros(100), labels)
        assert ds.anomaly_interval == (40, 60)
        assert ds.anomaly_length == 20

    def test_interval_of_first_event_only(self):
        labels = np.zeros(100, dtype=int)
        labels[10:15] = 1
        labels[50:55] = 1
        ds = Dataset("x", np.zeros(50), np.zeros(100), labels)
        assert ds.anomaly_interval == (10, 15)

    def test_events_lists_all(self):
        labels = np.zeros(100, dtype=int)
        labels[10:15] = 1
        labels[50:55] = 1
        labels[99] = 1
        ds = Dataset("x", np.zeros(50), np.zeros(100), labels)
        assert ds.events() == [(10, 15), (50, 55), (99, 100)]

    def test_no_events(self):
        ds = Dataset("x", np.zeros(50), np.zeros(100), np.zeros(100, dtype=int))
        assert ds.events() == []
        with pytest.raises(ValueError):
            _ = ds.anomaly_interval

    def test_labels_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            Dataset("x", np.zeros(50), np.zeros(100), np.zeros(99, dtype=int))
