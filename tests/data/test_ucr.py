"""Real-UCR file format loader tests (using generated fixture files)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import load_ucr_archive, load_ucr_file, parse_ucr_filename


class TestParseFilename:
    def test_standard_name(self):
        meta = parse_ucr_filename("025_UCR_Anomaly_MARS_5000_5948_5974.txt")
        assert meta == {
            "id": 25,
            "name": "MARS",
            "train_end": 5000,
            "start": 5948,
            "end": 5974,
        }

    def test_name_with_underscores(self):
        meta = parse_ucr_filename("001_UCR_Anomaly_ECG_lead_2_3000_4000_4100.txt")
        assert meta["name"] == "ECG_lead_2"
        assert meta["train_end"] == 3000

    def test_full_path_accepted(self):
        meta = parse_ucr_filename("/data/ucr/100_UCR_Anomaly_xyz_10_20_30.txt")
        assert meta["id"] == 100

    @pytest.mark.parametrize(
        "bad",
        ["random.txt", "025_UCR_MARS_5000_5948_5974.txt", "UCR_Anomaly_x_1_2_3.txt"],
    )
    def test_invalid_names_raise(self, bad):
        with pytest.raises(ValueError):
            parse_ucr_filename(bad)


@pytest.fixture
def ucr_dir(tmp_path, rng):
    """Write a miniature archive in the genuine file format."""
    for i, (train_end, start, end) in enumerate([(500, 700, 750), (400, 600, 610)]):
        total = train_end + 500
        values = np.sin(2 * np.pi * np.arange(total) / 40) + 0.05 * rng.standard_normal(total)
        values[start - 1 : end] += 3.0  # 1-based inclusive anomaly
        name = f"{i + 1:03d}_UCR_Anomaly_synth{i}_{train_end}_{start}_{end}.txt"
        np.savetxt(tmp_path / name, values)
    (tmp_path / "notes.md").write_text("ignore me")
    return tmp_path


class TestLoadUcr:
    def test_load_single_file(self, ucr_dir):
        path = next(ucr_dir.glob("001_*.txt"))
        ds = load_ucr_file(path)
        assert len(ds.train) == 500
        assert len(ds.test) == 500
        # 1-based [700, 750] inclusive -> 0-based test-relative [199, 250).
        assert ds.anomaly_interval == (199, 250)

    def test_labels_match_spike(self, ucr_dir):
        path = next(ucr_dir.glob("001_*.txt"))
        ds = load_ucr_file(path)
        start, end = ds.anomaly_interval
        assert ds.test[start:end].mean() > ds.test[:start].mean() + 1.0

    def test_load_archive_sorted_and_filtered(self, ucr_dir):
        datasets = load_ucr_archive(ucr_dir)
        assert [ds.name.split("_")[0] for ds in datasets] == ["001", "002"]

    def test_limit(self, ucr_dir):
        assert len(load_ucr_archive(ucr_dir, limit=1)) == 1

    def test_bad_train_end_raises(self, tmp_path):
        name = "001_UCR_Anomaly_x_900_950_960.txt"
        np.savetxt(tmp_path / name, np.zeros(100))
        with pytest.raises(ValueError):
            load_ucr_file(tmp_path / name)
