"""Tests for the multivariate dataset substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import MultivariateDataset, make_multivariate_dataset


class TestMakeMultivariateDataset:
    def test_shapes(self):
        ds = make_multivariate_dataset(
            channels=4, train_length=600, test_length=800, seed=0
        )
        assert ds.train.shape == (4, 600)
        assert ds.test.shape == (4, 800)
        assert ds.labels.shape == (800,)
        assert ds.channels == 4

    def test_affected_channels_differ_from_clean_twin(self):
        """Same seed, affected=0 vs 2: only the affected channels change,
        and only inside the anomaly window."""
        kwargs = dict(
            channels=4,
            train_length=600,
            test_length=800,
            anomaly_start=400,
            anomaly_length=60,
            anomaly_type="noise",
            seed=1,
        )
        clean = make_multivariate_dataset(affected=1, **kwargs)
        dirty = make_multivariate_dataset(affected=2, **kwargs)
        # Channel 0 is injected in both; channel 1 only in `dirty`.
        assert np.array_equal(clean.test[2], dirty.test[2])
        assert np.array_equal(clean.test[3], dirty.test[3])
        assert not np.array_equal(clean.test[1], dirty.test[1])
        start, end = dirty.anomaly_interval
        # Differences confined to the anomaly window.
        assert np.array_equal(clean.test[1, :start], dirty.test[1, :start])
        assert np.array_equal(clean.test[1, end:], dirty.test[1, end:])

    def test_channels_are_correlated(self):
        ds = make_multivariate_dataset(channels=3, coupling=0.8, seed=2,
                                       train_length=1000, test_length=500)
        corr = np.corrcoef(ds.train)
        off_diagonal = corr[np.triu_indices(3, k=1)]
        assert np.all(off_diagonal > 0.3)

    def test_invalid_affected(self):
        with pytest.raises(ValueError):
            make_multivariate_dataset(channels=2, affected=3)

    def test_channel_accessor(self):
        ds = make_multivariate_dataset(channels=2, train_length=500, test_length=600)
        train, test = ds.channel(1)
        assert np.array_equal(train, ds.train[1])
        assert np.array_equal(test, ds.test[1])

    def test_reproducible(self):
        a = make_multivariate_dataset(seed=5, train_length=500, test_length=600)
        b = make_multivariate_dataset(seed=5, train_length=500, test_length=600)
        assert np.array_equal(a.test, b.test)


class TestMultivariateDataset:
    def test_channel_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MultivariateDataset(
                "x", np.zeros((2, 10)), np.zeros((3, 10)), np.zeros(10, dtype=int)
            )

    def test_label_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MultivariateDataset(
                "x", np.zeros((2, 10)), np.zeros((2, 10)), np.zeros(9, dtype=int)
            )

    def test_no_anomaly_raises(self):
        ds = MultivariateDataset(
            "x", np.zeros((1, 10)), np.zeros((1, 10)), np.zeros(10, dtype=int)
        )
        with pytest.raises(ValueError):
            _ = ds.anomaly_interval
