"""Synthetic archive tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import anomaly_length_distribution, make_archive, make_dataset
from repro.data.spec import DatasetSpec


class TestMakeDataset:
    def test_splits_and_labels(self, small_dataset):
        ds = small_dataset
        assert len(ds.train) == ds.spec.train_length
        assert len(ds.test) == ds.spec.test_length
        assert ds.labels.sum() == ds.spec.anomaly_length
        assert ds.anomaly_interval == (
            ds.spec.anomaly_start,
            ds.spec.anomaly_start + ds.spec.anomaly_length,
        )

    def test_train_is_anomaly_free_continuation(self):
        """Normal test regions come from the same process as training."""
        spec = DatasetSpec(
            name="x",
            family="sine",
            period=25,
            train_length=500,
            test_length=500,
            anomaly_type="noise",
            anomaly_start=200,
            anomaly_length=50,
            noise_level=0.0,
            seed=0,
        )
        ds = make_dataset(spec)
        # With zero noise, normal test points continue the exact waveform.
        assert np.std(ds.test[:100]) > 0
        assert abs(ds.train.std() - ds.test[:100].std()) < 0.1

    def test_reproducible_given_spec(self, small_dataset):
        again = make_dataset(small_dataset.spec)
        assert np.array_equal(again.train, small_dataset.train)
        assert np.array_equal(again.test, small_dataset.test)


class TestMakeArchive:
    def test_size_and_uniqueness(self):
        archive = make_archive(size=10, seed=1, train_length=600, test_length=800)
        assert len(archive) == 10
        assert len({ds.name for ds in archive}) == 10

    def test_reproducible(self):
        a = make_archive(size=4, seed=2, train_length=600, test_length=800)
        b = make_archive(size=4, seed=2, train_length=600, test_length=800)
        for x, y in zip(a, b):
            assert x.name == y.name
            assert np.array_equal(x.test, y.test)

    def test_single_event_per_dataset(self):
        for ds in make_archive(size=8, seed=3, train_length=600, test_length=800):
            assert len(ds.events()) == 1

    def test_families_and_types_cycle(self):
        archive = make_archive(size=12, seed=4, train_length=600, test_length=800)
        families = {ds.spec.family for ds in archive}
        types = {ds.spec.anomaly_type for ds in archive}
        assert len(families) == 6
        assert len(types) == 6  # point excluded by default

    def test_point_type_excluded_by_default(self):
        archive = make_archive(size=14, seed=5, train_length=600, test_length=800)
        assert all(ds.spec.anomaly_type != "point" for ds in archive)

    def test_custom_types(self):
        archive = make_archive(
            size=4, seed=6, train_length=600, test_length=800, anomaly_types=["noise"]
        )
        assert all(ds.spec.anomaly_type == "noise" for ds in archive)

    def test_anomaly_lengths_vary(self):
        archive = make_archive(size=15, seed=7, train_length=600, test_length=800)
        lengths = {ds.anomaly_length for ds in archive}
        assert len(lengths) > 5


class TestLengthDistribution:
    def test_fractions_sum_to_one(self):
        archive = make_archive(size=20, seed=8, train_length=600, test_length=800)
        dist = anomaly_length_distribution(archive)
        assert pytest.approx(sum(dist.values())) == 1.0

    def test_bucket_names(self):
        dist = anomaly_length_distribution([])
        assert list(dist) == ["<16", "16-63", "64-127", "128-255", "256-511", ">=512"]
