"""Anomaly injector tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import ANOMALY_INJECTORS, generate_base, inject_anomaly, list_anomaly_types


@pytest.fixture
def base_series():
    return generate_base("harmonics", 1000, 40, np.random.default_rng(2), noise_level=0.02)


class TestInjectAnomaly:
    def test_registry_contents(self):
        assert set(list_anomaly_types()) == {
            "noise",
            "duration",
            "seasonal",
            "trend",
            "level_shift",
            "contextual",
            "point",
        }

    @pytest.mark.parametrize("anomaly_type", sorted(ANOMALY_INJECTORS))
    def test_only_segment_modified(self, base_series, anomaly_type):
        rng = np.random.default_rng(5)
        out = inject_anomaly(base_series, anomaly_type, 400, 80, 40, rng)
        assert np.array_equal(out[:400], base_series[:400])
        assert np.array_equal(out[480:], base_series[480:])
        assert not np.array_equal(out[400:480], base_series[400:480])

    @pytest.mark.parametrize("anomaly_type", sorted(ANOMALY_INJECTORS))
    def test_original_untouched(self, base_series, anomaly_type):
        copy = base_series.copy()
        inject_anomaly(base_series, anomaly_type, 100, 50, 40, np.random.default_rng(0))
        assert np.array_equal(base_series, copy)

    def test_unknown_type_raises(self, base_series):
        with pytest.raises(KeyError):
            inject_anomaly(base_series, "alien", 0, 10, 40, np.random.default_rng(0))

    def test_out_of_range_raises(self, base_series):
        with pytest.raises(ValueError):
            inject_anomaly(base_series, "noise", 990, 20, 40, np.random.default_rng(0))

    def test_level_shift_moves_mean(self, base_series):
        out = inject_anomaly(base_series, "level_shift", 300, 100, 40, np.random.default_rng(1))
        shift = abs(out[300:400].mean() - base_series[300:400].mean())
        assert shift > 0.5 * base_series.std()

    def test_noise_raises_local_variance(self, base_series):
        out = inject_anomaly(base_series, "noise", 300, 100, 40, np.random.default_rng(1))
        added = out[300:400] - base_series[300:400]
        assert added.std() > 0.5 * base_series.std()

    def test_duration_flattens_segment(self, base_series):
        out = inject_anomaly(base_series, "duration", 300, 100, 40, np.random.default_rng(1))
        assert out[300:400].std() < 0.2 * base_series[300:400].std()

    def test_trend_is_monotonic_ramp(self, base_series):
        out = inject_anomaly(base_series, "trend", 300, 100, 40, np.random.default_rng(1))
        added = out[300:400] - base_series[300:400]
        diffs = np.diff(added)
        assert np.all(diffs > 0) or np.all(diffs < 0)

    def test_point_preserves_all_but_spikes(self, base_series):
        out = inject_anomaly(base_series, "point", 300, 100, 40, np.random.default_rng(1))
        changed = np.flatnonzero(out != base_series)
        assert 1 <= len(changed) <= 3
        assert np.all((changed >= 300) & (changed < 400))

    def test_contextual_is_subtle(self, base_series):
        """Contextual distortion keeps amplitude/level roughly intact."""
        out = inject_anomaly(base_series, "contextual", 300, 100, 40, np.random.default_rng(1))
        assert abs(out[300:400].mean() - base_series[300:400].mean()) < 0.5 * base_series.std()
        assert np.abs(out[300:400]).max() <= np.abs(base_series[300:400]).max() * 1.5

    def test_seasonal_doubles_local_frequency(self):
        t = np.arange(1000)
        series = np.sin(2 * np.pi * t / 50)
        out = inject_anomaly(series, "seasonal", 400, 200, 50, np.random.default_rng(0))
        segment = out[400:600]
        spectrum = np.abs(np.fft.rfft(segment - segment.mean()))
        dominant = int(np.argmax(spectrum[1:]) + 1)
        # 200 points at period 25 -> 8 cycles (vs 4 for the normal signal).
        assert dominant == 8
