"""Frequency feature tests (Table I definitions)."""

from __future__ import annotations

import numpy as np

from repro.signal import (
    dominant_frequency,
    frequency_features,
    spectral_amplitude,
    spectral_phase,
    spectral_power,
)


class TestTableIFeatures:
    def test_amplitude_definition(self, rng):
        x = rng.normal(size=64)
        spectrum = np.fft.fft(x)
        expected = np.sqrt(spectrum.real**2 + spectrum.imag**2)
        assert np.allclose(spectral_amplitude(x), expected)

    def test_power_is_amplitude_squared(self, rng):
        x = rng.normal(size=64)
        assert np.allclose(spectral_power(x), spectral_amplitude(x) ** 2)

    def test_phase_in_range(self, rng):
        phase = spectral_phase(rng.normal(size=32))
        assert np.all(phase >= -np.pi) and np.all(phase <= np.pi)

    def test_pure_tone_amplitude_peak(self):
        n = 128
        x = np.sin(2 * np.pi * 8 * np.arange(n) / n)
        amp = spectral_amplitude(x)
        assert int(np.argmax(amp[1 : n // 2]) + 1) == 8


class TestFrequencyFeatures:
    def test_single_window_shape(self, rng):
        assert frequency_features(rng.normal(size=100)).shape == (3, 100)

    def test_batch_shape(self, rng):
        assert frequency_features(rng.normal(size=(5, 64))).shape == (5, 3, 64)

    def test_channels_are_normalized(self, rng):
        features = frequency_features(rng.normal(size=(4, 64)))
        assert np.allclose(features.mean(axis=-1), 0.0, atol=1e-8)
        stds = features.std(axis=-1)
        assert np.all((stds < 1.5) & (stds > 0.5))

    def test_constant_window_is_finite(self):
        features = frequency_features(np.ones(32))
        assert np.all(np.isfinite(features))

    def test_frequency_shift_changes_features(self):
        n = 128
        t = np.arange(n)
        slow = np.sin(2 * np.pi * 4 * t / n)
        fast = np.sin(2 * np.pi * 8 * t / n)
        f_slow = frequency_features(slow)
        f_fast = frequency_features(fast)
        assert not np.allclose(f_slow[0], f_fast[0], atol=0.1)


class TestDominantFrequency:
    def test_pure_tone(self):
        n = 256
        x = np.sin(2 * np.pi * 12 * np.arange(n) / n)
        assert dominant_frequency(x) == 12

    def test_dc_removed(self):
        x = np.sin(2 * np.pi * 5 * np.arange(128) / 128) + 100.0
        assert dominant_frequency(x) == 5

    def test_degenerate_input(self):
        assert dominant_frequency(np.ones(1)) == 0.0
