"""Period estimation tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.signal import acf_period, autocorrelation, estimate_period, fft_period


class TestAutocorrelation:
    def test_lag_zero_is_one(self, rng):
        acf = autocorrelation(rng.normal(size=500))
        assert np.isclose(acf[0], 1.0)

    def test_periodic_signal_peaks_at_period(self, sine_wave):
        acf = autocorrelation(sine_wave)
        assert acf[50] > 0.9

    def test_constant_signal_returns_zeros(self):
        acf = autocorrelation(np.ones(100), max_lag=10)
        assert np.allclose(acf, 0.0)


class TestPeriodDetectors:
    def test_acf_finds_sine_period(self, sine_wave):
        assert acf_period(sine_wave) == 50

    def test_fft_finds_sine_period(self, sine_wave):
        assert fft_period(sine_wave) == 50

    def test_acf_none_for_white_noise(self, rng):
        # White noise has no significant ACF peak most of the time; at
        # minimum the function must not crash and must return int or None.
        result = acf_period(rng.normal(size=50))
        assert result is None or isinstance(result, int)

    def test_fft_none_for_tiny_input(self):
        assert fft_period(np.zeros(3)) is None


class TestEstimatePeriod:
    @pytest.mark.parametrize("period", [20, 37, 64, 100])
    def test_recovers_known_periods(self, rng, period):
        t = np.arange(3000)
        x = np.sin(2 * np.pi * t / period) + 0.1 * rng.standard_normal(len(t))
        assert abs(estimate_period(x) - period) <= max(2, period // 20)

    def test_prefers_acf_over_fft_overtone(self, rng):
        """A waveform with a strong 2nd harmonic should not report P/2."""
        t = np.arange(4000)
        period = 80
        x = (
            np.sin(2 * np.pi * t / period)
            + 0.9 * np.sin(4 * np.pi * t / period)
            + 0.05 * rng.standard_normal(len(t))
        )
        assert abs(estimate_period(x) - period) <= 4

    def test_default_for_aperiodic(self, rng):
        x = np.cumsum(rng.standard_normal(2000)) * 0.001
        period = estimate_period(x, default=64)
        assert 2 <= period <= len(x) // 4

    def test_clamped_to_max(self, sine_wave):
        assert estimate_period(sine_wave, max_period=10) <= 10

    @given(st.integers(min_value=8, max_value=60))
    @settings(max_examples=10, deadline=None)
    def test_property_clean_sine(self, period):
        t = np.arange(max(20 * period, 400))
        x = np.sin(2 * np.pi * t / period)
        estimate = estimate_period(x)
        # Accept the period or a small integer multiple mismatch of +/-1.
        assert abs(estimate - period) <= max(2, period // 10)


class TestMaxPeriodClamp:
    def test_fft_harmonic_beyond_max_period_is_clamped(self):
        """A dominant harmonic longer than max_period must clamp, not
        leak an oversized window plan."""
        t = np.arange(400)
        x = np.sin(2 * np.pi * t / 100)  # true period 100
        assert estimate_period(x, max_period=20) == 20

    def test_default_max_period_is_quarter_length(self):
        t = np.arange(240)
        x = np.sin(2 * np.pi * t / 120)  # one period per quarter: clamps
        assert estimate_period(x) <= len(x) // 4

    def test_clamp_floor_at_two(self):
        t = np.arange(64)
        x = np.sin(2 * np.pi * t / 16)
        assert estimate_period(x, max_period=2) == 2
