"""Normalization tests, including hypothesis invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.signal import minmax, robust_zscore, znorm_windows, zscore

finite_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=3, max_value=100),
    elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
)


class TestZscore:
    def test_zero_mean_unit_std(self, rng):
        z = zscore(rng.normal(size=1000) * 7 + 3)
        assert abs(z.mean()) < 1e-10
        assert np.isclose(z.std(), 1.0)

    def test_constant_input_maps_to_zero_mean(self):
        z = zscore(np.full(10, 4.0))
        assert np.all(np.isfinite(z))
        assert np.allclose(z, 0.0)

    def test_axis_normalization(self, rng):
        x = rng.normal(size=(4, 50)) * np.array([[1], [10], [100], [1000]])
        z = zscore(x, axis=-1)
        assert np.allclose(z.std(axis=-1), 1.0)

    @given(finite_arrays)
    @settings(max_examples=30, deadline=None)
    def test_property_bounded_and_finite(self, x):
        z = zscore(x)
        assert np.all(np.isfinite(z))
        if x.std() > 1e-9:  # below that, the eps floor dominates
            assert abs(z.mean()) < 1e-6


class TestRobustZscore:
    def test_outlier_does_not_dominate_scale(self, rng):
        x = rng.normal(size=1000)
        x_spiked = x.copy()
        x_spiked[0] = 1e6
        z = robust_zscore(x_spiked)
        # Body of the distribution stays on a sane scale.
        assert np.abs(z[1:]).mean() < 2.0
        assert z[0] > 100  # the outlier is extreme in robust units

    def test_constant_input_finite(self):
        assert np.all(np.isfinite(robust_zscore(np.full(10, 3.0))))


class TestMinmax:
    def test_range(self, rng):
        out = minmax(rng.normal(size=200))
        assert out.min() == 0.0 and out.max() == 1.0

    def test_constant_input(self):
        assert np.allclose(minmax(np.full(5, 2.0)), 0.0)

    @given(finite_arrays)
    @settings(max_examples=30, deadline=None)
    def test_property_in_unit_interval(self, x):
        out = minmax(x)
        assert np.all(out >= 0.0) and np.all(out <= 1.0 + 1e-12)


class TestZnormWindows:
    def test_each_row_normalized(self, rng):
        windows = rng.normal(size=(10, 30)) * 5 + 2
        z = znorm_windows(windows)
        assert np.allclose(z.mean(axis=1), 0.0, atol=1e-10)
        assert np.allclose(z.std(axis=1), 1.0)

    def test_constant_rows_zeroed(self):
        z = znorm_windows(np.ones((3, 8)))
        assert np.allclose(z, 0.0)
