"""Butterworth filter validated against scipy.signal."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import signal as sp_signal

from repro.signal import butter_lowpass, butterworth_smooth, filtfilt, lfilter


class TestDesign:
    @pytest.mark.parametrize("order", [1, 2, 3, 4, 6])
    @pytest.mark.parametrize("cutoff", [0.05, 0.2, 0.5, 0.8])
    def test_matches_scipy_coefficients(self, order, cutoff):
        b, a = butter_lowpass(order, cutoff)
        b_ref, a_ref = sp_signal.butter(order, cutoff)
        assert np.allclose(b, b_ref, atol=1e-9)
        assert np.allclose(a, a_ref, atol=1e-9)

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            butter_lowpass(0, 0.2)

    @pytest.mark.parametrize("cutoff", [0.0, 1.0, -0.1, 1.5])
    def test_invalid_cutoff(self, cutoff):
        with pytest.raises(ValueError):
            butter_lowpass(2, cutoff)

    def test_dc_gain_is_unity(self):
        b, a = butter_lowpass(3, 0.3)
        assert np.isclose(b.sum() / a.sum(), 1.0, atol=1e-9)


class TestLfilter:
    def test_matches_scipy(self, rng):
        b, a = butter_lowpass(3, 0.2)
        x = rng.normal(size=200)
        assert np.allclose(lfilter(b, a, x), sp_signal.lfilter(b, a, x), atol=1e-9)

    def test_fir_case(self, rng):
        b = np.array([0.5, 0.5])
        a = np.array([1.0])
        x = rng.normal(size=50)
        assert np.allclose(lfilter(b, a, x), sp_signal.lfilter(b, a, x), atol=1e-12)

    def test_non_normalized_a0(self, rng):
        b = np.array([2.0, 1.0])
        a = np.array([2.0, 0.5])
        x = rng.normal(size=30)
        assert np.allclose(lfilter(b, a, x), sp_signal.lfilter(b, a, x), atol=1e-9)

    def test_state_passthrough(self, rng):
        """Filtering in two chunks with carried state equals one pass."""
        b, a = butter_lowpass(2, 0.3)
        x = rng.normal(size=100)
        full = lfilter(b, a, x)
        first, state = lfilter(b, a, x[:50], zi=np.zeros(2))
        second, _ = lfilter(b, a, x[50:], zi=state)
        assert np.allclose(np.concatenate([first, second]), full, atol=1e-9)


class TestFiltfilt:
    def test_close_to_scipy(self, rng):
        b, a = butter_lowpass(3, 0.2)
        x = np.sin(np.linspace(0, 20 * np.pi, 500)) + 0.2 * rng.normal(size=500)
        mine = filtfilt(b, a, x)
        ref = sp_signal.filtfilt(b, a, x)
        # Padding conventions differ slightly at the edges; interior
        # agreement should be tight.
        assert np.allclose(mine[50:-50], ref[50:-50], atol=1e-2)

    def test_zero_phase_preserves_peak_location(self):
        t = np.arange(400, dtype=np.float64)
        x = np.exp(-0.5 * ((t - 200) / 10) ** 2)
        b, a = butter_lowpass(3, 0.15)
        smoothed = filtfilt(b, a, x)
        assert abs(int(np.argmax(smoothed)) - 200) <= 1

    def test_too_short_input_raises(self):
        b, a = butter_lowpass(4, 0.2)
        with pytest.raises(ValueError):
            filtfilt(b, a, np.zeros(5))

    def test_attenuates_high_frequency(self, rng):
        t = np.arange(600, dtype=np.float64)
        slow = np.sin(2 * np.pi * t / 100)
        fast = np.sin(2 * np.pi * t / 4)
        out = butterworth_smooth(slow + fast, cutoff=0.1, order=3)
        # The fast component should be mostly gone.
        residual_fast = out - slow
        assert residual_fast.std() < 0.3 * fast.std()
