"""STFT / spectrogram / Welch PSD tests against scipy oracles."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import signal as sp_signal

from repro.signal import hann_window, spectrogram, stft, welch_psd


class TestHannWindow:
    def test_matches_scipy_periodic(self):
        for n in (8, 64, 129):
            assert np.allclose(hann_window(n), sp_signal.get_window("hann", n))

    def test_degenerate(self):
        assert np.allclose(hann_window(1), [1.0])
        with pytest.raises(ValueError):
            hann_window(0)


class TestStft:
    def test_shapes(self, rng):
        x = rng.normal(size=1000)
        transform, centers = stft(x, frame_length=128, hop=64)
        assert transform.shape == ((1000 - 128) // 64 + 1, 65)
        assert centers[0] == 64
        assert np.all(np.diff(centers) == 64)

    def test_tone_localized_in_frequency(self):
        n, k = 512, 16
        x = np.sin(2 * np.pi * k * np.arange(n) / 128)  # bin 16 of a 128-frame
        transform, _ = stft(x, frame_length=128, hop=64)
        peak_bins = np.abs(transform).argmax(axis=1)
        assert np.all(peak_bins == k)

    def test_frame_too_long_raises(self, rng):
        with pytest.raises(ValueError):
            stft(rng.normal(size=50), frame_length=100)


class TestSpectrogram:
    def test_power_nonnegative(self, rng):
        power, _ = spectrogram(rng.normal(size=600), frame_length=64)
        assert np.all(power >= 0)

    def test_detects_frequency_shift(self):
        t = np.arange(2048)
        x = np.where(t < 1024, np.sin(2 * np.pi * t / 64), np.sin(2 * np.pi * t / 16))
        power, centers = spectrogram(x, frame_length=128, hop=64, log=False)
        early = power[centers < 900].argmax(axis=1).mean()
        late = power[centers > 1200].argmax(axis=1).mean()
        assert late > 2 * early  # frequency quadrupled


class TestWelch:
    def test_matches_scipy_for_tone(self, rng):
        n = 4096
        x = np.sin(2 * np.pi * 0.1 * np.arange(n)) + 0.1 * rng.standard_normal(n)
        freqs, psd = welch_psd(x, frame_length=256)
        f_ref, p_ref = sp_signal.welch(x, window="hann", nperseg=256, detrend="constant")
        assert np.allclose(freqs, f_ref)
        # Peak location identical; magnitudes close.
        assert np.argmax(psd) == np.argmax(p_ref)
        assert np.allclose(psd[1:-1], p_ref[1:-1], rtol=0.35)

    def test_peak_at_tone_frequency(self):
        x = np.sin(2 * np.pi * 0.125 * np.arange(2048))
        freqs, psd = welch_psd(x, frame_length=128)
        assert freqs[np.argmax(psd)] == pytest.approx(0.125, abs=0.01)

    def test_white_noise_flat(self, rng):
        x = rng.standard_normal(8192)
        _, psd = welch_psd(x, frame_length=256)
        interior = psd[2:-2]
        assert interior.max() < 12 * interior.min()
