"""Tests for CUSUM and binary segmentation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.signal import binary_segmentation, cusum, segment_costs
from repro.signal.changepoint import _sse


@pytest.fixture
def step_series(rng):
    """Mean 0 for 300 points, then mean 3 for 300 points."""
    return np.concatenate(
        [rng.normal(0.0, 1.0, 300), rng.normal(3.0, 1.0, 300)]
    )


class TestCusum:
    def test_alarms_near_step(self, step_series):
        result = cusum(step_series, threshold=5.0, drift=0.5)
        assert result.alarms.size > 0
        assert any(290 <= alarm <= 330 for alarm in result.alarms)
        # After the shift the statistic keeps re-alarming (mean moved).
        assert (result.alarms >= 300).sum() >= (result.alarms < 300).sum()

    def test_quiet_on_stationary_noise(self, rng):
        result = cusum(rng.normal(size=1000), threshold=8.0, drift=0.5)
        assert result.alarms.size == 0

    def test_statistics_nonnegative(self, step_series):
        result = cusum(step_series)
        assert np.all(result.positive >= 0)
        assert np.all(result.negative >= 0)

    def test_detects_downward_shift(self, rng):
        x = np.concatenate([rng.normal(0, 1, 300), rng.normal(-3, 1, 300)])
        result = cusum(x, threshold=5.0)
        assert result.alarms.size > 0

    def test_constant_series_no_alarm(self):
        result = cusum(np.ones(100))
        assert result.alarms.size == 0

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            cusum(np.array([1.0]))


class TestSegmentCosts:
    def test_sse_matches_numpy(self, rng):
        x = rng.normal(size=100)
        sums, squares = segment_costs(x)
        for lo, hi in [(0, 100), (10, 50), (97, 100), (3, 4)]:
            segment = x[lo:hi]
            expected = float(((segment - segment.mean()) ** 2).sum())
            assert _sse(sums, squares, lo, hi) == pytest.approx(expected, abs=1e-9)

    def test_empty_segment_zero(self, rng):
        sums, squares = segment_costs(rng.normal(size=10))
        assert _sse(sums, squares, 5, 5) == 0.0


class TestBinarySegmentation:
    def test_finds_single_step(self, step_series):
        changepoints = binary_segmentation(step_series)
        assert len(changepoints) >= 1
        assert any(285 <= cp <= 315 for cp in changepoints)

    def test_finds_multiple_steps(self, rng):
        x = np.concatenate(
            [rng.normal(0, 0.5, 200), rng.normal(4, 0.5, 200), rng.normal(-2, 0.5, 200)]
        )
        changepoints = binary_segmentation(x)
        assert any(185 <= cp <= 215 for cp in changepoints)
        assert any(385 <= cp <= 415 for cp in changepoints)

    def test_no_split_on_stationary_noise(self, rng):
        changepoints = binary_segmentation(rng.normal(size=400))
        assert changepoints == []

    def test_respects_min_size(self, step_series):
        changepoints = binary_segmentation(step_series, min_size=50)
        for cp in changepoints:
            assert 50 <= cp <= len(step_series) - 50

    def test_short_series_empty(self):
        assert binary_segmentation(np.zeros(6), min_size=5) == []

    def test_sorted_output(self, rng):
        x = np.concatenate([rng.normal(i * 3, 0.5, 150) for i in range(4)])
        changepoints = binary_segmentation(x)
        assert changepoints == sorted(changepoints)
