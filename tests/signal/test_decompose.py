"""Seasonal-trend decomposition tests."""

from __future__ import annotations

import numpy as np

from repro.signal import decompose, moving_average, residual_component


class TestMovingAverage:
    def test_window_one_is_identity(self, rng):
        x = rng.normal(size=50)
        assert np.allclose(moving_average(x, 1), x)

    def test_constant_preserved(self):
        assert np.allclose(moving_average(np.full(40, 5.0), 7), 5.0)

    def test_output_length(self, rng):
        x = rng.normal(size=33)
        assert len(moving_average(x, 8)) == 33

    def test_smooths_noise(self, rng):
        x = rng.normal(size=500)
        assert moving_average(x, 20).std() < x.std() * 0.5

    def test_window_larger_than_input_clamped(self, rng):
        x = rng.normal(size=10)
        out = moving_average(x, 100)
        assert len(out) == 10 and np.all(np.isfinite(out))


class TestDecompose:
    def test_components_sum_to_input(self, noisy_wave):
        d = decompose(noisy_wave, 40)
        assert np.allclose(d.reconstruct(), noisy_wave, atol=1e-12)

    def test_seasonal_profile_zero_mean(self, noisy_wave):
        d = decompose(noisy_wave, 40)
        assert abs(d.seasonal[:40].mean()) < 1e-10

    def test_seasonal_is_periodic(self, noisy_wave):
        d = decompose(noisy_wave, 40)
        assert np.allclose(d.seasonal[:40], d.seasonal[40:80])

    def test_pure_sine_mostly_seasonal(self, sine_wave):
        d = decompose(sine_wave, 50)
        assert d.seasonal.std() > 0.5
        assert d.residual.std() < 0.15 * sine_wave.std()

    def test_linear_trend_captured_by_trend(self):
        x = np.linspace(0, 10, 300)
        d = decompose(x, 20)
        assert np.corrcoef(d.trend, x)[0, 1] > 0.999

    def test_period_one_no_seasonality(self, rng):
        x = rng.normal(size=100)
        d = decompose(x, 1)
        assert np.allclose(d.seasonal, 0.0)


class TestResidualComponent:
    def test_normalized_output(self, noisy_wave):
        r = residual_component(noisy_wave, 40)
        assert abs(r.mean()) < 1e-10
        assert np.isclose(r.std(), 1.0)

    def test_constant_input_returns_zeros(self):
        assert np.allclose(residual_component(np.full(100, 2.0), 10), 0.0)

    def test_level_shift_appears_in_residual(self, sine_wave):
        x = sine_wave.copy()
        x[500:520] += 3.0  # residual-scale anomaly
        r = residual_component(x, 50)
        inside = np.abs(r[500:520]).mean()
        outside = np.abs(np.concatenate([r[:480], r[540:]])).mean()
        assert inside > 2.0 * outside
