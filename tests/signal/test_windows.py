"""Windowing and segmentation-plan tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.signal import coverage_mask, plan_windows, sliding_windows


class TestSlidingWindows:
    def test_shapes_and_starts(self, rng):
        x = rng.normal(size=100)
        windows, starts = sliding_windows(x, 20, 10)
        assert windows.shape[1] == 20
        assert starts[0] == 0
        assert starts[-1] == 80  # anchored to the end

    def test_full_coverage_guaranteed(self, rng):
        x = rng.normal(size=103)  # not a multiple of the stride
        windows, starts = sliding_windows(x, 20, 7)
        mask = coverage_mask(starts, 20, len(x))
        assert mask.all()

    def test_stride_one_count(self, rng):
        x = rng.normal(size=50)
        windows, starts = sliding_windows(x, 10, 1)
        assert len(windows) == 41

    def test_windows_match_source(self, rng):
        x = rng.normal(size=60)
        windows, starts = sliding_windows(x, 15, 9)
        for w, s in zip(windows, starts):
            assert np.array_equal(w, x[s : s + 15])

    def test_window_longer_than_series_raises(self):
        with pytest.raises(ValueError):
            sliding_windows(np.zeros(10), 20)

    def test_invalid_stride_raises(self):
        with pytest.raises(ValueError):
            sliding_windows(np.zeros(10), 5, 0)

    @given(
        st.integers(min_value=30, max_value=300),
        st.integers(min_value=2, max_value=25),
        st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_coverage_and_bounds(self, n, length, stride):
        x = np.arange(n, dtype=np.float64)
        if length > n:
            length = n
        windows, starts = sliding_windows(x, length, stride)
        if stride <= length:  # full coverage is only possible then
            assert coverage_mask(starts, length, n).all()
        assert np.all(starts >= 0)
        assert np.all(starts + length <= n)
        assert np.all(np.diff(starts) > 0)


class TestPlanWindows:
    def test_plan_follows_paper_rules(self, noisy_wave):
        plan = plan_windows(noisy_wave)
        assert plan.period in range(36, 45)
        assert plan.length == round(2.5 * plan.period)
        assert plan.stride == round(plan.length * 0.25)

    def test_min_length_respected(self, rng):
        x = np.sin(2 * np.pi * np.arange(500) / 4) + 0.01 * rng.standard_normal(500)
        plan = plan_windows(x, min_length=32)
        assert plan.length >= 32

    def test_max_length_cap(self, noisy_wave):
        plan = plan_windows(noisy_wave, max_length=50)
        assert plan.length <= 50

    def test_length_never_exceeds_series(self):
        x = np.sin(2 * np.pi * np.arange(60) / 20)
        plan = plan_windows(x)
        assert plan.length <= 60
