"""Tests for resampling, detrending, and HP/BP Butterworth designs."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import signal as sp_signal

from repro.signal import (
    butter_bandpass,
    butter_highpass,
    detrend_linear,
    downsample_mean,
    filtfilt,
    resample_fourier,
    resample_linear,
)


class TestButterHighpass:
    @pytest.mark.parametrize("order", [1, 2, 4])
    @pytest.mark.parametrize("cutoff", [0.1, 0.5, 0.8])
    def test_matches_scipy(self, order, cutoff):
        b, a = butter_highpass(order, cutoff)
        b_ref, a_ref = sp_signal.butter(order, cutoff, btype="highpass")
        assert np.allclose(b, b_ref, atol=1e-9)
        assert np.allclose(a, a_ref, atol=1e-9)

    def test_blocks_dc(self):
        b, a = butter_highpass(3, 0.2)
        x = np.full(500, 5.0) + np.sin(2 * np.pi * np.arange(500) / 5)
        out = filtfilt(b, a, x)
        assert abs(out.mean()) < 0.05  # DC removed
        assert out.std() > 0.5  # fast component retained

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            butter_highpass(0, 0.2)
        with pytest.raises(ValueError):
            butter_highpass(2, 1.5)


class TestButterBandpass:
    def test_band_selectivity(self):
        b, a = butter_bandpass(3, 0.2, 0.5)
        w, h = sp_signal.freqz(b, a, worN=512)
        f = w / np.pi
        mag = np.abs(h)
        assert mag[f < 0.05].max() < 0.1
        assert mag[(f > 0.3) & (f < 0.4)].min() > 0.7
        assert mag[f > 0.85].max() < 0.1

    def test_invalid_band(self):
        with pytest.raises(ValueError):
            butter_bandpass(2, 0.5, 0.2)


class TestResample:
    def test_linear_identity(self, rng):
        x = rng.normal(size=100)
        assert np.allclose(resample_linear(x, 100), x)

    def test_linear_endpoints_preserved(self, rng):
        x = rng.normal(size=50)
        out = resample_linear(x, 200)
        assert out[0] == pytest.approx(x[0])
        assert out[-1] == pytest.approx(x[-1])

    def test_fourier_upsamples_tone_exactly(self):
        n = 128
        x = np.sin(2 * np.pi * 4 * np.arange(n) / n)
        up = resample_fourier(x, 256)
        expected = np.sin(2 * np.pi * 4 * np.arange(256) / 256)
        assert np.allclose(up, expected, atol=1e-10)

    def test_fourier_matches_scipy(self, rng):
        x = rng.normal(size=128)
        for target in (64, 200, 256):
            mine = resample_fourier(x, target)
            ref = sp_signal.resample(x, target)
            assert np.allclose(mine, ref, atol=1e-8), target

    def test_invalid_target(self, rng):
        with pytest.raises(ValueError):
            resample_linear(rng.normal(size=10), 0)


class TestDetrendAndDownsample:
    def test_detrend_removes_line(self, rng):
        t = np.arange(300, dtype=np.float64)
        x = 3.0 * t + 7.0 + rng.standard_normal(300)
        out = detrend_linear(x)
        slope = np.polyfit(t, out, 1)[0]
        assert abs(slope) < 1e-10

    def test_downsample_block_means(self):
        x = np.arange(12, dtype=np.float64)
        assert np.allclose(downsample_mean(x, 4), [1.5, 5.5, 9.5])

    def test_downsample_partial_tail(self):
        x = np.array([0.0, 2.0, 4.0, 10.0, 20.0])
        assert np.allclose(downsample_mean(x, 2), [1.0, 7.0, 20.0])

    def test_downsample_factor_one(self, rng):
        x = rng.normal(size=10)
        assert np.allclose(downsample_mean(x, 1), x)
