"""Cross-cutting hypothesis properties for the signal substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.signal import (
    butterworth_smooth,
    decompose,
    downsample_mean,
    estimate_period,
    frequency_features,
    moving_average,
    resample_fourier,
    resample_linear,
    stft,
    welch_psd,
)


def random_signal(seed: int, n: int = 256) -> np.ndarray:
    rng = np.random.default_rng(seed)
    period = int(rng.integers(8, 40))
    t = np.arange(n)
    return np.sin(2 * np.pi * t / period) + 0.1 * rng.standard_normal(n)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_decompose_reconstructs_exactly(seed):
    x = random_signal(seed)
    d = decompose(x, 16)
    assert np.allclose(d.reconstruct(), x, atol=1e-10)


@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=2, max_value=30))
@settings(max_examples=20, deadline=None)
def test_moving_average_bounded_by_input_range(seed, window):
    x = random_signal(seed)
    smoothed = moving_average(x, window)
    assert smoothed.min() >= x.min() - 1e-12
    assert smoothed.max() <= x.max() + 1e-12


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_smoothing_never_raises_variance(seed):
    x = random_signal(seed)
    assert butterworth_smooth(x, cutoff=0.1).std() <= x.std() + 1e-9


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_fourier_resample_roundtrip(seed):
    """Upsample then downsample back recovers the original exactly
    (band-limited interpolation is information-preserving)."""
    x = random_signal(seed, n=128)
    up = resample_fourier(x, 256)
    back = resample_fourier(up, 128)
    assert np.allclose(back, x, atol=1e-8)


@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=7))
@settings(max_examples=20, deadline=None)
def test_downsample_preserves_mean(seed, factor):
    x = random_signal(seed, n=210)
    if len(x) % factor == 0:  # the partial tail skews block weights
        assert downsample_mean(x, factor).mean() == pytest.approx(x.mean(), abs=1e-9)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_linear_resample_within_input_range(seed):
    x = random_signal(seed)
    out = resample_linear(x, 1000)
    assert out.min() >= x.min() - 1e-12
    assert out.max() <= x.max() + 1e-12


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_stft_frames_consistent_with_welch_peak(seed):
    """Both views of the same stationary tone agree on the dominant bin."""
    rng = np.random.default_rng(seed)
    k = int(rng.integers(4, 24))
    n, frame = 2048, 128
    x = np.sin(2 * np.pi * k * np.arange(n) / frame)
    transform, _ = stft(x, frame_length=frame)
    stft_peak = int(np.abs(transform).mean(axis=0).argmax())
    freqs, psd = welch_psd(x, frame_length=frame)
    welch_peak = int(np.argmax(psd))
    assert stft_peak == welch_peak == k


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_frequency_features_batch_matches_loop(seed):
    """Vectorized batch extraction equals per-window extraction."""
    rng = np.random.default_rng(seed)
    windows = rng.normal(size=(4, 64)) + np.sin(np.arange(64) / 3)
    batched = frequency_features(windows)
    looped = np.stack([frequency_features(w) for w in windows])
    assert np.allclose(batched, looped, atol=1e-10)


@given(st.integers(min_value=6, max_value=50))
@settings(max_examples=15, deadline=None)
def test_estimate_period_scale_invariant(period):
    t = np.arange(max(25 * period, 500))
    x = np.sin(2 * np.pi * t / period)
    assert estimate_period(x) == estimate_period(x * 100 + 7)
