"""Crash-resume drill: a job killed with SIGKILL mid-run resumes from
its journal and produces scores bit-identical to an uninterrupted run."""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.jobs import (
    RUNNING,
    SUCCEEDED,
    JobManager,
    JobSpec,
    JobStore,
    register_job_detector,
)
from repro.jobs.registry import BatchedSpectralResidualScorer

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

SERIES_SEED = 42
N_POINTS = 6000
WINDOW, STRIDE, CHUNK_WINDOWS = 100, 25, 16

DRIVER = f"""
import sys, time
sys.path.insert(0, {str(REPO_SRC)!r})
import numpy as np
from repro.jobs import JobManager, JobSpec, register_job_detector
from repro.jobs.registry import BatchedSpectralResidualScorer


class SlowScorer(BatchedSpectralResidualScorer):
    def score_windows(self, windows, batch):
        time.sleep(0.3)  # slow enough for the parent to SIGKILL mid-run
        return super().score_windows(windows, batch)


register_job_detector(
    "slow-sr", lambda train, params: (SlowScorer(), {WINDOW}, {STRIDE})
)
series = np.sin(np.arange({N_POINTS}) / 9.0) + 0.05 * (
    np.random.default_rng({SERIES_SEED}).standard_normal({N_POINTS})
)
manager = JobManager(sys.argv[1])
spec = JobSpec(
    detector="slow-sr", window_length={WINDOW}, stride={STRIDE},
    chunk_windows={CHUNK_WINDOWS},
)
record = manager.submit(spec, series)
print(record.job_id, flush=True)
manager.run(record.job_id)
"""


def _series() -> np.ndarray:
    return np.sin(np.arange(N_POINTS) / 9.0) + 0.05 * (
        np.random.default_rng(SERIES_SEED).standard_normal(N_POINTS)
    )


@pytest.mark.resilience
def test_kill9_mid_run_resumes_bit_identical(tmp_path):
    store_path = tmp_path / "store"
    driver = subprocess.Popen(
        [sys.executable, "-c", DRIVER, str(store_path)],
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        job_id = driver.stdout.readline().strip()
        assert job_id.startswith("job-")
        chunk_journal = store_path / job_id / "chunks.jsonl"

        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if chunk_journal.exists() and len(
                chunk_journal.read_text().splitlines()
            ) >= 2:
                break
            assert driver.poll() is None, "driver finished before it was killed"
            time.sleep(0.05)
        else:
            pytest.fail("driver never journaled two chunks")
        os.kill(driver.pid, signal.SIGKILL)
        driver.wait(timeout=30)
    finally:
        if driver.poll() is None:  # pragma: no cover - cleanup on failure
            driver.kill()
            driver.wait()

    store = JobStore(store_path)
    record = store.get(job_id)
    assert record.state == RUNNING  # the journal still says so: nobody
    # lived to write a terminal state
    done_before = record.chunks_done
    assert 0 < done_before < record.chunks_total

    # A fresh process registers the same detector (without the sleep —
    # builder identity is not part of the contract, the math is) and
    # resubmits the identical payload: the idempotency key lands on the
    # half-finished job, and run() replays the journaled chunks.
    register_job_detector(
        "slow-sr",
        lambda train, params: (BatchedSpectralResidualScorer(), WINDOW, STRIDE),
    )
    spec = JobSpec(
        detector="slow-sr",
        window_length=WINDOW,
        stride=STRIDE,
        chunk_windows=CHUNK_WINDOWS,
    )
    manager = JobManager(store_path)
    resumed = manager.submit(spec, _series())
    assert resumed.job_id == job_id
    resumed = manager.run(job_id)
    assert resumed.state == SUCCEEDED
    assert resumed.chunks_done == resumed.chunks_total

    # every chunk journaled exactly once: the survivors were replayed,
    # not recomputed
    lines = (store_path / job_id / "chunks.jsonl").read_text().splitlines()
    assert len(lines) == resumed.chunks_total

    reference = JobManager(tmp_path / "ref").submit_and_run(spec, _series())
    assert reference.state == SUCCEEDED
    assert np.array_equal(
        manager.result(job_id), JobManager(tmp_path / "ref").result(reference.job_id)
    )
