"""CLI surface: repro submit / jobs / job-result / job-cancel, and the
compare --workers routing through the job fabric."""

from __future__ import annotations

import numpy as np

from repro.cli import main


def test_submit_jobs_result_flow(tmp_path, capsys):
    store = tmp_path / "store"
    code = main([
        "submit", "--dataset", "0", "--store", str(store),
        "--detector", "spectral-residual", "--chunk-windows", "64",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "SUCCEEDED" in out
    job_id = next(
        word for word in out.split() if word.startswith("job-")
    ).rstrip(":")

    assert main(["jobs", "--store", str(store)]) == 0
    out = capsys.readouterr().out
    assert job_id in out and "SUCCEEDED" in out

    # resubmitting the identical payload dedupes and replays
    assert main([
        "submit", "--dataset", "0", "--store", str(store),
        "--detector", "spectral-residual", "--chunk-windows", "64",
    ]) == 0
    assert len([
        line for line in capsys.readouterr().out.splitlines()
        if "SUCCEEDED" in line
    ]) >= 1

    result_path = tmp_path / "scores.npy"
    assert main([
        "job-result", job_id, "--store", str(store), "--out", str(result_path),
    ]) == 0
    scores = np.load(result_path)
    assert scores.ndim == 1 and np.isfinite(scores).all()

    assert main(["job-cancel", job_id, "--store", str(store)]) == 0
    assert "already terminal" in capsys.readouterr().out


def test_submit_unknown_detector_fails_cleanly(tmp_path, capsys):
    code = main([
        "submit", "--dataset", "0", "--store", str(tmp_path / "s"),
        "--detector", "nope",
    ])
    assert code == 2
    assert "unknown job detector" in capsys.readouterr().err


def test_job_result_missing_job(tmp_path, capsys):
    assert main(["job-result", "job-na", "--store", str(tmp_path / "s")]) == 2
    assert "no job" in capsys.readouterr().err


def test_jobs_empty_store(tmp_path, capsys):
    assert main(["jobs", "--store", str(tmp_path / "s")]) == 0
    assert "no jobs" in capsys.readouterr().out


def test_compare_workers_routes_through_fabric(capsys):
    code = main([
        "compare", "--size", "2", "--detectors", "random",
        "--mode", "scores", "--workers", "2",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Leaderboard" in out and "random" in out
