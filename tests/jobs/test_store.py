"""Journal persistence: replay, torn writes, exact float round-trips."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.jobs import (
    CANCELLED,
    PENDING,
    RUNNING,
    SUCCEEDED,
    JobRecord,
    JobSpec,
    JobStore,
)


def make_record(job_id="job-abc", state=PENDING) -> JobRecord:
    return JobRecord(
        job_id=job_id,
        key="k" * 32,
        spec=JobSpec(detector="spectral-residual", window_length=10, stride=5),
        state=state,
        n_points=100,
        chunks_total=3,
    )


def test_submit_then_states_replay(tmp_path):
    store = JobStore(tmp_path)
    series = np.arange(100, dtype=np.float64)
    store.append_submit(make_record(), series, series[:50])
    store.append_state("job-abc", RUNNING)
    store.append_state("job-abc", SUCCEEDED)

    jobs = store.load_jobs()
    assert list(jobs) == ["job-abc"]
    record = jobs["job-abc"]
    assert record.state == SUCCEEDED
    assert record.spec.detector == "spectral-residual"
    np.testing.assert_array_equal(store.series("job-abc"), series)
    np.testing.assert_array_equal(store.train("job-abc"), series[:50])


def test_get_unknown_job_raises_keyerror(tmp_path):
    with pytest.raises(KeyError, match="no-such-job"):
        JobStore(tmp_path).get("no-such-job")


def test_torn_trailing_line_skipped_with_warning(tmp_path):
    store = JobStore(tmp_path)
    series = np.arange(100, dtype=np.float64)
    store.append_submit(make_record(), series, series)
    store.append_state("job-abc", RUNNING)
    with open(store.journal_path, "a", encoding="utf-8") as handle:
        handle.write('{"kind": "state", "job_id": "job-abc", "sta')  # kill -9 here

    with pytest.warns(UserWarning, match="torn write"):
        jobs = store.load_jobs()
    assert jobs["job-abc"].state == RUNNING


def test_non_object_line_skipped_with_warning(tmp_path):
    store = JobStore(tmp_path)
    store.append_submit(make_record(), np.arange(100.0), np.arange(100.0))
    with open(store.journal_path, "a", encoding="utf-8") as handle:
        handle.write('["not", "a", "dict"]\n')
    with pytest.warns(UserWarning, match="non-object"):
        jobs = store.load_jobs()
    assert jobs["job-abc"].state == PENDING


def test_illegal_transition_ignored(tmp_path):
    store = JobStore(tmp_path)
    store.append_submit(make_record(), np.arange(100.0), np.arange(100.0))
    store.append_state("job-abc", RUNNING)
    store.append_state("job-abc", SUCCEEDED)
    store.append_state("job-abc", CANCELLED)  # stale writer: SUCCEEDED is final
    with pytest.warns(UserWarning, match="illegal"):
        jobs = store.load_jobs()
    assert jobs["job-abc"].state == SUCCEEDED


def test_chunk_scores_round_trip_bit_identical(tmp_path):
    store = JobStore(tmp_path)
    rng = np.random.default_rng(17)
    scores = rng.standard_normal(37) * 1e-7  # exercise shortest-repr floats
    store.append_chunk("job-abc", 2, scores)
    loaded = store.load_chunks("job-abc")
    assert list(loaded) == [2]
    assert np.array_equal(loaded[2], scores)


def test_chunk_journal_later_lines_win_and_malformed_skipped(tmp_path):
    store = JobStore(tmp_path)
    store.append_chunk("job-abc", 0, np.zeros(4))
    store.append_chunk("job-abc", 0, np.ones(4))
    path = store.job_dir("job-abc") / "chunks.jsonl"
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps({"scores": [1.0]}) + "\n")  # no chunk index
    with pytest.warns(UserWarning, match="malformed chunk"):
        loaded = store.load_chunks("job-abc")
    np.testing.assert_array_equal(loaded[0], np.ones(4))


def test_cancel_marker_lifecycle(tmp_path):
    store = JobStore(tmp_path)
    assert not store.cancel_requested("job-abc")
    store.request_cancel("job-abc")
    assert store.cancel_requested("job-abc")
    store.clear_cancel("job-abc")
    assert not store.cancel_requested("job-abc")


def test_find_by_key_returns_latest(tmp_path):
    store = JobStore(tmp_path)
    series = np.arange(100.0)
    store.append_submit(make_record("job-old"), series, series)
    store.append_submit(make_record("job-new"), series, series)
    assert store.find_by_key("k" * 32).job_id == "job-new"
    assert store.find_by_key("unknown") is None


def test_result_round_trip_and_missing(tmp_path):
    store = JobStore(tmp_path)
    scores = np.linspace(0, 1, 50)
    store.save_result("job-abc", scores)
    np.testing.assert_array_equal(store.load_result("job-abc"), scores)
    with pytest.raises(FileNotFoundError):
        store.load_result("job-other")
