"""Chunk planning and stitching: the bit-identical-to-single-pass core."""

from __future__ import annotations

import numpy as np
import pytest

from repro.jobs import Chunk, chunk_windows_view, plan_chunks, stitch, window_starts
from repro.jobs.registry import BatchedSpectralResidualScorer
from repro.signal.windows import sliding_windows


@pytest.mark.parametrize(
    "n_points,length,stride",
    [(1000, 50, 10), (1000, 50, 7), (64, 64, 8), (777, 33, 33), (100, 99, 100)],
)
def test_window_starts_matches_sliding_windows(n_points, length, stride):
    series = np.arange(n_points, dtype=np.float64)
    _, reference = sliding_windows(series, length, stride)
    np.testing.assert_array_equal(window_starts(n_points, length, stride), reference)


def test_window_starts_rejects_bad_plan():
    with pytest.raises(ValueError, match="exceeds series length"):
        window_starts(10, 11, 1)
    with pytest.raises(ValueError, match="stride"):
        window_starts(10, 5, 0)


@pytest.mark.parametrize("chunk_windows", [1, 3, 7, 1000])
def test_plan_chunks_partitions_every_window(chunk_windows):
    n_points, length, stride = 503, 40, 9
    starts = window_starts(n_points, length, stride)
    chunks = plan_chunks(n_points, length, stride, chunk_windows)
    assert sum(c.n_windows for c in chunks) == len(starts)
    assert [c.index for c in chunks] == list(range(len(chunks)))
    cursor = 0
    for chunk in chunks:
        assert chunk.first_window == cursor
        run = starts[cursor : cursor + chunk.n_windows]
        assert chunk.start == run[0]
        assert chunk.stop == run[-1] + length
        cursor += chunk.n_windows
    assert chunks[-1].stop == n_points


def test_plan_chunks_rejects_nonpositive_granularity():
    with pytest.raises(ValueError, match="chunk_windows"):
        plan_chunks(100, 10, 5, 0)


def test_chunk_windows_view_matches_global_rows():
    rng = np.random.default_rng(3)
    series = rng.standard_normal(311)
    length, stride = 28, 5
    full, _ = sliding_windows(series, length, stride)
    for chunk in plan_chunks(len(series), length, stride, 11):
        windows, run = chunk_windows_view(series, chunk, length, stride)
        np.testing.assert_array_equal(
            windows, full[chunk.first_window : chunk.first_window + chunk.n_windows]
        )
        assert len(run) == chunk.n_windows


@pytest.mark.parametrize("chunk_windows", [2, 5, 64])
def test_stitch_is_bit_identical_to_single_pass(chunk_windows):
    rng = np.random.default_rng(9)
    series = np.sin(np.arange(900) / 11.0) + 0.1 * rng.standard_normal(900)
    length, stride = 60, 13
    scorer = BatchedSpectralResidualScorer()

    windows, starts = sliding_windows(series, length, stride)
    reference_windows = scorer.score_windows(windows, [None] * len(windows))
    from repro.pipeline.scores import spread_window_scores

    reference = spread_window_scores(reference_windows, starts, length, len(series))

    chunks = plan_chunks(len(series), length, stride, chunk_windows)
    per_chunk = {}
    for chunk in chunks:
        chunk_view, _ = chunk_windows_view(series, chunk, length, stride)
        per_chunk[chunk.index] = scorer.score_windows(
            chunk_view, [None] * chunk.n_windows
        )
    stitched = stitch(per_chunk, chunks, length, stride, len(series))
    assert np.array_equal(stitched, reference)


def test_stitch_names_missing_chunk():
    chunks = plan_chunks(200, 20, 10, 4)
    partial = {chunks[0].index: np.zeros(chunks[0].n_windows)}
    with pytest.raises(KeyError, match=f"chunk {chunks[1].index}"):
        stitch(partial, chunks, 20, 10, 200)


def test_stitch_rejects_wrong_shape():
    chunks = plan_chunks(100, 10, 10, 100)
    bad = {0: np.zeros(chunks[0].n_windows + 1)}
    with pytest.raises(ValueError, match="expected"):
        stitch(bad, chunks, 10, 10, 100)
