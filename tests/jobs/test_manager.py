"""Job lifecycle: submit validation, idempotency, cancel, failure, retry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.jobs import (
    CANCELLED,
    FAILED,
    PENDING,
    SUCCEEDED,
    JobManager,
    JobSpec,
    job_detectors,
    register_job_detector,
)
from repro.pipeline.contracts import WindowScorer
from repro.runtime import RetryPolicy


class MeanScorer(WindowScorer):
    name = "test-mean"

    def score_windows(self, windows, batch):
        return np.abs(np.asarray(windows)).mean(axis=-1)


def register_mean(name="test-mean", length=20, stride=10):
    register_job_detector(
        name,
        lambda train, params: (MeanScorer(), length, stride),
        plan=lambda train, params: (length, stride),
    )
    return JobSpec(detector=name, chunk_windows=4)


@pytest.fixture
def series():
    rng = np.random.default_rng(5)
    return np.sin(np.arange(400) / 7.0) + 0.1 * rng.standard_normal(400)


def test_submit_run_result_lifecycle(tmp_path, series):
    spec = register_mean()
    manager = JobManager(tmp_path / "store")
    record = manager.submit(spec, series)
    assert record.state == PENDING
    assert record.job_id.startswith("job-")
    assert record.chunks_total > 1
    assert record.spec.window_length == 20  # plan pinned at submit

    record = manager.run(record.job_id)
    assert record.state == SUCCEEDED
    assert record.chunks_done == record.chunks_total
    scores = manager.result(record.job_id)
    assert scores.shape == series.shape
    assert np.isfinite(scores).all()
    # SUCCEEDED jobs are idempotent: run again returns without rescoring
    assert manager.run(record.job_id).state == SUCCEEDED


def test_duplicate_submit_dedupes(tmp_path, series):
    spec = register_mean()
    manager = JobManager(tmp_path / "store")
    first = manager.submit(spec, series)
    second = manager.submit(spec, series)
    assert second.job_id == first.job_id
    assert len(manager.list_jobs()) == 1
    # a different payload is a different job
    third = manager.submit(spec, series * 2.0)
    assert third.job_id != first.job_id
    fourth = manager.submit(JobSpec(detector=spec.detector, chunk_windows=8), series)
    assert fourth.job_id != first.job_id


def test_submit_rejects_invalid_series(tmp_path, series):
    spec = register_mean()
    manager = JobManager(tmp_path / "store")
    with pytest.raises(ValueError):
        manager.submit(spec, np.array([]))
    with pytest.raises(ValueError, match="one window needs"):
        manager.submit(spec, series[:10])  # shorter than window_length=20
    with pytest.raises(ValueError):
        manager.submit(spec, np.array([1.0, np.nan, 3.0] * 20))


def test_unknown_detector_fails_job_not_submit(tmp_path, series):
    # submit resolves the plan via the registry, so an unknown name
    # surfaces there, before anything is journaled
    manager = JobManager(tmp_path / "store")
    spec = JobSpec(detector="no-such-detector", window_length=20, stride=10)
    record = manager.submit(spec, series)
    record = manager.run(record.job_id)
    assert record.state == FAILED
    assert "no-such-detector" in record.error
    with pytest.raises(RuntimeError, match="FAILED"):
        manager.result(record.job_id)


def test_cancel_pending_job(tmp_path, series):
    spec = register_mean()
    manager = JobManager(tmp_path / "store")
    record = manager.submit(spec, series)
    assert manager.cancel(record.job_id) is True
    assert manager.status(record.job_id).state == CANCELLED
    # cancelling a terminal job is a no-op
    assert manager.cancel(record.job_id) is False


def test_cancel_while_running_then_resume(tmp_path, series):
    """A cancel arriving mid-run stops between chunks; a later run
    resumes from the journal and finishes with identical scores."""
    store_path = tmp_path / "store"
    manager = JobManager(store_path)

    cancelling = {"armed": False}

    class CancellingScorer(MeanScorer):
        def score_windows(self, windows, batch):
            if cancelling["armed"]:
                # simulate an operator cancelling from another process
                manager.cancel(batch[0].stream_id)
            return super().score_windows(windows, batch)

    register_job_detector(
        "test-cancelling",
        lambda train, params: (CancellingScorer(), 20, 10),
        plan=lambda train, params: (20, 10),
    )
    spec = JobSpec(detector="test-cancelling", chunk_windows=4)
    record = manager.submit(spec, series)
    cancelling["armed"] = True
    record = manager.run(record.job_id)
    assert record.state == CANCELLED
    assert 0 < record.chunks_done < record.chunks_total

    cancelling["armed"] = False
    record = manager.run(record.job_id)
    assert record.state == SUCCEEDED

    reference = JobManager(tmp_path / "ref").submit_and_run(spec, series)
    assert np.array_equal(
        manager.result(record.job_id),
        JobManager(tmp_path / "ref").result(reference.job_id),
    )


def test_failed_job_records_error_and_can_rerun(tmp_path, series):
    behavior = {"raise": True}

    class FlakyScorer(MeanScorer):
        def score_windows(self, windows, batch):
            if behavior["raise"]:
                raise RuntimeError("transient scoring outage")
            return super().score_windows(windows, batch)

    register_job_detector(
        "test-flaky",
        lambda train, params: (FlakyScorer(), 20, 10),
        plan=lambda train, params: (20, 10),
    )
    manager = JobManager(tmp_path / "store")
    record = manager.submit(JobSpec(detector="test-flaky", chunk_windows=4), series)
    record = manager.run(record.job_id)
    assert record.state == FAILED
    assert "transient scoring outage" in record.error

    behavior["raise"] = False
    record = manager.run(record.job_id)  # FAILED -> RUNNING is a legal resume
    assert record.state == SUCCEEDED


def test_retry_policy_recovers_flaky_chunks(tmp_path, series):
    calls = {"n": 0}

    class FirstCallFails(MeanScorer):
        def score_windows(self, windows, batch):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("cold cache")
            return super().score_windows(windows, batch)

    register_job_detector(
        "test-retry",
        lambda train, params: (FirstCallFails(), 20, 10),
        plan=lambda train, params: (20, 10),
    )
    manager = JobManager(
        tmp_path / "store", policy=RetryPolicy(max_retries=2, sleep=lambda _s: None)
    )
    record = manager.submit_and_run(
        JobSpec(detector="test-retry", chunk_windows=4), series
    )
    assert record.state == SUCCEEDED
    assert calls["n"] > 1


def test_builtin_registry_names_present():
    names = job_detectors()
    for expected in ("triad", "spectral-residual", "lstm-ae", "random"):
        assert expected in names
