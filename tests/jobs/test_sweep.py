"""The archive sweep on the job fabric must match the sequential runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_archive
from repro.eval import SweepCheckpoint, run_on_archive, run_scores_on_archive
from repro.jobs import parallel_map, run_archive_job
from repro.runtime import RetryPolicy


@pytest.fixture(scope="module")
def archive():
    return make_archive(size=3, seed=7, train_length=400, test_length=500)


def score_factory(seed):
    from repro.baselines import RandomScoreDetector

    return RandomScoreDetector(seed=seed)


def binary_factory(seed):
    from repro.baselines import OneLinerDetector

    return OneLinerDetector()


@pytest.mark.parametrize("workers", [1, 2])
def test_scores_sweep_matches_sequential(archive, workers):
    sequential = run_scores_on_archive("random", score_factory, archive, seeds=(0, 1))
    fabric = run_archive_job(
        "random", score_factory, archive, seeds=(0, 1), mode="scores", workers=workers
    )
    assert fabric.mean == sequential.mean
    assert fabric.std == sequential.std
    assert fabric.coverage == sequential.coverage
    assert [(r.dataset, r.seed) for r in fabric.per_run] == [
        (r.dataset, r.seed) for r in sequential.per_run
    ]
    assert [r.metrics for r in fabric.per_run] == [
        r.metrics for r in sequential.per_run
    ]


def test_binary_sweep_matches_sequential(archive):
    sequential = run_on_archive("one-liner", binary_factory, archive, seeds=(0,))
    fabric = run_archive_job(
        "one-liner", binary_factory, archive, seeds=(0,), workers=2
    )
    assert fabric.mean == sequential.mean
    assert fabric.std == sequential.std


def test_sweep_checkpoint_splices_on_rerun(archive, tmp_path):
    journal = tmp_path / "sweep.jsonl"
    first = run_archive_job(
        "random",
        score_factory,
        archive,
        seeds=(0,),
        mode="scores",
        workers=2,
        checkpoint=SweepCheckpoint(journal),
    )
    lines_after_first = len(journal.read_text().splitlines())
    assert lines_after_first == len(archive)

    second = run_archive_job(
        "random",
        score_factory,
        archive,
        seeds=(0,),
        mode="scores",
        workers=2,
        checkpoint=SweepCheckpoint(journal),
    )
    # everything spliced from the journal: no new lines, same aggregate
    assert len(journal.read_text().splitlines()) == lines_after_first
    assert second.mean == first.mean


def test_sweep_isolates_failures_under_policy(archive):
    def flaky_factory(seed):
        class Exploding:
            def fit(self, train):
                return self

            def score_series(self, test):
                raise RuntimeError("dead unit")

        return Exploding()

    result = run_archive_job(
        "flaky",
        flaky_factory,
        archive,
        seeds=(0,),
        mode="scores",
        workers=2,
        policy=RetryPolicy(max_retries=0, sleep=lambda _s: None),
    )
    assert result.coverage == 0.0
    assert len(result.failures) == len(archive)
    assert all(f.error_type == "RuntimeError" for f in result.failures)


def test_parallel_map_serial_raises_live_exception():
    def boom(payload):
        raise ValueError(f"bad payload {payload}")

    with pytest.raises(ValueError, match="bad payload"):
        parallel_map(boom, [1], workers=1, on_result=lambda i, r: None)


def test_parallel_map_pool_marshals_errors():
    def task(payload):
        if payload == 2:
            raise ValueError("poisoned")
        return payload * 10

    seen = {}
    remaining, errors = parallel_map(
        task, [1, 2, 3], workers=2, on_result=seen.__setitem__
    )
    assert remaining == []
    assert seen == {0: 10, 2: 30}
    assert list(errors) == [1] and "poisoned" in errors[1]


def test_parallel_map_should_stop_short_circuits():
    stop = {"now": False}

    def on_result(index, result):
        stop["now"] = True

    remaining, errors = parallel_map(
        lambda p: p, list(range(5)), workers=1,
        on_result=on_result, should_stop=lambda: stop["now"],
    )
    assert errors == {}
    assert len(remaining) == 4  # stopped after the first completion
