"""Retry/budget policy unit tests."""

from __future__ import annotations

import pytest

from repro.runtime import BudgetExceededError, RetryPolicy, RunBudget


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestRunBudget:
    def test_step_budget_exhausts(self):
        budget = RunBudget(max_steps=3)
        budget.tick()
        budget.tick()
        budget.tick()
        with pytest.raises(BudgetExceededError, match="step budget"):
            budget.tick()

    def test_wall_budget_exhausts(self):
        clock = FakeClock()
        budget = RunBudget(max_seconds=10.0, clock=clock)
        clock.now = 9.0
        budget.check_time()
        clock.now = 10.5
        with pytest.raises(BudgetExceededError, match="wall budget"):
            budget.check_time()

    def test_tick_checks_wall_too(self):
        clock = FakeClock()
        budget = RunBudget(max_seconds=1.0, clock=clock)
        clock.now = 2.0
        with pytest.raises(BudgetExceededError):
            budget.tick()

    def test_unlimited_budget_never_raises(self):
        budget = RunBudget()
        for _ in range(1000):
            budget.tick()
        budget.check_time()

    def test_spawn_resets_steps_and_deadline(self):
        clock = FakeClock()
        budget = RunBudget(max_steps=2, max_seconds=5.0, clock=clock)
        budget.tick()
        budget.tick()
        clock.now = 4.0
        fresh = budget.spawn()
        assert fresh.steps == 0
        clock.now = 8.0  # 4s after the spawn, within its own 5s allowance
        fresh.check_time()
        fresh.tick()
        fresh.tick()
        with pytest.raises(BudgetExceededError):
            fresh.tick()


class TestRetryPolicy:
    def test_attempts_counts_first_try(self):
        assert RetryPolicy(max_retries=0).attempts() == 1
        assert RetryPolicy(max_retries=3).attempts() == 4

    def test_negative_retries_clamp_to_single_attempt(self):
        assert RetryPolicy(max_retries=-1).attempts() == 1

    def test_reseed_identity_on_first_attempt(self):
        policy = RetryPolicy()
        assert policy.reseed(7, 0) == 7

    def test_reseed_deterministic_and_distinct(self):
        policy = RetryPolicy()
        seeds = {policy.reseed(7, attempt) for attempt in range(4)}
        assert len(seeds) == 4
        assert policy.reseed(7, 2) == policy.reseed(7, 2)

    def test_backoff_hook_drives_sleep(self):
        slept: list[float] = []
        policy = RetryPolicy(
            backoff=lambda attempt: 0.1 * 2**attempt, sleep=slept.append
        )
        policy.pause(1)
        policy.pause(2)
        assert slept == [pytest.approx(0.2), pytest.approx(0.4)]

    def test_no_backoff_no_sleep(self):
        policy = RetryPolicy(sleep=lambda _s: pytest.fail("slept without backoff"))
        policy.pause(1)

    def test_spawn_budget_is_fresh_per_attempt(self):
        policy = RetryPolicy(budget=RunBudget(max_steps=1))
        first = policy.spawn_budget()
        first.tick()
        second = policy.spawn_budget()
        assert second.steps == 0

    def test_spawn_budget_none_when_unbudgeted(self):
        assert RetryPolicy().spawn_budget() is None
