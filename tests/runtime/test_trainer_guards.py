"""Training divergence-guard tests: NaN epochs roll back, repeated
divergence aborts cleanly, bad inputs fail fast with clear messages."""

from __future__ import annotations

import numpy as np
import pytest

from repro.augment import augment_batch
from repro.core import TriADConfig, train_encoder
from repro.runtime import DivergenceGuard, flaky


@pytest.fixture
def fast_config():
    return TriADConfig(depth=1, hidden_dim=4, epochs=3, seed=0, max_window=96)


def _poison_augment(monkeypatch, fail_calls):
    """Make the trainer's augmentation emit NaN batches on chosen calls."""
    monkeypatch.setattr(
        "repro.core.trainer.augment_batch",
        flaky(augment_batch, fail_calls=fail_calls, mode="nan"),
    )


class TestInputGuards:
    def test_constant_series_rejected(self, fast_config):
        with pytest.raises(ValueError, match="constant"):
            train_encoder(np.ones(600), fast_config)

    def test_nan_series_rejected(self, noisy_wave, fast_config):
        bad = noisy_wave.copy()
        bad[7] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            train_encoder(bad, fast_config)

    def test_empty_series_rejected(self, fast_config):
        with pytest.raises(ValueError, match="empty"):
            train_encoder(np.array([]), fast_config)

    def test_too_few_windows_raises_not_silent_zero(self):
        """A series yielding <2 training windows used to 'train' with loss
        0.0 forever; now it fails fast with an actionable message."""
        t = np.arange(64)
        series = np.sin(2 * np.pi * t / 16) + 0.01 * np.cos(t / 3.0)
        config = TriADConfig(
            depth=1, hidden_dim=4, epochs=1, seed=0, min_window=64, max_window=64
        )
        with pytest.raises(ValueError, match="contrastive batch"):
            train_encoder(series, config)


class TestDivergenceGuard:
    def test_nan_epoch_rolls_back_and_recovers(self, noisy_wave, fast_config, monkeypatch):
        _poison_augment(monkeypatch, fail_calls={0})  # poisons one batch of epoch 0
        result = train_encoder(noisy_wave, fast_config)
        assert result.rollbacks == 1
        assert not result.diverged
        assert np.isnan(result.train_losses[0])
        assert all(np.isfinite(l) for l in result.train_losses[1:])
        for _name, param in result.encoder.named_parameters():
            assert np.all(np.isfinite(param.data))

    def test_persistent_nan_aborts_with_finite_encoder(
        self, noisy_wave, fast_config, monkeypatch
    ):
        _poison_augment(monkeypatch, fail_calls=range(10_000))
        guard = DivergenceGuard(max_rollbacks=1)
        result = train_encoder(noisy_wave, fast_config, guard=guard)
        assert result.diverged
        assert result.rollbacks == 2
        assert len(result.train_losses) == 2  # aborted before epoch 3
        for _name, param in result.encoder.named_parameters():
            assert np.all(np.isfinite(param.data))

    def test_grad_explosion_threshold_triggers(self, noisy_wave, fast_config):
        guard = DivergenceGuard(max_rollbacks=0, max_grad_norm=1e-12)
        result = train_encoder(noisy_wave, fast_config, guard=guard)
        assert result.diverged
        assert result.rollbacks == 1

    def test_lr_backoff_applied_per_rollback(self):
        guard = DivergenceGuard(lr_backoff=0.5, min_lr=1e-6)
        assert guard.backed_off_lr(1e-3) == pytest.approx(5e-4)
        assert guard.backed_off_lr(1e-6) == pytest.approx(1e-6)

    def test_guard_counts_are_per_instance(self):
        guard = DivergenceGuard(max_rollbacks=1)
        assert guard.assess(float("nan")) == "rollback"
        assert guard.assess(float("nan")) == "abort"
        assert DivergenceGuard(max_rollbacks=1).assess(1.0) == "ok"

    def test_clean_run_has_no_rollbacks(self, noisy_wave, fast_config):
        result = train_encoder(noisy_wave, fast_config)
        assert result.rollbacks == 0
        assert not result.diverged
        assert len(result.train_losses) == fast_config.epochs
