"""Fault-injection harness tests: the chaos layer itself must be
deterministic before it can prove anything about the runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import OneLinerDetector
from repro.data import make_archive
from repro.runtime import (
    BudgetExceededError,
    ChaosDetector,
    Fault,
    FaultPlan,
    InjectedFault,
    RunBudget,
    chaos_factory,
    fingerprint,
    flaky,
)


@pytest.fixture(scope="module")
def archive():
    return make_archive(size=3, seed=3, train_length=400, test_length=500)


class TestFingerprint:
    def test_content_identity(self, rng):
        x = rng.normal(size=64)
        assert fingerprint(x) == fingerprint(x.copy())

    def test_distinct_content(self, rng):
        x = rng.normal(size=64)
        y = x.copy()
        y[0] += 1.0
        assert fingerprint(x) != fingerprint(y)


class TestFaultPlan:
    def test_draw_matches_dataset_stage(self):
        plan = FaultPlan([Fault(dataset="a", stage="fit", mode="raise")])
        assert plan.draw("a", 0, "fit") is not None
        assert plan.draw("b", 0, "fit") is None
        assert plan.draw("a", 0, "predict") is None

    def test_count_spent_across_seeds(self):
        """Charges are global so a transient fault stays spent when the
        retry re-attempts the unit under a reseeded detector."""
        plan = FaultPlan([Fault(dataset="a", stage="fit", mode="raise", count=1)])
        assert plan.draw("a", 0, "fit") is not None
        assert plan.draw("a", 0, "fit") is None
        assert plan.draw("a", 100003, "fit") is None  # reseeded retry: still spent

    def test_per_seed_bounded_faults_via_seed_pinning(self):
        plan = FaultPlan(
            [
                Fault(dataset="a", stage="fit", mode="raise", seed=0, count=1),
                Fault(dataset="a", stage="fit", mode="raise", seed=1, count=1),
            ]
        )
        assert plan.draw("a", 0, "fit") is not None
        assert plan.draw("a", 0, "fit") is None
        assert plan.draw("a", 1, "fit") is not None
        assert plan.draw("a", 1, "fit") is None

    def test_count_none_fires_forever(self):
        plan = FaultPlan([Fault(dataset="a", stage="fit", mode="raise", count=None)])
        for _ in range(5):
            assert plan.draw("a", 0, "fit") is not None

    def test_seed_restriction(self):
        plan = FaultPlan([Fault(dataset="a", stage="fit", mode="raise", seed=2)])
        assert plan.draw("a", 0, "fit") is None
        assert plan.draw("a", 2, "fit") is not None

    def test_reset_restores_charges(self):
        plan = FaultPlan([Fault(dataset="a", stage="fit", mode="raise", count=1)])
        plan.draw("a", 0, "fit")
        plan.reset()
        assert plan.draw("a", 0, "fit") is not None

    def test_rejects_unknown_mode_and_stage(self):
        with pytest.raises(ValueError, match="mode"):
            Fault(dataset="a", stage="fit", mode="explode")
        with pytest.raises(ValueError, match="stage"):
            Fault(dataset="a", stage="transmogrify", mode="raise")


class TestChaosDetector:
    def _wrap(self, archive, plan, seed=0):
        factory = chaos_factory(lambda s: OneLinerDetector(), plan, archive)
        return factory(seed)

    def test_clean_passthrough(self, archive):
        dataset = archive[0]
        clean = OneLinerDetector().fit(dataset.train).predict(dataset.test)
        chaotic = self._wrap(archive, FaultPlan()).fit(dataset.train).predict(dataset.test)
        assert np.array_equal(clean, chaotic)

    def test_raise_on_fit(self, archive):
        dataset = archive[1]
        plan = FaultPlan([Fault(dataset=dataset.name, stage="fit", mode="raise")])
        with pytest.raises(InjectedFault, match=dataset.name):
            self._wrap(archive, plan).fit(dataset.train)

    def test_nan_scores(self, archive):
        dataset = archive[0]
        plan = FaultPlan([Fault(dataset=dataset.name, stage="score", mode="nan")])
        detector = self._wrap(archive, plan).fit(dataset.train)
        scores = detector.score_series(dataset.test)
        assert len(scores) == len(dataset.test)
        assert np.all(np.isnan(scores))

    def test_shape_corruption(self, archive):
        dataset = archive[0]
        plan = FaultPlan([Fault(dataset=dataset.name, stage="predict", mode="shape")])
        detector = self._wrap(archive, plan).fit(dataset.train)
        assert len(detector.predict(dataset.test)) < len(dataset.test)

    def test_hang_exhausts_step_budget(self, archive):
        dataset = archive[0]
        plan = FaultPlan([Fault(dataset=dataset.name, stage="fit", mode="hang")])
        detector = self._wrap(archive, plan)
        budget = RunBudget(max_steps=50)
        detector.set_budget(budget)
        with pytest.raises(BudgetExceededError):
            detector.fit(dataset.train)
        assert budget.steps == 51

    def test_hang_without_budget_still_fails(self, archive):
        dataset = archive[0]
        plan = FaultPlan([Fault(dataset=dataset.name, stage="fit", mode="hang")])
        with pytest.raises(BudgetExceededError, match="no budget"):
            self._wrap(archive, plan).fit(dataset.train)

    def test_transient_fault_clears_after_count(self, archive):
        dataset = archive[0]
        plan = FaultPlan([Fault(dataset=dataset.name, stage="fit", mode="raise", count=1)])
        factory = chaos_factory(lambda s: OneLinerDetector(), plan, archive)
        with pytest.raises(InjectedFault):
            factory(0).fit(dataset.train)
        predictions = factory(0).fit(dataset.train).predict(dataset.test)
        assert len(predictions) == len(dataset.test)


class TestFlaky:
    def test_raises_on_scheduled_calls(self):
        wrapped = flaky(lambda x: x, fail_calls={1}, mode="raise")
        assert wrapped(np.ones(3)) is not None
        with pytest.raises(InjectedFault):
            wrapped(np.ones(3))
        assert np.array_equal(wrapped(np.ones(3)), np.ones(3))

    def test_nan_mode_preserves_shape(self):
        wrapped = flaky(lambda x: x * 2.0, fail_calls={0}, mode="nan")
        out = wrapped(np.ones((2, 4)))
        assert out.shape == (2, 4)
        assert np.all(np.isnan(out))

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            flaky(lambda x: x, fail_calls={0}, mode="hang")
