"""Degradation-path tests for the fault-tolerant archive runner.

The acceptance contract: a sweep with K injected failures completes,
reports exactly K failures with (dataset, seed, stage) attribution, and
matches a clean sweep's metrics on the surviving datasets; a killed and
resumed sweep re-runs only the missing units and reproduces the
uninterrupted aggregates exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import OneLinerDetector
from repro.data import Dataset, make_archive
from repro.eval import (
    SweepCheckpoint,
    evaluate_scores,
    run_on_archive,
    run_scores_on_archive,
)
from repro.runtime import (
    Fault,
    FaultPlan,
    InjectedFault,
    RetryPolicy,
    RunBudget,
    chaos_factory,
)


@pytest.fixture(scope="module")
def archive():
    return make_archive(size=4, seed=3, train_length=400, test_length=500)


def one_liner_factory(seed: int) -> OneLinerDetector:
    return OneLinerDetector()


class CountingFactory:
    """Factory wrapper counting how many detectors were actually built."""

    def __init__(self) -> None:
        self.calls = 0

    def __call__(self, seed: int) -> OneLinerDetector:
        self.calls += 1
        return OneLinerDetector()


class TestFaultIsolation:
    @pytest.mark.parametrize(
        "stage,mode,runner",
        [
            ("fit", "raise", run_on_archive),
            ("predict", "nan", run_on_archive),
            ("predict", "shape", run_on_archive),
            ("score", "nan", run_scores_on_archive),
            ("score", "shape", run_scores_on_archive),
        ],
    )
    def test_single_fault_isolated_with_attribution(self, archive, stage, mode, runner):
        faulty = archive[1].name
        plan = FaultPlan([Fault(dataset=faulty, stage=stage, mode=mode, count=None)])
        agg = runner(
            "one-liner",
            chaos_factory(one_liner_factory, plan, archive),
            archive,
            policy=RetryPolicy(max_retries=1),
        )
        assert len(agg.failures) == 1
        failure = agg.failures[0]
        assert failure.dataset == faulty
        assert failure.seed == 0
        assert failure.stage == stage
        assert failure.attempts == 2
        assert failure.detector == "one-liner"
        assert len(agg.per_run) == len(archive) - 1
        assert agg.coverage == pytest.approx((len(archive) - 1) / len(archive))
        assert all(np.isfinite(v) for v in agg.mean.values())

    def test_k_faults_reported_exactly(self, archive):
        plan = FaultPlan(
            [
                Fault(dataset=archive[0].name, stage="fit", mode="raise", count=None),
                Fault(dataset=archive[2].name, stage="score", mode="nan", count=None),
            ]
        )
        agg = run_scores_on_archive(
            "one-liner",
            chaos_factory(one_liner_factory, plan, archive),
            archive,
            policy=RetryPolicy(max_retries=0),
        )
        assert len(agg.failures) == 2
        assert {f.dataset for f in agg.failures} == {archive[0].name, archive[2].name}
        assert {f.stage for f in agg.failures} == {"fit", "score"}
        assert agg.coverage == pytest.approx(0.5)

    def test_survivors_match_clean_sweep(self, archive):
        faulty = archive[1].name
        plan = FaultPlan([Fault(dataset=faulty, stage="fit", mode="raise", count=None)])
        chaotic = run_on_archive(
            "one-liner",
            chaos_factory(one_liner_factory, plan, archive),
            archive,
            seeds=(0, 1),
            policy=RetryPolicy(max_retries=1),
        )
        survivors = [ds for ds in archive if ds.name != faulty]
        clean = run_on_archive("one-liner", one_liner_factory, survivors, seeds=(0, 1))
        assert chaotic.mean == clean.mean
        assert chaotic.std == clean.std
        by_unit = {(r.dataset, r.seed): r.metrics for r in chaotic.per_run}
        for run in clean.per_run:
            assert by_unit[(run.dataset, run.seed)] == run.metrics

    def test_transient_fault_recovers_on_retry(self, archive):
        faulty = archive[2].name
        plan = FaultPlan([Fault(dataset=faulty, stage="fit", mode="raise", count=1)])
        agg = run_on_archive(
            "one-liner",
            chaos_factory(one_liner_factory, plan, archive),
            archive,
            policy=RetryPolicy(max_retries=1),
        )
        assert not agg.failures
        assert agg.coverage == 1.0
        recovered = next(r for r in agg.per_run if r.dataset == faulty)
        assert recovered.attempts == 2
        clean = run_on_archive("one-liner", one_liner_factory, archive)
        assert agg.mean == clean.mean

    def test_hang_fault_dies_by_step_budget(self, archive):
        faulty = archive[0].name
        plan = FaultPlan([Fault(dataset=faulty, stage="fit", mode="hang", count=None)])
        policy = RetryPolicy(max_retries=0, budget=RunBudget(max_steps=100))
        agg = run_on_archive(
            "one-liner",
            chaos_factory(one_liner_factory, plan, archive),
            archive,
            policy=policy,
        )
        assert len(agg.failures) == 1
        assert agg.failures[0].stage == "fit"
        assert agg.failures[0].error_type == "BudgetExceededError"

    def test_without_policy_faults_crash_through(self, archive):
        plan = FaultPlan(
            [Fault(dataset=archive[0].name, stage="fit", mode="raise", count=None)]
        )
        with pytest.raises(InjectedFault):
            run_on_archive(
                "one-liner",
                chaos_factory(one_liner_factory, plan, archive),
                archive,
            )

    def test_invalid_dataset_attributed_to_validate_stage(self, archive):
        broken_train = archive[0].train.copy()
        broken_train[10] = np.nan
        broken = Dataset(
            name="broken_ds",
            train=broken_train,
            test=archive[0].test,
            labels=archive[0].labels,
        )
        agg = run_on_archive(
            "one-liner",
            one_liner_factory,
            [broken] + list(archive[1:]),
            policy=RetryPolicy(max_retries=2),
        )
        assert len(agg.failures) == 1
        assert agg.failures[0].stage == "validate"
        assert agg.failures[0].attempts == 1  # deterministic: no retries burned
        with pytest.raises(ValueError, match="non-finite"):
            run_on_archive("one-liner", one_liner_factory, [broken])

    def test_all_units_failing_yields_nan_aggregate(self, archive):
        plan = FaultPlan(
            [Fault(dataset=ds.name, stage="fit", mode="raise", count=None) for ds in archive]
        )
        agg = run_on_archive(
            "one-liner",
            chaos_factory(one_liner_factory, plan, archive),
            archive,
            policy=RetryPolicy(max_retries=0),
        )
        assert len(agg.failures) == len(archive)
        assert agg.coverage == 0.0
        assert all(np.isnan(v) for v in agg.mean.values())


class TestCheckpointResume:
    def test_resume_skips_every_completed_unit(self, archive, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        baseline = run_on_archive(
            "one-liner",
            one_liner_factory,
            archive,
            seeds=(0, 1),
            checkpoint=SweepCheckpoint(journal),
        )
        counting = CountingFactory()
        resumed = run_on_archive(
            "one-liner",
            counting,
            archive,
            seeds=(0, 1),
            checkpoint=SweepCheckpoint(journal),
        )
        assert counting.calls == 0
        assert resumed.mean == baseline.mean
        assert resumed.std == baseline.std
        assert len(resumed.per_run) == len(baseline.per_run)

    def test_killed_sweep_reruns_only_missing_units(self, archive, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        uninterrupted = run_on_archive(
            "one-liner", one_liner_factory, archive, seeds=(0, 1)
        )
        # Simulate a sweep killed after 3 of 8 units: journal holds a prefix.
        full = run_on_archive(
            "one-liner",
            one_liner_factory,
            archive,
            seeds=(0, 1),
            checkpoint=SweepCheckpoint(journal),
        )
        assert full.mean == uninterrupted.mean
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(lines[:3]) + "\n")
        counting = CountingFactory()
        resumed = run_on_archive(
            "one-liner",
            counting,
            archive,
            seeds=(0, 1),
            checkpoint=SweepCheckpoint(journal),
        )
        assert counting.calls == len(lines) - 3
        assert resumed.mean == uninterrupted.mean
        assert resumed.std == uninterrupted.std
        assert len(resumed.per_run) == len(uninterrupted.per_run)

    def test_foreign_mode_journal_reruns_instead_of_poisoning(self, archive, tmp_path):
        """A journal written by the binary runner must not be spliced into
        a scores sweep (its metrics lack roc_auc etc.) — re-run instead."""
        journal = tmp_path / "sweep.jsonl"
        run_on_archive(
            "one-liner", one_liner_factory, archive, checkpoint=SweepCheckpoint(journal)
        )
        agg = run_scores_on_archive(
            "one-liner", one_liner_factory, archive, checkpoint=SweepCheckpoint(journal)
        )
        assert set(agg.mean) == {"roc_auc", "pr_auc", "best_f1"}
        assert all(np.isfinite(v) for v in agg.mean.values())

    def test_torn_final_line_tolerated(self, archive, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        run_on_archive(
            "one-liner",
            one_liner_factory,
            archive,
            checkpoint=SweepCheckpoint(journal),
        )
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "result", "dataset": "half-writ')
        counting = CountingFactory()
        resumed = run_on_archive(
            "one-liner", counting, archive, checkpoint=SweepCheckpoint(journal)
        )
        assert counting.calls == 0
        assert len(resumed.per_run) == len(archive)

    def test_failures_checkpointed_and_clearable(self, archive, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        faulty = archive[1].name
        plan = FaultPlan([Fault(dataset=faulty, stage="fit", mode="raise", count=None)])
        agg = run_on_archive(
            "one-liner",
            chaos_factory(one_liner_factory, plan, archive),
            archive,
            policy=RetryPolicy(max_retries=0),
            checkpoint=SweepCheckpoint(journal),
        )
        assert len(agg.failures) == 1
        # Resume replays the recorded failure without re-running it.
        counting = CountingFactory()
        resumed = run_on_archive(
            "one-liner",
            counting,
            archive,
            policy=RetryPolicy(max_retries=0),
            checkpoint=SweepCheckpoint(journal),
        )
        assert counting.calls == 0
        assert len(resumed.failures) == 1
        assert resumed.failures[0].dataset == faulty
        # Clearing failures grants the unit a fresh (now fault-free) run.
        cleared = SweepCheckpoint(journal).clear_failures()
        assert cleared == 1
        healed = run_on_archive(
            "one-liner",
            counting,
            archive,
            policy=RetryPolicy(max_retries=0),
            checkpoint=SweepCheckpoint(journal),
        )
        assert counting.calls == 1
        assert not healed.failures
        assert healed.coverage == 1.0


class TestScoreGuards:
    def test_all_nan_scores_yield_defined_worst_case(self, small_dataset):
        scores = np.full(len(small_dataset.test), np.nan)
        notes: list[str] = []
        metrics = evaluate_scores(scores, small_dataset.labels, warnings=notes)
        assert all(np.isfinite(v) for v in metrics.values())
        assert metrics["roc_auc"] == pytest.approx(0.5)
        assert any("non-finite" in n for n in notes)
        assert any("constant" in n for n in notes)

    def test_partial_nan_ranked_below_finite(self, small_dataset):
        rng = np.random.default_rng(0)
        scores = rng.random(len(small_dataset.test))
        scores[small_dataset.labels == 0] *= 0.1  # informative scores
        clean = evaluate_scores(scores, small_dataset.labels)
        scores[:3] = np.nan
        notes: list[str] = []
        patched = evaluate_scores(scores, small_dataset.labels, warnings=notes)
        assert all(np.isfinite(v) for v in patched.values())
        assert notes and "3 non-finite" in notes[0]
        assert abs(patched["roc_auc"] - clean["roc_auc"]) < 0.05

    def test_constant_scores_flagged(self, small_dataset):
        notes: list[str] = []
        metrics = evaluate_scores(
            np.zeros(len(small_dataset.test)), small_dataset.labels, warnings=notes
        )
        assert metrics["roc_auc"] == pytest.approx(0.5)
        assert any("constant" in n for n in notes)

    def test_clean_scores_add_no_warnings(self, small_dataset):
        notes: list[str] = []
        evaluate_scores(
            np.arange(len(small_dataset.test), dtype=float),
            small_dataset.labels,
            warnings=notes,
        )
        assert notes == []

    def test_runner_records_warnings_in_metadata(self, archive):
        class ConstantScorer:
            def fit(self, train):
                return self

            def score_series(self, test):
                return np.zeros(len(test))

        agg = run_scores_on_archive("flat", lambda s: ConstantScorer(), archive[:1])
        assert agg.per_run[0].warnings
        assert "constant" in agg.per_run[0].warnings[0]
