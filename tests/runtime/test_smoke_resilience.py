"""Tier-1 wiring for the resilience smoke scenario.

Imports ``scripts/smoke_resilience.py`` and runs its scenario in-process
so the tier-1 suite fails fast on any runtime-layer regression; the
script stays runnable standalone for CI and manual checks.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parents[2] / "scripts" / "smoke_resilience.py"


def _load_script():
    spec = importlib.util.spec_from_file_location("smoke_resilience", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.resilience
def test_smoke_resilience_scenario():
    summary = _load_script().run_smoke()
    assert summary["failures"] == 1
    assert summary["survivors"] == 2
    assert summary["healed_coverage"] == 1.0
