"""Failure-injection tests: public entry points reject bad input cleanly."""

from __future__ import annotations

import numpy as np
import pytest

from repro import TriAD, TriADConfig
from repro.baselines import LSTMAEDetector, OneLinerDetector
from repro.validation import ensure_finite, ensure_series


class TestHelpers:
    def test_ensure_finite_passes_clean(self, rng):
        x = rng.normal(size=10)
        assert np.array_equal(ensure_finite(x), x)

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_ensure_finite_rejects(self, bad):
        x = np.ones(5)
        x[2] = bad
        with pytest.raises(ValueError, match="non-finite"):
            ensure_finite(x)

    def test_ensure_series_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            ensure_series(np.zeros((3, 4)))

    def test_ensure_series_rejects_short(self):
        with pytest.raises(ValueError, match="at least"):
            ensure_series(np.zeros(3), min_length=10)

    def test_error_names_the_argument(self):
        with pytest.raises(ValueError, match="train_series"):
            ensure_series(np.zeros((2, 2)), name="train_series")


class TestTriADBoundaries:
    def test_fit_rejects_nan(self):
        x = np.sin(np.arange(500) / 5.0)
        x[100] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            TriAD(TriADConfig(epochs=1)).fit(x)

    def test_fit_rejects_too_short(self):
        with pytest.raises(ValueError):
            TriAD(TriADConfig(epochs=1)).fit(np.zeros(10))

    def test_detect_rejects_nan(self, noisy_wave):
        detector = TriAD(
            TriADConfig(depth=1, hidden_dim=4, epochs=1, max_window=64)
        ).fit(noisy_wave)
        bad = noisy_wave.copy()
        bad[5] = np.inf
        with pytest.raises(ValueError, match="non-finite"):
            detector.detect(bad)

    def test_detect_rejects_shorter_than_window(self, noisy_wave):
        detector = TriAD(
            TriADConfig(depth=1, hidden_dim=4, epochs=1, max_window=64)
        ).fit(noisy_wave)
        with pytest.raises(ValueError):
            detector.detect(noisy_wave[: detector.plan.length - 1])


class TestBaselineBoundaries:
    def test_fit_rejects_nan(self):
        x = np.ones(100)
        x[3] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            OneLinerDetector().fit(x)

    def test_detect_rejects_nan(self, noisy_wave):
        detector = LSTMAEDetector(trained=False).fit(noisy_wave)
        bad = noisy_wave.copy()
        bad[0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            detector.detect(bad)

    def test_fit_rejects_matrix(self, rng):
        with pytest.raises(ValueError, match="1-D"):
            OneLinerDetector().fit(rng.normal(size=(10, 10)))
