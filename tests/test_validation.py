"""Failure-injection tests: public entry points reject bad input cleanly."""

from __future__ import annotations

import numpy as np
import pytest

from repro import TriAD, TriADConfig
from repro.baselines import LSTMAEDetector, OneLinerDetector
from repro.data import Dataset
from repro.validation import (
    ensure_finite,
    ensure_labels,
    ensure_series,
    ensure_variation,
    validate_dataset,
)


class TestHelpers:
    def test_ensure_finite_passes_clean(self, rng):
        x = rng.normal(size=10)
        assert np.array_equal(ensure_finite(x), x)

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_ensure_finite_rejects(self, bad):
        x = np.ones(5)
        x[2] = bad
        with pytest.raises(ValueError, match="non-finite"):
            ensure_finite(x)

    def test_ensure_series_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            ensure_series(np.zeros((3, 4)))

    def test_ensure_series_rejects_short(self):
        with pytest.raises(ValueError, match="at least"):
            ensure_series(np.zeros(3), min_length=10)

    def test_error_names_the_argument(self):
        with pytest.raises(ValueError, match="train_series"):
            ensure_series(np.zeros((2, 2)), name="train_series")


class TestHardenedHelpers:
    def test_empty_series_named_explicitly(self):
        with pytest.raises(ValueError, match="empty"):
            ensure_series(np.array([]), name="train_series")

    def test_ensure_variation_rejects_constant(self):
        with pytest.raises(ValueError, match="constant"):
            ensure_variation(np.full(50, 3.2), name="train_series")

    def test_ensure_variation_passes_varying(self, rng):
        x = rng.normal(size=50)
        assert ensure_variation(x) is x

    def test_ensure_labels_length_mismatch(self):
        with pytest.raises(ValueError, match="does not match"):
            ensure_labels(np.zeros(9, dtype=int), length=10)

    def test_ensure_labels_rejects_nonbinary(self):
        with pytest.raises(ValueError, match="binary"):
            ensure_labels(np.array([0, 1, 2]), length=3)

    def test_ensure_labels_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            ensure_labels(np.zeros((2, 3), dtype=int), length=6)

    def test_validate_dataset_accepts_clean(self, small_dataset):
        validate_dataset(small_dataset)

    def test_validate_dataset_names_the_dataset(self, small_dataset):
        broken_train = small_dataset.train.copy()
        broken_train[0] = np.inf
        broken = Dataset(
            name="bad_ds",
            train=broken_train,
            test=small_dataset.test,
            labels=small_dataset.labels,
        )
        with pytest.raises(ValueError, match="bad_ds.train"):
            validate_dataset(broken)

    def test_validate_dataset_rejects_constant_train(self, small_dataset):
        broken = Dataset(
            name="flat_ds",
            train=np.full_like(small_dataset.train, 1.5),
            test=small_dataset.test,
            labels=small_dataset.labels,
        )
        with pytest.raises(ValueError, match="constant"):
            validate_dataset(broken)


class TestTriADBoundaries:
    def test_fit_rejects_nan(self):
        x = np.sin(np.arange(500) / 5.0)
        x[100] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            TriAD(TriADConfig(epochs=1)).fit(x)

    def test_fit_rejects_too_short(self):
        with pytest.raises(ValueError):
            TriAD(TriADConfig(epochs=1)).fit(np.zeros(10))

    def test_detect_rejects_nan(self, noisy_wave):
        detector = TriAD(
            TriADConfig(depth=1, hidden_dim=4, epochs=1, max_window=64)
        ).fit(noisy_wave)
        bad = noisy_wave.copy()
        bad[5] = np.inf
        with pytest.raises(ValueError, match="non-finite"):
            detector.detect(bad)

    def test_detect_rejects_shorter_than_window(self, noisy_wave):
        detector = TriAD(
            TriADConfig(depth=1, hidden_dim=4, epochs=1, max_window=64)
        ).fit(noisy_wave)
        with pytest.raises(ValueError):
            detector.detect(noisy_wave[: detector.plan.length - 1])


class TestBaselineBoundaries:
    def test_fit_rejects_nan(self):
        x = np.ones(100)
        x[3] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            OneLinerDetector().fit(x)

    def test_detect_rejects_nan(self, noisy_wave):
        detector = LSTMAEDetector(trained=False).fit(noisy_wave)
        bad = noisy_wave.copy()
        bad[0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            detector.detect(bad)

    def test_fit_rejects_matrix(self, rng):
        with pytest.raises(ValueError, match="1-D"):
            OneLinerDetector().fit(rng.normal(size=(10, 10)))
