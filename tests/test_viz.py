"""Tests for the terminal visualization helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.viz import ascii_plot, detection_report, mark_intervals, sparkline


class TestSparkline:
    def test_length_capped(self, rng):
        assert len(sparkline(rng.normal(size=500), width=40)) == 40

    def test_short_input_uncompressed(self, rng):
        assert len(sparkline(rng.normal(size=7), width=40)) == 7

    def test_monotone_input_monotone_levels(self):
        line = sparkline(np.arange(8.0), width=8)
        assert line == "▁▂▃▄▅▆▇█"

    def test_constant_input(self):
        line = sparkline(np.ones(10))
        assert len(set(line)) == 1

    def test_empty(self):
        assert sparkline(np.array([])) == ""


class TestAsciiPlot:
    def test_dimensions(self, rng):
        plot = ascii_plot(rng.normal(size=300), height=6, width=50)
        lines = plot.splitlines()
        assert len(lines) == 6
        assert all(len(line) == 50 for line in lines)

    def test_marks_row_appended(self, rng):
        plot = ascii_plot(rng.normal(size=100), height=4, width=50, marks=[(40, 60)])
        lines = plot.splitlines()
        assert len(lines) == 5
        assert "!" in lines[-1]

    def test_peak_location(self):
        x = np.zeros(72)
        x[36] = 10.0
        plot = ascii_plot(x, height=5, width=72)
        top_row = plot.splitlines()[0]
        assert top_row[36] == "█"

    def test_empty(self):
        assert ascii_plot(np.array([])) == ""


class TestMarkIntervals:
    def test_marks_and_clipping(self):
        line = mark_intervals(10, [(2, 4), (8, 15)])
        assert line == "  ^^    ^^"

    def test_empty_intervals(self):
        assert mark_intervals(5, []) == "     "


class TestDetectionReport:
    @pytest.fixture(scope="class")
    def detection(self):
        from repro import TriAD, TriADConfig
        from repro.data import make_archive

        ds = make_archive(size=1, seed=3, train_length=900, test_length=1100)[0]
        detector = TriAD(TriADConfig(depth=1, hidden_dim=4, epochs=1, max_window=96))
        detector.fit(ds.train)
        return detector.detect(ds.test), ds

    def test_report_contains_sections(self, detection):
        det, ds = detection
        report = detection_report(det, ds.labels)
        assert "flagged window" in report
        assert "per-domain window similarity" in report
        assert "ground truth" in report
        for domain in det.similarity:
            assert domain in report

    def test_report_without_labels(self, detection):
        det, _ = detection
        report = detection_report(det)
        assert "ground truth" not in report
        assert "predictions" in report
