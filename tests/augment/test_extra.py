"""Tests for the opt-in scale/shift augmentations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.augment import (
    ALL_AUGMENTATIONS,
    AUGMENTATIONS,
    augment_window,
    scale_segment,
    shift_segment,
)


@pytest.fixture
def window():
    t = np.arange(160)
    return np.sin(2 * np.pi * t / 40) + 0.5


class TestScaleSegment:
    def test_only_segment_changes(self, window, rng):
        out = scale_segment(window, 40, 60, rng)
        assert np.array_equal(out[:40], window[:40])
        assert np.array_equal(out[100:], window[100:])
        assert not np.array_equal(out[40:100], window[40:100])

    def test_level_preserved(self, window, rng):
        out = scale_segment(window, 40, 60, rng)
        assert out[40:100].mean() == pytest.approx(window[40:100].mean(), abs=1e-9)

    def test_amplitude_scaled(self, window):
        out = scale_segment(window, 40, 80, np.random.default_rng(0), scale_range=(2.0, 2.0))
        assert out[40:120].std() == pytest.approx(2.0 * window[40:120].std(), rel=1e-9)

    def test_out_of_range(self, window, rng):
        with pytest.raises(ValueError):
            scale_segment(window, 150, 20, rng)


class TestShiftSegment:
    def test_only_segment_changes(self, window, rng):
        out = shift_segment(window, 40, 60, rng)
        assert np.array_equal(out[:40], window[:40])
        assert np.array_equal(out[100:], window[100:])
        assert not np.array_equal(out[40:100], window[40:100])

    def test_values_preserved(self, window, rng):
        """A roll permutes values — the distribution is untouched."""
        out = shift_segment(window, 40, 60, rng)
        assert np.allclose(np.sort(out[40:100]), np.sort(window[40:100]))

    def test_out_of_range(self, window, rng):
        with pytest.raises(ValueError):
            shift_segment(window, -5, 20, rng)


class TestPipelineIntegration:
    def test_default_pipeline_unchanged(self):
        """The paper's default pair stays exactly jitter+warp."""
        assert AUGMENTATIONS == ("jitter", "warp")

    def test_all_augmentations_superset(self):
        assert set(AUGMENTATIONS) < set(ALL_AUGMENTATIONS)

    def test_augment_window_accepts_extras(self, window):
        for seed in range(8):
            out = augment_window(
                window, np.random.default_rng(seed), methods=ALL_AUGMENTATIONS
            )
            assert out.shape == window.shape
            assert not np.array_equal(out, window)

    @pytest.mark.parametrize("method", ["scale", "shift"])
    def test_single_method_selection(self, window, rng, method):
        out = augment_window(window, rng, methods=(method,))
        assert not np.array_equal(out, window)
