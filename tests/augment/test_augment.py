"""Augmentation pipeline tests (Eq. 3-4, Fig. 5)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.augment import augment_batch, augment_window, jitter_segment, warp_segment


@pytest.fixture
def window():
    t = np.arange(200)
    return np.sin(2 * np.pi * t / 40) + 0.3 * np.sin(2 * np.pi * t / 8)


class TestJitter:
    def test_only_segment_changes(self, window, rng):
        out = jitter_segment(window, 50, 40, rng)
        assert np.array_equal(out[:50], window[:50])
        assert np.array_equal(out[90:], window[90:])
        assert not np.array_equal(out[50:90], window[50:90])

    def test_noise_scales_with_strength(self, window):
        weak = jitter_segment(window, 50, 100, np.random.default_rng(1), strength=0.1)
        strong = jitter_segment(window, 50, 100, np.random.default_rng(1), strength=2.0)
        assert np.abs(strong - window).sum() > np.abs(weak - window).sum()

    def test_out_of_range_raises(self, window, rng):
        with pytest.raises(ValueError):
            jitter_segment(window, 190, 20, rng)

    def test_input_untouched(self, window, rng):
        copy = window.copy()
        jitter_segment(window, 0, 50, rng)
        assert np.array_equal(window, copy)


class TestWarp:
    def test_only_segment_changes(self, window, rng):
        out = warp_segment(window, 60, 50, rng)
        assert np.array_equal(out[:60], window[:60])
        assert np.array_equal(out[110:], window[110:])
        assert not np.array_equal(out[60:110], window[60:110])

    def test_warped_segment_is_smoother(self, window, rng):
        """Warping low-passes the segment: high-frequency power drops."""
        out = warp_segment(window, 40, 120, rng, cutoff_range=(0.05, 0.06))

        def hf_power(x):
            # Power at and above the period-8 component's band.
            spectrum = np.abs(np.fft.rfft(x - x.mean()))
            return spectrum[len(spectrum) // 4 :].sum()

        assert hf_power(out[40:160]) < 0.2 * hf_power(window[40:160])

    def test_out_of_range_raises(self, window, rng):
        with pytest.raises(ValueError):
            warp_segment(window, -1, 20, rng)


class TestAugmentWindow:
    def test_changes_some_segment_only(self, window, rng):
        out = augment_window(window, rng)
        changed = np.flatnonzero(out != window)
        assert len(changed) > 0
        span = changed[-1] - changed[0] + 1
        assert span <= len(window) * 0.5 + 1

    def test_respects_fraction_bounds(self, window):
        for seed in range(10):
            out = augment_window(
                window, np.random.default_rng(seed), min_fraction=0.2, max_fraction=0.3
            )
            changed = np.flatnonzero(out != window)
            # jitter changes every point in its span; warp may leave a few
            # nearly-identical points, so check the span not the count.
            span = changed[-1] - changed[0] + 1
            assert span <= int(len(window) * 0.3) + 1

    def test_unknown_method_raises(self, window, rng):
        with pytest.raises(KeyError):
            augment_window(window, rng, methods=("mystery",))

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_property_always_differs_and_same_shape(self, seed):
        t = np.arange(120)
        window = np.sin(2 * np.pi * t / 30)
        out = augment_window(window, np.random.default_rng(seed))
        assert out.shape == window.shape
        assert np.all(np.isfinite(out))
        assert not np.array_equal(out, window)


class TestAugmentBatch:
    def test_shape_preserved(self, rng):
        windows = rng.normal(size=(6, 100)) + np.sin(np.arange(100) / 5)
        out = augment_batch(windows, rng)
        assert out.shape == windows.shape

    def test_rows_augmented_independently(self, rng):
        windows = np.tile(np.sin(np.arange(150) / 10), (4, 1))
        out = augment_batch(windows, rng)
        # Identical inputs must yield different augmentations per row.
        assert not np.array_equal(out[0], out[1])
