"""Adapter round-trips between the canonical contracts."""

from __future__ import annotations

import numpy as np
import pytest

import repro.eval.runner as runner
import repro.pipeline as pipeline_pkg
import repro.serve.registry as registry_mod
from repro.baselines import SpectralResidualDetector
from repro.core import TriAD, TriADConfig
from repro.pipeline import (
    Detector,
    ScoringDetector,
    WindowScorer,
    WindowScorerDetector,
    from_baseline,
    from_triad,
    from_window_scorer,
)


@pytest.fixture(scope="module")
def fitted_triad() -> TriAD:
    t = np.arange(600)
    series = np.sin(2 * np.pi * t / 32) + 0.03 * np.cos(2 * np.pi * t / 7)
    config = TriADConfig(
        epochs=1, depth=1, hidden_dim=4, max_window=64, seed=0
    )
    return TriAD(config).fit(series)


class TestContractReexports:
    def test_eval_contracts_are_the_pipeline_contracts(self):
        assert runner.Detector is Detector
        assert runner.ScoringDetector is ScoringDetector

    def test_serve_scorers_are_the_pipeline_adapters(self):
        assert registry_mod.WindowScorer is WindowScorer
        assert registry_mod.TriADWindowScorer is pipeline_pkg.TriADWindowScorer

    def test_triad_satisfies_detector_protocol(self, fitted_triad):
        assert isinstance(fitted_triad, Detector)

    def test_baseline_satisfies_scoring_detector_protocol(self):
        detector = SpectralResidualDetector()
        assert isinstance(detector, Detector)
        assert isinstance(detector, ScoringDetector)


class TestFromTriad:
    def test_scorer_flags_the_deviant_window(self, fitted_triad):
        scorer = from_triad(fitted_triad)
        length = scorer.window_length
        t = np.arange(length)
        normal = np.sin(2 * np.pi * t / 32)
        spiked = normal.copy()
        spiked[length // 2] += 6.0
        scores = scorer.score_windows(np.stack([normal, spiked]), ())
        assert scores.shape == (2,)
        assert scores[1] > scores[0]

    def test_calibration_scores_are_cached_and_finite(self, fitted_triad):
        scorer = from_triad(fitted_triad)
        first = scorer.calibration_scores(scorer.window_length, 16)
        assert np.all(np.isfinite(first))
        assert scorer.calibration_scores(scorer.window_length, 16) is first

    def test_rejects_unfit_detector(self):
        with pytest.raises(RuntimeError):
            from_triad(TriAD())

    def test_rejects_wrong_window_length(self, fitted_triad):
        scorer = from_triad(fitted_triad)
        with pytest.raises(ValueError):
            scorer.score_windows(np.zeros((1, scorer.window_length + 1)), ())

    def test_train_windows_is_public_and_matches_plan(self, fitted_triad):
        windows, starts = fitted_triad.train_windows()
        assert windows.shape[1] == fitted_triad.plan.length
        assert len(windows) == len(starts)
        with pytest.raises(RuntimeError):
            TriAD().train_windows()


class TestFromBaseline:
    def test_window_score_is_the_peak_point_score(self):
        train = np.sin(2 * np.pi * np.arange(400) / 25)
        detector = SpectralResidualDetector().fit(train)
        scorer = from_baseline(detector)
        assert isinstance(scorer, WindowScorer)
        quiet = np.sin(2 * np.pi * np.arange(64) / 25)
        loud = quiet.copy()
        loud[30] += 5.0
        windows = np.stack([quiet, loud])
        scores = scorer.score_windows(windows, ())
        expected = [float(detector.score_series(w).max()) for w in windows]
        assert scores.tolist() == pytest.approx(expected)

    def test_calibration_uses_public_train_series(self):
        train = np.sin(2 * np.pi * np.arange(400) / 25)
        detector = SpectralResidualDetector().fit(train)
        np.testing.assert_array_equal(detector.train_series, train)
        scorer = from_baseline(detector)
        calibration = scorer.calibration_scores(64, 16)
        assert calibration is not None
        assert np.all(np.isfinite(calibration))
        # Too-short training data means no calibration, not a crash.
        assert scorer.calibration_scores(1000, 16) is None

    def test_unfit_baseline_has_no_calibration(self):
        scorer = from_baseline(SpectralResidualDetector())
        assert scorer.calibration_scores(64, 16) is None


class _RecordingScorer(WindowScorer):
    """Max-abs scorer that records the stream ids it was shown."""

    name = "recording"

    def __init__(self):
        self.stream_ids: list[str] = []

    def score_windows(self, windows, batch):
        self.stream_ids.extend(ready.stream_id for ready in batch)
        return np.abs(np.atleast_2d(windows)).max(axis=1)


class TestFromWindowScorer:
    def test_offline_detector_finds_the_spike(self):
        train = np.sin(2 * np.pi * np.arange(400) / 25)
        test = np.sin(2 * np.pi * np.arange(300) / 25)
        test[150:153] += 8.0
        detector = from_window_scorer(_RecordingScorer(), 50, 10)
        detector.fit(train)
        assert isinstance(detector, WindowScorerDetector)
        assert isinstance(detector, Detector)
        assert isinstance(detector, ScoringDetector)
        predictions = detector.predict(test)
        assert predictions.shape == test.shape
        flagged = np.flatnonzero(predictions)
        assert len(flagged)
        assert 150 in flagged or abs(flagged - 150).min() <= 50

    def test_scores_spread_back_to_every_point(self):
        detector = from_window_scorer(_RecordingScorer(), 50, 10)
        scores = detector.score_series(np.ones(200))
        assert scores.shape == (200,)
        assert np.all(np.isfinite(scores))

    def test_each_replay_gets_a_fresh_stream_id(self):
        scorer = _RecordingScorer()
        detector = from_window_scorer(scorer, 50, 10)
        detector.score_series(np.ones(120))
        first = set(scorer.stream_ids)
        scorer.stream_ids.clear()
        detector.score_series(np.ones(120))
        second = set(scorer.stream_ids)
        assert len(first) == len(second) == 1
        assert first != second

    def test_offline_batch_metadata_matches_ready_window(self):
        seen = []

        class Probe(WindowScorer):
            name = "probe"

            def score_windows(self, windows, batch):
                seen.extend(batch)
                return np.zeros(len(np.atleast_2d(windows)))

        detector = from_window_scorer(Probe(), 50, 10)
        detector.score_series(np.arange(120, dtype=np.float64))
        assert seen
        ready = seen[0]
        assert ready.end_index - ready.start_index == len(ready.window)
        assert ready.mean == pytest.approx(float(ready.window.mean()))
        assert ready.std == pytest.approx(float(ready.window.std()))

    def test_predict_requires_fit(self):
        detector = from_window_scorer(_RecordingScorer(), 50, 10)
        with pytest.raises(RuntimeError):
            detector.predict(np.ones(120))
