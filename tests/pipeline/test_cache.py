"""Content-keyed cache semantics: keys, LRU bounds, stats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pipeline import CacheStats, FeatureCache, content_key


class TestContentKey:
    def test_equal_arrays_share_a_key(self):
        a = np.arange(64, dtype=np.float64)
        b = np.arange(64, dtype=np.float64)
        assert a is not b
        assert content_key("windows", a, 16) == content_key("windows", b, 16)

    def test_content_changes_the_key(self):
        a = np.arange(64, dtype=np.float64)
        b = a.copy()
        b[-1] += 1e-12
        assert content_key(a) != content_key(b)

    def test_dtype_and_shape_are_part_of_the_key(self):
        a = np.zeros(8, dtype=np.float64)
        assert content_key(a) != content_key(a.astype(np.float32))
        assert content_key(a) != content_key(a.reshape(2, 4))

    def test_scalar_parts_disambiguate(self):
        a = np.arange(32, dtype=np.float64)
        assert content_key("features", a, 8) != content_key("features", a, 9)
        assert content_key("features", a, 8) != content_key("windows", a, 8)

    def test_non_contiguous_array_hashes_like_its_copy(self):
        base = np.arange(64, dtype=np.float64).reshape(8, 8)
        view = base[:, ::2]
        assert content_key(view) == content_key(np.ascontiguousarray(view))

    def test_int_and_string_parts_do_not_collide(self):
        # repr alone would make 1 and "1" collide; type names disambiguate.
        assert content_key(1) != content_key("1")


class TestFeatureCache:
    def test_round_trip_and_stats(self):
        cache = FeatureCache(max_entries=4)
        assert cache.get("k") is None
        cache.put("k", 42)
        assert cache.get("k") == 42
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_lru_evicts_least_recently_used(self):
        cache = FeatureCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_put_existing_key_updates_without_evicting(self):
        cache = FeatureCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert len(cache) == 2
        assert cache.get("a") == 10
        assert cache.stats.evictions == 0

    def test_clear_drops_entries_but_keeps_stats(self):
        cache = FeatureCache()
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") is None
        assert cache.stats.hits == 1

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            FeatureCache(max_entries=0)

    def test_stats_start_empty(self):
        stats = CacheStats()
        assert stats.hit_rate == 0.0
