"""FeaturePipeline correctness: memoized results must be bit-identical
to the uncached path, and cached arrays must be tamper-proof."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TriADConfig
from repro.pipeline import (
    DOMAINS,
    FeatureCache,
    FeaturePipeline,
    extract_all_domains,
)
from repro.signal.decompose import residual_component, residual_components
from repro.signal.windows import plan_windows, sliding_windows


@pytest.fixture
def pipeline() -> FeaturePipeline:
    return FeaturePipeline(cache=FeatureCache(max_entries=16))


@pytest.fixture
def series(rng) -> np.ndarray:
    t = np.arange(600)
    return np.sin(2 * np.pi * t / 32) + 0.05 * rng.standard_normal(len(t))


class TestBitIdentity:
    def test_cached_features_equal_uncached(self, pipeline, series):
        windows, _ = pipeline.windows(series, 80, 20)
        cached = pipeline.features(windows, 32)
        uncached = pipeline.extract(windows, 32)
        assert set(cached) == set(DOMAINS)
        for domain in DOMAINS:
            np.testing.assert_array_equal(cached[domain], uncached[domain])
            assert cached[domain].tobytes() == uncached[domain].tobytes()

    def test_memoize_off_is_same_code_path(self, series):
        on = FeaturePipeline(cache=FeatureCache())
        off = FeaturePipeline(memoize=False)
        w_on, s_on = on.windows(series, 80, 20)
        w_off, s_off = off.windows(series, 80, 20)
        np.testing.assert_array_equal(w_on, w_off)
        np.testing.assert_array_equal(s_on, s_off)
        f_on = on.features(w_on, 32)
        f_off = off.features(w_off, 32)
        for domain in DOMAINS:
            assert f_on[domain].tobytes() == f_off[domain].tobytes()
        assert len(off.cache) == 0  # memoize=False never stores

    def test_sliced_features_equal_per_batch_extraction(self, pipeline, series):
        """The trainer's contract: slicing rows out of a full-set
        extraction is exactly per-batch extraction (row independence)."""
        windows, _ = pipeline.windows(series, 80, 20)
        full = pipeline.features(windows, 32)
        idx = np.array([7, 0, 3, 11])
        batch = pipeline.extract(np.asarray(windows)[idx], 32)
        for domain in DOMAINS:
            np.testing.assert_array_equal(full[domain][idx], batch[domain])
            assert full[domain][idx].tobytes() == batch[domain].tobytes()

    def test_batched_residual_equals_per_window_loop(self, rng):
        cases = [
            (rng.standard_normal((5, 120)), 32),  # ordinary
            (rng.standard_normal((3, 40)), 64),   # period > length
            (rng.standard_normal((4, 50)), 1),    # degenerate period
            (np.ones((2, 64)), 16),               # constant rows -> zeros
            (rng.standard_normal((1, 33)), 7),    # single window, ragged phase
        ]
        for windows, period in cases:
            batched = residual_components(windows, period)
            looped = np.stack(
                [residual_component(w, period) for w in windows]
            )
            np.testing.assert_array_equal(batched, looped)
            assert batched.tobytes() == looped.tobytes()


class TestMemoization:
    def test_second_call_is_a_hit_returning_the_same_object(
        self, pipeline, series
    ):
        first = pipeline.windows(series, 80, 20)
        second = pipeline.windows(series, 80, 20)
        assert second[0] is first[0]
        assert pipeline.cache.stats.hits == 1

    def test_value_identical_copies_hit(self, pipeline, series):
        pipeline.windows(series, 80, 20)
        pipeline.windows(series.copy(), 80, 20)
        assert pipeline.cache.stats.hits == 1

    def test_different_parameters_miss(self, pipeline, series):
        pipeline.windows(series, 80, 20)
        pipeline.windows(series, 80, 21)
        assert pipeline.cache.stats.hits == 0
        assert pipeline.cache.stats.misses == 2

    def test_cached_arrays_are_read_only(self, pipeline, series):
        windows, starts = pipeline.windows(series, 80, 20)
        with pytest.raises(ValueError):
            windows[0, 0] = 99.0
        with pytest.raises(ValueError):
            starts[0] = 99
        features = pipeline.features(windows, 32)
        for array in features.values():
            with pytest.raises(ValueError):
                array[0] = 0.0

    def test_extract_bypasses_the_cache(self, pipeline, series):
        windows, _ = pipeline.windows(series, 80, 20)
        before = len(pipeline.cache)
        pipeline.extract(np.asarray(windows), 32)
        assert len(pipeline.cache) == before


class TestPlanning:
    def test_plan_matches_plan_windows(self, pipeline, series):
        assert pipeline.plan(series, max_length=128) == plan_windows(
            series, max_length=128
        )

    def test_plan_for_reads_config_fields(self, pipeline, series):
        config = TriADConfig(max_window=96, min_window=24)
        plan = pipeline.plan_for(series, config)
        assert plan == plan_windows(
            series,
            periods_per_window=config.periods_per_window,
            stride_fraction=config.stride_fraction,
            min_length=24,
            max_length=96,
        )
        assert pipeline.plan_for(series, config) is plan  # memo hit

    def test_windows_match_sliding_windows(self, pipeline, series):
        got_w, got_s = pipeline.windows(series, 64, 16)
        want_w, want_s = sliding_windows(series, 64, 16)
        np.testing.assert_array_equal(got_w, want_w)
        np.testing.assert_array_equal(got_s, want_s)

    def test_series_features_bundle(self, pipeline, series):
        plan = pipeline.plan(series, max_length=128)
        bundle = pipeline.series_features(series, plan)
        assert bundle.plan == plan
        assert len(bundle.windows) == len(bundle.starts)
        for domain in DOMAINS:
            assert len(bundle.features[domain]) == len(bundle.windows)


def test_core_features_shim_reexports_pipeline():
    """core.features stays importable but is the pipeline's extraction."""
    from repro.core import features as core_features
    from repro.pipeline import features as pipeline_features

    assert core_features.extract_all_domains is pipeline_features.extract_all_domains
    assert core_features.DOMAINS is pipeline_features.DOMAINS
    assert extract_all_domains is pipeline_features.extract_all_domains
