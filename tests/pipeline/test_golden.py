"""Refactor-guard goldens.

``tests/golden/pipeline_golden.json`` was captured at the pre-pipeline
commit by running detect / run_on_archive / serve replay on the spike
dataset.  These tests re-run the identical procedure on the current
code: the memoized pipeline must not move a single prediction, loss,
metric, or alert.  Regenerate the file only for a *deliberate*
behavior change (re-run the capture block in its docstring).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro import TriAD, TriADConfig
from repro.eval import run_on_archive
from repro.serve import build_engine, build_registry, replay_dataset

GOLDEN_PATH = Path(__file__).parent.parent / "golden" / "pipeline_golden.json"


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def config(golden) -> TriADConfig:
    return TriADConfig(**golden["config"])


@pytest.fixture(scope="module")
def fitted(spike_dataset_module, config) -> TriAD:
    return TriAD(config).fit(spike_dataset_module.train)


@pytest.fixture(scope="module")
def spike_dataset_module():
    from repro.data import DatasetSpec, make_dataset

    spec = DatasetSpec(
        name="spike_ds",
        family="sine",
        period=32,
        train_length=800,
        test_length=1000,
        anomaly_type="point",
        anomaly_start=500,
        anomaly_length=5,
        noise_level=0.03,
        seed=5,
    )
    return make_dataset(spec)


def test_detect_matches_golden(fitted, spike_dataset_module, golden):
    detection = fitted.detect(spike_dataset_module.test)
    want = golden["detect"]
    assert np.flatnonzero(detection.predictions).tolist() == want[
        "prediction_indices"
    ]
    assert list(detection.window) == want["window"]
    assert list(detection.search_region) == want["search_region"]
    assert {
        k: list(v) for k, v in sorted(detection.candidate_windows.items())
    } == want["candidate_windows"]
    np.testing.assert_allclose(
        fitted.train_losses, want["train_losses"], rtol=0, atol=1e-9
    )


def test_archive_sweep_matches_golden(spike_dataset_module, config, golden):
    agg = run_on_archive(
        "triad",
        lambda s: TriAD(config.with_overrides(seed=s)),
        [spike_dataset_module],
        seeds=(0, 1),
    )
    want = golden["run_on_archive"]
    assert agg.coverage == want["coverage"]
    for metric, value in want["mean"].items():
        assert agg.mean[metric] == pytest.approx(value, abs=1e-9), metric
    for metric, value in want["std"].items():
        assert agg.std[metric] == pytest.approx(value, abs=1e-9), metric


def test_serve_replay_matches_golden(fitted, spike_dataset_module, golden):
    registry = build_registry(fitted, train_series=spike_dataset_module.train)
    engine = build_engine(
        registry,
        window_length=fitted.plan.length,
        stride=fitted.plan.stride,
        expected_period=fitted.plan.period,
    )
    report = replay_dataset(spike_dataset_module, engine, streams=2)
    want = golden["serve_replay"]
    assert report.detected is want["detected"]
    assert len(report.alerts) == want["alerts"]
    assert sorted(report.engine_report.get("models_used", [])) == want[
        "models_used"
    ]
    assert report.engine_report.get("windows_scored") == want["windows_scored"]
    assert [
        [a.stream_id, a.index, a.model] for a in report.alerts[:16]
    ] == [list(key) for key in want["alert_keys"]]
    np.testing.assert_allclose(
        [a.score for a in report.alerts[:16]],
        want["alert_scores"],
        rtol=0,
        atol=1e-9,
    )
