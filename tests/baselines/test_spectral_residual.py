"""Tests for the Spectral Residual baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import SpectralResidualDetector
from repro.baselines.spectral_residual import spectral_residual_saliency


class TestSaliency:
    def test_output_shape_and_finite(self, rng):
        x = rng.normal(size=500)
        saliency = spectral_residual_saliency(x)
        assert saliency.shape == x.shape
        assert np.all(np.isfinite(saliency))
        assert np.all(saliency >= 0)

    def test_spike_is_salient(self, sine_wave):
        x = sine_wave.copy()
        x[500] += 5.0
        saliency = spectral_residual_saliency(x)
        assert np.argmax(saliency) in range(495, 506)

    def test_constant_signal_no_crash(self):
        saliency = spectral_residual_saliency(np.zeros(100))
        assert np.all(np.isfinite(saliency))


class TestDetector:
    def test_detects_spike(self, spike_dataset):
        detector = SpectralResidualDetector().fit(spike_dataset.train)
        predictions = detector.detect(spike_dataset.test)
        start, end = spike_dataset.anomaly_interval
        assert predictions[max(start - 2, 0) : end + 2].any()

    def test_scores_shape(self, small_dataset):
        detector = SpectralResidualDetector().fit(small_dataset.train)
        scores = detector.score_series(small_dataset.test)
        assert scores.shape == small_dataset.test.shape

    def test_struggles_on_subtle_anomaly(self, small_dataset):
        """Like the one-liner, SR misses shape-only anomalies — this is
        the behavior that motivates learned detectors."""
        detector = SpectralResidualDetector().fit(small_dataset.train)
        predictions = detector.detect(small_dataset.test)
        start, end = small_dataset.anomaly_interval
        assert predictions[start:end].mean() < 0.5
