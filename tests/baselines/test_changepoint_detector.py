"""Tests for the change-point baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import ChangePointDetector
from repro.data import DatasetSpec, make_dataset


@pytest.fixture
def level_shift_dataset():
    return make_dataset(
        DatasetSpec(
            name="cp_ds",
            family="sine",
            period=40,
            train_length=800,
            test_length=1200,
            anomaly_type="level_shift",
            anomaly_start=700,
            anomaly_length=120,
            noise_level=0.05,
            seed=8,
        )
    )


class TestChangePointDetector:
    def test_scores_peak_at_shift_boundaries(self, level_shift_dataset):
        ds = level_shift_dataset
        detector = ChangePointDetector().fit(ds.train)
        scores = detector.score_series(ds.test)
        start, end = ds.anomaly_interval
        near = scores[max(start - 30, 0) : end + 30].max()
        assert near > 0
        assert near >= scores.max() * 0.99

    def test_detects_level_shift(self, level_shift_dataset):
        ds = level_shift_dataset
        detector = ChangePointDetector().fit(ds.train)
        predictions = detector.detect(ds.test)
        start, end = ds.anomaly_interval
        window = predictions[max(start - 30, 0) : end + 30]
        assert window.any()

    def test_blind_to_contextual_anomaly(self, small_dataset):
        """Shape-only anomalies produce no mean shift to find."""
        detector = ChangePointDetector().fit(small_dataset.train)
        predictions = detector.detect(small_dataset.test)
        start, end = small_dataset.anomaly_interval
        assert predictions[start:end].mean() < 0.5

    def test_contract(self, small_dataset):
        detector = ChangePointDetector().fit(small_dataset.train)
        scores = detector.score_series(small_dataset.test)
        assert scores.shape == small_dataset.test.shape
        assert np.all(scores >= 0)
