"""Baseline detector tests: interface contract plus model-specific behavior."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    AnomalyTransformerDetector,
    DCdetectorDetector,
    LSTMAEDetector,
    MTGFlowDetector,
    OneLinerDetector,
    RandomScoreDetector,
    TS2VecDetector,
    USADDetector,
    calibrate_threshold,
    spread_window_scores,
)

FAST_DETECTORS = [
    pytest.param(lambda: LSTMAEDetector(trained=False, seed=0), id="lstm-ae-random"),
    pytest.param(lambda: LSTMAEDetector(trained=True, epochs=1, seed=0), id="lstm-ae-trained"),
    pytest.param(lambda: USADDetector(epochs=2, seed=0), id="usad"),
    pytest.param(lambda: TS2VecDetector(epochs=1, seed=0), id="ts2vec"),
    pytest.param(lambda: AnomalyTransformerDetector(epochs=1, seed=0), id="anomaly-transformer"),
    pytest.param(lambda: MTGFlowDetector(epochs=2, seed=0), id="mtgflow"),
    pytest.param(lambda: DCdetectorDetector(epochs=1, seed=0), id="dcdetector"),
    pytest.param(lambda: RandomScoreDetector(seed=0), id="random"),
    pytest.param(lambda: OneLinerDetector(), id="one-liner"),
]


class TestDetectorContract:
    @pytest.mark.parametrize("factory", FAST_DETECTORS)
    def test_fit_score_detect(self, factory, small_dataset):
        detector = factory()
        assert detector.fit(small_dataset.train) is detector
        scores = detector.score_series(small_dataset.test)
        assert scores.shape == small_dataset.test.shape
        assert np.all(np.isfinite(scores))
        predictions = detector.detect(small_dataset.test)
        assert predictions.shape == small_dataset.labels.shape
        assert set(np.unique(predictions)) <= {0, 1}
        assert predictions.any()  # never an empty prediction

    @pytest.mark.parametrize("factory", FAST_DETECTORS)
    def test_detect_before_fit_raises(self, factory, small_dataset):
        with pytest.raises(RuntimeError):
            factory().detect(small_dataset.test)

    def test_predict_is_detect(self, small_dataset):
        detector = OneLinerDetector().fit(small_dataset.train)
        assert np.array_equal(
            detector.predict(small_dataset.test), detector.detect(small_dataset.test)
        )


class TestHelpers:
    def test_spread_window_scores_averages(self):
        scores = np.array([1.0, 3.0])
        starts = np.array([0, 2])
        out = spread_window_scores(scores, starts, length=4, total=6)
        assert out[0] == 1.0
        assert out[2] == 2.0  # covered by both windows
        assert out[5] == 3.0

    def test_calibrate_threshold(self):
        scores = np.array([0.0, 2.0])  # mean 1, std 1
        assert calibrate_threshold(scores, sigma=2.0) == pytest.approx(3.0)


class TestLSTMAE:
    def test_training_reduces_reconstruction_error(self, small_dataset):
        random = LSTMAEDetector(trained=False, seed=0).fit(small_dataset.train)
        trained = LSTMAEDetector(trained=True, epochs=3, seed=0).fit(small_dataset.train)
        err_random = random.score_series(small_dataset.train).mean()
        err_trained = trained.score_series(small_dataset.train).mean()
        assert err_trained < err_random

    def test_reconstruction_shape(self, small_dataset):
        detector = LSTMAEDetector(trained=False, seed=0).fit(small_dataset.train)
        recon = detector.reconstruction(small_dataset.test)
        assert recon.shape == small_dataset.test.shape

    def test_name_reflects_variant(self):
        assert "Random" in LSTMAEDetector(trained=False).name
        assert "Trained" in LSTMAEDetector(trained=True).name


class TestOneLiner:
    def test_nails_spike_anomaly(self, spike_dataset):
        """Amplitude spikes are exactly what the one-liner catches."""
        detector = OneLinerDetector().fit(spike_dataset.train)
        predictions = detector.detect(spike_dataset.test)
        start, end = spike_dataset.anomaly_interval
        assert predictions[start:end].any()

    def test_misses_subtle_anomaly(self, small_dataset):
        """Contextual (shape) anomalies evade the amplitude threshold."""
        detector = OneLinerDetector().fit(small_dataset.train)
        predictions = detector.detect(small_dataset.test)
        start, end = small_dataset.anomaly_interval
        hit_fraction = predictions[start:end].mean()
        assert hit_fraction < 0.5


class TestMTGFlow:
    def test_likelihood_lower_on_anomaly(self, spike_dataset):
        detector = MTGFlowDetector(epochs=4, seed=0).fit(spike_dataset.train)
        scores = detector.score_series(spike_dataset.test)
        start, end = spike_dataset.anomaly_interval
        inside = scores[max(start - 16, 0) : min(end + 16, len(scores))].max()
        outside = np.median(scores)
        assert inside > outside


class TestDCdetector:
    def test_window_patch_validation(self):
        with pytest.raises(ValueError):
            DCdetectorDetector(window=30, patch=8)


class TestRandomDetector:
    def test_deterministic_per_series(self, small_dataset):
        detector = RandomScoreDetector(seed=1).fit(small_dataset.train)
        a = detector.score_series(small_dataset.test)
        b = detector.score_series(small_dataset.test)
        assert np.array_equal(a, b)

    def test_different_series_different_scores(self, small_dataset):
        detector = RandomScoreDetector(seed=1).fit(small_dataset.train)
        a = detector.score_series(small_dataset.test)
        b = detector.score_series(small_dataset.test + 1.0)
        assert not np.array_equal(a, b)
