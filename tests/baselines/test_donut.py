"""Tests for the Donut-lite VAE baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.baselines import DonutDetector, WindowVAE


@pytest.fixture
def vae():
    return WindowVAE(window=16, latent=3, hidden=12, rng=np.random.default_rng(0))


class TestWindowVAE:
    def test_shapes(self, vae, rng):
        x = nn.Tensor(rng.normal(size=(5, 16)))
        reconstruction, mu, logvar = vae(x)
        assert reconstruction.shape == (5, 16)
        assert mu.shape == (5, 3)
        assert logvar.shape == (5, 3)

    def test_elbo_scalar_and_grads(self, vae, rng):
        x = nn.Tensor(rng.normal(size=(4, 16)))
        loss = vae.elbo_loss(x)
        assert loss.data.size == 1
        loss.backward()
        for name, param in vae.named_parameters():
            assert param.grad is not None, name

    def test_reparameterization_is_stochastic(self, vae, rng):
        mu = nn.Tensor(rng.normal(size=(2, 3)))
        logvar = nn.Tensor(np.zeros((2, 3)))
        z1 = vae.reparameterize(mu, logvar)
        z2 = vae.reparameterize(mu, logvar)
        assert not np.allclose(z1.data, z2.data)

    def test_zero_variance_is_deterministic(self, vae, rng):
        mu = nn.Tensor(rng.normal(size=(2, 3)))
        logvar = nn.Tensor(np.full((2, 3), -60.0))  # sigma ~ 0
        z = vae.reparameterize(mu, logvar)
        assert np.allclose(z.data, mu.data, atol=1e-8)

    def test_training_reduces_elbo(self, rng):
        vae = WindowVAE(window=16, latent=3, hidden=16, rng=np.random.default_rng(1))
        t = np.arange(16)
        data = np.stack([np.sin(2 * np.pi * (t + p) / 16) for p in range(32)])
        data += 0.05 * rng.standard_normal(data.shape)
        optimizer = nn.Adam(vae.parameters(), lr=5e-3)
        first = last = None
        for _ in range(60):
            loss = vae.elbo_loss(nn.Tensor(data), beta=0.1)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            first = first if first is not None else loss.item()
            last = loss.item()
        assert last < first * 0.7


class TestDonutDetector:
    def test_contract(self, small_dataset):
        detector = DonutDetector(epochs=2, seed=0).fit(small_dataset.train)
        scores = detector.score_series(small_dataset.test)
        assert scores.shape == small_dataset.test.shape
        predictions = detector.detect(small_dataset.test)
        assert predictions.any()

    def test_detects_spike(self, spike_dataset):
        detector = DonutDetector(epochs=4, seed=0).fit(spike_dataset.train)
        scores = detector.score_series(spike_dataset.test)
        start, end = spike_dataset.anomaly_interval
        near = scores[max(start - 16, 0) : end + 16].max()
        assert near > np.median(scores) * 2

    def test_unfitted_raises(self, small_dataset):
        with pytest.raises(RuntimeError):
            DonutDetector().score_series(small_dataset.test)
