"""Tests for the DeepAnT-lite forecasting baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import DeepAnTDetector


class TestDeepAnT:
    def test_contract(self, small_dataset):
        detector = DeepAnTDetector(epochs=2, seed=0).fit(small_dataset.train)
        scores = detector.score_series(small_dataset.test)
        assert scores.shape == small_dataset.test.shape
        assert np.all(np.isfinite(scores))
        predictions = detector.detect(small_dataset.test)
        assert predictions.any()

    def test_learns_to_forecast_periodic_signal(self, noisy_wave):
        detector = DeepAnTDetector(epochs=4, seed=0).fit(noisy_wave)
        scores = detector.score_series(noisy_wave)
        # Forecast error on in-distribution data stays near the noise floor.
        assert np.median(scores) < 0.6

    def test_scores_spike_anomaly_higher(self, spike_dataset):
        detector = DeepAnTDetector(epochs=4, seed=0).fit(spike_dataset.train)
        scores = detector.score_series(spike_dataset.test)
        start, end = spike_dataset.anomaly_interval
        near = scores[max(start - 4, 0) : end + 4].max()
        assert near > 4 * np.median(scores)

    def test_warmup_prefix_neutral(self, small_dataset):
        detector = DeepAnTDetector(window=32, epochs=1, seed=0).fit(small_dataset.train)
        scores = detector.score_series(small_dataset.test)
        # The first `window` points carry the median score, not zero.
        assert scores[0] == pytest.approx(np.median(scores[32:]), rel=1e-9)

    def test_unfitted_raises(self, small_dataset):
        with pytest.raises(RuntimeError):
            DeepAnTDetector().score_series(small_dataset.test)
