"""Setup shim for legacy editable installs (offline environments lack
the `wheel` package that PEP 660 editable installs require)."""
from setuptools import setup

setup()
