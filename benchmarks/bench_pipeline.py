"""Feature-pipeline benchmark (``BENCH_pipeline.json``).

The claim backing the ``repro.pipeline`` refactor: memoizing per-domain
feature extraction (once per window set, sliced per batch, batched
residual decomposition) speeds up the trainer's epoch loop by >= 1.5x
on an extraction-heavy configuration *without moving a single loss
value* (legacy vs memoized losses must agree within 1e-9; in practice
they are bit-equal).

The measurement itself lives in ``scripts/bench_pipeline.py`` — run
that to (re)generate ``BENCH_pipeline.json`` at the repo root — and
this module re-runs it under the ``bench`` marker so
``pytest -m bench`` covers the gate too::

    PYTHONPATH=src python -m pytest benchmarks/bench_pipeline.py -m bench

Tier-1 (`pytest -x -q`) never collects it.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.bench

REPO_ROOT = Path(__file__).resolve().parents[1]
SCRIPT = REPO_ROOT / "scripts" / "bench_pipeline.py"


def _load_bench():
    spec = importlib.util.spec_from_file_location("bench_pipeline_script", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_pipeline_script", module)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def report():
    return _load_bench().run_bench(repeats=3)


def test_losses_are_identical(report):
    assert report["loss_max_abs_diff"] <= 1e-9


def test_memoized_epoch_loop_is_faster(report):
    assert report["speedup_x"] >= 1.5, (
        f"memoized epoch loop only {report['speedup_x']:.2f}x faster "
        f"(legacy {report['legacy_epoch_loop_s']:.3f}s vs "
        f"memoized {report['memoized_epoch_loop_s']:.3f}s)"
    )


def test_gate_passes(report):
    assert report["gate"]["passed"]
