"""Fig. 9 — ablation study: drop each encoder / loss term.

Removes one module at a time and measures tri-window accuracy:
full model, -temporal (called 'general' in the paper), -frequency,
-residual, -intra loss, -inter loss.

Expected shapes (paper Fig. 9): the temporal and frequency encoders and
the intra-domain loss matter most; removing the residual encoder or the
inter-domain loss hurts least.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import bench_archive, bench_config, render_table

from _common import emit, fmt, tri_window_hit, trained_triad

ARCHIVE_SIZE = 6

VARIANTS = {
    "full": {},
    "w/o temporal": {"domains": ("frequency", "residual")},
    "w/o frequency": {"domains": ("temporal", "residual")},
    "w/o residual": {"domains": ("temporal", "frequency")},
    "w/o intra loss": {"use_intra": False},
    "w/o inter loss": {"use_inter": False},
}


@pytest.fixture(scope="module")
def ablation_results():
    archive = bench_archive(size=ARCHIVE_SIZE)
    results = {}
    for name, overrides in VARIANTS.items():
        config = bench_config(seed=0, **overrides)
        hits = [tri_window_hit(trained_triad(ds, config), ds) for ds in archive]
        results[name] = float(np.mean(hits))
    return results


def test_fig9_ablation(ablation_results, benchmark):
    rows = benchmark(lambda: [[name, fmt(acc, 2)] for name, acc in ablation_results.items()])
    table = render_table(
        ["Variant", "Tri-window accuracy"],
        rows,
        title=f"Fig. 9: ablation on {ARCHIVE_SIZE} datasets",
    )
    emit("fig9_ablation", table)

    full = ablation_results["full"]
    # The full model must be a working detector and no ablated variant
    # should beat it decisively (sampling noise allowed on a small archive).
    assert full >= 0.5
    for name, accuracy in ablation_results.items():
        assert accuracy <= full + 0.21, (name, accuracy, full)
    # Intra-domain contrast is the load-bearing loss (paper's finding):
    # dropping it should hurt at least as much as dropping inter.
    assert ablation_results["w/o intra loss"] <= ablation_results["w/o inter loss"] + 0.21


def test_bench_tri_window_nomination(benchmark):
    archive = bench_archive(size=1)
    detector = trained_triad(archive[0], bench_config(seed=0))
    benchmark(lambda: detector.nominate_windows(archive[0].test))
