"""Fig. 6 — distribution of anomaly lengths in the archive.

The UCR archive's anomaly lengths span 1-1700 with a right-skewed
distribution.  The synthetic archive preserves that character (scaled to
our shorter series); this bench prints the histogram and asserts the
skew.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import anomaly_length_distribution, make_archive
from repro.eval import render_table

from _common import emit


@pytest.fixture(scope="module")
def archive():
    return make_archive(size=40, seed=41, train_length=800, test_length=1600)


def test_fig6_length_distribution(archive, benchmark):
    distribution = benchmark(lambda: anomaly_length_distribution(archive))
    lengths = [ds.anomaly_length for ds in archive]

    rows = [[bucket, f"{fraction * 100:.0f}%"] for bucket, fraction in distribution.items()]
    table = render_table(
        ["Anomaly length", "Share of datasets"],
        rows,
        title=f"Fig. 6: anomaly lengths across {len(archive)} datasets "
        f"(min={min(lengths)}, median={int(np.median(lengths))}, max={max(lengths)})",
    )
    emit("fig6_length_dist", table)

    assert abs(sum(distribution.values()) - 1.0) < 1e-9
    # Right-skew: bulk of mass in the low/middle buckets, non-empty tail.
    assert distribution["16-63"] + distribution["<16"] + distribution["64-127"] > 0.5
    assert max(lengths) > 3 * np.median(lengths) or max(lengths) >= 256
    # Varied lengths, as in the archive.
    assert len(set(lengths)) > 10


def test_bench_archive_generation(benchmark):
    benchmark.pedantic(
        lambda: make_archive(size=10, seed=1, train_length=800, test_length=1000),
        rounds=1,
        iterations=1,
    )
