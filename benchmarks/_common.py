"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` module regenerates one paper table or figure (see
DESIGN.md's experiment index).  Results are printed and also written to
``benchmarks/results/<name>.txt`` so ``pytest benchmarks/ --benchmark-only``
leaves a reviewable artifact regardless of output capture.

The paper's full protocol (250 datasets x 5 seeds x 20 epochs, GPU) is
scaled down here for a CPU-only pure-numpy substrate; EXPERIMENTS.md
documents the scaling and compares shapes against the paper's numbers.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro import TriAD
from repro.core.config import TriADConfig
from repro.data.spec import Dataset

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> str:
    """Print a result block and persist it under ``benchmarks/results``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    banner = f"\n=== {name} ===\n{text}\n"
    print(banner)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    return text


_TRIAD_CACHE: dict[tuple, TriAD] = {}


def trained_triad(dataset: Dataset, config: TriADConfig) -> TriAD:
    """Train (or fetch a cached) TriAD for a dataset+config pair.

    Several benches probe the same trained models (Fig. 7/8/9, Tables
    III/IV); caching keeps the suite's wall-clock reasonable without
    changing any result.
    """
    key = (dataset.name, config)
    if key not in _TRIAD_CACHE:
        _TRIAD_CACHE[key] = TriAD(config).fit(dataset.train)
    return _TRIAD_CACHE[key]


def tri_window_hit(detector: TriAD, dataset: Dataset, margin: int = 100) -> bool:
    """Did any of the (up to three) nominated windows contain the anomaly?"""
    from repro.metrics import window_hits_event

    candidates, _, _, _ = detector.nominate_windows(dataset.test)
    event = dataset.anomaly_interval
    return any(window_hits_event(w, event, margin) for w in candidates.values())


def single_window_hit(detector: TriAD, dataset: Dataset, margin: int = 100) -> bool:
    """Did the final selected window contain the anomaly?"""
    from repro.metrics import window_hits_event

    candidates, _, _, _ = detector.nominate_windows(dataset.test)
    window = detector.select_window(dataset.test, candidates)
    return window_hits_event(window, dataset.anomaly_interval, margin)


def fmt(value: float, digits: int = 3) -> str:
    return f"{value:.{digits}f}"


def mean_std(values) -> str:
    values = np.asarray(list(values), dtype=np.float64)
    return f"{values.mean():.3f}±{values.std():.3f}"
