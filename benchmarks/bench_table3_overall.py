"""Table III — overall comparison on the UCR-style archive.

Runs all seven baselines plus TriAD over the shared bench archive with
multiple seeds and reports F1(PW), F1(PA), PA%K AUC (precision / recall
/ F1) and affiliation (precision / recall / F1), mean±std over seeds.

Expected shapes (paper Table III):
- every deep baseline's F1(PW) and PA%K-F1 are near zero;
- TriAD's PA%K-F1 is a multiple (paper: >=3x) of the best baseline;
- baselines reach high affiliation recall but poor precision;
- TriAD leads affiliation F1.
"""

from __future__ import annotations

import pytest

from repro import TriAD
from repro.baselines import (
    AnomalyTransformerDetector,
    DCdetectorDetector,
    LSTMAEDetector,
    MTGFlowDetector,
    TS2VecDetector,
    USADDetector,
)
from repro.eval import bench_archive, bench_config, render_table, run_on_archive

from _common import emit

SEEDS = (0, 1)
ARCHIVE_SIZE = 10

DETECTORS = [
    ("LSTM-AE (Random)", lambda s: LSTMAEDetector(trained=False, seed=s)),
    ("LSTM-AE (Trained)", lambda s: LSTMAEDetector(trained=True, epochs=3, seed=s)),
    ("USAD", lambda s: USADDetector(epochs=4, seed=s)),
    ("TS2Vec", lambda s: TS2VecDetector(epochs=2, seed=s)),
    ("Anomaly Transformer", lambda s: AnomalyTransformerDetector(epochs=2, seed=s)),
    ("MTGFlow", lambda s: MTGFlowDetector(epochs=4, seed=s)),
    ("DCdetector", lambda s: DCdetectorDetector(epochs=2, seed=s)),
    ("TriAD", lambda s: TriAD(bench_config(seed=s, epochs=8))),
]

HEADERS = [
    "Model",
    "F1(PW)",
    "F1(PA)",
    "P-AUC",
    "R-AUC",
    "F1-AUC",
    "Aff-P",
    "Aff-R",
    "Aff-F1",
]


@pytest.fixture(scope="module")
def archive():
    return bench_archive(size=ARCHIVE_SIZE)


@pytest.fixture(scope="module")
def aggregates(archive):
    return {
        name: run_on_archive(name, factory, archive, seeds=SEEDS)
        for name, factory in DETECTORS
    }


def test_table3_overall_comparison(aggregates, benchmark):
    rows = benchmark(lambda: [agg.row() for agg in aggregates.values()])
    table = render_table(
        HEADERS, rows, title=f"Table III: {ARCHIVE_SIZE} UCR-style datasets, seeds={SEEDS}"
    )
    emit("table3_overall", table)

    triad = aggregates["TriAD"].mean
    baselines = {k: v.mean for k, v in aggregates.items() if k != "TriAD"}
    best_baseline_f1auc = max(m["pak_f1_auc"] for m in baselines.values())

    # TriAD's PA%K F1-AUC must win.  The paper reports a 3x margin over
    # 250 hard datasets x 5 seeds; on this 10-dataset, 2-seed miniature
    # the margin compresses to ~1.1-1.5x depending on seed draw, so the
    # assertion checks the *winner*, not the paper's factor — see
    # EXPERIMENTS.md for the full scaling discussion.
    assert triad["pak_f1_auc"] > 1.05 * best_baseline_f1auc, (
        triad["pak_f1_auc"],
        best_baseline_f1auc,
    )
    # TriAD leads affiliation F1.
    best_baseline_aff = max(m["affiliation_f1"] for m in baselines.values())
    assert triad["affiliation_f1"] > best_baseline_aff
    # Baselines struggle point-wise on subtle anomalies.
    assert best_baseline_f1auc < 0.45


def test_bench_triad_inference(archive, benchmark):
    """Timed section: TriAD inference (the Table IV-relevant cost)."""
    from _common import trained_triad

    dataset = archive[0]
    detector = trained_triad(dataset, bench_config(seed=0))
    benchmark(lambda: detector.detect(dataset.test))
