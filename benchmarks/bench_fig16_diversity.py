"""Figs. 14 & 16 — anomaly-type diversity: TriAD vs MTGFlow.

Fig. 16 shows TriAD detecting six anomaly types (noise, duration,
seasonal, trend, level shift, contextual); Fig. 14 shows MTGFlow — the
strongest baseline — misclassifying normal patterns as anomalies on the
same data.

We build one dataset per anomaly type and compare: TriAD's window-hit
rate and point predictions vs MTGFlow's, plus MTGFlow's false-positive
volume (the paper's criticism).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import MTGFlowDetector
from repro.data import DatasetSpec, make_dataset
from repro.eval import bench_config, render_table
from repro.metrics import event_detected, window_hits_event

from _common import emit, fmt, trained_triad

TYPES = ("noise", "duration", "seasonal", "trend", "level_shift", "contextual")


@pytest.fixture(scope="module")
def zoo():
    datasets = []
    for i, anomaly_type in enumerate(TYPES):
        datasets.append(
            make_dataset(
                DatasetSpec(
                    name=f"zoo_{anomaly_type}",
                    family="harmonics",
                    period=44,
                    train_length=1500,
                    test_length=1800,
                    anomaly_type=anomaly_type,
                    anomaly_start=800 + 37 * i,
                    anomaly_length=90,
                    noise_level=0.04,
                    seed=100 + i,
                )
            )
        )
    return datasets


@pytest.fixture(scope="module")
def comparison(zoo):
    rows = []
    triad_hits, mtgflow_hits, mtgflow_fp = [], [], []
    for ds in zoo:
        detector = trained_triad(ds, bench_config(seed=0))
        detection = detector.detect(ds.test)
        triad_hit = window_hits_event(detection.window, ds.anomaly_interval)
        triad_hits.append(triad_hit)

        flow = MTGFlowDetector(epochs=4, seed=0).fit(ds.train)
        flow_pred = flow.detect(ds.test)
        flow_points = np.flatnonzero(flow_pred)
        flow_hit = event_detected(flow_points, ds.anomaly_interval)
        mtgflow_hits.append(flow_hit)
        false_positives = int(flow_pred[ds.labels == 0].sum())
        mtgflow_fp.append(false_positives)

        rows.append(
            [
                ds.spec.anomaly_type,
                str(bool(triad_hit)),
                str(int(detection.predictions[ds.labels == 0].sum())),
                str(bool(flow_hit)),
                str(false_positives),
            ]
        )
    return rows, triad_hits, mtgflow_hits, mtgflow_fp


def test_fig16_diversity(comparison, zoo, benchmark):
    rows, triad_hits, mtgflow_hits, mtgflow_fp = benchmark(lambda: comparison)
    table = render_table(
        ["Anomaly type", "TriAD hit", "TriAD FPs", "MTGFlow hit", "MTGFlow FPs"],
        rows,
        title="Figs. 14/16: detection across six anomaly types",
    )
    emit("fig16_diversity", table)

    # TriAD localizes most anomaly types.
    assert np.mean(triad_hits) >= 0.5
    # MTGFlow's false-positive volume dwarfs TriAD's (the Fig. 14 point).
    triad_fp_total = sum(int(r[2]) for r in rows)
    assert sum(mtgflow_fp) > triad_fp_total


def test_bench_mtgflow_detection(zoo, benchmark):
    ds = zoo[0]
    flow = MTGFlowDetector(epochs=2, seed=0).fit(ds.train)
    benchmark(lambda: flow.score_series(ds.test))
