"""Extended leaderboard (beyond the paper's Table III comparator set).

Adds the classic non-deep and VAE detectors this library implements on
top of the paper's baselines — Spectral Residual, ChangePoint, Donut —
and checks the expected specializations:

- ChangePoint excels on level-shift/trend datasets and collapses on
  shape anomalies;
- Spectral Residual behaves like a smarter one-liner (amplitude-driven);
- none of them approaches TriAD's archive-wide PA%K F1.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import TriAD
from repro.baselines import (
    ChangePointDetector,
    DeepAnTDetector,
    DonutDetector,
    SpectralResidualDetector,
)
from repro.eval import (
    bench_archive,
    bench_config,
    per_type_breakdown,
    render_table,
    run_on_archive,
)

from _common import emit

ARCHIVE_SIZE = 8

DETECTORS = [
    ("Spectral Residual", lambda s: SpectralResidualDetector()),
    ("ChangePoint", lambda s: ChangePointDetector()),
    ("Donut", lambda s: DonutDetector(epochs=4, seed=s)),
    ("DeepAnT", lambda s: DeepAnTDetector(epochs=4, seed=s)),
    ("TriAD", lambda s: TriAD(bench_config(seed=s))),
]


@pytest.fixture(scope="module")
def aggregates():
    archive = bench_archive(size=ARCHIVE_SIZE)
    return {
        name: run_on_archive(name, factory, archive, seeds=(0,))
        for name, factory in DETECTORS
    }


def test_extended_leaderboard(aggregates, benchmark):
    rows = benchmark(
        lambda: [
            [name, f"{agg.mean['pak_f1_auc']:.3f}", f"{agg.mean['affiliation_f1']:.3f}"]
            for name, agg in aggregates.items()
        ]
    )
    table = render_table(
        ["Model", "PA%K F1-AUC", "Affiliation F1"],
        rows,
        title=f"Extended baselines on {ARCHIVE_SIZE} datasets",
    )

    # Per-anomaly-type breakdown of the ChangePoint specialist.
    breakdown = per_type_breakdown(aggregates["ChangePoint"])
    table += "\n\nChangePoint per-type PA%K F1-AUC: " + ", ".join(
        f"{k}={v:.2f}" for k, v in breakdown.items()
    )
    emit("extended_baselines", table)

    triad = aggregates["TriAD"].mean["pak_f1_auc"]
    for name, agg in aggregates.items():
        if name != "TriAD":
            assert agg.mean["pak_f1_auc"] <= triad + 0.05, name

    # ChangePoint is a partial specialist: strong on some structural
    # types, near-zero on others (it has no way to see every anomaly
    # class) — unlike TriAD, which covers all of them (Fig. 16 bench).
    values = list(breakdown.values())
    assert max(values) > 0.2
    assert min(values) < 0.15


def test_bench_spectral_residual(benchmark):
    archive = bench_archive(size=1)
    detector = SpectralResidualDetector().fit(archive[0].train)
    benchmark(lambda: detector.score_series(archive[0].test))
