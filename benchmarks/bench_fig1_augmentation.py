"""Fig. 1 + Fig. 5 — augmentations resemble anomalies.

Fig. 1's argument: whole-series CV-style augmentation produces data that
looks like an anomaly.  Fig. 5 shows TriAD's segment-level jitter/warp
examples.  We quantify both: the z-norm distance from a clean window to
(a) its augmented variant and (b) a genuinely anomalous window of the
same dataset are of the same order — which is exactly why TriAD treats
augmentations as contrastive *negatives*, not positives.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.augment import augment_batch, jitter_segment, warp_segment
from repro.data import make_archive
from repro.discord import znorm_distance
from repro.eval import render_table
from repro.signal import sliding_windows

from _common import emit, fmt


@pytest.fixture(scope="module")
def windows_and_anomaly():
    ds = make_archive(size=3, seed=31, train_length=1500, test_length=2000)[2]
    length = 4 * ds.spec.period
    windows, _ = sliding_windows(ds.train, length, length)
    start, end = ds.anomaly_interval
    anomaly_start = max(min(start - length // 4, len(ds.test) - length), 0)
    anomalous_window = ds.test[anomaly_start : anomaly_start + length]
    return ds, windows, anomalous_window


def test_fig1_augmentation_vs_anomaly(windows_and_anomaly, benchmark):
    ds, windows, anomalous = windows_and_anomaly
    rng = np.random.default_rng(0)
    base = windows[0]

    jittered = jitter_segment(base, len(base) // 4, len(base) // 3, rng)
    warped = warp_segment(base, len(base) // 4, len(base) // 3, rng)

    d_normal = benchmark(lambda: np.mean([znorm_distance(base, w) for w in windows[1:]]))
    d_jitter = znorm_distance(base, jittered)
    d_warp = znorm_distance(base, warped)
    d_anomaly = znorm_distance(base, anomalous)

    rows = [
        ["normal vs other normals", fmt(d_normal)],
        ["normal vs jittered self", fmt(d_jitter)],
        ["normal vs warped self", fmt(d_warp)],
        ["normal vs true anomaly window", fmt(d_anomaly)],
    ]
    table = render_table(
        ["Pair", "z-norm distance"],
        rows,
        title=f"Fig. 1/5: augmentation vs anomaly distances ({ds.name})",
    )
    emit("fig1_augmentation", table)

    # Shape: augmented windows are at least as far from the original as
    # other normal windows are — treating them as positives would teach
    # the model that anomalies are normal.
    assert d_jitter > d_normal * 0.8
    assert max(d_jitter, d_warp) > 0.3 * d_anomaly


def test_bench_augment_batch(windows_and_anomaly, benchmark):
    _, windows, _ = windows_and_anomaly
    rng = np.random.default_rng(1)
    benchmark(lambda: augment_batch(windows, rng))
