"""Hot-path micro-benchmarks seeding the perf trajectory (``BENCH_obs.json``).

Times the substrate operations behind the paper's efficiency claims —
conv1d forward/backward (the encoder's inner loop), the exact
matrix-profile scan MERLIN falls back to, and the PA%K metric sweep —
plus the observability overhead on the trainer hot loop, which must stay
under 5%.

Run via ``python scripts/bench_baseline.py`` (writes ``BENCH_obs.json``)
or directly::

    PYTHONPATH=src python -m pytest benchmarks/bench_obs_hotpaths.py \
        -m bench --benchmark-only

Everything here carries the ``bench`` marker, so tier-1 (`pytest -x -q`)
never collects it.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import nn, obs
from repro.core.config import TriADConfig
from repro.core.trainer import train_encoder
from repro.discord.distance import nearest_neighbor_distances
from repro.metrics import pa_k_auc

pytestmark = pytest.mark.bench


@pytest.fixture(scope="module")
def conv_setup():
    rng = np.random.default_rng(0)
    layer = nn.Conv1d(8, 16, kernel_size=5, dilation=2, rng=rng)
    x = np.asarray(rng.standard_normal((16, 8, 128)))
    return layer, x


def test_conv1d_forward(benchmark, conv_setup):
    layer, x = conv_setup

    def forward():
        with nn.no_grad():
            return layer(nn.Tensor(x))

    benchmark(forward)


def test_conv1d_backward(benchmark, conv_setup):
    layer, x = conv_setup

    def forward_backward():
        layer.zero_grad()
        out = layer(nn.Tensor(x, requires_grad=True))
        out.sum().backward()

    benchmark(forward_backward)


def test_nearest_neighbor_distances(benchmark):
    rng = np.random.default_rng(1)
    series = np.sin(np.arange(2000) * 0.1) + 0.1 * rng.standard_normal(2000)
    benchmark(nearest_neighbor_distances, series, 64)


def test_pa_k_auc(benchmark):
    rng = np.random.default_rng(2)
    labels = np.zeros(5000, dtype=np.int64)
    for start in range(200, 4800, 500):
        labels[start : start + 60] = 1
    predictions = (rng.random(5000) < 0.1).astype(np.int64)
    predictions[480:520] = 1
    benchmark(pa_k_auc, predictions, labels)


def _train_tiny(series: np.ndarray) -> None:
    train_encoder(series, TriADConfig(epochs=1, seed=0, max_window=96))


@pytest.fixture(scope="module")
def trainer_series():
    t = np.arange(800)
    return np.sin(2 * np.pi * t / 40) + 0.05 * np.random.default_rng(3).standard_normal(800)


def test_trainer_epoch_obs_off(benchmark, trainer_series):
    assert obs.active() is None
    benchmark(_train_tiny, trainer_series)


def test_trainer_epoch_obs_on(benchmark, trainer_series):
    with obs.observed(trace=True):
        benchmark(_train_tiny, trainer_series)


def test_trainer_instrumentation_overhead_under_5_percent(trainer_series):
    """The acceptance gate: an *active* session may cost the trainer hot
    loop at most 5%.  Measured as best-of-N to shave scheduler noise."""

    def best_of(repeats: int) -> float:
        timings = []
        for _ in range(repeats):
            start = time.perf_counter()
            _train_tiny(trainer_series)
            timings.append(time.perf_counter() - start)
        return min(timings)

    _train_tiny(trainer_series)  # warm caches outside the measurement
    baseline = best_of(3)
    with obs.observed(trace=True):
        instrumented = best_of(3)
    overhead = instrumented / baseline - 1.0
    print(f"\ntrainer obs overhead: {overhead:+.2%} "
          f"(baseline {baseline:.3f}s, instrumented {instrumented:.3f}s)")
    assert overhead < 0.05
