"""Fig. 7 — the ratio of TriAD's discord-search length to MERLIN's.

MERLIN must scan the full test series (length N); TriAD restricts the
search to a padded window (~3 window lengths).  The paper reports an
average ~20x reduction.  Our series are shorter than the UCR archive's
(which reach 10^5 points), so the absolute ratio is smaller; the shape
to preserve is a *consistent multi-x reduction on every dataset*.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import bench_archive, bench_config, render_table

from _common import emit, fmt, trained_triad


@pytest.fixture(scope="module")
def ratios():
    archive = bench_archive(size=8)
    config = bench_config(seed=0)
    per_dataset = []
    for ds in archive:
        detector = trained_triad(ds, config)
        detection = detector.detect(ds.test)
        lo, hi = detection.search_region
        per_dataset.append((ds.name, len(ds.test), hi - lo, len(ds.test) / (hi - lo)))
    return per_dataset


def test_fig7_search_length_ratio(ratios, benchmark):
    rows = [
        [name, str(total), str(span), fmt(ratio, 1)]
        for name, total, span, ratio in ratios
    ]
    mean_ratio = benchmark(lambda: float(np.mean([r[-1] for r in ratios])))
    table = render_table(
        ["Dataset", "MERLIN scan (N)", "TriAD scan", "reduction x"],
        rows,
        title=f"Fig. 7: search-length reduction (mean {mean_ratio:.1f}x)",
    )
    emit("fig7_search_ratio", table)

    assert all(ratio > 2.0 for *_, ratio in ratios), "every dataset must shrink"
    assert mean_ratio > 3.0


def test_bench_detect_with_restricted_search(benchmark):
    archive = bench_archive(size=1)
    detector = trained_triad(archive[0], bench_config(seed=0))
    benchmark.pedantic(lambda: detector.detect(archive[0].test), rounds=2, iterations=1)
