"""Discord kernel benchmark (``BENCH_discord.json``).

The claim backing the shared kernel layer: prefix-sum moments computed
once per series, blocked/FFT distance profiles, DRAG as batched sweeps,
and MERLIN's cross-length lower-bound reuse make the full Table
IV-style length sweep >= 5x faster than the scalar reference paths,
with identical discord indices and distances within 1e-9.

The measurement lives in ``scripts/bench_discord.py`` — run that to
(re)generate ``BENCH_discord.json`` at the repo root — and this module
re-runs it under the ``bench`` marker so ``pytest -m bench`` covers the
gate too::

    PYTHONPATH=src python -m pytest benchmarks/bench_discord.py -m bench

Tier-1 (`pytest -x -q`) never collects it.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.bench

REPO_ROOT = Path(__file__).resolve().parents[1]
SCRIPT = REPO_ROOT / "scripts" / "bench_discord.py"


def _load_bench():
    spec = importlib.util.spec_from_file_location("bench_discord_script", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_discord_script", module)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def report():
    return _load_bench().run_bench(repeats=2)


def test_discords_match_reference(report):
    assert report["indices_match"]
    assert report["distance_max_abs_diff"] <= 1e-9


def test_sweep_is_5x_faster(report):
    assert report["speedup_x"] >= 5.0, (
        f"fast stack only {report['speedup_x']:.2f}x faster "
        f"(reference {report['reference_s']:.3f}s vs "
        f"fast {report['fast_s']:.3f}s)"
    )


def test_gate_passes(report):
    assert report["gate"]["passed"]
