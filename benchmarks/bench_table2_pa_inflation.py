"""Table II + Fig. 3 — the point-adjustment pitfall.

Regenerates the paper's preliminary experiment: LSTM-AE in randomly
initialized and trained form on KPI-like, SWaT-like, and UCR-style
data, scored with F1(PW), F1(PA), and F1(PA%K).

Expected shapes (paper Table II):
- F1(PA) >> F1(PW) everywhere — PA inflates scores;
- on the one-liner KPI/SWaT streams, the *random* LSTM-AE matches or
  beats the trained one under PW / PA%K;
- on UCR-style data, all scores collapse toward zero.

Fig. 3's point — explicit anomalies — is demonstrated by the one-liner
detector's near-perfect event recall on the KPI stream.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import LSTMAEDetector, OneLinerDetector
from repro.data import make_archive, make_kpi_dataset, make_swat_dataset
from repro.eval import render_table
from repro.metrics import event_detected, f1_score, pa_k_auc, point_adjust

from _common import emit, fmt

SEED = 0


@pytest.fixture(scope="module")
def streams():
    ucr = make_archive(size=4, seed=11, train_length=1500, test_length=2000)
    return {
        "KPI": [make_kpi_dataset(seed=1)],
        "SWaT": [make_swat_dataset(seed=2)],
        "UCR": ucr,
    }


def _scores(detector_factory, datasets):
    f1_pw, f1_pa, f1_pak = [], [], []
    for ds in datasets:
        detector = detector_factory().fit(ds.train)
        pred = detector.detect(ds.test)
        f1_pw.append(f1_score(pred, ds.labels))
        f1_pa.append(f1_score(point_adjust(pred, ds.labels), ds.labels))
        f1_pak.append(pa_k_auc(pred, ds.labels).f1_auc)
    return np.mean(f1_pw), np.mean(f1_pa), np.mean(f1_pak)


def test_table2_pa_inflation(streams, benchmark):
    variants = [
        ("LSTM-AE (Random)", lambda: LSTMAEDetector(trained=False, seed=SEED)),
        ("LSTM-AE (Trained)", lambda: LSTMAEDetector(trained=True, epochs=3, seed=SEED)),
    ]
    rows = []
    results = {}
    for stream_name, datasets in streams.items():
        for model_name, factory in variants:
            pw, pa, pak = _scores(factory, datasets)
            results[(stream_name, model_name)] = (pw, pa, pak)
            rows.append([stream_name, model_name, fmt(pw), fmt(pa), fmt(pak)])

    table = render_table(
        ["Dataset", "Model", "F1(PW)", "F1(PA)", "F1(PA%K)"],
        rows,
        title="Table II: evaluation under the new protocol",
    )

    # Fig. 3 companion: one-liner event recall on the KPI stream.
    kpi = streams["KPI"][0]
    one_liner = OneLinerDetector().fit(kpi.train)
    pred_points = np.flatnonzero(one_liner.detect(kpi.test))
    recall = np.mean([event_detected(pred_points, e) for e in kpi.events()])
    table += f"\n\nFig. 3 companion: one-liner event recall on KPI = {recall:.2f}"
    emit("table2_pa_inflation", table)

    # Shape assertions mirroring the paper's findings.
    for stream_name in ("KPI", "SWaT", "UCR"):
        for model_name in ("LSTM-AE (Random)", "LSTM-AE (Trained)"):
            pw, pa, _ = results[(stream_name, model_name)]
            assert pa >= pw, "PA must not lower F1"
    assert recall >= 0.75, "KPI anomalies should be one-liner detectable"
    # UCR-style data defeats both variants (subtle anomalies).
    assert results[("UCR", "LSTM-AE (Trained)")][0] < 0.35

    # Timed section: one scoring pass of the trained model on KPI.
    detector = LSTMAEDetector(trained=True, epochs=1, seed=SEED).fit(kpi.train)
    benchmark(lambda: detector.score_series(kpi.test))
