"""Adaptive-serving benchmarks (``BENCH_adapt.json``).

Two claims back the self-healing loop's design (``serve.adapt``):

- **adaptation is cheap** — running the chaos drill (level shift ->
  drift -> guarded retrain -> shadow evaluation -> promotion) must add
  < 10% to the wall time of the identical replay without chaos, i.e.
  shadow evaluation and retraining do not tank replay throughput (gate
  enforced by ``scripts/bench_adapt.py``);
- **recovery is fast** — the promoted decision's wall time (retrain +
  shadow evaluation + swap) must stay under the controller's configured
  :class:`~repro.runtime.RunBudget`.

The idle-controller benchmark additionally quantifies the per-point
bookkeeping overhead of wrapping ingestion (no gate; informational).

Run via ``python scripts/bench_adapt.py`` (writes ``BENCH_adapt.json``)
or directly::

    PYTHONPATH=src python -m pytest benchmarks/bench_adapt.py \
        -m bench --benchmark-only

Everything here carries the ``bench`` marker, so tier-1 (`pytest -x -q`)
never collects it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.spec import Dataset
from repro.serve import (
    AdaptConfig,
    AdaptiveController,
    DriftMonitor,
    LevelShift,
    MomentShiftScorer,
    ScoreShiftMonitor,
    build_engine,
    build_registry,
    moment_trainer,
    replay_dataset,
)

pytestmark = pytest.mark.bench

BUDGET_SECONDS = 10.0


@pytest.fixture(scope="module")
def drill_dataset():
    rng = np.random.default_rng(7)
    t = np.arange(800 + 1600)
    base = np.sin(2 * np.pi * t / 40) + rng.normal(0, 0.1, t.size)
    train, test = base[:800], base[800:].copy()
    labels = np.zeros(1600, dtype=np.int64)
    test[300:316] += 4.0
    labels[300:316] = 1
    return Dataset(name="drill", train=train, test=test, labels=labels)


def build_stack(train, with_controller=True):
    registry = build_registry(
        train_series=train, primary=MomentShiftScorer(train)
    )
    engine = build_engine(
        registry,
        window_length=32,
        stride=8,
        drift=DriftMonitor(
            score_monitor=ScoreShiftMonitor(
                reference_size=24,
                recent_size=24,
                threshold_sigma=4.0,
                cooldown=48,
                statistic="median",
            )
        ),
        max_batch=16,
        score_baseline=4096,
    )
    controller = None
    if with_controller:
        controller = AdaptiveController(
            engine,
            moment_trainer(),
            config=AdaptConfig(
                history_points=256,
                min_history=128,
                settle_points=192,
                cooldown_points=256,
                budget_seconds=BUDGET_SECONDS,
                probation_points=256,
            ),
        )
    return engine, controller


def run_replay(dataset, with_controller, chaos=None):
    engine, controller = build_stack(dataset.train, with_controller)
    report = replay_dataset(
        dataset, engine, streams=1, controller=controller, chaos=chaos
    )
    return report, controller


def test_replay_plain_engine(benchmark, drill_dataset):
    """No controller: the raw engine replay the overhead gates divide by."""
    report, _ = benchmark.pedantic(
        run_replay, args=(drill_dataset, False), rounds=5, iterations=1
    )
    assert report.points == 1600


def test_replay_idle_controller(benchmark, drill_dataset):
    """Controller attached but never triggered: pure wrapper bookkeeping."""
    report, controller = benchmark.pedantic(
        run_replay, args=(drill_dataset, True), rounds=5, iterations=1
    )
    assert controller.decisions == []
    assert report.points == 1600


def test_chaos_drill_self_heals(benchmark, drill_dataset):
    """The full loop: shift -> drift -> retrain -> shadow -> promote."""
    report, controller = benchmark.pedantic(
        run_replay,
        args=(drill_dataset, True, LevelShift(at=700, delta=5.0)),
        rounds=5,
        iterations=1,
    )
    promotions = [d for d in controller.decisions if d.action == "promoted"]
    assert promotions, "drill did not promote — nothing to gate"
    trigger = promotions[0].trigger or {}
    benchmark.extra_info["time_to_recovery_s"] = promotions[0].elapsed_s
    benchmark.extra_info["budget_seconds"] = BUDGET_SECONDS
    benchmark.extra_info["detection_to_promotion_points"] = (
        promotions[0].at_index - trigger.get("at_index", promotions[0].at_index)
    )
    benchmark.extra_info["decisions"] = len(controller.decisions)
