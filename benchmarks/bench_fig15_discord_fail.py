"""Fig. 15 — the discord-fail exception (paper Sec. IV-G).

When the anomalous event is wide enough to dominate the search window,
MERLIN's discords land on the *normal* padding (anomalous patterns now
form the majority and look 'normal' to a nearest-neighbor search).
TriAD's exception detects that no discord mass fell inside the flagged
window and predicts the whole window instead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scoring import score_votes
from repro.data import DatasetSpec, make_dataset
from repro.discord import merlin
from repro.eval import bench_config, render_table
from repro.metrics import precision_recall_f1

from _common import emit, fmt, trained_triad


@pytest.fixture(scope="module")
def wide_anomaly_dataset():
    """Anomaly spanning several periods — wider than the search window."""
    return make_dataset(
        DatasetSpec(
            name="synthetic-150",
            family="sine",
            period=40,
            train_length=1500,
            test_length=2000,
            anomaly_type="seasonal",
            anomaly_start=900,
            anomaly_length=400,  # ~4x the window length
            noise_level=0.04,
            seed=15,
        )
    )


def test_fig15_exception_mechanism_synthetic(benchmark):
    """Unit-style demonstration: discords outside the window trigger the
    exception and the window is predicted wholesale."""
    from repro.discord.brute import Discord
    from repro.discord.merlin import MerlinResult

    discords = MerlinResult(
        discords=[Discord(index=5, length=20, distance=1.0) for _ in range(4)]
    )
    out = benchmark(lambda: score_votes(1000, window=(500, 640), discords=discords, search_offset=0))
    assert out.exception_applied
    assert out.predictions[500:640].all()
    assert out.predictions.sum() == 140


def test_fig15_wide_anomaly_end_to_end(wide_anomaly_dataset, benchmark):
    ds = wide_anomaly_dataset
    detector = trained_triad(ds, bench_config(seed=0))
    detection = detector.detect(ds.test)
    start, end = ds.anomaly_interval

    precision, recall, f1 = benchmark(lambda: precision_recall_f1(detection.predictions, ds.labels))
    table = render_table(
        ["Quantity", "Value"],
        [
            ["anomaly span", f"[{start}, {end}) ({end - start} pts)"],
            ["flagged window", f"[{detection.window[0]}, {detection.window[1]})"],
            ["exception applied", str(detection.votes.exception_applied)],
            ["precision", fmt(precision)],
            ["recall", fmt(recall)],
            ["F1", fmt(f1)],
        ],
        title="Fig. 15: wide anomaly dominating the search window",
    )
    emit("fig15_discord_fail", table)

    # The flagged window must overlap the wide anomaly, and predictions
    # must cover part of it (via exception or via votes).
    assert detection.window[0] < end and detection.window[1] > start
    assert detection.predictions[start:end].any()


def test_bench_merlin_on_window(wide_anomaly_dataset, benchmark):
    ds = wide_anomaly_dataset
    segment = ds.test[800:1300]
    benchmark.pedantic(lambda: merlin(segment, 8, 120, step=16), rounds=2, iterations=1)
