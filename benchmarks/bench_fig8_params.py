"""Fig. 8 — parameter study: alpha, encoder depth, h_d.

Sweeps each hyper-parameter (others fixed at the paper's defaults) and
measures tri-window detection accuracy, the metric the paper tunes on.

Expected shapes (paper Fig. 8): performance peaks at a balanced alpha
(~0.4), is fairly flat in depth with a mild optimum near 6, and favors a
moderate h_d (32) over very large dimensions.  With a scaled-down
archive the curves are noisier; the assertion is that a balanced alpha
is never *worse* than the extremes by a wide margin, and that every
configuration stays functional.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import bench_archive, bench_config, render_table

from _common import emit, fmt, tri_window_hit, trained_triad

ARCHIVE_SIZE = 5


@pytest.fixture(scope="module")
def archive():
    return bench_archive(size=ARCHIVE_SIZE)


def _accuracy(archive, config) -> float:
    hits = [tri_window_hit(trained_triad(ds, config), ds) for ds in archive]
    return float(np.mean(hits))


@pytest.fixture(scope="module")
def sweep_results(archive):
    results = {"alpha": {}, "depth": {}, "h_d": {}}
    for alpha in (0.2, 0.4, 0.6, 0.8):
        results["alpha"][alpha] = _accuracy(archive, bench_config(seed=0, alpha=alpha))
    for depth in (2, 4, 6):
        results["depth"][depth] = _accuracy(archive, bench_config(seed=0, depth=depth))
    for h_d in (8, 16, 32):
        results["h_d"][h_d] = _accuracy(archive, bench_config(seed=0, hidden_dim=h_d))
    return results


def test_fig8_parameter_study(sweep_results, benchmark):
    benchmark(lambda: dict(sweep_results))
    rows = []
    for parameter, values in sweep_results.items():
        for setting, accuracy in values.items():
            rows.append([parameter, str(setting), fmt(accuracy, 2)])
    table = render_table(
        ["Parameter", "Value", "Tri-window accuracy"],
        rows,
        title=f"Fig. 8: parameter study on {ARCHIVE_SIZE} datasets",
    )
    emit("fig8_params", table)

    alpha = sweep_results["alpha"]
    # A balanced alpha should not lose badly to the extremes.
    assert alpha[0.4] >= max(alpha[0.2], alpha[0.8]) - 0.41
    # Every configuration must remain a working detector.
    for values in sweep_results.values():
        assert all(v >= 0.0 for v in values.values())
        assert max(values.values()) > 0.3


def test_bench_one_training(archive, benchmark):
    """Timed section: one full TriAD training run (depth 2 for speed)."""
    from repro.core import train_encoder

    config = bench_config(seed=9, depth=2, epochs=2)
    benchmark.pedantic(
        lambda: train_encoder(archive[0].train, config), rounds=1, iterations=1
    )
