"""Serving-layer benchmarks (``BENCH_serve.json``).

Two claims back the serving design:

- **micro-batching wins** — scoring ready windows from 16 concurrent
  streams in cross-stream batches through one encoder forward pass must
  be >= 3x the throughput of scoring each window in its own forward
  pass (the acceptance gate enforced by ``scripts/bench_serving.py``);
- **the vectorised left matrix profile wins** — the chunked numpy
  implementation must beat the per-position python loop it replaced.

Run via ``python scripts/bench_serving.py`` (writes ``BENCH_serve.json``)
or directly::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve.py \
        -m bench --benchmark-only

Everything here carries the ``bench`` marker, so tier-1 (`pytest -x -q`)
never collects it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import TriAD, TriADConfig
from repro.discord.streaming import left_matrix_profile
from repro.discord.distance import znorm_subsequences
from repro.serve.engine import EngineConfig, ScoringEngine
from repro.serve.registry import ModelRegistry, TriADWindowScorer

pytestmark = pytest.mark.bench

STREAMS = 16
POINTS_PER_STREAM = 400


@pytest.fixture(scope="module")
def scorer():
    rng = np.random.default_rng(12345)
    t = np.arange(1600)
    series = np.sin(2 * np.pi * t / 40) + 0.05 * rng.standard_normal(len(t))
    detector = TriAD(
        TriADConfig(depth=2, hidden_dim=8, epochs=1, seed=3, max_window=96)
    ).fit(series)
    return TriADWindowScorer(detector)


@pytest.fixture(scope="module")
def feed():
    rng = np.random.default_rng(0)
    t = np.arange(POINTS_PER_STREAM)
    base = np.sin(2 * np.pi * t / 40)
    return [
        base + 0.05 * rng.standard_normal(POINTS_PER_STREAM) for _ in range(STREAMS)
    ]


def run_replay(scorer, feed, max_batch):
    registry = ModelRegistry()
    registry.register(scorer)
    plan = scorer._detector.plan
    engine = ScoringEngine(
        registry,
        EngineConfig(
            window_length=plan.length,
            stride=plan.stride,
            max_batch=max_batch,
            queue_capacity=100_000,
        ),
    )
    for i in range(POINTS_PER_STREAM):
        for s in range(STREAMS):
            engine.ingest(f"s{s}", float(feed[s][i]))
    engine.drain()
    return engine.stats.windows_scored


def test_engine_sequential_scoring(benchmark, scorer, feed):
    """One encoder forward per window: the baseline the gate divides by."""
    scored = benchmark.pedantic(
        run_replay, args=(scorer, feed, 1), rounds=3, iterations=1
    )
    assert scored > 0


def test_engine_microbatched_scoring(benchmark, scorer, feed):
    """Cross-stream micro-batches of up to 64 windows per forward."""
    scored = benchmark.pedantic(
        run_replay, args=(scorer, feed, 64), rounds=3, iterations=1
    )
    assert scored > 0


def loop_left_profile(series, length):
    """The per-position python loop the vectorised version replaced."""
    z = znorm_subsequences(np.asarray(series, dtype=np.float64), length)
    count = len(z)
    profile = np.full(count, np.inf)
    for i in range(length, count):
        best = np.inf
        for j in range(0, i - length + 1):
            d = float(np.sqrt(((z[i] - z[j]) ** 2).sum()))
            best = min(best, d)
        profile[i] = best
    return profile


@pytest.fixture(scope="module")
def profile_series():
    rng = np.random.default_rng(1)
    t = np.arange(900)
    return np.sin(2 * np.pi * t / 50) + 0.1 * rng.standard_normal(len(t))


def test_left_profile_vectorised(benchmark, profile_series):
    benchmark.pedantic(
        left_matrix_profile, args=(profile_series, 32), rounds=3, iterations=1
    )


def test_left_profile_loop_reference(benchmark, profile_series):
    benchmark.pedantic(
        loop_left_profile, args=(profile_series, 32), rounds=1, iterations=1
    )
