"""Shard-fabric micro-benchmarks (``BENCH_shard.json`` companions).

The fabric-level claims — 4-worker ingest throughput, p99 round
latency, and the ``kill -9`` recovery drill — live in
``scripts/bench_shard.py`` (multiprocessing does not sit well inside
pytest-benchmark's calibration loops).  This module benches the
single-process pieces the fabric is built from, so a regression in any
of them is visible in isolation:

- consistent-hash owner lookup (``HashRing``) — on the hot path of
  every submitted stream chunk;
- snapshot payload codec (``payload_to_bytes``/``payload_from_bytes``)
  — every acked batch serialises one snapshot per touched stream;
- engine state externalization (``export_stream``/``import_stream``) —
  the migration/rehydration path;
- ``ingest_many`` vs per-point ``ingest`` — the vectorised fast path
  the router feeds chunks through.

Run directly::

    PYTHONPATH=src python -m pytest benchmarks/bench_shard.py \
        -m bench --benchmark-only

Everything here carries the ``bench`` marker, so tier-1 (`pytest -x -q`)
never collects it.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.serve.shard import HashRing, WorkerSpec, build_worker_engine
from repro.serve.stores import payload_from_bytes, payload_to_bytes

pytestmark = pytest.mark.bench

STREAMS = 64
CHUNK = 64


@pytest.fixture(scope="module")
def spec() -> WorkerSpec:
    # A production-shaped plan: window 128, stride 32.  The ingest_many
    # fast path advances one *emission boundary* per iteration, so its
    # win over per-point ingest scales with the stride.
    t = np.arange(1600)
    train = np.sin(2 * np.pi * t / 32)
    train += 0.03 * np.random.default_rng(5).standard_normal(len(t))
    return WorkerSpec(
        detector="spectral-residual",
        params={"max_window": 128, "seed": 0},
        train=train,
        window_length=128,
        stride=32,
        engine={"max_batch": 64, "score_baseline": 64, "warmup_scores": 8},
    )


@pytest.fixture(scope="module")
def feed() -> np.ndarray:
    rng = np.random.default_rng(7)
    base = np.sin(2 * np.pi * np.arange(CHUNK * 4) / 32)
    return base + 0.03 * rng.standard_normal((STREAMS, CHUNK * 4))


def warmed_engine(spec, feed):
    engine = build_worker_engine(spec)
    for i in range(STREAMS):
        engine.ingest_many(f"s{i}", feed[i])
    engine.drain()
    return engine


def test_hash_ring_owner_lookup(benchmark):
    ring = HashRing([f"w{i}" for i in range(4)])
    keys = [f"stream/{i}" for i in range(10_000)]

    def lookup():
        return [ring.owner(key) for key in keys]

    owners = benchmark(lookup)
    assert len(set(owners)) == 4


def test_snapshot_payload_codec_round_trip(spec, feed, benchmark):
    engine = warmed_engine(spec, feed)
    payloads = [
        engine.export_stream(f"s{i}").to_payload() for i in range(STREAMS)
    ]

    def round_trip():
        return [
            payload_from_bytes(payload_to_bytes(payload))
            for payload in payloads
        ]

    decoded = benchmark(round_trip)
    assert len(decoded) == STREAMS


def test_engine_state_externalization(spec, feed, benchmark):
    source = warmed_engine(spec, feed)
    target = build_worker_engine(spec)

    def migrate_all():
        for i in range(STREAMS):
            target.import_stream(source.export_stream(f"s{i}"))

    benchmark(migrate_all)
    assert len(target.export_streams()) == STREAMS


def test_ingest_per_point(spec, feed, benchmark):
    engine = build_worker_engine(spec)
    generation = itertools.count()

    def run():
        prefix = next(generation)
        for i in range(STREAMS):
            stream_id = f"g{prefix}/s{i}"
            for value in feed[i]:
                engine.ingest(stream_id, float(value))
        engine.drain()

    benchmark(run)
    assert engine.report()["windows_scored"] > 0


def test_ingest_many_chunks(spec, feed, benchmark):
    engine = build_worker_engine(spec)
    generation = itertools.count()

    def run():
        prefix = next(generation)
        for i in range(STREAMS):
            engine.ingest_many(f"g{prefix}/s{i}", feed[i])
        engine.drain()

    benchmark(run)
    assert engine.report()["windows_scored"] > 0
