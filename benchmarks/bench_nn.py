"""``repro.nn`` fast-path benchmark (``BENCH_nn.json``).

The claim backing the kernel fast paths: GEMM/FFT convolutions + fused
optimizer steps + recycled gradient buffers + the fused contrastive
forward make a trainer epoch >= 3x faster than the pre-optimization
stack on the wide-kernel configuration, with per-epoch losses within
1e-9 of the reference (in practice ~1e-16).

The measurement lives in ``scripts/bench_nn.py`` — run that to
(re)generate ``BENCH_nn.json`` at the repo root — and this module
re-runs it under the ``bench`` marker so ``pytest -m bench`` covers the
gate too::

    PYTHONPATH=src python -m pytest benchmarks/bench_nn.py -m bench

Tier-1 (`pytest -x -q`) never collects it.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.bench

REPO_ROOT = Path(__file__).resolve().parents[1]
SCRIPT = REPO_ROOT / "scripts" / "bench_nn.py"


def _load_bench():
    spec = importlib.util.spec_from_file_location("bench_nn_script", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_nn_script", module)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def report():
    return _load_bench().run_bench(repeats=2)


def test_losses_match_reference(report):
    assert report["wide_kernel"]["loss_max_abs_diff"] <= 1e-9
    assert report["default_kernel"]["loss_max_abs_diff"] <= 1e-9


def test_wide_kernel_epoch_is_3x_faster(report):
    entry = report["wide_kernel"]
    assert entry["speedup_x"] >= 3.0, (
        f"fast stack only {entry['speedup_x']:.2f}x faster "
        f"(reference {entry['reference_s']:.2f}s vs fast {entry['fast_s']:.2f}s)"
    )


def test_gate_passes(report):
    assert report["gate"]["passed"]
