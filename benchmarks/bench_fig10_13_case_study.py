"""Figs. 10-13 — the UCR "025" case study, end to end.

The paper walks one ECG-like dataset through the whole pipeline:
- Fig. 10: the anomaly is a subtle frequency shift (a missing secondary
  peak) of ~27 points;
- Fig. 11: per-domain window similarity curves dip at the anomalous
  window (frequency/residual domains dip hardest);
- Fig. 12: MERLIN discords across lengths concentrate on the anomaly;
- Fig. 13: raising the voting threshold percentile trades recall for
  precision.

We regenerate the same artifacts on the synthetic ECG twin of "025":
the contextual injector removes the secondary peak, exactly the
morphology the paper describes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import DatasetSpec, make_dataset
from repro.eval import bench_config, render_table
from repro.metrics import precision_recall_f1, window_hits_event

from _common import emit, fmt, trained_triad


@pytest.fixture(scope="module")
def case_study():
    spec = DatasetSpec(
        name="synthetic-025",
        family="ecg",
        period=56,  # window of 2.5 periods ~ 140 points
        train_length=2000,
        test_length=2400,
        anomaly_type="contextual",  # smooths away the secondary peak
        anomaly_start=1400,
        anomaly_length=27,  # the paper's 27-point anomaly
        noise_level=0.03,
        seed=25,
    )
    ds = make_dataset(spec)
    detector = trained_triad(ds, bench_config(seed=0))
    detection = detector.detect(ds.test)
    return ds, detector, detection


def test_fig11_similarity_curves(case_study, benchmark):
    ds, detector, detection = case_study
    start, end = ds.anomaly_interval
    benchmark(lambda: {d: int(np.argmin(s)) for d, s in detection.similarity.items()})
    lines = []
    hits = {}
    for domain, scores in detection.similarity.items():
        deviant = int(np.argmin(scores))
        w_start = int(detection.window_starts[deviant])
        window = (w_start, w_start + detection.window_length)
        hits[domain] = window_hits_event(window, (start, end))
        lines.append(
            [domain, str(deviant), f"[{window[0]}, {window[1]})", str(hits[domain])]
        )
    table = render_table(
        ["Domain", "most deviant window idx", "span", "contains anomaly"],
        lines,
        title=f"Fig. 11: per-domain similarity minima (anomaly at [{start}, {end}))",
    )
    emit("fig11_similarity", table)
    # At least one domain's similarity curve localizes the anomaly.
    assert any(hits.values())


def test_fig12_merlin_discords_concentrate(case_study, benchmark):
    ds, _, detection = case_study
    start, end = ds.anomaly_interval
    offset = benchmark(lambda: detection.search_region[0])
    rows, near = [], 0
    for discord in detection.discords.discords:
        lo = offset + discord.index
        hi = lo + discord.length
        is_near = lo < end + 100 and hi > start - 100
        near += is_near
        rows.append([str(discord.length), f"[{lo}, {hi})", str(bool(is_near))])
    table = render_table(
        ["Search length", "discord span", "near anomaly"],
        rows,
        title=f"Fig. 12: MERLIN discords around the flagged window "
        f"(anomaly [{start}, {end}))",
    )
    emit("fig12_merlin", table)
    assert near >= len(rows) * 0.5, "most discords should land on the anomaly"


def test_fig13_threshold_study(case_study, benchmark):
    ds, _, detection = case_study
    votes = detection.votes.votes
    benchmark(lambda: np.percentile(votes[votes > 0], 90) if (votes > 0).any() else 0.0)
    rows = []
    curves = {}
    for percentile in (None, 50, 75, 90):
        if percentile is None:
            voted = votes[votes > 0]
            threshold = float(voted.mean()) if voted.size else 0.0
            label = "mean (paper default)"
        else:
            threshold = float(np.percentile(votes[votes > 0], percentile))
            label = f"P{percentile}"
        predictions = (votes > threshold).astype(int)
        precision, recall, f1 = precision_recall_f1(predictions, ds.labels)
        curves[label] = (precision, recall)
        rows.append([label, fmt(threshold, 2), fmt(precision), fmt(recall), fmt(f1)])
    table = render_table(
        ["Threshold", "delta", "Precision", "Recall", "F1"],
        rows,
        title="Fig. 13: detection under different voting thresholds",
    )
    emit("fig13_thresholds", table)

    # Shape: precision is non-decreasing as the threshold percentile
    # rises (checked through P75: P90 can overshoot past the event
    # entirely on a single short dataset, which the table still shows).
    assert curves["P75"][0] >= curves["P50"][0] - 1e-9
    assert curves["P50"][0] >= curves["mean (paper default)"][0] - 1e-9


def test_fig10_anomaly_morphology(case_study, benchmark):
    """The case-study anomaly is subtle: small amplitude change, big
    shape change (missing secondary peak)."""
    ds, _, _ = case_study
    start, end = ds.anomaly_interval
    segment = ds.test[start:end]
    context = ds.test[start - 200 : start]
    benchmark(lambda: np.abs(np.diff(segment, 2)).mean())
    # Amplitude stays in range...
    assert np.abs(segment).max() <= np.abs(context).max() * 1.3
    # ...but fine structure is gone (fewer direction changes => smoother).
    def roughness(x):
        return np.abs(np.diff(x, 2)).mean()

    assert roughness(segment) < roughness(context)


def test_bench_case_study_inference(case_study, benchmark):
    ds, detector, _ = case_study
    benchmark.pedantic(lambda: detector.detect(ds.test), rounds=2, iterations=1)
