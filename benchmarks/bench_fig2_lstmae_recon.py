"""Fig. 2 — LSTM-AE reconstructs continuous anomalies too well.

The paper's motivation: on a UCR test set, a trained LSTM-AE fits a
*continuous* anomalous sequence almost as well as normal data, so the
reconstruction-error gap that reconstruction detectors rely on never
opens.  We reproduce this with a 'duration' anomaly (a smooth plateau):
the in-anomaly reconstruction error stays within a small factor of the
normal-region error.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import LSTMAEDetector
from repro.data import DatasetSpec, make_dataset
from repro.eval import render_table

from _common import emit, fmt


@pytest.fixture(scope="module")
def smooth_anomaly_run():
    spec = DatasetSpec(
        name="fig2",
        family="sine",
        period=40,
        train_length=1500,
        test_length=1800,
        anomaly_type="duration",  # smooth, continuous anomaly
        anomaly_start=900,
        anomaly_length=160,
        noise_level=0.03,
        seed=3,
    )
    ds = make_dataset(spec)
    detector = LSTMAEDetector(trained=True, epochs=4, seed=0).fit(ds.train)
    errors = detector.score_series(ds.test)
    return ds, detector, errors


def test_fig2_reconstruction_gap_is_small(smooth_anomaly_run, benchmark):
    ds, _, errors = smooth_anomaly_run
    start, end = ds.anomaly_interval
    inside = benchmark(lambda: errors[start:end].mean())
    outside = np.concatenate([errors[: start - 50], errors[end + 50 :]]).mean()
    ratio = inside / outside

    table = render_table(
        ["Region", "mean reconstruction error"],
        [
            ["normal", fmt(outside, 4)],
            ["anomaly (continuous)", fmt(inside, 4)],
            ["ratio", fmt(ratio, 2)],
        ],
        title="Fig. 2: LSTM-AE reconstruction error on a continuous anomaly",
    )
    emit("fig2_lstmae_recon", table)

    # Shape: the gap exists but is small — far from the decisive margin a
    # threshold detector needs (paper shows near-identical reconstruction).
    assert ratio < 25.0, "continuous anomaly should NOT be trivially separable"


def test_bench_lstmae_scoring(smooth_anomaly_run, benchmark):
    ds, detector, _ = smooth_anomaly_run
    benchmark(lambda: detector.score_series(ds.test))
