"""Bulk-inference job fabric benchmark (``BENCH_jobs.json``).

The claim backing ``repro.jobs``: bulk-scoring a multi-million-point
series through the chunked job executor (4 workers, batched vectorized
chunk scoring, journaled progress) beats the pre-jobs single-process
per-window loop by >= 2.5x, while the stitched scores stay *exactly*
``np.array_equal`` to a single-pass batched reference — chunking and
journaling must not move a bit.

The measurement lives in ``scripts/bench_jobs.py`` — run that to
(re)generate ``BENCH_jobs.json`` at the repo root — and this module
re-runs it under the ``bench`` marker so ``pytest -m bench`` covers the
gate too::

    PYTHONPATH=src python -m pytest benchmarks/bench_jobs.py -m bench

Tier-1 (`pytest -x -q`) never collects it.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.bench

REPO_ROOT = Path(__file__).resolve().parents[1]
SCRIPT = REPO_ROOT / "scripts" / "bench_jobs.py"


def _load_bench():
    spec = importlib.util.spec_from_file_location("bench_jobs_script", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_jobs_script", module)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def report():
    return _load_bench().run_bench(repeats=2)


def test_stitched_scores_exactly_match_single_pass(report):
    assert report["stitched_equals_single_pass"]


def test_jobs_path_beats_per_window_loop(report):
    assert report["speedup_x"] >= 2.5, (
        f"jobs path only {report['speedup_x']:.2f}x faster "
        f"(per-window loop {report['per_window_loop_s']:.3f}s vs "
        f"jobs {report['jobs_4workers_s']:.3f}s)"
    )


def test_gate_passes(report):
    assert report["gate"]["passed"]
