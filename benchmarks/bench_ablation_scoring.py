"""Design-choice ablations beyond the paper's Fig. 9 (see DESIGN.md).

DESIGN.md calls out three scoring-stage design choices worth ablating:

1. the Sec. IV-G discord-fail exception (on / off);
2. the Eq. 8 uniform voting vs the paper's *future-work* weighted,
   normalized scoring (implemented in ``repro.core.weighting``);
3. the voting threshold rule (mean of voted points vs percentiles —
   covered per-dataset by the Fig. 13 bench; here aggregated).

Each variant runs over the shared bench archive; the table reports
PA%K F1-AUC and affiliation F1.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import TriAD
from repro.eval import bench_archive, bench_config, evaluate_predictions, render_table

from _common import emit, trained_triad

ARCHIVE_SIZE = 6

VARIANTS = {
    "uniform + exception (paper)": {},
    "uniform, no exception": {"exception_enabled": False},
    "weighted + exception": {"scoring": "weighted"},
    "weighted, no exception": {"scoring": "weighted", "exception_enabled": False},
}


def _variant_detector(base: TriAD, overrides: dict) -> TriAD:
    """Reuse the trained encoder: these variants differ only at inference."""
    detector = TriAD(base.config.with_overrides(**overrides))
    detector._result = base._result
    detector._train_series = base._train_series
    return detector


@pytest.fixture(scope="module")
def results():
    archive = bench_archive(size=ARCHIVE_SIZE)
    base_config = bench_config(seed=0)
    out = {name: {"pak_f1_auc": [], "affiliation_f1": []} for name in VARIANTS}
    for ds in archive:
        base = trained_triad(ds, base_config)
        for name, overrides in VARIANTS.items():
            detector = _variant_detector(base, overrides)
            metrics = evaluate_predictions(detector.predict(ds.test), ds.labels)
            out[name]["pak_f1_auc"].append(metrics["pak_f1_auc"])
            out[name]["affiliation_f1"].append(metrics["affiliation_f1"])
    return {
        name: {metric: float(np.mean(values)) for metric, values in metrics.items()}
        for name, metrics in out.items()
    }


def test_scoring_ablation(results, benchmark):
    rows = benchmark(
        lambda: [
            [name, f"{m['pak_f1_auc']:.3f}", f"{m['affiliation_f1']:.3f}"]
            for name, m in results.items()
        ]
    )
    table = render_table(
        ["Scoring variant", "PA%K F1-AUC", "Affiliation F1"],
        rows,
        title=f"Scoring ablation on {ARCHIVE_SIZE} datasets",
    )
    emit("ablation_scoring", table)

    # Every variant must remain a functional detector.
    for name, metrics in results.items():
        assert metrics["pak_f1_auc"] > 0.05, name
        assert metrics["affiliation_f1"] > 0.4, name
    # The paper's default should not be dominated across the board.
    default = results["uniform + exception (paper)"]
    others_better_everywhere = all(
        m["pak_f1_auc"] > default["pak_f1_auc"]
        and m["affiliation_f1"] > default["affiliation_f1"]
        for name, m in results.items()
        if name != "uniform + exception (paper)"
    )
    assert not others_better_everywhere
