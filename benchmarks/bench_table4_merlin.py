"""Table IV — TriAD vs MERLIN++ on the shortest datasets.

The paper compares event-detection accuracy (a hit = prediction within
100 points of the anomaly) and total inference time on the 62 shortest
UCR datasets: MERLIN++ scans each full test series across all candidate
lengths, while TriAD only nominates windows (tri-window / single-window)
with a trained encoder.

Expected shapes (paper Table IV): TriAD's windows beat MERLIN++'s
accuracy by ~50% relative, at roughly an order of magnitude less
inference time.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_archive
from repro.discord import merlinpp
from repro.eval import bench_config, render_table
from repro.metrics import Timer, event_detected, window_hits_event

from _common import emit, fmt, trained_triad

ARCHIVE_SIZE = 8


@pytest.fixture(scope="module")
def short_archive():
    """The 'shortest datasets' slice: smaller test splits."""
    return make_archive(size=ARCHIVE_SIZE, seed=23, train_length=1200, test_length=1200)


@pytest.fixture(scope="module")
def merlinpp_run(short_archive):
    hits, elapsed = [], 0.0
    for ds in short_archive:
        with Timer() as t:
            result = merlinpp(ds.test, 16, 128, step=8)
        elapsed += t.elapsed
        points = np.concatenate(
            [np.arange(d.index, d.index + d.length) for d in result.discords]
        ) if result.discords else np.array([])
        hits.append(event_detected(points, ds.anomaly_interval))
    return hits, elapsed


@pytest.fixture(scope="module")
def triad_run(short_archive):
    config = bench_config(seed=0)
    tri_hits, single_hits = [], []
    tri_elapsed = single_elapsed = 0.0
    for ds in short_archive:
        detector = trained_triad(ds, config)  # training time not counted,
        # matching the paper's *inference time* comparison.
        with Timer() as t:
            candidates, _, _, _ = detector.nominate_windows(ds.test)
        tri_elapsed += t.elapsed
        tri_hits.append(
            any(window_hits_event(w, ds.anomaly_interval) for w in candidates.values())
        )
        with Timer() as t:
            candidates, _, _, _ = detector.nominate_windows(ds.test)
            window = detector.select_window(ds.test, candidates)
        single_elapsed += t.elapsed
        single_hits.append(window_hits_event(window, ds.anomaly_interval))
    return tri_hits, single_hits, tri_elapsed, single_elapsed


def test_table4_accuracy_and_time(merlinpp_run, triad_run, benchmark):
    merlin_hits, merlin_time = benchmark(lambda: merlinpp_run)
    tri_hits, single_hits, tri_time, single_time = triad_run

    rows = [
        ["MERLIN++", fmt(np.mean(merlin_hits)), fmt(merlin_time / 60, 2)],
        ["TriAD (tri-window)", fmt(np.mean(tri_hits)), fmt(tri_time / 60, 2)],
        ["TriAD (single window)", fmt(np.mean(single_hits)), fmt(single_time / 60, 2)],
    ]
    table = render_table(
        ["Model", "Accuracy", "Inference Time (mins)"],
        rows,
        title=f"Table IV: {ARCHIVE_SIZE} shortest UCR-style datasets",
    )
    emit("table4_merlin", table)

    # Shape assertions: TriAD at least matches MERLIN++'s accuracy and is
    # dramatically faster at inference (paper: ~10x on far longer series;
    # our short test sets compress the gap).
    assert np.mean(tri_hits) >= np.mean(merlin_hits)
    assert tri_time < merlin_time / 4.0, (tri_time, merlin_time)


def test_bench_merlinpp_full_series(short_archive, benchmark):
    """Timed section: one full-series MERLIN++ scan."""
    ds = short_archive[0]
    benchmark.pedantic(
        lambda: merlinpp(ds.test, 16, 96, step=16), rounds=1, iterations=1
    )
