"""Dominant-period estimation.

The paper sizes detection windows at 2.5 × the series' inherent
periodicity (Sec. IV-A2), so a robust period estimator is a required
substrate.  We combine two views — the autocorrelation function's first
significant peak and the FFT's dominant harmonic — and reconcile them,
which is resilient both to harmonics (which fool the FFT) and to slow
trends (which fool the ACF).
"""

from __future__ import annotations

import numpy as np

__all__ = ["estimate_period", "autocorrelation", "acf_period", "fft_period"]


def autocorrelation(x: np.ndarray, max_lag: int | None = None) -> np.ndarray:
    """Biased sample autocorrelation up to ``max_lag`` (FFT-based)."""
    x = np.asarray(x, dtype=np.float64)
    x = x - x.mean()
    n = len(x)
    if max_lag is None:
        max_lag = n // 2
    size = int(2 ** np.ceil(np.log2(2 * n)))
    spectrum = np.fft.rfft(x, size)
    acf = np.fft.irfft(spectrum * np.conj(spectrum))[: max_lag + 1]
    if acf[0] <= 0:
        return np.zeros(max_lag + 1)
    return acf / acf[0]


def acf_period(x: np.ndarray, min_period: int = 2) -> int | None:
    """Lag of the first prominent autocorrelation peak, or ``None``."""
    acf = autocorrelation(x)
    if len(acf) <= min_period + 1:
        return None
    # A peak: local maximum above a mild significance floor.
    floor = 2.0 / np.sqrt(len(x))
    best_lag, best_value = None, floor
    for lag in range(min_period, len(acf) - 1):
        if acf[lag] > acf[lag - 1] and acf[lag] >= acf[lag + 1] and acf[lag] > best_value:
            best_lag, best_value = lag, acf[lag]
    return best_lag


def fft_period(x: np.ndarray) -> int | None:
    """Period implied by the strongest non-DC FFT harmonic, or ``None``."""
    x = np.asarray(x, dtype=np.float64)
    n = len(x)
    if n < 4:
        return None
    power = np.abs(np.fft.rfft(x - x.mean())) ** 2
    if len(power) <= 1:
        return None
    k = int(np.argmax(power[1:]) + 1)
    period = int(round(n / k))
    return period if period >= 2 else None


def estimate_period(x: np.ndarray, default: int = 64, max_period: int | None = None) -> int:
    """Estimate the dominant period of ``x``.

    Prefers the ACF peak when the FFT harmonic is consistent with it (the
    FFT often locks onto an overtone at ``period/2`` or ``period/3``);
    falls back gracefully when either view is unavailable.

    Parameters
    ----------
    x:
        The series (typically a training split, anomaly-free).
    default:
        Returned when no periodic structure is detectable.
    max_period:
        Upper clamp; defaults to ``len(x) // 4`` so that a window of
        2.5 periods always fits several times into the series.
    """
    x = np.asarray(x, dtype=np.float64)
    if max_period is None:
        max_period = max(len(x) // 4, 2)

    from_acf = acf_period(x)
    from_fft = fft_period(x)

    if from_acf is None and from_fft is None:
        period = default
    elif from_acf is None:
        period = from_fft
    elif from_fft is None:
        period = from_acf
    else:
        # If the FFT found an overtone of the ACF period, trust the ACF.
        ratio = from_acf / from_fft
        if abs(ratio - round(ratio)) < 0.15 and round(ratio) >= 1:
            period = from_acf
        else:
            period = from_fft
    return int(np.clip(period, 2, max_period))
