"""Signal-processing substrate: FFT features, Butterworth filtering,
period estimation, decomposition, normalization, and windowing."""

from .butterworth import (
    butter_bandpass,
    butter_highpass,
    butter_lowpass,
    butterworth_smooth,
    filtfilt,
    lfilter,
)
from .changepoint import CusumResult, binary_segmentation, cusum, segment_costs
from .decompose import Decomposition, decompose, moving_average, residual_component
from .fft import (
    dominant_frequency,
    frequency_features,
    spectral_amplitude,
    spectral_phase,
    spectral_power,
)
from .normalize import minmax, robust_zscore, znorm_windows, zscore
from .period import acf_period, autocorrelation, estimate_period, fft_period
from .resample import (
    detrend_linear,
    downsample_mean,
    resample_fourier,
    resample_linear,
)
from .spectral import hann_window, spectrogram, stft, welch_psd
from .windows import WindowPlan, coverage_mask, plan_windows, sliding_windows

__all__ = [
    "CusumResult",
    "binary_segmentation",
    "cusum",
    "segment_costs",
    "butter_bandpass",
    "butter_highpass",
    "butter_lowpass",
    "butterworth_smooth",
    "filtfilt",
    "lfilter",
    "Decomposition",
    "decompose",
    "moving_average",
    "residual_component",
    "dominant_frequency",
    "frequency_features",
    "spectral_amplitude",
    "spectral_phase",
    "spectral_power",
    "minmax",
    "robust_zscore",
    "znorm_windows",
    "zscore",
    "acf_period",
    "autocorrelation",
    "estimate_period",
    "fft_period",
    "WindowPlan",
    "coverage_mask",
    "plan_windows",
    "sliding_windows",
    "detrend_linear",
    "downsample_mean",
    "resample_fourier",
    "resample_linear",
    "hann_window",
    "spectrogram",
    "stft",
    "welch_psd",
]
