"""Seasonal–trend–residual decomposition.

TriAD's residual encoder consumes the series with its periodic trend
removed (Sec. III-B: "derived by eliminating the underlying periodic
trends from the original input").  This module implements a classical
moving-average decomposition — a lightweight STL analogue — sufficient
for that purpose and fully deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Decomposition",
    "decompose",
    "residual_component",
    "residual_components",
    "moving_average",
]


@dataclass(frozen=True)
class Decomposition:
    """Additive decomposition ``x = trend + seasonal + residual``."""

    trend: np.ndarray
    seasonal: np.ndarray
    residual: np.ndarray

    def reconstruct(self) -> np.ndarray:
        return self.trend + self.seasonal + self.residual


def moving_average(x: np.ndarray, window: int) -> np.ndarray:
    """Centered moving average with reflected edges (same length as input)."""
    x = np.asarray(x, dtype=np.float64)
    if window <= 1:
        return x.copy()
    window = min(window, len(x))
    pad_left = window // 2
    pad_right = window - 1 - pad_left
    padded = np.pad(x, (pad_left, pad_right), mode="reflect")
    kernel = np.ones(window) / window
    return np.convolve(padded, kernel, mode="valid")


def decompose(x: np.ndarray, period: int) -> Decomposition:
    """Classical additive decomposition with known ``period``.

    The trend is a centered moving average of one period; the seasonal
    component is the per-phase mean of the detrended series, centered to
    sum to zero; the residual is what remains.
    """
    x = np.asarray(x, dtype=np.float64)
    period = max(int(period), 1)
    trend = moving_average(x, period)
    detrended = x - trend

    if period == 1:
        seasonal = np.zeros_like(x)
    else:
        phases = np.arange(len(x)) % period
        seasonal_profile = np.zeros(period)
        for phase in range(period):
            values = detrended[phases == phase]
            seasonal_profile[phase] = values.mean() if len(values) else 0.0
        seasonal_profile -= seasonal_profile.mean()
        seasonal = seasonal_profile[phases]

    residual = x - trend - seasonal
    return Decomposition(trend=trend, seasonal=seasonal, residual=residual)


def residual_component(x: np.ndarray, period: int) -> np.ndarray:
    """Residual channel for TriAD's residual encoder, z-normalized.

    Normalization keeps the residual scale comparable across datasets so
    a single encoder architecture works archive-wide.
    """
    residual = decompose(x, period).residual
    std = residual.std()
    if std < 1e-12:
        return np.zeros_like(residual)
    return (residual - residual.mean()) / std


def residual_components(windows: np.ndarray, period: int) -> np.ndarray:
    """Batched :func:`residual_component` over ``(batch, length)`` windows.

    Bit-identical to stacking per-window calls (the feature-cache tests
    assert exact equality): the trend still goes through the same
    per-row ``np.convolve``, and every reduction (per-phase means,
    centering, z-normalization) runs along contiguous rows so NumPy's
    pairwise summation visits elements in the same order as the 1-D
    path.  Only the Python-level per-window and per-phase loop overhead
    is amortized across the batch — the hot path of tri-domain feature
    extraction (~90% of :func:`repro.pipeline.extract_all_domains`).
    """
    windows = np.atleast_2d(np.asarray(windows, dtype=np.float64))
    batch, length = windows.shape
    period = max(int(period), 1)

    window = min(period, length)
    if window <= 1:
        trend = windows.copy()
    else:
        pad_left = window // 2
        pad_right = window - 1 - pad_left
        padded = np.pad(windows, ((0, 0), (pad_left, pad_right)), mode="reflect")
        kernel = np.ones(window) / window
        trend = np.stack([np.convolve(row, kernel, mode="valid") for row in padded])
    detrended = windows - trend

    if period == 1:
        seasonal = np.zeros_like(windows)
    else:
        phases = np.arange(length) % period
        profile = np.zeros((batch, period))
        for phase in range(period):
            columns = detrended[:, phases == phase]
            if columns.shape[1]:
                profile[:, phase] = columns.mean(axis=1)
        profile -= profile.mean(axis=1, keepdims=True)
        seasonal = profile[:, phases]

    residual = windows - trend - seasonal
    std = residual.std(axis=1)
    mean = residual.mean(axis=1)
    live = std >= 1e-12
    out = np.zeros_like(residual)
    if live.any():
        out[live] = (residual[live] - mean[live, None]) / std[live, None]
    return out
