"""Resampling and detrending utilities.

Useful when running the detector on archives with mismatched sampling
rates, or before spectral analysis.
"""

from __future__ import annotations

import numpy as np

__all__ = ["resample_linear", "resample_fourier", "detrend_linear", "downsample_mean"]


def resample_linear(x: np.ndarray, target_length: int) -> np.ndarray:
    """Resample by linear interpolation onto a uniform grid."""
    x = np.asarray(x, dtype=np.float64)
    if target_length < 1:
        raise ValueError("target_length must be positive")
    if len(x) == target_length:
        return x.copy()
    source = np.linspace(0.0, 1.0, len(x))
    target = np.linspace(0.0, 1.0, target_length)
    return np.interp(target, source, x)


def resample_fourier(x: np.ndarray, target_length: int) -> np.ndarray:
    """Fourier-domain resampling (band-limited; matches
    ``scipy.signal.resample`` for even/odd combinations we test)."""
    x = np.asarray(x, dtype=np.float64)
    n = len(x)
    if target_length < 1:
        raise ValueError("target_length must be positive")
    spectrum = np.fft.rfft(x)
    out_bins = target_length // 2 + 1
    resized = np.zeros(out_bins, dtype=complex)
    keep = min(len(spectrum), out_bins)
    resized[:keep] = spectrum[:keep]
    # Nyquist-bin conventions (matching scipy.signal.resample):
    # - downsampling to an even length folds the +/- Nyquist components
    #   together: the new Nyquist bin is 2 * Re(X[k_nyq]);
    # - upsampling from an even length splits the source Nyquist energy
    #   between +/- bins: the copied bin is halved.
    if target_length < n and target_length % 2 == 0 and keep == out_bins:
        resized[-1] = 2.0 * resized[-1].real
    elif target_length > n and n % 2 == 0:
        resized[n // 2] *= 0.5
    return np.fft.irfft(resized, target_length) * (target_length / n)


def detrend_linear(x: np.ndarray) -> np.ndarray:
    """Remove the least-squares straight line from ``x``."""
    x = np.asarray(x, dtype=np.float64)
    t = np.arange(len(x), dtype=np.float64)
    slope, intercept = np.polyfit(t, x, 1)
    return x - (slope * t + intercept)


def downsample_mean(x: np.ndarray, factor: int) -> np.ndarray:
    """Decimate by averaging non-overlapping blocks of ``factor`` samples.

    A trailing partial block is averaged as-is.
    """
    x = np.asarray(x, dtype=np.float64)
    if factor < 1:
        raise ValueError("factor must be positive")
    if factor == 1:
        return x.copy()
    full = len(x) // factor
    head = x[: full * factor].reshape(full, factor).mean(axis=1)
    if len(x) % factor:
        return np.concatenate([head, [x[full * factor :].mean()]])
    return head
