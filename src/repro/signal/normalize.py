"""Normalization utilities shared across the library."""

from __future__ import annotations

import numpy as np

__all__ = ["zscore", "minmax", "znorm_windows", "robust_zscore"]

_EPS = 1e-12


def zscore(x: np.ndarray, axis=None) -> np.ndarray:
    """Standard z-normalization; constant inputs map to zeros."""
    x = np.asarray(x, dtype=np.float64)
    mean = x.mean(axis=axis, keepdims=axis is not None)
    std = x.std(axis=axis, keepdims=axis is not None)
    return (x - mean) / np.maximum(std, _EPS)


def robust_zscore(x: np.ndarray) -> np.ndarray:
    """Median/MAD-based z-score, resilient to the anomaly itself."""
    x = np.asarray(x, dtype=np.float64)
    median = np.median(x)
    mad = np.median(np.abs(x - median))
    scale = 1.4826 * mad  # consistent with std under normality
    return (x - median) / max(scale, _EPS)


def minmax(x: np.ndarray) -> np.ndarray:
    """Scale into [0, 1]; constant inputs map to zeros."""
    x = np.asarray(x, dtype=np.float64)
    lo, hi = x.min(), x.max()
    return (x - lo) / max(hi - lo, _EPS)


def znorm_windows(windows: np.ndarray) -> np.ndarray:
    """Z-normalize each row of a ``(num_windows, length)`` array.

    This is the normalization used inside discord distance computations,
    where amplitude offsets must not dominate shape differences.
    """
    windows = np.asarray(windows, dtype=np.float64)
    mean = windows.mean(axis=-1, keepdims=True)
    std = windows.std(axis=-1, keepdims=True)
    return (windows - mean) / np.maximum(std, _EPS)
