"""Butterworth low-pass filter, implemented from first principles.

The paper's *warping* augmentation (Eq. 4) passes a window through a
Butterworth filter to obtain a smooth curve that emphasizes the primary
frequencies.  We implement the full chain ourselves — analog prototype
poles, bilinear transform, direct-form-II-transposed filtering, and
zero-phase forward-backward filtering — and validate it against
``scipy.signal`` in the test suite.
"""

from __future__ import annotations

import cmath
import math

import numpy as np

__all__ = [
    "butter_lowpass",
    "butter_highpass",
    "butter_bandpass",
    "lfilter",
    "filtfilt",
    "butterworth_smooth",
]


def butter_lowpass(order: int, cutoff: float) -> tuple[np.ndarray, np.ndarray]:
    """Design a digital Butterworth low-pass filter.

    Parameters
    ----------
    order:
        Filter order (number of analog prototype poles).
    cutoff:
        Normalized cutoff in ``(0, 1)`` where 1 is the Nyquist frequency,
        matching :func:`scipy.signal.butter` conventions.

    Returns
    -------
    ``(b, a)`` transfer-function coefficients with ``a[0] == 1``.
    """
    if order < 1:
        raise ValueError("order must be >= 1")
    if not 0.0 < cutoff < 1.0:
        raise ValueError("cutoff must lie strictly between 0 and 1 (Nyquist)")

    # Analog Butterworth prototype: poles evenly spaced on the unit
    # circle's left half-plane.
    prototype_poles = [
        cmath.exp(1j * math.pi * (2.0 * k + order + 1.0) / (2.0 * order))
        for k in range(order)
    ]

    # Pre-warp the digital cutoff so the bilinear transform lands it at
    # the requested frequency (sampling period normalized to 2).
    warped = 2.0 * math.tan(math.pi * cutoff / 2.0)
    poles = [warped * p for p in prototype_poles]
    gain = warped**order

    # Bilinear transform: s = 2 (z-1)/(z+1).
    fs2 = 2.0
    z_poles = [(fs2 + p) / (fs2 - p) for p in poles]
    z_zeros = [-1.0] * order  # low-pass zeros all map to Nyquist
    gain *= (1.0 / np.prod([fs2 - p for p in poles])).real

    b = gain * np.poly(z_zeros)
    a = np.poly(z_poles)
    return np.real(b), np.real(a)


def butter_highpass(order: int, cutoff: float) -> tuple[np.ndarray, np.ndarray]:
    """Design a digital Butterworth high-pass filter.

    Uses the standard low-pass-to-high-pass analog transformation
    ``s -> warped / s`` on the Butterworth prototype, followed by the
    bilinear transform; matches ``scipy.signal.butter(..., 'highpass')``.
    """
    if order < 1:
        raise ValueError("order must be >= 1")
    if not 0.0 < cutoff < 1.0:
        raise ValueError("cutoff must lie strictly between 0 and 1 (Nyquist)")

    prototype_poles = [
        cmath.exp(1j * math.pi * (2.0 * k + order + 1.0) / (2.0 * order))
        for k in range(order)
    ]
    warped = 2.0 * math.tan(math.pi * cutoff / 2.0)
    # LP -> HP: poles map to warped/p; zeros appear at s = 0 (DC).
    poles = [warped / p for p in prototype_poles]
    gain = 1.0  # product of (-p_lp) terms cancels against prototype gain

    fs2 = 2.0
    z_poles = [(fs2 + p) / (fs2 - p) for p in poles]
    z_zeros = [1.0] * order  # DC zeros map to z = 1
    gain *= np.real(np.prod([fs2 - 0.0 for _ in range(order)]) / np.prod([fs2 - p for p in poles]))

    b = gain * np.poly(z_zeros)
    a = np.poly(z_poles)
    return np.real(b), np.real(a)


def butter_bandpass(
    order: int, low: float, high: float
) -> tuple[np.ndarray, np.ndarray]:
    """Digital Butterworth band-pass as a high-pass/low-pass cascade.

    A pragmatic composition (order each) whose passband matches the
    requested band; exactness against scipy's direct band-pass design is
    not claimed, but magnitude response is validated in tests.
    """
    if not 0.0 < low < high < 1.0:
        raise ValueError("require 0 < low < high < 1")
    b_hp, a_hp = butter_highpass(order, low)
    b_lp, a_lp = butter_lowpass(order, high)
    return np.convolve(b_hp, b_lp), np.convolve(a_hp, a_lp)


def lfilter(b: np.ndarray, a: np.ndarray, x: np.ndarray, zi: np.ndarray | None = None):
    """IIR filter in direct form II transposed.

    Mirrors :func:`scipy.signal.lfilter` for 1-D input.  Returns the
    filtered signal, and the final filter state when ``zi`` is given.
    """
    b = np.asarray(b, dtype=np.float64)
    a = np.asarray(a, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    if a[0] != 1.0:
        b = b / a[0]
        a = a / a[0]
    n = max(len(a), len(b))
    b = np.pad(b, (0, n - len(b)))
    a = np.pad(a, (0, n - len(a)))
    state = np.zeros(n - 1) if zi is None else np.array(zi, dtype=np.float64)
    y = np.empty_like(x)
    for i, value in enumerate(x):
        out = b[0] * value + state[0] if n > 1 else b[0] * value
        for j in range(n - 2):
            state[j] = b[j + 1] * value + state[j + 1] - a[j + 1] * out
        if n > 1:
            state[n - 2] = b[n - 1] * value - a[n - 1] * out
        y[i] = out
    if zi is None:
        return y
    return y, state


def _initial_state(b: np.ndarray, a: np.ndarray) -> np.ndarray:
    """Steady-state filter state for a unit step (lfilter_zi equivalent)."""
    n = max(len(a), len(b))
    b = np.pad(np.asarray(b, dtype=np.float64), (0, n - len(b)))
    a = np.pad(np.asarray(a, dtype=np.float64), (0, n - len(a)))
    if n == 1:
        return np.zeros(0)
    # Solve (I - A) zi = B where A is the state-transition companion matrix.
    companion = np.zeros((n - 1, n - 1))
    companion[:, 0] = -a[1:]
    companion[:-1, 1:] = np.eye(n - 2)
    rhs = b[1:] - a[1:] * b[0]
    return np.linalg.solve(np.eye(n - 1) - companion, rhs)


def filtfilt(b: np.ndarray, a: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Zero-phase filtering: forward pass, then backward pass.

    Uses odd-reflection edge padding (as scipy does) so transients decay
    in the padding rather than the signal.
    """
    x = np.asarray(x, dtype=np.float64)
    n = max(len(a), len(b))
    pad = 3 * (n - 1)
    if len(x) <= pad:
        raise ValueError(f"input length {len(x)} too short for filtfilt pad {pad}")

    front = 2.0 * x[0] - x[pad:0:-1]
    back = 2.0 * x[-1] - x[-2 : -pad - 2 : -1]
    extended = np.concatenate([front, x, back])

    zi = _initial_state(b, a)
    forward, _ = lfilter(b, a, extended, zi=zi * extended[0])
    reversed_forward = forward[::-1]
    backward, _ = lfilter(b, a, reversed_forward, zi=zi * reversed_forward[0])
    result = backward[::-1]
    return result[pad : pad + len(x)]


def butterworth_smooth(x: np.ndarray, cutoff: float, order: int = 3) -> np.ndarray:
    """Zero-phase Butterworth low-pass of ``x`` — the paper's warp curve."""
    b, a = butter_lowpass(order, cutoff)
    return filtfilt(b, a, x)
