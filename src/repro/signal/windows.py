"""Time series segmentation into fixed-length windows.

The paper segments each series into windows of 2.5 × the estimated
period with a stride of a quarter window (Sec. IV-A2).  These helpers
produce the windows together with their start offsets so detections can
be mapped back to absolute timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .period import estimate_period

__all__ = ["WindowPlan", "sliding_windows", "plan_windows", "coverage_mask"]


@dataclass(frozen=True)
class WindowPlan:
    """Segmentation parameters for one dataset.

    Attributes
    ----------
    length:
        Window length (2.5 × period by default).
    stride:
        Hop between consecutive windows (length // 4 by default).
    period:
        The period estimate the plan is based on.
    """

    length: int
    stride: int
    period: int


def plan_windows(
    train: np.ndarray,
    periods_per_window: float = 2.5,
    stride_fraction: float = 0.25,
    min_length: int = 16,
    max_length: int | None = None,
) -> WindowPlan:
    """Derive the paper's segmentation plan from the training split."""
    period = estimate_period(train)
    length = max(int(round(periods_per_window * period)), min_length)
    if max_length is not None:
        length = min(length, max_length)
    length = min(length, len(train))
    stride = max(int(round(length * stride_fraction)), 1)
    return WindowPlan(length=length, stride=stride, period=period)


def sliding_windows(
    x: np.ndarray, length: int, stride: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    """Slice ``x`` into overlapping windows.

    Returns
    -------
    windows:
        Array of shape ``(count, length)`` (a copy, safe to mutate).
    starts:
        Start index of each window within ``x``.  The final window is
        anchored to the end of the series so full coverage is guaranteed
        even when ``len(x) - length`` is not a multiple of ``stride``.
    """
    x = np.asarray(x, dtype=np.float64)
    if length > len(x):
        raise ValueError(f"window length {length} exceeds series length {len(x)}")
    if stride < 1:
        raise ValueError("stride must be positive")
    starts = list(range(0, len(x) - length + 1, stride))
    last = len(x) - length
    if starts[-1] != last:
        starts.append(last)
    starts = np.asarray(starts, dtype=np.int64)
    windows = np.stack([x[s : s + length] for s in starts])
    return windows, starts


def coverage_mask(starts: np.ndarray, length: int, total: int) -> np.ndarray:
    """Boolean mask of timestamps covered by at least one window."""
    mask = np.zeros(total, dtype=bool)
    for start in np.asarray(starts, dtype=np.int64):
        mask[start : start + length] = True
    return mask
