"""Change-point detection: CUSUM and binary segmentation.

Level-shift and trend anomalies are change-points in disguise; the
paper's related work (e.g. its ref. [6] on contrastive change-point
detection) sits on exactly this substrate.  Two classical detectors:

- :func:`cusum` — the one-sided cumulative-sum statistic, flagging when
  drift from the running mean exceeds a threshold;
- :func:`binary_segmentation` — recursively split the series at the
  point that maximally reduces the summed squared error, until the gain
  falls below a penalty (a PELT-flavored stopping rule).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CusumResult", "cusum", "binary_segmentation", "segment_costs"]


@dataclass(frozen=True)
class CusumResult:
    """CUSUM statistics and the indices where an alarm fired."""

    positive: np.ndarray
    negative: np.ndarray
    alarms: np.ndarray


def cusum(
    x: np.ndarray,
    threshold: float = 5.0,
    drift: float = 0.5,
    baseline: int | None = None,
) -> CusumResult:
    """Two-sided standardized CUSUM.

    Parameters
    ----------
    threshold:
        Alarm level in standard deviations of the *baseline* segment.
    drift:
        Slack per step (also in baseline stds); larger values ignore
        slower drifts.
    baseline:
        Number of leading points treated as in-control and used to
        estimate the reference mean/std (default: first quarter, capped
        at 200).  Standardizing by the global statistics would let the
        change itself contaminate the reference.

    The statistic resets after each alarm, so multiple change-points
    yield multiple alarms.
    """
    x = np.asarray(x, dtype=np.float64)
    if len(x) < 2:
        raise ValueError("series too short for CUSUM")
    if baseline is None:
        baseline = min(max(len(x) // 4, 2), 200)
    reference = x[:baseline]
    std = reference.std()
    if std < 1e-12:
        std = x.std()
    if std < 1e-12:
        zero = np.zeros(len(x))
        return CusumResult(positive=zero, negative=zero.copy(), alarms=np.array([], dtype=np.int64))
    z = (x - reference.mean()) / std

    positive = np.zeros(len(z))
    negative = np.zeros(len(z))
    alarms: list[int] = []
    up = down = 0.0
    for i, value in enumerate(z):
        up = max(0.0, up + value - drift)
        down = max(0.0, down - value - drift)
        positive[i] = up
        negative[i] = down
        if up > threshold or down > threshold:
            alarms.append(i)
            up = down = 0.0
    return CusumResult(
        positive=positive, negative=negative, alarms=np.asarray(alarms, dtype=np.int64)
    )


def segment_costs(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Prefix sums enabling O(1) squared-error cost of any segment."""
    x = np.asarray(x, dtype=np.float64)
    sums = np.concatenate([[0.0], np.cumsum(x)])
    squares = np.concatenate([[0.0], np.cumsum(x**2)])
    return sums, squares


def _sse(sums: np.ndarray, squares: np.ndarray, lo: int, hi: int) -> float:
    """Squared error of x[lo:hi] around its own mean (hi exclusive)."""
    n = hi - lo
    if n <= 0:
        return 0.0
    total = sums[hi] - sums[lo]
    total_sq = squares[hi] - squares[lo]
    return float(total_sq - total * total / n)


def binary_segmentation(
    x: np.ndarray,
    penalty: float | None = None,
    min_size: int = 5,
    max_changepoints: int = 32,
) -> list[int]:
    """Change-point indices by recursive binary segmentation (L2 cost).

    A split is accepted while it reduces the summed squared error by
    more than ``penalty`` (default: BIC-flavored ``2 * var * log(n)``).
    Returned indices are sorted split positions (each the first index of
    the right-hand segment).
    """
    x = np.asarray(x, dtype=np.float64)
    n = len(x)
    if n < 2 * min_size:
        return []
    if penalty is None:
        penalty = 2.0 * x.var() * np.log(max(n, 2))
    sums, squares = segment_costs(x)

    changepoints: list[int] = []
    stack: list[tuple[int, int]] = [(0, n)]
    while stack and len(changepoints) < max_changepoints:
        lo, hi = stack.pop()
        if hi - lo < 2 * min_size:
            continue
        base = _sse(sums, squares, lo, hi)
        best_gain, best_split = 0.0, -1
        for split in range(lo + min_size, hi - min_size + 1):
            gain = base - _sse(sums, squares, lo, split) - _sse(sums, squares, split, hi)
            if gain > best_gain:
                best_gain, best_split = gain, split
        if best_split >= 0 and best_gain > penalty:
            changepoints.append(best_split)
            stack.append((lo, best_split))
            stack.append((best_split, hi))
    return sorted(changepoints)
