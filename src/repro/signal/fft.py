"""Frequency-domain feature sets (paper Table I).

The paper converts each time series window to the frequency domain with
the discrete Fourier transform (Definition 2, Eq. 2) and hand-crafts
three features per harmonic: spectral amplitude, spectral phase, and
spectral power.  These become the 3-channel input of TriAD's frequency
encoder.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "spectral_amplitude",
    "spectral_phase",
    "spectral_power",
    "frequency_features",
    "dominant_frequency",
]


def spectral_amplitude(x: np.ndarray) -> np.ndarray:
    """Amplitude ``A(X[k]) = sqrt(Re^2 + Im^2)`` of each harmonic."""
    return np.abs(np.fft.fft(np.asarray(x, dtype=np.float64)))


def spectral_phase(x: np.ndarray) -> np.ndarray:
    """Phase of each harmonic.

    The paper's Table I prints ``arctan(Re/Im)``; we use the standard
    four-quadrant ``arctan2(Im, Re)``, which is what the released TriAD
    code computes and what keeps the phase continuous in all quadrants.
    """
    spectrum = np.fft.fft(np.asarray(x, dtype=np.float64))
    return np.arctan2(spectrum.imag, spectrum.real)


def spectral_power(x: np.ndarray) -> np.ndarray:
    """Power ``P(X[k]) = Re^2 + Im^2`` of each harmonic."""
    spectrum = np.fft.fft(np.asarray(x, dtype=np.float64))
    return spectrum.real**2 + spectrum.imag**2


def frequency_features(x: np.ndarray) -> np.ndarray:
    """Stack Table I features into the frequency encoder's 3-channel input.

    Parameters
    ----------
    x:
        Window of shape ``(length,)`` or batch of shape ``(batch, length)``.

    Returns
    -------
    Array of shape ``(3, length)`` or ``(batch, 3, length)`` with channels
    ``[amplitude, phase, power]``.  Amplitude and power are log-compressed
    (``log1p``) so a handful of dominant harmonics do not swamp the
    encoder, then each channel is z-normalized per window.
    """
    x = np.asarray(x, dtype=np.float64)
    batched = x.ndim == 2
    if not batched:
        x = x[None, :]
    # Z-normalize each window first (as the temporal channel does), so
    # the frequency view is invariant to affine amplitude transforms and
    # one encoder serves datasets of arbitrary scale.
    mean_in = x.mean(axis=-1, keepdims=True)
    std_in = x.std(axis=-1, keepdims=True)
    x = (x - mean_in) / np.maximum(std_in, 1e-8)
    spectrum = np.fft.fft(x, axis=-1)
    magnitude = np.abs(spectrum)
    amplitude = np.log1p(magnitude)
    # Phase is undefined (and numerically unstable) for near-zero bins;
    # zero it there so floating-point dust cannot flip its sign.
    negligible = magnitude < 1e-9 * magnitude.max(axis=-1, keepdims=True)
    phase = np.where(negligible, 0.0, np.arctan2(spectrum.imag, spectrum.real))
    power = np.log1p(magnitude**2)
    features = np.stack([amplitude, phase, power], axis=1)
    mean = features.mean(axis=-1, keepdims=True)
    std = features.std(axis=-1, keepdims=True)
    features = (features - mean) / np.maximum(std, 1e-8)
    return features if batched else features[0]


def dominant_frequency(x: np.ndarray) -> float:
    """Index (in cycles per window) of the strongest non-DC harmonic."""
    x = np.asarray(x, dtype=np.float64)
    power = np.abs(np.fft.rfft(x - x.mean())) ** 2
    if len(power) <= 1:
        return 0.0
    return float(np.argmax(power[1:]) + 1)
