"""Short-time spectral analysis: STFT, spectrogram, Welch PSD.

Extends the frequency-domain substrate beyond the per-window FFT
features of Table I — useful for inspecting how a series' spectral
content drifts around an anomaly, and validated against
``scipy.signal`` in the test suite.
"""

from __future__ import annotations

import numpy as np

__all__ = ["stft", "spectrogram", "welch_psd", "hann_window"]


def hann_window(length: int) -> np.ndarray:
    """Periodic Hann window of the given length."""
    if length < 1:
        raise ValueError("length must be positive")
    if length == 1:
        return np.ones(1)
    return 0.5 - 0.5 * np.cos(2.0 * np.pi * np.arange(length) / length)


def _frames(x: np.ndarray, frame_length: int, hop: int) -> np.ndarray:
    """Overlapping frames of ``x`` as a (num_frames, frame_length) view."""
    if frame_length > len(x):
        raise ValueError("frame length exceeds signal length")
    if hop < 1:
        raise ValueError("hop must be positive")
    count = (len(x) - frame_length) // hop + 1
    view = np.lib.stride_tricks.sliding_window_view(x, frame_length)
    return view[::hop][:count]


def stft(
    x: np.ndarray, frame_length: int = 128, hop: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Short-time Fourier transform with a Hann window.

    Returns
    -------
    transform:
        Complex array of shape ``(num_frames, frame_length // 2 + 1)``.
    centers:
        Center sample index of each frame.
    """
    x = np.asarray(x, dtype=np.float64)
    hop = hop or frame_length // 2
    frames = _frames(x, frame_length, hop)
    window = hann_window(frame_length)
    transform = np.fft.rfft(frames * window, axis=1)
    centers = np.arange(len(frames)) * hop + frame_length // 2
    return transform, centers


def spectrogram(
    x: np.ndarray, frame_length: int = 128, hop: int | None = None, log: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """Power spectrogram (optionally log-compressed) from :func:`stft`."""
    transform, centers = stft(x, frame_length, hop)
    power = np.abs(transform) ** 2
    if log:
        power = np.log1p(power)
    return power, centers


def welch_psd(
    x: np.ndarray, frame_length: int = 256, hop: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Welch power spectral density estimate.

    Averages windowed periodograms over 50%-overlapping segments
    (per-segment normalization matches ``scipy.signal.welch`` with a
    Hann window and ``fs=1``).

    Returns
    -------
    frequencies:
        Normalized frequencies in cycles/sample, 0 to 0.5.
    psd:
        Power spectral density per frequency.
    """
    x = np.asarray(x, dtype=np.float64)
    frame_length = min(frame_length, len(x))
    hop = hop or frame_length // 2
    frames = _frames(x, frame_length, hop)
    window = hann_window(frame_length)
    scale = 1.0 / (window**2).sum()
    spectra = np.abs(np.fft.rfft((frames - frames.mean(axis=1, keepdims=True)) * window, axis=1)) ** 2
    psd = spectra.mean(axis=0) * scale
    # One-sided spectrum: double all bins except DC (and Nyquist if present).
    psd[1:] *= 2.0
    if frame_length % 2 == 0:
        psd[-1] /= 2.0
    frequencies = np.fft.rfftfreq(frame_length)
    return frequencies, psd
