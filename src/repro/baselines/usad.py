"""USAD baseline (Audibert et al., KDD 2020).

UnSupervised Anomaly Detection: two autoencoders share an encoder.
Phase 1 trains both for reconstruction; phase 2 is adversarial — AE1
tries to fool AE2's reconstruction of its own output while AE2 learns
to tell reconstructed from real windows.  The anomaly score blends both
reconstruction errors.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..signal.normalize import zscore
from .base import BaseDetector

__all__ = ["USADDetector"]


def _mlp(sizes: list[int], rng: np.random.Generator) -> nn.Sequential:
    layers: list[nn.Module] = []
    for i in range(len(sizes) - 1):
        layers.append(nn.Linear(sizes[i], sizes[i + 1], rng=rng))
        if i < len(sizes) - 2:
            layers.append(nn.ReLU())
    return nn.Sequential(*layers)


class USADDetector(BaseDetector):
    """USAD with dense encoder/decoders over flattened windows."""

    name = "USAD"

    def __init__(
        self,
        window: int = 32,
        latent: int = 8,
        epochs: int = 6,
        batch_size: int = 32,
        learning_rate: float = 1e-3,
        alpha: float = 0.5,
        max_windows: int = 256,
        seed: int = 0,
        threshold_sigma: float = 3.0,
    ) -> None:
        super().__init__(threshold_sigma)
        self.window = window
        self.latent = latent
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.alpha = alpha
        self.max_windows = max_windows
        self.seed = seed
        self.encoder: nn.Sequential | None = None
        self.decoder1: nn.Sequential | None = None
        self.decoder2: nn.Sequential | None = None

    def fit(self, train_series: np.ndarray) -> "USADDetector":
        series = self._remember_train(train_series)
        rng = np.random.default_rng(self.seed)
        w = min(self.window, len(series))
        self.encoder = _mlp([w, w // 2, self.latent], rng)
        self.decoder1 = _mlp([self.latent, w // 2, w], rng)
        self.decoder2 = _mlp([self.latent, w // 2, w], rng)

        windows, _ = self._windows(zscore(series), w, max(w // 2, 1))
        if len(windows) > self.max_windows:
            windows = windows[rng.choice(len(windows), self.max_windows, replace=False)]

        params1 = self.encoder.parameters() + self.decoder1.parameters()
        params2 = self.encoder.parameters() + self.decoder2.parameters()
        opt1 = nn.Adam(params1, lr=self.learning_rate)
        opt2 = nn.Adam(params2, lr=self.learning_rate)

        for epoch in range(1, self.epochs + 1):
            weight = 1.0 / epoch  # USAD's epoch-annealed loss weighting
            order = rng.permutation(len(windows))
            for start in range(0, len(order), self.batch_size):
                batch = nn.Tensor(windows[order[start : start + self.batch_size]])
                if batch.shape[0] == 0:
                    continue
                # AE1: reconstruct, and fool AE2 on its reconstruction.
                z = self.encoder(batch)
                w1 = self.decoder1(z)
                w2_of_w1 = self.decoder2(self.encoder(w1))
                loss1 = (
                    ((batch - w1) ** 2).mean() * weight
                    + ((batch - w2_of_w1) ** 2).mean() * (1.0 - weight)
                )
                opt1.zero_grad()
                loss1.backward()
                opt1.step()
                # AE2: reconstruct, and detect AE1's reconstruction.
                z = self.encoder(batch)
                w1 = self.decoder1(z)
                w2 = self.decoder2(z)
                w2_of_w1 = self.decoder2(self.encoder(w1.detach()))
                loss2 = (
                    ((batch - w2) ** 2).mean() * weight
                    - ((batch - w2_of_w1) ** 2).mean() * (1.0 - weight)
                )
                opt2.zero_grad()
                loss2.backward()
                opt2.step()
        return self

    def score_series(self, series: np.ndarray) -> np.ndarray:
        if self.encoder is None:
            raise RuntimeError("fit() first")
        normalized = zscore(series)
        w = min(self.window, len(series))
        windows, starts = self._windows(normalized, w, max(w // 2, 1))
        with nn.no_grad():
            batch = nn.Tensor(windows)
            z = self.encoder(batch)
            w1 = self.decoder1(z).data
            w2_of_w1 = self.decoder2(self.encoder(nn.Tensor(w1))).data
        err1 = (windows - w1) ** 2
        err2 = (windows - w2_of_w1) ** 2
        point_scores = self.alpha * err1 + (1.0 - self.alpha) * err2
        accumulated = np.zeros(len(series))
        counts = np.zeros(len(series))
        for row, start in enumerate(starts):
            accumulated[start : start + w] += point_scores[row]
            counts[start : start + w] += 1.0
        counts[counts == 0] = 1.0
        return accumulated / counts
