"""Trivial baselines: random scores and the 'one-liner' threshold.

The paper argues (Sec. II-B, Fig. 3) that on flawed benchmarks a random
function — or one line of code thresholding raw amplitude — detects the
anomalies.  These detectors make that argument executable.
"""

from __future__ import annotations

import numpy as np

from ..signal.normalize import robust_zscore
from .base import BaseDetector

__all__ = ["RandomScoreDetector", "OneLinerDetector"]


class RandomScoreDetector(BaseDetector):
    """Uniform random scores; learns nothing."""

    name = "Random"

    def __init__(self, seed: int = 0, threshold_sigma: float = 3.0) -> None:
        super().__init__(threshold_sigma)
        self.seed = seed

    def fit(self, train_series: np.ndarray) -> "RandomScoreDetector":
        self._remember_train(train_series)
        return self

    def score_series(self, series: np.ndarray) -> np.ndarray:
        # Deterministic per-series randomness: hash the content so train
        # and test get independent but reproducible scores.
        digest = int(abs(float(np.sum(series))) * 1e6) % (2**31)
        rng = np.random.default_rng(self.seed ^ digest)
        return rng.random(len(series))


class OneLinerDetector(BaseDetector):
    """The paper's 'one-liner': anomaly score = |robust z-score|.

    Detects amplitude-explicit anomalies (KPI/SWaT spikes) perfectly and
    fails on the UCR archive's subtle shape anomalies — by design.
    """

    name = "One-liner"

    def fit(self, train_series: np.ndarray) -> "OneLinerDetector":
        self._remember_train(train_series)
        return self

    def score_series(self, series: np.ndarray) -> np.ndarray:
        return np.abs(robust_zscore(series))
