"""LSTM autoencoder baseline (Kim et al., AAAI 2022; paper Sec. II-B).

The reference benchmark of the paper: an encoder LSTM compresses each
window into its final hidden state, a decoder LSTM unrolls it back, and
the per-point reconstruction error is the anomaly score.  The *random*
variant skips training entirely — the paper (and Kim et al.) show that
an untrained LSTM-AE is already a strong detector on flawed benchmarks,
which is the heart of the Table II pitfall experiment.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F
from ..signal.normalize import zscore
from .base import BaseDetector

__all__ = ["LSTMAutoencoder", "LSTMAEDetector"]


class LSTMAutoencoder(nn.Module):
    """Single-layer LSTM encoder/decoder over univariate windows."""

    def __init__(self, hidden: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.hidden = hidden
        self.encoder = nn.LSTM(1, hidden, rng=rng)
        self.decoder = nn.LSTM(hidden, hidden, rng=rng)
        self.head = nn.Linear(hidden, 1, rng=rng)

    def forward(self, windows: nn.Tensor) -> nn.Tensor:
        """Reconstruct ``(batch, length)`` windows."""
        batch, length = windows.shape
        inputs = windows.reshape(batch, length, 1)
        _, state = self.encoder(inputs)
        final_hidden, _ = state[-1]
        # Feed the code at every step of the decoder (repeat-vector style).
        repeated = nn.stack([final_hidden] * length, axis=1)
        decoded, _ = self.decoder(repeated)
        return self.head(decoded).reshape(batch, length)


class LSTMAEDetector(BaseDetector):
    """LSTM-AE scored by point-wise reconstruction error.

    Parameters
    ----------
    trained:
        ``False`` reproduces the randomly initialized benchmark variant.
    """

    def __init__(
        self,
        window: int = 32,
        hidden: int = 16,
        trained: bool = True,
        epochs: int = 3,
        batch_size: int = 16,
        learning_rate: float = 1e-2,
        max_windows: int = 128,
        seed: int = 0,
        threshold_sigma: float = 3.0,
    ) -> None:
        super().__init__(threshold_sigma)
        self.name = "LSTM-AE (Trained)" if trained else "LSTM-AE (Random)"
        self.window = window
        self.hidden = hidden
        self.trained = trained
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.max_windows = max_windows
        self.seed = seed
        self.model: LSTMAutoencoder | None = None

    def fit(self, train_series: np.ndarray) -> "LSTMAEDetector":
        series = self._remember_train(train_series)
        rng = np.random.default_rng(self.seed)
        self.model = LSTMAutoencoder(self.hidden, rng)
        if not self.trained:
            return self
        windows, _ = self._windows(zscore(series), self.window, max(self.window // 2, 1))
        if len(windows) > self.max_windows:
            windows = windows[rng.choice(len(windows), self.max_windows, replace=False)]
        optimizer = nn.Adam(self.model.parameters(), lr=self.learning_rate)
        for _ in range(self.epochs):
            order = rng.permutation(len(windows))
            for start in range(0, len(order), self.batch_size):
                batch = windows[order[start : start + self.batch_size]]
                if len(batch) == 0:
                    continue
                optimizer.zero_grad()
                loss = F.mse_loss(self.model(nn.Tensor(batch)), batch)
                loss.backward()
                nn.clip_grad_norm(self.model.parameters(), 5.0)
                optimizer.step()
        return self

    def score_series(self, series: np.ndarray) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("fit() first")
        normalized = zscore(series)
        windows, starts = self._windows(normalized, self.window, max(self.window // 2, 1))
        with nn.no_grad():
            reconstruction = self.model(nn.Tensor(windows)).data
        point_errors = (reconstruction - windows) ** 2
        # Spread each window's per-point error back onto the series.
        total = len(series)
        accumulated = np.zeros(total)
        counts = np.zeros(total)
        length = windows.shape[1]
        for row, start in enumerate(starts):
            accumulated[start : start + length] += point_errors[row]
            counts[start : start + length] += 1.0
        counts[counts == 0] = 1.0
        return accumulated / counts

    def reconstruction(self, series: np.ndarray) -> np.ndarray:
        """Averaged reconstruction of the series (used by the Fig. 2 bench)."""
        if self.model is None:
            raise RuntimeError("fit() first")
        normalized = zscore(series)
        windows, starts = self._windows(normalized, self.window, max(self.window // 2, 1))
        with nn.no_grad():
            recon = self.model(nn.Tensor(windows)).data
        return _average_overlaps(recon, starts, windows.shape[1], len(series))


def _average_overlaps(
    rows: np.ndarray, starts: np.ndarray, length: int, total: int
) -> np.ndarray:
    accumulated = np.zeros(total)
    counts = np.zeros(total)
    for row, start in zip(rows, starts):
        accumulated[start : start + length] += row
        counts[start : start + length] += 1.0
    counts[counts == 0] = 1.0
    return accumulated / counts
