"""Anomaly Transformer-lite baseline (Xu et al., ICLR 2022).

The original scores anomalies by *association discrepancy*: anomalous
points attend narrowly to adjacent positions (prior association ~= a
local Gaussian kernel) while normal points attend broadly across the
series.  This lite version keeps a single attention block trained for
reconstruction and computes the same discrepancy — the KL divergence
between each position's attention row and a learned-width Gaussian
prior — combining it multiplicatively with reconstruction error, as the
original's anomaly criterion does.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F
from ..signal.normalize import zscore
from .base import BaseDetector

__all__ = ["AnomalyTransformerDetector"]


class _Block(nn.Module):
    def __init__(self, dim: int, heads: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.embed = nn.Linear(1, dim, rng=rng)
        self.attention = nn.MultiHeadSelfAttention(dim, heads, rng=rng)
        self.norm = nn.LayerNorm(dim)
        self.head = nn.Linear(dim, 1, rng=rng)

    def forward(self, windows: nn.Tensor) -> tuple[nn.Tensor, nn.Tensor]:
        batch, length = windows.shape
        x = self.embed(windows.reshape(batch, length, 1))
        attended, weights = self.attention(x)
        hidden = self.norm(x + attended)
        return self.head(hidden).reshape(batch, length), weights


def _gaussian_prior(length: int, sigma: float) -> np.ndarray:
    """Row-normalized |i-j| Gaussian kernel — the prior association."""
    idx = np.arange(length)
    kernel = np.exp(-0.5 * ((idx[:, None] - idx[None, :]) / sigma) ** 2)
    return kernel / kernel.sum(axis=1, keepdims=True)


class AnomalyTransformerDetector(BaseDetector):
    """Attention-based detector scored by association discrepancy."""

    name = "Anomaly Transformer"

    def __init__(
        self,
        window: int = 64,
        dim: int = 16,
        heads: int = 2,
        prior_sigma: float = 3.0,
        epochs: int = 4,
        batch_size: int = 8,
        learning_rate: float = 1e-3,
        max_windows: int = 64,
        seed: int = 0,
        threshold_sigma: float = 3.0,
    ) -> None:
        super().__init__(threshold_sigma)
        self.window = window
        self.dim = dim
        self.heads = heads
        self.prior_sigma = prior_sigma
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.max_windows = max_windows
        self.seed = seed
        self.model: _Block | None = None

    def fit(self, train_series: np.ndarray) -> "AnomalyTransformerDetector":
        series = self._remember_train(train_series)
        rng = np.random.default_rng(self.seed)
        self.model = _Block(self.dim, self.heads, rng)
        w = min(self.window, len(series))
        windows, _ = self._windows(zscore(series), w, max(w // 2, 1))
        if len(windows) > self.max_windows:
            windows = windows[rng.choice(len(windows), self.max_windows, replace=False)]
        optimizer = nn.Adam(self.model.parameters(), lr=self.learning_rate)
        for _ in range(self.epochs):
            order = rng.permutation(len(windows))
            for start in range(0, len(order), self.batch_size):
                batch = windows[order[start : start + self.batch_size]]
                if len(batch) == 0:
                    continue
                recon, _ = self.model(nn.Tensor(batch))
                loss = F.mse_loss(recon, batch)
                optimizer.zero_grad()
                loss.backward()
                nn.clip_grad_norm(self.model.parameters(), 5.0)
                optimizer.step()
        return self

    def _discrepancy(self, weights: np.ndarray, length: int) -> np.ndarray:
        """KL(prior || attention) per position, averaged over heads.

        High when a position's attention diverges from the local prior —
        the anomaly signature of the original model.
        """
        prior = _gaussian_prior(length, self.prior_sigma)  # (L, L)
        eps = 1e-12
        attention = weights.mean(axis=1)  # (B, L, L), head-averaged
        kl = (prior[None] * (np.log(prior[None] + eps) - np.log(attention + eps))).sum(
            axis=-1
        )
        return kl  # (B, L)

    def score_series(self, series: np.ndarray) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("fit() first")
        normalized = zscore(series)
        w = min(self.window, len(series))
        windows, starts = self._windows(normalized, w, max(w // 2, 1))
        with nn.no_grad():
            recon, weights = self.model(nn.Tensor(windows))
        errors = (recon.data - windows) ** 2
        discrepancy = self._discrepancy(weights.data, w)
        point_scores = errors * discrepancy
        accumulated = np.zeros(len(series))
        counts = np.zeros(len(series))
        for row, start in enumerate(starts):
            accumulated[start : start + w] += point_scores[row]
            counts[start : start + w] += 1.0
        counts[counts == 0] = 1.0
        return accumulated / counts
