"""Change-point baseline detector.

Flags regions around detected mean shifts.  Strong on level-shift and
trend anomalies, blind to shape/frequency anomalies — a useful contrast
to both the one-liner and the learned detectors.
"""

from __future__ import annotations

import numpy as np

from ..signal.changepoint import binary_segmentation
from ..signal.decompose import moving_average
from ..signal.normalize import zscore
from ..signal.period import estimate_period
from .base import BaseDetector

__all__ = ["ChangePointDetector"]


class ChangePointDetector(BaseDetector):
    """Binary-segmentation mean-shift detector.

    The series is first smoothed over one estimated period (removing the
    seasonal oscillation that would otherwise swamp the L2 cost), then
    segmented; each point near a detected change-point is scored by the
    magnitude of the local mean shift across it.
    """

    name = "ChangePoint"

    def __init__(
        self,
        min_size: int = 10,
        radius: int = 25,
        penalty_scale: float = 1.0,
        threshold_sigma: float = 3.0,
    ) -> None:
        super().__init__(threshold_sigma)
        self.min_size = min_size
        self.radius = radius
        self.penalty_scale = penalty_scale
        self._period = 32

    def fit(self, train_series: np.ndarray) -> "ChangePointDetector":
        series = self._remember_train(train_series)
        self._period = estimate_period(series)
        return self

    def score_series(self, series: np.ndarray) -> np.ndarray:
        smoothed = moving_average(zscore(series), self._period)
        penalty = self.penalty_scale * 2.0 * smoothed.var() * np.log(max(len(smoothed), 2))
        changepoints = binary_segmentation(
            smoothed, penalty=penalty, min_size=self.min_size
        )
        scores = np.zeros(len(smoothed))
        edge = max(self._period, self.min_size)
        for cp in changepoints:
            if cp < edge or cp > len(smoothed) - edge:
                continue  # moving-average edge artifacts
            left = smoothed[max(cp - 4 * self.radius, 0) : cp]
            right = smoothed[cp : cp + 4 * self.radius]
            if len(left) == 0 or len(right) == 0:
                continue
            shift = abs(float(right.mean() - left.mean()))
            lo = max(cp - self.radius, 0)
            hi = min(cp + self.radius, len(smoothed))
            scores[lo:hi] = np.maximum(scores[lo:hi], shift)
        return scores
