"""Spectral Residual baseline (Ren et al., KDD 2019 — SR-CNN's SR core).

A classic training-free time series anomaly detector: the log-amplitude
spectrum minus its local average (the "spectral residual") is mapped
back to the time domain as a saliency map; salient points are anomalies.
Included as an additional non-deep comparator alongside the paper's
baseline set — it shares the one-liner detector's blindness to subtle
shape anomalies but handles spikes and level changes well.
"""

from __future__ import annotations

import numpy as np

from ..signal.normalize import zscore
from .base import BaseDetector

__all__ = ["SpectralResidualDetector"]


def spectral_residual_saliency(x: np.ndarray, average_window: int = 3) -> np.ndarray:
    """Saliency map of ``x`` via the spectral residual transform."""
    x = np.asarray(x, dtype=np.float64)
    spectrum = np.fft.fft(x)
    amplitude = np.abs(spectrum)
    amplitude = np.maximum(amplitude, 1e-12)
    log_amplitude = np.log(amplitude)
    kernel = np.ones(average_window) / average_window
    averaged = np.convolve(
        np.pad(log_amplitude, (average_window // 2, average_window - 1 - average_window // 2), mode="edge"),
        kernel,
        mode="valid",
    )
    residual = log_amplitude - averaged
    saliency = np.abs(np.fft.ifft(np.exp(residual + 1j * np.angle(spectrum))))
    return saliency


class SpectralResidualDetector(BaseDetector):
    """Training-free saliency detector over the whole series."""

    name = "Spectral Residual"

    def __init__(self, average_window: int = 3, threshold_sigma: float = 3.0) -> None:
        super().__init__(threshold_sigma)
        self.average_window = average_window

    def fit(self, train_series: np.ndarray) -> "SpectralResidualDetector":
        self._remember_train(train_series)
        return self

    def score_series(self, series: np.ndarray) -> np.ndarray:
        saliency = spectral_residual_saliency(zscore(series), self.average_window)
        # Normalize saliency relative to its local level, as in SR-CNN.
        baseline = np.convolve(
            np.pad(saliency, (10, 10), mode="edge"), np.ones(21) / 21, mode="valid"
        )
        return (saliency - baseline) / np.maximum(baseline, 1e-12)
