"""Baseline detectors evaluated in the paper's Table III."""

from .anomaly_transformer import AnomalyTransformerDetector
from .base import BaseDetector, calibrate_threshold, spread_window_scores
from .changepoint_detector import ChangePointDetector
from .dcdetector import DCdetectorDetector
from .deepant import DeepAnTDetector
from .donut import DonutDetector, WindowVAE
from .lstm_ae import LSTMAEDetector, LSTMAutoencoder
from .mtgflow import MTGFlowDetector
from .random_detector import OneLinerDetector, RandomScoreDetector
from .spectral_residual import SpectralResidualDetector
from .ts2vec import TS2VecDetector
from .usad import USADDetector

__all__ = [
    "BaseDetector",
    "calibrate_threshold",
    "spread_window_scores",
    "LSTMAEDetector",
    "LSTMAutoencoder",
    "USADDetector",
    "TS2VecDetector",
    "AnomalyTransformerDetector",
    "MTGFlowDetector",
    "DCdetectorDetector",
    "RandomScoreDetector",
    "OneLinerDetector",
    "SpectralResidualDetector",
    "ChangePointDetector",
    "DeepAnTDetector",
    "DonutDetector",
    "WindowVAE",
]
