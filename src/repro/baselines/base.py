"""Common interface for baseline detectors.

Every baseline maps a test series to a point-wise anomaly *score*; a
threshold calibrated on the (anomaly-free) training split turns scores
into binary predictions.  The paper evaluates each baseline's raw
predictions (no point adjustment) under PA%K and affiliation metrics;
this interface produces exactly that input.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..pipeline.scores import calibrate_threshold, spread_window_scores
from ..signal.windows import sliding_windows
from ..validation import ensure_series

__all__ = ["BaseDetector", "spread_window_scores", "calibrate_threshold"]


class BaseDetector(ABC):
    """Train-then-score anomaly detector contract.

    Subclasses implement :meth:`fit` and :meth:`score_series`;
    :meth:`detect` derives binary predictions using a threshold
    calibrated on training scores.
    """

    name: str = "base"

    def __init__(self, threshold_sigma: float = 3.0) -> None:
        self.threshold_sigma = threshold_sigma
        self._train_series: np.ndarray | None = None

    @abstractmethod
    def fit(self, train_series: np.ndarray) -> "BaseDetector":
        """Train on anomaly-free data (may be a no-op for random models)."""

    @abstractmethod
    def score_series(self, series: np.ndarray) -> np.ndarray:
        """Point-wise anomaly scores (higher = more anomalous)."""

    def _remember_train(self, train_series: np.ndarray) -> np.ndarray:
        self._train_series = ensure_series(train_series, "train_series", min_length=8)
        return self._train_series

    @property
    def train_series(self) -> np.ndarray:
        """The training series this detector was fit on (public accessor
        for calibration consumers such as the pipeline adapters)."""
        if self._train_series is None:
            raise RuntimeError(f"{self.name} must be fit() before use")
        return self._train_series

    def detect(self, test_series: np.ndarray) -> np.ndarray:
        """Binary point-wise predictions on the test series."""
        if self._train_series is None:
            raise RuntimeError(f"{self.name} must be fit() before detect()")
        test_series = ensure_series(test_series, "test_series", min_length=8)
        test_scores = self.score_series(test_series)
        train_scores = self.score_series(self._train_series)
        threshold = calibrate_threshold(train_scores, self.threshold_sigma)
        predictions = (test_scores > threshold).astype(np.int64)
        if not predictions.any():
            # Guarantee a non-empty prediction so event metrics are defined:
            # flag the single highest-scoring point.
            predictions[int(np.argmax(test_scores))] = 1
        return predictions

    def predict(self, test_series: np.ndarray) -> np.ndarray:
        """Alias of :meth:`detect` (uniform harness interface)."""
        return self.detect(test_series)

    @staticmethod
    def _windows(series: np.ndarray, length: int, stride: int):
        length = min(length, len(series))
        return sliding_windows(series, length, stride)
