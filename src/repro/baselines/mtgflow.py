"""MTGFlow-lite baseline (Zhou et al., AAAI 2023).

MTGFlow detects anomalies with normalizing flows under the assumption
that abnormal events have sparser density than normal ones.  This lite
version keeps the density-estimation core: a RealNVP-style stack of
affine coupling layers over z-normalized windows, trained by maximum
likelihood; the anomaly score of a point is the negative log-likelihood
of the windows covering it.  (The original's dynamic inter-sensor graph
does not apply to univariate UCR series.)
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..signal.normalize import zscore
from .base import BaseDetector

__all__ = ["MTGFlowDetector", "AffineCoupling"]


class AffineCoupling(nn.Module):
    """RealNVP coupling: half the dims condition scale/shift of the rest."""

    def __init__(self, dim: int, hidden: int, flip: bool, rng: np.random.Generator) -> None:
        super().__init__()
        self.dim = dim
        self.flip = flip
        self.half = dim // 2
        other = dim - self.half
        self.scale_net = nn.Sequential(
            nn.Linear(self.half, hidden, rng=rng), nn.ReLU(), nn.Linear(hidden, other, rng=rng)
        )
        self.shift_net = nn.Sequential(
            nn.Linear(self.half, hidden, rng=rng), nn.ReLU(), nn.Linear(hidden, other, rng=rng)
        )

    def _split(self, x: nn.Tensor) -> tuple[nn.Tensor, nn.Tensor]:
        if self.flip:
            return x[:, self.half :], x[:, : self.half]
        return x[:, : self.half], x[:, self.half :]

    def forward(self, x: nn.Tensor) -> tuple[nn.Tensor, nn.Tensor]:
        """Map x -> z; returns (z, log_det) with log_det of shape (batch,)."""
        cond, rest = self._split(x)
        log_scale = self.scale_net(cond).tanh()  # bounded for stability
        shift = self.shift_net(cond)
        transformed = rest * log_scale.exp() + shift
        z = (
            nn.concatenate([transformed, cond], axis=1)
            if self.flip
            else nn.concatenate([cond, transformed], axis=1)
        )
        return z, log_scale.sum(axis=1)


class MTGFlowDetector(BaseDetector):
    """Window-density detector with an affine-coupling flow."""

    name = "MTGFlow"

    def __init__(
        self,
        window: int = 32,
        couplings: int = 4,
        hidden: int = 32,
        epochs: int = 6,
        batch_size: int = 32,
        learning_rate: float = 1e-3,
        max_windows: int = 256,
        seed: int = 0,
        threshold_sigma: float = 3.0,
    ) -> None:
        super().__init__(threshold_sigma)
        self.window = window
        self.couplings = couplings
        self.hidden = hidden
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.max_windows = max_windows
        self.seed = seed
        self.flow: nn.ModuleList | None = None

    def _forward_flow(self, x: nn.Tensor) -> tuple[nn.Tensor, nn.Tensor]:
        log_det = None
        z = x
        for layer in self.flow:
            z, ld = layer(z)
            log_det = ld if log_det is None else log_det + ld
        return z, log_det

    def _nll(self, windows: np.ndarray) -> nn.Tensor:
        """Negative log-likelihood per window under a standard normal base."""
        z, log_det = self._forward_flow(nn.Tensor(windows))
        log_base = -0.5 * (z * z).sum(axis=1)  # up to an additive constant
        return -(log_base + log_det)

    def fit(self, train_series: np.ndarray) -> "MTGFlowDetector":
        series = self._remember_train(train_series)
        rng = np.random.default_rng(self.seed)
        w = min(self.window, len(series))
        self.flow = nn.ModuleList(
            [AffineCoupling(w, self.hidden, flip=bool(i % 2), rng=rng) for i in range(self.couplings)]
        )
        windows, _ = self._windows(zscore(series), w, max(w // 4, 1))
        if len(windows) > self.max_windows:
            windows = windows[rng.choice(len(windows), self.max_windows, replace=False)]
        parameters = [p for layer in self.flow for p in layer.parameters()]
        optimizer = nn.Adam(parameters, lr=self.learning_rate)
        for _ in range(self.epochs):
            order = rng.permutation(len(windows))
            for start in range(0, len(order), self.batch_size):
                batch = windows[order[start : start + self.batch_size]]
                if len(batch) == 0:
                    continue
                loss = self._nll(batch).mean()
                optimizer.zero_grad()
                loss.backward()
                nn.clip_grad_norm(parameters, 5.0)
                optimizer.step()
        return self

    def score_series(self, series: np.ndarray) -> np.ndarray:
        if self.flow is None:
            raise RuntimeError("fit() first")
        normalized = zscore(series)
        w = min(self.window, len(series))
        windows, starts = self._windows(normalized, w, max(w // 4, 1))
        with nn.no_grad():
            nll = self._nll(windows).data  # (B,)
        accumulated = np.zeros(len(series))
        counts = np.zeros(len(series))
        for value, start in zip(nll, starts):
            accumulated[start : start + w] += value
            counts[start : start + w] += 1.0
        counts[counts == 0] = 1.0
        return accumulated / counts
