"""TS2Vec-lite baseline (Yue et al., AAAI 2022).

TS2Vec learns timestamp representations with hierarchical contrastive
learning over two augmented context views: representations of the same
timestamp under two random crops attract (temporal consistency) while
other timestamps / other instances repel.  This lite version keeps the
dilated-conv backbone and the two-view timestamp contrast on the
overlap of two random crops.

Anomaly scoring follows the representation-outlierness protocol: a test
timestamp's score is the distance of its representation from the mean
training representation.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F
from ..signal.normalize import zscore
from .base import BaseDetector

__all__ = ["TS2VecDetector"]


class _Backbone(nn.Module):
    """Small dilated conv stack mapping (B, 1, L) -> (B, dim, L)."""

    def __init__(self, dim: int, depth: int, rng: np.random.Generator) -> None:
        super().__init__()
        layers: list[nn.Module] = []
        channels = 1
        for level in range(depth):
            layers.append(nn.Conv1d(channels, dim, 3, dilation=2**level, rng=rng))
            layers.append(nn.ReLU())
            channels = dim
        self.net = nn.Sequential(*layers)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        return self.net(x)


class TS2VecDetector(BaseDetector):
    """TS2Vec-lite with overlap-based temporal contrast."""

    name = "TS2Vec"

    def __init__(
        self,
        window: int = 64,
        dim: int = 16,
        depth: int = 3,
        epochs: int = 4,
        batch_size: int = 8,
        learning_rate: float = 1e-3,
        max_windows: int = 64,
        seed: int = 0,
        threshold_sigma: float = 3.0,
    ) -> None:
        super().__init__(threshold_sigma)
        self.window = window
        self.dim = dim
        self.depth = depth
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.max_windows = max_windows
        self.seed = seed
        self.backbone: _Backbone | None = None
        self._train_rep_mean: np.ndarray | None = None

    def _encode(self, windows: np.ndarray) -> nn.Tensor:
        """(B, L) -> (B, L, dim) timestamp representations."""
        x = nn.Tensor(np.asarray(windows)[:, None, :])
        return self.backbone(x).transpose(0, 2, 1)

    def fit(self, train_series: np.ndarray) -> "TS2VecDetector":
        series = self._remember_train(train_series)
        rng = np.random.default_rng(self.seed)
        self.backbone = _Backbone(self.dim, self.depth, rng)
        w = min(self.window, len(series))
        windows, _ = self._windows(zscore(series), w, max(w // 2, 1))
        if len(windows) > self.max_windows:
            windows = windows[rng.choice(len(windows), self.max_windows, replace=False)]

        optimizer = nn.Adam(self.backbone.parameters(), lr=self.learning_rate)
        crop = max(w // 2, 4)
        for _ in range(self.epochs):
            order = rng.permutation(len(windows))
            for start in range(0, len(order), self.batch_size):
                batch = windows[order[start : start + self.batch_size]]
                if len(batch) < 2:
                    continue
                # Two random crops sharing an overlap region.
                offset1 = int(rng.integers(0, w - crop + 1))
                offset2 = int(rng.integers(0, w - crop + 1))
                lo = max(offset1, offset2)
                hi = min(offset1 + crop, offset2 + crop)
                if hi - lo < 4:
                    continue
                rep1 = self._encode(batch[:, offset1 : offset1 + crop])
                rep2 = self._encode(batch[:, offset2 : offset2 + crop])
                over1 = rep1[:, lo - offset1 : hi - offset1, :]
                over2 = rep2[:, lo - offset2 : hi - offset2, :]
                # Temporal contrast: same timestamp across views attracts,
                # different timestamps repel (InfoNCE over time axis).
                sim = F.cosine_similarity(over1, over2, axis=-1)  # (B, T)
                anchor = over1  # (B, T, dim)
                b, t, d = anchor.shape
                flat1 = anchor.reshape(b * t, d)
                flat2 = over2.reshape(b * t, d)
                logits = flat1 @ flat2.transpose()  # (BT, BT)
                labels_diag = np.arange(b * t)
                log_probs = F.log_softmax(logits, axis=-1)
                loss = -(log_probs[labels_diag, labels_diag].mean())
                optimizer.zero_grad()
                loss.backward()
                nn.clip_grad_norm(self.backbone.parameters(), 5.0)
                optimizer.step()

        # Reference statistics for scoring.
        with nn.no_grad():
            reps = self._encode(windows).data  # (B, L, dim)
        self._train_rep_mean = reps.reshape(-1, self.dim).mean(axis=0)
        return self

    def score_series(self, series: np.ndarray) -> np.ndarray:
        if self.backbone is None or self._train_rep_mean is None:
            raise RuntimeError("fit() first")
        normalized = zscore(series)
        w = min(self.window, len(series))
        windows, starts = self._windows(normalized, w, max(w // 2, 1))
        with nn.no_grad():
            reps = self._encode(windows).data  # (B, L, dim)
        deviations = np.linalg.norm(reps - self._train_rep_mean, axis=-1)  # (B, L)
        accumulated = np.zeros(len(series))
        counts = np.zeros(len(series))
        for row, start in enumerate(starts):
            accumulated[start : start + w] += deviations[row]
            counts[start : start + w] += 1.0
        counts[counts == 0] = 1.0
        return accumulated / counts
