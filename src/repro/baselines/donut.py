"""Donut-lite baseline (Xu et al., WWW 2018).

Donut detects KPI anomalies with a variational autoencoder over sliding
windows, scoring each point by (negative) reconstruction probability.
This lite version keeps the VAE core — a Gaussian encoder with the
reparameterization trick, a Gaussian decoder, and the ELBO objective —
and scores by Monte-Carlo reconstruction error.  Included as an extra
classic deep baseline; it also exercises stochastic-gradient paths
through the numpy autodiff substrate.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..signal.normalize import zscore
from .base import BaseDetector

__all__ = ["DonutDetector", "WindowVAE"]


class WindowVAE(nn.Module):
    """MLP variational autoencoder over flattened windows."""

    def __init__(
        self, window: int, latent: int, hidden: int, rng: np.random.Generator
    ) -> None:
        super().__init__()
        self.window = window
        self.latent = latent
        self.rng = rng
        self.encoder = nn.Sequential(
            nn.Linear(window, hidden, rng=rng), nn.ReLU()
        )
        self.mu_head = nn.Linear(hidden, latent, rng=rng)
        self.logvar_head = nn.Linear(hidden, latent, rng=rng)
        self.decoder = nn.Sequential(
            nn.Linear(latent, hidden, rng=rng), nn.ReLU(), nn.Linear(hidden, window, rng=rng)
        )

    def encode(self, x: nn.Tensor) -> tuple[nn.Tensor, nn.Tensor]:
        hidden = self.encoder(x)
        return self.mu_head(hidden), self.logvar_head(hidden)

    def reparameterize(self, mu: nn.Tensor, logvar: nn.Tensor) -> nn.Tensor:
        """z = mu + sigma * eps with eps ~ N(0, I); gradients flow
        through mu and sigma, not eps."""
        eps = nn.Tensor(self.rng.standard_normal(mu.shape))
        return mu + (logvar * 0.5).exp() * eps

    def forward(self, x: nn.Tensor) -> tuple[nn.Tensor, nn.Tensor, nn.Tensor]:
        mu, logvar = self.encode(x)
        z = self.reparameterize(mu, logvar)
        return self.decoder(z), mu, logvar

    def elbo_loss(self, x: nn.Tensor, beta: float = 1.0) -> nn.Tensor:
        """Negative ELBO: reconstruction MSE + beta * KL(q || N(0, I))."""
        reconstruction, mu, logvar = self(x)
        recon_term = ((reconstruction - x) ** 2).sum(axis=1).mean()
        kl = (-0.5 * (1.0 + logvar - mu * mu - logvar.exp()).sum(axis=1)).mean()
        return recon_term + beta * kl


class DonutDetector(BaseDetector):
    """VAE reconstruction-probability detector over sliding windows."""

    name = "Donut"

    def __init__(
        self,
        window: int = 32,
        latent: int = 4,
        hidden: int = 32,
        epochs: int = 6,
        batch_size: int = 32,
        learning_rate: float = 1e-3,
        beta: float = 0.1,
        mc_samples: int = 4,
        max_windows: int = 256,
        seed: int = 0,
        threshold_sigma: float = 3.0,
    ) -> None:
        super().__init__(threshold_sigma)
        self.window = window
        self.latent = latent
        self.hidden = hidden
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.beta = beta
        self.mc_samples = mc_samples
        self.max_windows = max_windows
        self.seed = seed
        self.model: WindowVAE | None = None

    def fit(self, train_series: np.ndarray) -> "DonutDetector":
        series = self._remember_train(train_series)
        rng = np.random.default_rng(self.seed)
        w = min(self.window, len(series))
        self.model = WindowVAE(w, self.latent, self.hidden, rng)
        windows, _ = self._windows(zscore(series), w, max(w // 4, 1))
        if len(windows) > self.max_windows:
            windows = windows[rng.choice(len(windows), self.max_windows, replace=False)]
        optimizer = nn.Adam(self.model.parameters(), lr=self.learning_rate)
        for _ in range(self.epochs):
            order = rng.permutation(len(windows))
            for start in range(0, len(order), self.batch_size):
                batch = windows[order[start : start + self.batch_size]]
                if len(batch) == 0:
                    continue
                loss = self.model.elbo_loss(nn.Tensor(batch), beta=self.beta)
                optimizer.zero_grad()
                loss.backward()
                nn.clip_grad_norm(self.model.parameters(), 5.0)
                optimizer.step()
        return self

    def score_series(self, series: np.ndarray) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("fit() first")
        normalized = zscore(series)
        w = self.model.window
        windows, starts = self._windows(normalized, w, max(w // 4, 1))
        errors = np.zeros_like(windows)
        with nn.no_grad():
            for _ in range(self.mc_samples):
                reconstruction, _, _ = self.model(nn.Tensor(windows))
                errors += (reconstruction.data - windows) ** 2
        errors /= self.mc_samples
        accumulated = np.zeros(len(series))
        counts = np.zeros(len(series))
        for row, start in enumerate(starts):
            accumulated[start : start + w] += errors[row]
            counts[start : start + w] += 1.0
        counts[counts == 0] = 1.0
        return accumulated / counts
