"""DCdetector-lite baseline (Yang et al., KDD 2023).

DCdetector contrasts two attention branches — patch-wise (attention
across patches) and in-patch (attention within patches) — trained so
their representations *agree* on normal data; at test time the
discrepancy between the branches is the anomaly score, since anomalies
break the cross-scale consistency the branches learned.

This lite version keeps the dual-branch structure with a shared
embedding, trains with a stop-gradient symmetric consistency loss (as
the original does, no negatives needed), and scores by branch
discrepancy.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F
from ..signal.normalize import zscore
from .base import BaseDetector

__all__ = ["DCdetectorDetector"]


class _Branch(nn.Module):
    """Attention branch over a reshaped patch view of the window."""

    def __init__(self, dim: int, heads: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.attention = nn.MultiHeadSelfAttention(dim, heads, rng=rng)
        self.norm = nn.LayerNorm(dim)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        attended, _ = self.attention(x)
        return self.norm(x + attended)


class DCdetectorDetector(BaseDetector):
    """Dual attention contrastive detector (lite)."""

    name = "DCdetector"

    def __init__(
        self,
        window: int = 64,
        patch: int = 8,
        dim: int = 16,
        heads: int = 2,
        epochs: int = 4,
        batch_size: int = 8,
        learning_rate: float = 1e-3,
        max_windows: int = 64,
        seed: int = 0,
        threshold_sigma: float = 3.0,
    ) -> None:
        super().__init__(threshold_sigma)
        if window % patch != 0:
            raise ValueError("window must be a multiple of patch")
        self.window = window
        self.patch = patch
        self.dim = dim
        self.heads = heads
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.max_windows = max_windows
        self.seed = seed
        self.embed: nn.Linear | None = None
        self.patch_branch: _Branch | None = None
        self.inpatch_branch: _Branch | None = None

    def _views(self, windows: np.ndarray) -> tuple[nn.Tensor, nn.Tensor]:
        """Per-timestamp representations from both branches, (B, L, dim)."""
        batch, length = windows.shape
        num_patches = length // self.patch
        x = nn.Tensor(windows).reshape(batch, length, 1)
        embedded = self.embed(x)  # (B, L, dim)

        # Patch-wise branch: attention across patch summaries, broadcast
        # back to timestamps.
        patches = embedded.reshape(batch, num_patches, self.patch, self.dim).mean(axis=2)
        patch_rep = self.patch_branch(patches)  # (B, P, dim)
        patch_full = nn.stack([patch_rep] * self.patch, axis=2).reshape(
            batch, length, self.dim
        )

        # In-patch branch: attention within each patch independently.
        inpatch_input = embedded.reshape(batch * num_patches, self.patch, self.dim)
        inpatch_rep = self.inpatch_branch(inpatch_input).reshape(batch, length, self.dim)
        return patch_full, inpatch_rep

    def fit(self, train_series: np.ndarray) -> "DCdetectorDetector":
        series = self._remember_train(train_series)
        rng = np.random.default_rng(self.seed)
        self.embed = nn.Linear(1, self.dim, rng=rng)
        self.patch_branch = _Branch(self.dim, self.heads, rng)
        self.inpatch_branch = _Branch(self.dim, self.heads, rng)
        w = min(self.window, len(series))
        w -= w % self.patch
        self._effective_window = max(w, self.patch)
        windows, _ = self._windows(
            zscore(series), self._effective_window, max(self._effective_window // 2, 1)
        )
        if len(windows) > self.max_windows:
            windows = windows[rng.choice(len(windows), self.max_windows, replace=False)]
        parameters = (
            self.embed.parameters()
            + self.patch_branch.parameters()
            + self.inpatch_branch.parameters()
        )
        optimizer = nn.Adam(parameters, lr=self.learning_rate)
        for _ in range(self.epochs):
            order = rng.permutation(len(windows))
            for start in range(0, len(order), self.batch_size):
                batch = windows[order[start : start + self.batch_size]]
                if len(batch) == 0:
                    continue
                view_a, view_b = self._views(batch)
                # Symmetric stop-gradient consistency (SimSiam-style, as
                # in the original's discrepancy loss).
                loss = (
                    -(F.cosine_similarity(view_a, view_b.detach(), axis=-1).mean())
                    - (F.cosine_similarity(view_b, view_a.detach(), axis=-1).mean())
                ) * 0.5
                optimizer.zero_grad()
                loss.backward()
                nn.clip_grad_norm(parameters, 5.0)
                optimizer.step()
        return self

    def score_series(self, series: np.ndarray) -> np.ndarray:
        if self.embed is None:
            raise RuntimeError("fit() first")
        normalized = zscore(series)
        w = self._effective_window
        windows, starts = self._windows(normalized, w, max(w // 2, 1))
        with nn.no_grad():
            view_a, view_b = self._views(windows)
            similarity = F.cosine_similarity(view_a, view_b, axis=-1).data  # (B, L)
        discrepancy = 1.0 - similarity
        accumulated = np.zeros(len(series))
        counts = np.zeros(len(series))
        for row, start in enumerate(starts):
            accumulated[start : start + w] += discrepancy[row]
            counts[start : start + w] += 1.0
        counts[counts == 0] = 1.0
        return accumulated / counts
