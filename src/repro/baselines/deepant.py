"""DeepAnT-lite baseline (Munir et al., IEEE Access 2019; paper ref. [37]).

A *prediction-based* detector: a causal convolutional network forecasts
the next point from a history window; the anomaly score of a point is
its absolute forecast error.  Exercises the causal-padding convolution
of the numpy substrate and represents the prediction-based family the
paper discusses alongside reconstruction models (Sec. I).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F
from ..signal.normalize import zscore
from .base import BaseDetector

__all__ = ["DeepAnTDetector"]


class _CausalForecaster(nn.Module):
    """Stacked causal convolutions + linear head predicting x[t+1]."""

    def __init__(self, channels: int, depth: int, rng: np.random.Generator) -> None:
        super().__init__()
        layers: list[nn.Module] = []
        in_channels = 1
        for level in range(depth):
            layers.append(
                nn.Conv1d(
                    in_channels,
                    channels,
                    kernel_size=3,
                    dilation=2**level,
                    padding="causal",
                    rng=rng,
                )
            )
            layers.append(nn.ReLU())
            in_channels = channels
        self.body = nn.Sequential(*layers)
        self.head = nn.Linear(channels, 1, rng=rng)

    def forward(self, windows: nn.Tensor) -> nn.Tensor:
        """Predict the next value from each ``(batch, length)`` window."""
        batch, length = windows.shape
        hidden = self.body(windows.reshape(batch, 1, length))  # (B, C, L)
        last = hidden[:, :, length - 1]  # causal: sees the whole window
        return self.head(last).reshape(batch)


class DeepAnTDetector(BaseDetector):
    """Causal-CNN one-step forecaster scored by absolute error."""

    name = "DeepAnT"

    def __init__(
        self,
        window: int = 32,
        channels: int = 16,
        depth: int = 3,
        epochs: int = 4,
        batch_size: int = 32,
        learning_rate: float = 1e-3,
        max_windows: int = 256,
        seed: int = 0,
        threshold_sigma: float = 3.0,
    ) -> None:
        super().__init__(threshold_sigma)
        self.window = window
        self.channels = channels
        self.depth = depth
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.max_windows = max_windows
        self.seed = seed
        self.model: _CausalForecaster | None = None

    def _history_and_targets(self, series: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """All (window, next-value) pairs of the z-scored series."""
        w = min(self.window, len(series) - 1)
        view = np.lib.stride_tricks.sliding_window_view(series, w)
        histories = view[:-1]
        targets = series[w:]
        return histories, targets

    def fit(self, train_series: np.ndarray) -> "DeepAnTDetector":
        series = zscore(self._remember_train(train_series))
        rng = np.random.default_rng(self.seed)
        self.model = _CausalForecaster(self.channels, self.depth, rng)
        histories, targets = self._history_and_targets(series)
        if len(histories) > self.max_windows:
            chosen = rng.choice(len(histories), self.max_windows, replace=False)
            histories, targets = histories[chosen], targets[chosen]
        optimizer = nn.Adam(self.model.parameters(), lr=self.learning_rate)
        for _ in range(self.epochs):
            order = rng.permutation(len(histories))
            for start in range(0, len(order), self.batch_size):
                index = order[start : start + self.batch_size]
                if len(index) == 0:
                    continue
                prediction = self.model(nn.Tensor(histories[index]))
                loss = F.mse_loss(prediction, targets[index])
                optimizer.zero_grad()
                loss.backward()
                nn.clip_grad_norm(self.model.parameters(), 5.0)
                optimizer.step()
        return self

    def score_series(self, series: np.ndarray) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("fit() first")
        normalized = zscore(series)
        histories, targets = self._history_and_targets(normalized)
        with nn.no_grad():
            predictions = self.model(nn.Tensor(histories)).data
        errors = np.abs(predictions - targets)
        w = len(normalized) - len(targets)
        scores = np.zeros(len(normalized))
        scores[w:] = errors
        # The warm-up prefix has no forecast; give it the median score so
        # thresholding is not biased by structural zeros.
        scores[:w] = np.median(errors) if len(errors) else 0.0
        return scores
