"""Additional segment augmentations from the TSAD literature.

The paper's pipeline uses jitter and warp (Eq. 3-4); scaling and
time-shift are the other two staples of the augmentation surveys it
cites ([23], [24]).  They are *not* in TriAD's default pipeline — the
Fig. 1 bench shows why whole-window versions of these masquerade as
anomalies — but segment-level variants are provided for experimentation
via ``augment_window(..., methods=...)``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["scale_segment", "shift_segment"]


def scale_segment(
    window: np.ndarray,
    start: int,
    length: int,
    rng: np.random.Generator,
    scale_range: tuple[float, float] = (0.3, 2.0),
) -> np.ndarray:
    """Multiply a span's deviation-from-local-mean by a random factor.

    Scaling around the local mean (rather than zero) keeps the segment's
    level continuous with its context, so the distortion is purely one
    of amplitude — mirroring amplitude-change anomalies.
    """
    window = np.asarray(window, dtype=np.float64)
    if start < 0 or start + length > len(window):
        raise ValueError("scale segment out of range")
    factor = float(rng.uniform(*scale_range))
    out = window.copy()
    segment = out[start : start + length]
    level = segment.mean()
    out[start : start + length] = level + (segment - level) * factor
    return out


def shift_segment(
    window: np.ndarray,
    start: int,
    length: int,
    rng: np.random.Generator,
    max_shift_fraction: float = 0.5,
) -> np.ndarray:
    """Roll a span in time by a random offset (phase distortion).

    The span's content is circularly shifted within itself, which breaks
    phase alignment with the surrounding periods without changing the
    value distribution — the signature of contextual anomalies.
    """
    window = np.asarray(window, dtype=np.float64)
    if start < 0 or start + length > len(window):
        raise ValueError("shift segment out of range")
    max_shift = max(int(length * max_shift_fraction), 1)
    offset = int(rng.integers(1, max_shift + 1))
    out = window.copy()
    out[start : start + length] = np.roll(out[start : start + length], offset)
    return out
