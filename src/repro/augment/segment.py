"""Random-segment augmentation pipeline (paper Sec. III-A, Fig. 5).

Rather than distorting the whole window — which computer-vision-style
pipelines do and which makes augmented data indistinguishable from
anomalies everywhere — TriAD alters one random segment of varying
location, length, and shape, simulating how real anomalies appear
embedded in normal context.
"""

from __future__ import annotations

import numpy as np

from .extra import scale_segment, shift_segment
from .jitter import jitter_segment
from .warp import warp_segment

__all__ = ["augment_window", "augment_batch", "AUGMENTATIONS", "ALL_AUGMENTATIONS"]

# TriAD's default pipeline (the paper's Eq. 3-4 pair)...
AUGMENTATIONS = ("jitter", "warp")
# ...plus the literature's other segment-level staples, opt-in.
ALL_AUGMENTATIONS = ("jitter", "warp", "scale", "shift")


def augment_window(
    window: np.ndarray,
    rng: np.random.Generator,
    methods: tuple[str, ...] = AUGMENTATIONS,
    min_fraction: float = 0.1,
    max_fraction: float = 0.5,
) -> np.ndarray:
    """Apply one randomly chosen segment augmentation to ``window``.

    The segment start ``j`` and length ``l`` (Eq. 3) are drawn uniformly
    with ``l`` between ``min_fraction`` and ``max_fraction`` of the
    window, so the model sees anomalies of many sizes during training.
    """
    window = np.asarray(window, dtype=np.float64)
    size = len(window)
    length = int(rng.integers(max(int(size * min_fraction), 2), max(int(size * max_fraction), 3)))
    start = int(rng.integers(0, size - length + 1))
    method = methods[rng.integers(0, len(methods))]
    if method == "jitter":
        return jitter_segment(window, start, length, rng)
    if method == "warp":
        return warp_segment(window, start, length, rng)
    if method == "scale":
        return scale_segment(window, start, length, rng)
    if method == "shift":
        return shift_segment(window, start, length, rng)
    raise KeyError(f"unknown augmentation {method!r}")


def augment_batch(
    windows: np.ndarray,
    rng: np.random.Generator,
    methods: tuple[str, ...] = AUGMENTATIONS,
) -> np.ndarray:
    """Augment each row of a ``(batch, length)`` array independently."""
    windows = np.asarray(windows, dtype=np.float64)
    return np.stack([augment_window(w, rng, methods) for w in windows])
