"""Jittering augmentation (paper Eq. 3).

Adds random noise to a chosen span of a window, producing a synthetic
'more abnormal' variant for the contrastive negative pair.
"""

from __future__ import annotations

import numpy as np

__all__ = ["jitter_segment"]


def jitter_segment(
    window: np.ndarray,
    start: int,
    length: int,
    rng: np.random.Generator,
    strength: float = 1.0,
) -> np.ndarray:
    """Return a copy of ``window`` with noise added on ``[start, start+length)``.

    ``strength`` scales the noise relative to the window's standard
    deviation, so the distortion is comparable across datasets with
    different amplitudes.
    """
    window = np.asarray(window, dtype=np.float64)
    if start < 0 or start + length > len(window):
        raise ValueError("jitter segment out of range")
    scale = max(float(window.std()), 1e-3) * strength
    out = window.copy()
    out[start : start + length] += rng.standard_normal(length) * scale
    return out
