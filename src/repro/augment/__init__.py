"""Anomaly-simulating data augmentation (paper Sec. III-A)."""

from .extra import scale_segment, shift_segment
from .jitter import jitter_segment
from .segment import ALL_AUGMENTATIONS, AUGMENTATIONS, augment_batch, augment_window
from .warp import warp_segment

__all__ = [
    "jitter_segment",
    "warp_segment",
    "scale_segment",
    "shift_segment",
    "augment_window",
    "augment_batch",
    "AUGMENTATIONS",
    "ALL_AUGMENTATIONS",
]
