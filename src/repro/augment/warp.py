"""Warping augmentation (paper Eq. 4).

Replaces a span of the window with its Butterworth-filtered version — a
smooth curve emphasizing the primary frequencies — which flattens fine
structure the way real contextual anomalies do.
"""

from __future__ import annotations

import numpy as np

from ..signal.butterworth import butterworth_smooth

__all__ = ["warp_segment"]


def warp_segment(
    window: np.ndarray,
    start: int,
    length: int,
    rng: np.random.Generator,
    cutoff_range: tuple[float, float] = (0.04, 0.25),
    order: int = 3,
) -> np.ndarray:
    """Return a copy of ``window`` with ``[start, start+length)`` warped.

    The whole window is low-pass filtered (so the filter has context and
    no edge transient sits inside the replaced span) with a random cutoff
    drawn from ``cutoff_range``, then only the chosen span is swapped in.
    """
    window = np.asarray(window, dtype=np.float64)
    if start < 0 or start + length > len(window):
        raise ValueError("warp segment out of range")
    cutoff = float(rng.uniform(*cutoff_range))
    smooth = butterworth_smooth(window, cutoff, order=order)
    out = window.copy()
    out[start : start + length] = smooth[start : start + length]
    return out
