"""Evaluation harness: archive runner, table rendering, experiment registry."""

from .experiments import BENCH_SEEDS, EXPERIMENTS, Experiment, bench_archive, bench_config
from .persistence import SweepCheckpoint, load_results, per_type_breakdown, save_results
from .reporting import build_report, render_failure_summary, write_report
from .runner import (
    METRIC_NAMES,
    SCORE_METRIC_NAMES,
    AggregateScores,
    DatasetScores,
    aggregate_runs,
    evaluate_predictions,
    evaluate_scores,
    execute_unit,
    run_on_archive,
    run_scores_on_archive,
)
from .tables import render_table
from .tuning import GridSearchResult, SweepPoint, grid_search, tri_window_accuracy

__all__ = [
    "BENCH_SEEDS",
    "EXPERIMENTS",
    "Experiment",
    "bench_archive",
    "bench_config",
    "METRIC_NAMES",
    "SCORE_METRIC_NAMES",
    "AggregateScores",
    "DatasetScores",
    "aggregate_runs",
    "evaluate_predictions",
    "evaluate_scores",
    "execute_unit",
    "run_on_archive",
    "run_scores_on_archive",
    "render_table",
    "render_failure_summary",
    "SweepCheckpoint",
    "load_results",
    "per_type_breakdown",
    "save_results",
    "GridSearchResult",
    "SweepPoint",
    "grid_search",
    "tri_window_accuracy",
    "build_report",
    "write_report",
]
