"""Archive evaluation harness.

Runs any detector exposing ``fit(train)`` / ``predict(test)`` across an
archive of datasets and multiple seeds, scores every prediction with
the full metric suite (F1-PW, F1-PA, PA%K AUCs, affiliation), and
aggregates to mean +/- std across seeds — the protocol behind the
paper's Table III.

Both runners accept an optional :class:`~repro.runtime.RetryPolicy`:
without one they crash through (any exception aborts the sweep, the
historical behavior); with one each (dataset, seed) unit is isolated —
bounded retries with deterministic reseeding and per-attempt budgets,
exhausted units recorded as structured
:class:`~repro.runtime.FailureReport` entries, and aggregation covering
the survivors with explicit coverage accounting.  An optional
:class:`~repro.eval.persistence.SweepCheckpoint` persists every
completed unit incrementally so an interrupted sweep resumes from the
last completed (dataset, seed) pair.  See ``docs/RESILIENCE.md``.

The ``Detector``/``ScoringDetector`` contracts come from
:mod:`repro.pipeline.contracts` (re-exported here for compatibility) —
the same protocols the serving layer adapts via
:mod:`repro.pipeline.adapters`, so a chain entry and an archive
detector are interchangeable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from .. import obs
from ..data.spec import Dataset
from ..metrics import (
    affiliation_metrics,
    average_precision,
    best_f1_over_thresholds,
    f1_score,
    pa_k_auc,
    point_adjust,
    roc_auc,
)
from ..pipeline import Detector, ScoringDetector
from ..runtime import FailureReport, InvalidOutputError, RetryPolicy
from ..validation import validate_dataset

__all__ = [
    "Detector",
    "ScoringDetector",
    "DatasetScores",
    "AggregateScores",
    "evaluate_predictions",
    "evaluate_scores",
    "execute_unit",
    "aggregate_runs",
    "run_on_archive",
    "run_scores_on_archive",
    "METRIC_NAMES",
    "SCORE_METRIC_NAMES",
]

SCORE_METRIC_NAMES = ("roc_auc", "pr_auc", "best_f1")

METRIC_NAMES = (
    "f1_pw",
    "f1_pa",
    "pak_precision_auc",
    "pak_recall_auc",
    "pak_f1_auc",
    "affiliation_precision",
    "affiliation_recall",
    "affiliation_f1",
)


@dataclass
class DatasetScores:
    """All metrics for one (dataset, seed) run."""

    dataset: str
    seed: int
    metrics: dict[str, float]
    warnings: list[str] = field(default_factory=list)
    attempts: int = 1


@dataclass
class AggregateScores:
    """Mean and std (across seeds) of per-metric archive averages.

    ``failures`` and ``coverage`` account for resilient sweeps: when a
    retry policy isolates failing units, the aggregates cover only the
    surviving runs and ``coverage`` reports completed / scheduled units.
    """

    detector: str
    mean: dict[str, float]
    std: dict[str, float]
    per_run: list[DatasetScores] = field(default_factory=list)
    failures: list[FailureReport] = field(default_factory=list)
    coverage: float = 1.0

    def row(self, metrics: Iterable[str] = METRIC_NAMES) -> list[str]:
        """Formatted ``mean+/-std`` cells for table rendering."""
        cells = [self.detector]
        for name in metrics:
            cells.append(f"{self.mean[name]:.3f}±{self.std[name]:.3f}")
        return cells


def evaluate_predictions(
    predictions: np.ndarray,
    labels: np.ndarray,
    warnings: list[str] | None = None,
) -> dict[str, float]:
    """Score one prediction array with every paper metric.

    Non-finite predictions are treated as "no detection" (0) rather
    than poisoning every downstream aggregate; the substitution is
    recorded in ``warnings`` when a list is supplied.
    """
    predictions = np.asarray(predictions, dtype=np.float64)
    finite = np.isfinite(predictions)
    if not finite.all():
        bad = int(np.sum(~finite))
        if warnings is not None:
            warnings.append(
                f"{bad} non-finite prediction(s) treated as 0 (no detection)"
            )
        predictions = np.where(finite, predictions, 0.0)
    predictions = (predictions > 0).astype(np.int64)
    curve = pa_k_auc(predictions, labels)
    affiliation = affiliation_metrics(predictions, labels)
    return {
        "f1_pw": f1_score(predictions, labels),
        "f1_pa": f1_score(point_adjust(predictions, labels), labels),
        "pak_precision_auc": curve.precision_auc,
        "pak_recall_auc": curve.recall_auc,
        "pak_f1_auc": curve.f1_auc,
        "affiliation_precision": affiliation.precision,
        "affiliation_recall": affiliation.recall,
        "affiliation_f1": affiliation.f1,
    }


def evaluate_scores(
    scores: np.ndarray,
    labels: np.ndarray,
    warnings: list[str] | None = None,
) -> dict[str, float]:
    """Threshold-free metrics for one continuous score array.

    Degenerate score arrays no longer propagate NaN into aggregates:
    non-finite entries are replaced with the minimum finite score (or
    0.0 when nothing is finite, collapsing to the chance-level constant
    case), and constant scores are flagged.  Each substitution appends
    an explanation to ``warnings`` when a list is supplied.
    """
    scores = np.asarray(scores, dtype=np.float64)
    finite = np.isfinite(scores)
    if not finite.all():
        fill = float(scores[finite].min()) if finite.any() else 0.0
        bad = int(np.sum(~finite))
        if warnings is not None:
            warnings.append(
                f"{bad} non-finite score(s) replaced with {fill} "
                "(worst case: ranked below every finite score)"
            )
        scores = np.where(finite, scores, fill)
    if scores.size and float(scores.min()) == float(scores.max()):
        if warnings is not None:
            warnings.append(
                "constant scores: ranking metrics degenerate to chance level"
            )
    best_f1, _ = best_f1_over_thresholds(scores, labels)
    return {
        "roc_auc": roc_auc(scores, labels),
        "pr_auc": average_precision(scores, labels),
        "best_f1": best_f1,
    }


# ----------------------------------------------------------------------
# Sweep core shared by the binary and score runners
# ----------------------------------------------------------------------


class _Unit:
    """Mutable context for one (dataset, seed) attempt — tracks the
    active stage so a failure is attributed to validate/fit/predict/
    score/evaluate."""

    def __init__(self) -> None:
        self.stage = "validate"


def _check_output(out: np.ndarray, dataset: Dataset, kind: str) -> np.ndarray:
    """Reject wrong-shaped output; binary predictions must also be finite
    (scores get worst-case substitution in :func:`evaluate_scores`)."""
    out = np.asarray(out)
    if out.ndim != 1 or len(out) != len(dataset.test):
        raise InvalidOutputError(
            f"{kind} shape {out.shape} does not match test shape "
            f"({len(dataset.test)},) on {dataset.name}"
        )
    return out


def _run_unit_binary(
    detector, dataset: Dataset, seed: int, unit: _Unit, budget, on_detection
) -> DatasetScores:
    unit.stage = "fit"
    detector.fit(dataset.train)
    if budget is not None:
        budget.check_time()
    unit.stage = "predict"
    predictions = _check_output(detector.predict(dataset.test), dataset, "predictions")
    if not np.all(np.isfinite(np.asarray(predictions, dtype=np.float64))):
        raise InvalidOutputError(
            f"predictions contain non-finite values on {dataset.name}"
        )
    if budget is not None:
        budget.check_time()
    unit.stage = "evaluate"
    notes: list[str] = []
    metrics = evaluate_predictions(predictions, dataset.labels, warnings=notes)
    if on_detection is not None:
        on_detection(dataset, seed, detector, predictions)
    return DatasetScores(dataset=dataset.name, seed=seed, metrics=metrics, warnings=notes)


def _run_unit_scores(
    detector, dataset: Dataset, seed: int, unit: _Unit, budget, on_detection
) -> DatasetScores:
    unit.stage = "fit"
    detector.fit(dataset.train)
    if budget is not None:
        budget.check_time()
    unit.stage = "score"
    scores = _check_output(detector.score_series(dataset.test), dataset, "scores")
    if not np.all(np.isfinite(np.asarray(scores, dtype=np.float64))):
        raise InvalidOutputError(f"scores contain non-finite values on {dataset.name}")
    if budget is not None:
        budget.check_time()
    unit.stage = "evaluate"
    notes: list[str] = []
    metrics = evaluate_scores(scores, dataset.labels, warnings=notes)
    return DatasetScores(dataset=dataset.name, seed=seed, metrics=metrics, warnings=notes)


def _attempt_unit(
    name: str,
    factory: Callable[[int], object],
    dataset: Dataset,
    seed: int,
    policy: RetryPolicy,
    run_unit,
    on_detection,
) -> DatasetScores | FailureReport:
    """Run one unit under a retry policy; never raises retryable errors."""
    unit = _Unit()
    try:
        validate_dataset(dataset)
    except policy.retry_on as error:  # deterministic — no point retrying
        return FailureReport(
            dataset=dataset.name,
            seed=seed,
            stage="validate",
            error_type=type(error).__name__,
            message=str(error),
            attempts=1,
            detector=name,
        )
    last_error: BaseException | None = None
    for attempt in range(policy.attempts()):
        if attempt:
            policy.pause(attempt)
        budget = policy.spawn_budget()
        unit.stage = "fit"
        try:
            detector = factory(policy.reseed(seed, attempt))
            if budget is not None and hasattr(detector, "set_budget"):
                detector.set_budget(budget)
            result = run_unit(detector, dataset, seed, unit, budget, on_detection)
            result.attempts = attempt + 1
            return result
        except policy.retry_on as error:
            last_error = error
    assert last_error is not None
    return FailureReport(
        dataset=dataset.name,
        seed=seed,
        stage=unit.stage,
        error_type=type(last_error).__name__,
        message=str(last_error),
        attempts=policy.attempts(),
        detector=name,
    )


_UNIT_RUNNERS = {"binary": _run_unit_binary, "scores": _run_unit_scores}


def execute_unit(
    name: str,
    factory: Callable[[int], object],
    dataset: Dataset,
    seed: int,
    policy: RetryPolicy | None = None,
    mode: str = "binary",
    on_detection=None,
) -> DatasetScores | FailureReport:
    """Run exactly one (dataset, seed) unit — the sweep's atom.

    With a policy the unit is isolated (bounded retries with reseeding,
    exhausted units become :class:`FailureReport`); without one any
    exception propagates.  ``mode`` selects binary-prediction or
    continuous-score evaluation.  This is the hook the job fabric
    (:func:`repro.jobs.run_archive_job`) parallelizes over, so a worker
    process and the in-process sweep execute byte-identical unit code.
    """
    try:
        run_unit = _UNIT_RUNNERS[mode]
    except KeyError:
        raise ValueError(f"mode must be one of {sorted(_UNIT_RUNNERS)}, got {mode!r}")
    with obs.span(
        "eval.unit", detector=name, dataset=dataset.name, seed=seed
    ) as unit_span:
        if policy is None:
            validate_dataset(dataset)
            unit = _Unit()
            outcome = run_unit(factory(seed), dataset, seed, unit, None, on_detection)
        else:
            outcome = _attempt_unit(
                name, factory, dataset, seed, policy, run_unit, on_detection
            )
        obs.incr("eval.units")
        obs.incr("eval.retries", max(outcome.attempts - 1, 0))
        if isinstance(outcome, FailureReport):
            unit_span.set(outcome="failure", stage=outcome.stage)
            obs.incr("eval.failures")
            obs.incr(f"eval.failures.stage.{outcome.stage}")
        else:
            unit_span.set(outcome="result", attempts=outcome.attempts)
    return outcome


def aggregate_runs(
    name: str,
    per_run: list[DatasetScores],
    failures: list[FailureReport],
    seeds: Sequence[int],
    metric_names: tuple[str, ...],
    total_units: int,
) -> AggregateScores:
    """Fold per-unit outcomes into :class:`AggregateScores`.

    Per-seed archive averages over surviving runs, then mean/std across
    seeds that have at least one survivor; ``coverage`` is completed /
    scheduled units.  Shared by the sequential runners and the parallel
    job-fabric sweep so both aggregate identically.
    """
    seed_means: dict[int, dict[str, float]] = {}
    for seed in seeds:
        runs = [r for r in per_run if r.seed == seed]
        if runs:
            seed_means[seed] = {
                m: float(np.mean([r.metrics[m] for r in runs])) for m in metric_names
            }
    live_seeds = [s for s in seeds if s in seed_means]
    if live_seeds:
        mean = {
            m: float(np.mean([seed_means[s][m] for s in live_seeds]))
            for m in metric_names
        }
        std = {
            m: float(np.std([seed_means[s][m] for s in live_seeds]))
            for m in metric_names
        }
    else:
        mean = {m: float("nan") for m in metric_names}
        std = {m: float("nan") for m in metric_names}

    coverage = len(per_run) / total_units if total_units else 1.0
    return AggregateScores(
        detector=name,
        mean=mean,
        std=std,
        per_run=per_run,
        failures=failures,
        coverage=coverage,
    )


def _sweep(
    name: str,
    factory: Callable[[int], object],
    datasets: list[Dataset],
    seeds: Sequence[int],
    metric_names: tuple[str, ...],
    mode: str,
    policy: RetryPolicy | None,
    checkpoint,
    on_detection,
) -> AggregateScores:
    per_run: list[DatasetScores] = []
    failures: list[FailureReport] = []
    cached_results: dict[tuple[str, int], DatasetScores] = {}
    cached_failures: dict[tuple[str, int], FailureReport] = {}
    if checkpoint is not None:
        cached_results, cached_failures = checkpoint.load()

    required = set(metric_names)
    for seed in seeds:
        for dataset in datasets:
            key = (dataset.name, seed)
            # Splice a cached unit only if it carries this sweep's metrics
            # (a journal written by the other runner mode is re-run, not
            # trusted).
            if key in cached_results and required <= set(cached_results[key].metrics):
                per_run.append(cached_results[key])
                obs.incr("eval.checkpoint.splice_hits")
                continue
            if key in cached_failures:
                failures.append(cached_failures[key])
                obs.incr("eval.checkpoint.splice_hits")
                obs.incr("eval.checkpoint.spliced_failures")
                continue
            outcome = execute_unit(
                name,
                factory,
                dataset,
                seed,
                policy=policy,
                mode=mode,
                on_detection=on_detection,
            )
            if isinstance(outcome, FailureReport):
                failures.append(outcome)
                if checkpoint is not None:
                    checkpoint.append_failure(outcome)
            else:
                per_run.append(outcome)
                if checkpoint is not None:
                    checkpoint.append_result(outcome)

    return aggregate_runs(
        name,
        per_run,
        failures,
        seeds,
        metric_names,
        total_units=len(list(seeds)) * len(datasets),
    )


def run_scores_on_archive(
    name: str,
    factory: Callable[[int], ScoringDetector],
    datasets: list[Dataset],
    seeds: Iterable[int] = (0,),
    policy: RetryPolicy | None = None,
    checkpoint=None,
) -> AggregateScores:
    """Score-based analogue of :func:`run_on_archive`.

    Evaluates detectors via their continuous scores (ROC AUC, PR AUC,
    oracle best-F1) instead of thresholded predictions.  Useful for
    comparing score quality independent of threshold calibration — with
    the caveat (paper Sec. II-B) that oracle-threshold numbers flatter
    every method.

    ``policy`` / ``checkpoint`` enable fault isolation and incremental
    resume; see the module docstring.
    """
    return _sweep(
        name,
        factory,
        datasets,
        list(seeds),
        SCORE_METRIC_NAMES,
        "scores",
        policy,
        checkpoint,
        on_detection=None,
    )


def run_on_archive(
    name: str,
    factory: Callable[[int], Detector],
    datasets: list[Dataset],
    seeds: Iterable[int] = (0,),
    on_detection: Callable[[Dataset, int, Detector, np.ndarray], None] | None = None,
    policy: RetryPolicy | None = None,
    checkpoint=None,
) -> AggregateScores:
    """Evaluate ``factory(seed)`` detectors over datasets and seeds.

    Parameters
    ----------
    factory:
        Builds a fresh detector for a given seed.  The paper trains a
        distinct model per dataset; we do the same (one ``fit`` per
        dataset per seed).
    on_detection:
        Optional hook receiving every (dataset, seed, detector,
        predictions) — used by benches that also need timing or window
        information.
    policy:
        When given, each (dataset, seed) unit is isolated: retried per
        the policy (with reseeding and per-attempt budgets) and, if
        exhausted, recorded as a :class:`FailureReport` while the sweep
        continues over the survivors.  Without a policy, exceptions
        propagate (historical crash-through behavior).
    checkpoint:
        Optional :class:`~repro.eval.persistence.SweepCheckpoint`;
        completed units are persisted incrementally and an interrupted
        sweep re-runs only the missing ones.
    """
    return _sweep(
        name,
        factory,
        datasets,
        list(seeds),
        METRIC_NAMES,
        "binary",
        policy,
        checkpoint,
        on_detection,
    )
