"""Archive evaluation harness.

Runs any detector exposing ``fit(train)`` / ``predict(test)`` across an
archive of datasets and multiple seeds, scores every prediction with
the full metric suite (F1-PW, F1-PA, PA%K AUCs, affiliation), and
aggregates to mean +/- std across seeds — the protocol behind the
paper's Table III.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Protocol

import numpy as np

from ..data.spec import Dataset
from ..metrics import (
    affiliation_metrics,
    average_precision,
    best_f1_over_thresholds,
    f1_score,
    pa_k_auc,
    point_adjust,
    roc_auc,
)

__all__ = [
    "Detector",
    "ScoringDetector",
    "DatasetScores",
    "AggregateScores",
    "evaluate_predictions",
    "evaluate_scores",
    "run_on_archive",
    "run_scores_on_archive",
    "METRIC_NAMES",
    "SCORE_METRIC_NAMES",
]

SCORE_METRIC_NAMES = ("roc_auc", "pr_auc", "best_f1")

METRIC_NAMES = (
    "f1_pw",
    "f1_pa",
    "pak_precision_auc",
    "pak_recall_auc",
    "pak_f1_auc",
    "affiliation_precision",
    "affiliation_recall",
    "affiliation_f1",
)


class Detector(Protocol):
    """Anything trainable on a series that emits binary predictions."""

    def fit(self, train_series: np.ndarray) -> "Detector": ...

    def predict(self, test_series: np.ndarray) -> np.ndarray: ...


class ScoringDetector(Protocol):
    """Detectors that also expose continuous anomaly scores."""

    def fit(self, train_series: np.ndarray) -> "ScoringDetector": ...

    def score_series(self, test_series: np.ndarray) -> np.ndarray: ...


@dataclass
class DatasetScores:
    """All metrics for one (dataset, seed) run."""

    dataset: str
    seed: int
    metrics: dict[str, float]


@dataclass
class AggregateScores:
    """Mean and std (across seeds) of per-metric archive averages."""

    detector: str
    mean: dict[str, float]
    std: dict[str, float]
    per_run: list[DatasetScores] = field(default_factory=list)

    def row(self, metrics: Iterable[str] = METRIC_NAMES) -> list[str]:
        """Formatted ``mean+/-std`` cells for table rendering."""
        cells = [self.detector]
        for name in metrics:
            cells.append(f"{self.mean[name]:.3f}±{self.std[name]:.3f}")
        return cells


def evaluate_predictions(predictions: np.ndarray, labels: np.ndarray) -> dict[str, float]:
    """Score one prediction array with every paper metric."""
    curve = pa_k_auc(predictions, labels)
    affiliation = affiliation_metrics(predictions, labels)
    return {
        "f1_pw": f1_score(predictions, labels),
        "f1_pa": f1_score(point_adjust(predictions, labels), labels),
        "pak_precision_auc": curve.precision_auc,
        "pak_recall_auc": curve.recall_auc,
        "pak_f1_auc": curve.f1_auc,
        "affiliation_precision": affiliation.precision,
        "affiliation_recall": affiliation.recall,
        "affiliation_f1": affiliation.f1,
    }


def evaluate_scores(scores: np.ndarray, labels: np.ndarray) -> dict[str, float]:
    """Threshold-free metrics for one continuous score array."""
    best_f1, _ = best_f1_over_thresholds(scores, labels)
    return {
        "roc_auc": roc_auc(scores, labels),
        "pr_auc": average_precision(scores, labels),
        "best_f1": best_f1,
    }


def run_scores_on_archive(
    name: str,
    factory: Callable[[int], ScoringDetector],
    datasets: list[Dataset],
    seeds: Iterable[int] = (0,),
) -> AggregateScores:
    """Score-based analogue of :func:`run_on_archive`.

    Evaluates detectors via their continuous scores (ROC AUC, PR AUC,
    oracle best-F1) instead of thresholded predictions.  Useful for
    comparing score quality independent of threshold calibration — with
    the caveat (paper Sec. II-B) that oracle-threshold numbers flatter
    every method.
    """
    per_run: list[DatasetScores] = []
    seeds = list(seeds)
    seed_means: dict[int, dict[str, float]] = {}
    for seed in seeds:
        seed_metrics: dict[str, list[float]] = {m: [] for m in SCORE_METRIC_NAMES}
        for dataset in datasets:
            detector = factory(seed)
            detector.fit(dataset.train)
            scores = detector.score_series(dataset.test)
            metrics = evaluate_scores(scores, dataset.labels)
            per_run.append(DatasetScores(dataset=dataset.name, seed=seed, metrics=metrics))
            for key, value in metrics.items():
                seed_metrics[key].append(value)
        seed_means[seed] = {m: float(np.mean(v)) for m, v in seed_metrics.items()}
    mean = {
        m: float(np.mean([seed_means[s][m] for s in seeds])) for m in SCORE_METRIC_NAMES
    }
    std = {
        m: float(np.std([seed_means[s][m] for s in seeds])) for m in SCORE_METRIC_NAMES
    }
    return AggregateScores(detector=name, mean=mean, std=std, per_run=per_run)


def run_on_archive(
    name: str,
    factory: Callable[[int], Detector],
    datasets: list[Dataset],
    seeds: Iterable[int] = (0,),
    on_detection: Callable[[Dataset, int, Detector, np.ndarray], None] | None = None,
) -> AggregateScores:
    """Evaluate ``factory(seed)`` detectors over datasets and seeds.

    Parameters
    ----------
    factory:
        Builds a fresh detector for a given seed.  The paper trains a
        distinct model per dataset; we do the same (one ``fit`` per
        dataset per seed).
    on_detection:
        Optional hook receiving every (dataset, seed, detector,
        predictions) — used by benches that also need timing or window
        information.
    """
    per_run: list[DatasetScores] = []
    seed_means: dict[int, dict[str, float]] = {}
    seeds = list(seeds)
    for seed in seeds:
        seed_metrics: dict[str, list[float]] = {m: [] for m in METRIC_NAMES}
        for dataset in datasets:
            detector = factory(seed)
            detector.fit(dataset.train)
            predictions = detector.predict(dataset.test)
            metrics = evaluate_predictions(predictions, dataset.labels)
            per_run.append(DatasetScores(dataset=dataset.name, seed=seed, metrics=metrics))
            for key, value in metrics.items():
                seed_metrics[key].append(value)
            if on_detection is not None:
                on_detection(dataset, seed, detector, predictions)
        seed_means[seed] = {m: float(np.mean(v)) for m, v in seed_metrics.items()}

    mean = {
        m: float(np.mean([seed_means[s][m] for s in seeds])) for m in METRIC_NAMES
    }
    std = {
        m: float(np.std([seed_means[s][m] for s in seeds])) for m in METRIC_NAMES
    }
    return AggregateScores(detector=name, mean=mean, std=std, per_run=per_run)
