"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table"]


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]], title: str | None = None
) -> str:
    """Render an aligned ASCII table.

    Every cell is stringified; column widths adapt to content.
    """
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    separator = "-+-".join("-" * width for width in widths)
    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(separator)
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)
