"""Hyper-parameter search over TriAD configurations.

Powers the Fig. 8 parameter study and gives downstream users a simple
grid search: every combination of the supplied overrides is trained on
the archive and scored, and the best configuration (by a chosen metric)
is returned with the full sweep for inspection.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from ..core.config import TriADConfig
from ..core.detector import TriAD
from ..data.spec import Dataset
from ..metrics import window_hits_event
from .runner import evaluate_predictions

__all__ = ["SweepPoint", "GridSearchResult", "grid_search", "tri_window_accuracy"]


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated configuration."""

    overrides: tuple[tuple[str, object], ...]
    score: float

    @property
    def as_dict(self) -> dict[str, object]:
        return dict(self.overrides)


@dataclass
class GridSearchResult:
    """Best configuration plus every sweep point, best first."""

    best_config: TriADConfig
    best_score: float
    points: list[SweepPoint] = field(default_factory=list)

    def table_rows(self) -> list[list[str]]:
        """Rows for :func:`repro.eval.render_table`."""
        return [
            [", ".join(f"{k}={v}" for k, v in point.overrides) or "(defaults)",
             f"{point.score:.3f}"]
            for point in self.points
        ]


def tri_window_accuracy(detector: TriAD, dataset: Dataset) -> float:
    """Fraction-of-one scoring: did any nominated window hit the event?

    The metric the paper tunes on (Sec. IV-C): it directly measures the
    stage that feeds every later stage.
    """
    candidates, _, _, _ = detector.nominate_windows(dataset.test)
    event = dataset.anomaly_interval
    return float(any(window_hits_event(w, event) for w in candidates.values()))


def pak_f1_score(detector: TriAD, dataset: Dataset) -> float:
    """End-to-end PA%K F1-AUC scoring for a sweep."""
    predictions = detector.predict(dataset.test)
    return evaluate_predictions(predictions, dataset.labels)["pak_f1_auc"]


def grid_search(
    datasets: list[Dataset],
    grid: dict[str, Iterable],
    base_config: TriADConfig | None = None,
    score: Callable[[TriAD, Dataset], float] = tri_window_accuracy,
) -> GridSearchResult:
    """Exhaustive search over ``grid`` (field name -> candidate values).

    Every configuration trains one detector per dataset; its score is
    the archive mean of ``score(detector, dataset)``.

    Example
    -------
    >>> # grid_search(datasets, {"alpha": [0.2, 0.4], "depth": [4, 6]})
    """
    base_config = base_config or TriADConfig()
    if not grid:
        raise ValueError("grid must contain at least one field")
    names = sorted(grid)
    points: list[SweepPoint] = []
    for values in itertools.product(*(list(grid[name]) for name in names)):
        overrides = tuple(zip(names, values))
        config = base_config.with_overrides(**dict(overrides))
        scores = []
        for dataset in datasets:
            detector = TriAD(config).fit(dataset.train)
            scores.append(score(detector, dataset))
        points.append(SweepPoint(overrides=overrides, score=float(np.mean(scores))))

    points.sort(key=lambda p: p.score, reverse=True)
    best = points[0]
    return GridSearchResult(
        best_config=base_config.with_overrides(**best.as_dict),
        best_score=best.score,
        points=points,
    )
