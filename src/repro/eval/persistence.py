"""Persist and reload evaluation results.

Two layers:

* :func:`save_results` / :func:`load_results` — whole-sweep JSON
  snapshots for diffing detector leaderboards between code versions.
* :class:`SweepCheckpoint` — an append-only JSONL journal written
  *during* a sweep, one line per completed (dataset, seed) unit (result
  or failure), so an interrupted archive run resumes from the last
  completed unit instead of starting over.  Corrupt trailing lines
  (a process killed mid-write) are tolerated and ignored.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import asdict
from pathlib import Path

from ..runtime import FailureReport
from .runner import AggregateScores, DatasetScores

__all__ = [
    "save_results",
    "load_results",
    "per_type_breakdown",
    "SweepCheckpoint",
]


def save_results(aggregates: list[AggregateScores], path: str | os.PathLike) -> None:
    """Write a list of aggregate results to a JSON file."""
    payload = [
        {
            "detector": agg.detector,
            "mean": agg.mean,
            "std": agg.std,
            "per_run": [asdict(run) for run in agg.per_run],
            "failures": [f.to_dict() for f in agg.failures],
            "coverage": agg.coverage,
        }
        for agg in aggregates
    ]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def load_results(path: str | os.PathLike) -> list[AggregateScores]:
    """Reload results saved with :func:`save_results`.

    Tolerates files written before failure/coverage accounting existed.
    """
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    aggregates = []
    for entry in payload:
        aggregates.append(
            AggregateScores(
                detector=entry["detector"],
                mean=entry["mean"],
                std=entry["std"],
                per_run=[DatasetScores(**run) for run in entry["per_run"]],
                failures=[
                    FailureReport.from_dict(f) for f in entry.get("failures", [])
                ],
                coverage=entry.get("coverage", 1.0),
            )
        )
    return aggregates


class SweepCheckpoint:
    """Append-only JSONL journal of completed sweep units.

    Each line is ``{"kind": "result"|"failure", ...}`` keyed by
    (dataset, seed).  The archive runners consult :meth:`load` before
    running a unit and splice recorded outcomes in, so a killed sweep
    re-runs only the missing units; recorded failures are also skipped
    (use :meth:`clear_failures` to grant failed units a fresh run).
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)

    def load(
        self,
    ) -> tuple[dict[tuple[str, int], DatasetScores], dict[tuple[str, int], FailureReport]]:
        """Parse the journal into (results, failures) keyed by unit.

        Later entries win over earlier ones for the same unit.  Lines
        that fail to parse or reconstruct — a truncated final line from
        a process killed mid-write, or a non-dict / wrong-schema entry —
        are skipped with a warning naming the line, so a damaged journal
        degrades to re-running the affected units instead of aborting
        the resume.
        """
        results: dict[tuple[str, int], DatasetScores] = {}
        failures: dict[tuple[str, int], FailureReport] = {}
        if not self.path.exists():
            return results, failures
        with open(self.path, encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    self._warn_skip(lineno, "not valid JSON (torn write?)")
                    continue
                if not isinstance(entry, dict):
                    self._warn_skip(lineno, f"expected an object, got {type(entry).__name__}")
                    continue
                kind = entry.pop("kind", None)
                try:
                    if kind == "result":
                        run = DatasetScores(**entry)
                        key = (run.dataset, run.seed)
                        results[key] = run
                        failures.pop(key, None)
                    elif kind == "failure":
                        report = FailureReport.from_dict(entry)
                        key = (report.dataset, report.seed)
                        failures[key] = report
                        results.pop(key, None)
                    else:
                        self._warn_skip(lineno, f"unknown kind {kind!r}")
                except (TypeError, KeyError, ValueError, AttributeError) as error:
                    self._warn_skip(lineno, f"{type(error).__name__}: {error}")
        return results, failures

    def _warn_skip(self, lineno: int, reason: str) -> None:
        warnings.warn(
            f"skipping checkpoint entry {self.path}:{lineno}: {reason}; "
            "the affected unit will re-run",
            RuntimeWarning,
            stacklevel=3,
        )

    def append_result(self, run: DatasetScores) -> None:
        self._append({"kind": "result", **asdict(run)})

    def append_failure(self, failure: FailureReport) -> None:
        self._append({"kind": "failure", **failure.to_dict()})

    def clear_failures(self) -> int:
        """Drop failure lines so those units re-run on resume.

        Returns the number of failures cleared.
        """
        results, failures = self.load()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "w", encoding="utf-8") as handle:
            for run in results.values():
                handle.write(json.dumps({"kind": "result", **asdict(run)}) + "\n")
        return len(failures)

    def _append(self, payload: dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(payload) + "\n")
            handle.flush()
            os.fsync(handle.fileno())


def per_type_breakdown(
    aggregate: AggregateScores, metric: str = "pak_f1_auc"
) -> dict[str, float]:
    """Average a metric per anomaly type, inferred from dataset names.

    Synthetic archive names end in ``_<type>`` (e.g.
    ``003_harmonics_level_shift``); datasets whose type cannot be
    inferred are grouped under ``"unknown"``.
    """
    from collections import defaultdict

    known_types = {
        "noise",
        "duration",
        "seasonal",
        "trend",
        "level_shift",
        "contextual",
        "point",
    }
    buckets: dict[str, list[float]] = defaultdict(list)
    for run in aggregate.per_run:
        name = run.dataset
        matched = "unknown"
        for anomaly_type in known_types:
            if name.endswith(anomaly_type):
                matched = anomaly_type
                break
        buckets[matched].append(run.metrics[metric])
    return {key: float(sum(v) / len(v)) for key, v in sorted(buckets.items())}
