"""Persist and reload evaluation results as JSON.

Lets the benchmark harness accumulate results across runs and lets
users diff detector leaderboards between code versions.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict

from .runner import AggregateScores, DatasetScores

__all__ = ["save_results", "load_results", "per_type_breakdown"]


def save_results(aggregates: list[AggregateScores], path: str | os.PathLike) -> None:
    """Write a list of aggregate results to a JSON file."""
    payload = [
        {
            "detector": agg.detector,
            "mean": agg.mean,
            "std": agg.std,
            "per_run": [asdict(run) for run in agg.per_run],
        }
        for agg in aggregates
    ]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def load_results(path: str | os.PathLike) -> list[AggregateScores]:
    """Reload results saved with :func:`save_results`."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    aggregates = []
    for entry in payload:
        aggregates.append(
            AggregateScores(
                detector=entry["detector"],
                mean=entry["mean"],
                std=entry["std"],
                per_run=[DatasetScores(**run) for run in entry["per_run"]],
            )
        )
    return aggregates


def per_type_breakdown(
    aggregate: AggregateScores, metric: str = "pak_f1_auc"
) -> dict[str, float]:
    """Average a metric per anomaly type, inferred from dataset names.

    Synthetic archive names end in ``_<type>`` (e.g.
    ``003_harmonics_level_shift``); datasets whose type cannot be
    inferred are grouped under ``"unknown"``.
    """
    from collections import defaultdict

    known_types = {
        "noise",
        "duration",
        "seasonal",
        "trend",
        "level_shift",
        "contextual",
        "point",
    }
    buckets: dict[str, list[float]] = defaultdict(list)
    for run in aggregate.per_run:
        name = run.dataset
        matched = "unknown"
        for anomaly_type in known_types:
            if name.endswith(anomaly_type):
                matched = anomaly_type
                break
        buckets[matched].append(run.metrics[metric])
    return {key: float(sum(v) / len(v)) for key, v in sorted(buckets.items())}
