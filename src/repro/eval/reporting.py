"""Markdown report generation from benchmark artifacts.

``pytest benchmarks/ --benchmark-only`` writes one rendered table per
paper artifact into ``benchmarks/results/``; this module stitches them
into a single markdown report (the mechanically-generated companion of
the hand-written EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from pathlib import Path

from .experiments import EXPERIMENTS

__all__ = ["build_report", "write_report", "render_failure_summary"]


def render_failure_summary(aggregate) -> str:
    """Coverage line plus one row per recorded failure for a sweep.

    Returns an empty string for a fully-covered, failure-free aggregate
    so callers can print it unconditionally.
    """
    from .tables import render_table

    lines: list[str] = []
    if aggregate.failures or aggregate.coverage < 1.0:
        completed = len(aggregate.per_run)
        total = completed + len(aggregate.failures)
        lines.append(
            f"coverage: {aggregate.coverage:.1%} "
            f"({completed}/{total} units completed)"
        )
    if aggregate.failures:
        rows = [
            [f.dataset, str(f.seed), f.stage, f.error_type, str(f.attempts), f.message]
            for f in aggregate.failures
        ]
        lines.append(
            render_table(
                ["Dataset", "Seed", "Stage", "Error", "Attempts", "Message"],
                rows,
                title=f"Failures: {aggregate.detector}",
            )
        )
    warned = [run for run in aggregate.per_run if run.warnings]
    for run in warned:
        for note in run.warnings:
            lines.append(f"warning: {run.dataset} (seed {run.seed}): {note}")
    return "\n".join(lines)

# Result-file stem -> experiment id (a bench may emit several artifacts).
_ARTIFACT_EXPERIMENTS = {
    "table2_pa_inflation": "table2",
    "table3_overall": "table3",
    "table4_merlin": "table4",
    "fig1_augmentation": "fig1",
    "fig2_lstmae_recon": "fig2",
    "fig6_length_dist": "fig6",
    "fig7_search_ratio": "fig7",
    "fig8_params": "fig8",
    "fig9_ablation": "fig9",
    "fig11_similarity": "fig10_13",
    "fig12_merlin": "fig10_13",
    "fig13_thresholds": "fig10_13",
    "fig15_discord_fail": "fig15",
    "fig16_diversity": "fig16",
}


def build_report(results_dir: str | os.PathLike) -> str:
    """Assemble a markdown report from every ``*.txt`` artifact found.

    Artifacts are grouped under their paper experiment (ordered as in
    the registry); unknown artifacts are appended under "Additional
    results".
    """
    results_dir = Path(results_dir)
    artifacts = {path.stem: path for path in sorted(results_dir.glob("*.txt"))}
    if not artifacts:
        raise FileNotFoundError(
            f"no benchmark artifacts in {results_dir}; run "
            "`pytest benchmarks/ --benchmark-only` first"
        )

    sections: list[str] = ["# Benchmark results", ""]
    used: set[str] = set()
    for experiment in EXPERIMENTS.values():
        stems = [
            stem
            for stem, exp_id in _ARTIFACT_EXPERIMENTS.items()
            if exp_id == experiment.id and stem in artifacts
        ]
        if not stems:
            continue
        sections.append(f"## {experiment.paper_artifact} — {experiment.description}")
        sections.append("")
        for stem in stems:
            sections.append("```")
            sections.append(artifacts[stem].read_text().rstrip())
            sections.append("```")
            sections.append("")
            used.add(stem)

    extras = [stem for stem in artifacts if stem not in used]
    if extras:
        sections.append("## Additional results")
        sections.append("")
        for stem in extras:
            sections.append("```")
            sections.append(artifacts[stem].read_text().rstrip())
            sections.append("```")
            sections.append("")
    return "\n".join(sections)


def write_report(
    results_dir: str | os.PathLike, output_path: str | os.PathLike
) -> Path:
    """Write :func:`build_report` output to ``output_path``."""
    output_path = Path(output_path)
    output_path.write_text(build_report(results_dir))
    return output_path
