"""Experiment registry: one entry per paper table/figure.

Maps each experiment id to its description and the benchmark module
that regenerates it, and centralizes the scaled-down default settings
the benches share (archive size, epochs, seeds) so results across
benches are comparable.  The paper runs 250 datasets x 5 seeds x 20
epochs on a GPU; the defaults here are sized for a CPU-only run while
preserving every qualitative shape (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import TriADConfig
from ..data.archive import make_archive
from ..data.spec import Dataset

__all__ = ["Experiment", "EXPERIMENTS", "bench_archive", "bench_config", "BENCH_SEEDS"]

BENCH_SEEDS = (0, 1)


@dataclass(frozen=True)
class Experiment:
    """A paper artifact and the bench that regenerates it."""

    id: str
    paper_artifact: str
    bench_module: str
    description: str


EXPERIMENTS: dict[str, Experiment] = {
    e.id: e
    for e in [
        Experiment(
            "table2",
            "Table II",
            "benchmarks/bench_table2_pa_inflation.py",
            "PA inflates F1; random LSTM-AE rivals trained on one-liner data",
        ),
        Experiment(
            "table3",
            "Table III",
            "benchmarks/bench_table3_overall.py",
            "Overall comparison: TriAD vs 7 baselines, PA%K AUC + affiliation",
        ),
        Experiment(
            "table4",
            "Table IV",
            "benchmarks/bench_table4_merlin.py",
            "TriAD windows vs MERLIN++: event accuracy and inference time",
        ),
        Experiment(
            "fig1",
            "Fig. 1 & Fig. 5",
            "benchmarks/bench_fig1_augmentation.py",
            "Augmentations resemble anomalies; jitter/warp examples",
        ),
        Experiment(
            "fig2",
            "Fig. 2",
            "benchmarks/bench_fig2_lstmae_recon.py",
            "LSTM-AE reconstructs continuous anomalies too faithfully",
        ),
        Experiment(
            "fig6",
            "Fig. 6",
            "benchmarks/bench_fig6_length_dist.py",
            "Anomaly length distribution of the archive",
        ),
        Experiment(
            "fig7",
            "Fig. 7",
            "benchmarks/bench_fig7_search_ratio.py",
            "TriAD search span is a small fraction of full-series MERLIN",
        ),
        Experiment(
            "fig8",
            "Fig. 8",
            "benchmarks/bench_fig8_params.py",
            "Parameter study: alpha, encoder depth, h_d",
        ),
        Experiment(
            "fig9",
            "Fig. 9",
            "benchmarks/bench_fig9_ablation.py",
            "Ablation: drop each encoder / loss term",
        ),
        Experiment(
            "fig10_13",
            "Figs. 10-13",
            "benchmarks/bench_fig10_13_case_study.py",
            "Case study: similarity curves, MERLIN sweep, threshold study",
        ),
        Experiment(
            "fig16",
            "Figs. 14 & 16",
            "benchmarks/bench_fig16_diversity.py",
            "Anomaly-type diversity: TriAD vs MTGFlow per type",
        ),
        Experiment(
            "fig15",
            "Fig. 15",
            "benchmarks/bench_fig15_discord_fail.py",
            "Discord-fail exception recovers wide anomalies",
        ),
        Experiment(
            "ablation-scoring",
            "(extension)",
            "benchmarks/bench_ablation_scoring.py",
            "Uniform vs weighted voting x exception on/off",
        ),
        Experiment(
            "extended-baselines",
            "(extension)",
            "benchmarks/bench_extended_baselines.py",
            "SR / ChangePoint / Donut / DeepAnT vs TriAD, per-type breakdown",
        ),
    ]
}


def bench_archive(size: int = 12, seed: int = 7) -> list[Dataset]:
    """The shared scaled-down archive used by the benches."""
    return make_archive(size=size, seed=seed, train_length=1600, test_length=2000)


def bench_config(**overrides) -> TriADConfig:
    """TriAD settings for benches: paper architecture, fewer epochs."""
    defaults = dict(epochs=5, max_window=256)
    defaults.update(overrides)
    return TriADConfig(**defaults)
