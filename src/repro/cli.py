"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``archive``   Generate a synthetic UCR-style archive summary (or write
              the series to ``--out`` as real-UCR-format .txt files).
``detect``    Train TriAD on one dataset (synthetic by index, or a real
              UCR file) and print the detection report.
``compare``   Run a set of detectors over a small archive and print the
              Table III-style leaderboard.
``experiments``  List the paper artifacts and the bench regenerating each.
``profile``   Summarize an observability JSONL export (``compare
              --metrics-out``): top timed sections, counters, traces.
``report``    Stitch ``benchmarks/results/*.txt`` into one markdown report.
``serve-replay``  Replay an archive unit through the online serving
              engine (micro-batching, degradation chain, drift
              monitors) and report alerts, throughput, and latency.
              ``--chaos level-shift --adapt`` runs the self-healing
              drill: a mid-replay regime change, drift detection, a
              guarded background retrain, shadow evaluation, and
              auto-promotion (see ``docs/ADAPTIVE.md``).
``tune``      Grid-search TriAD hyper-parameters on a small archive.
``submit``    Submit a bulk-scoring job (resumable chunked execution)
              and drive it to a terminal state; re-running the same
              command resumes rather than recomputes (docs/JOBS.md).
``jobs``      List jobs in a store with state and chunk progress.
``job-result``  Print (or save) the stitched scores of a finished job.
``job-cancel``  Cancel a pending or running job cooperatively.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TriAD (ICDE 2024) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_archive = sub.add_parser("archive", help="generate a synthetic archive")
    p_archive.add_argument("--size", type=int, default=10)
    p_archive.add_argument("--seed", type=int, default=7)
    p_archive.add_argument("--train-length", type=int, default=1600)
    p_archive.add_argument("--test-length", type=int, default=2000)
    p_archive.add_argument("--out", type=Path, default=None,
                           help="write datasets as UCR-format .txt files")

    p_detect = sub.add_parser("detect", help="run TriAD on one dataset")
    p_detect.add_argument("--dataset", type=str, default="0",
                          help="archive index, or path to a real UCR file")
    p_detect.add_argument("--epochs", type=int, default=5)
    p_detect.add_argument("--seed", type=int, default=0)
    p_detect.add_argument("--save", type=Path, default=None,
                          help="save the fitted detector (npz)")

    p_compare = sub.add_parser("compare", help="leaderboard over an archive")
    p_compare.add_argument("--size", type=int, default=4)
    p_compare.add_argument("--epochs", type=int, default=4)
    p_compare.add_argument("--detectors", type=str,
                           default="one-liner,lstm-ae,triad",
                           help="comma list: one-liner,random,lstm-ae,"
                                "lstm-ae-random,usad,ts2vec,mtgflow,"
                                "dcdetector,anomaly-transformer,"
                                "spectral-residual,changepoint,donut,"
                                "deepant,triad")
    p_compare.add_argument("--json", type=Path, default=None,
                           help="also write results to this JSON file")
    p_compare.add_argument("--mode", choices=("binary", "scores"), default="binary",
                           help="binary: thresholded predictions + paper metrics; "
                                "scores: threshold-free ROC/PR AUC (baselines only)")
    p_compare.add_argument("--retries", type=int, default=None,
                           help="isolate failing (dataset, seed) units and retry "
                                "them up to N times instead of aborting the sweep")
    p_compare.add_argument("--budget-seconds", type=float, default=None,
                           help="wall-clock budget per unit attempt (implies "
                                "fault isolation)")
    p_compare.add_argument("--checkpoint", type=Path, default=None,
                           help="directory of per-detector JSONL journals; an "
                                "interrupted sweep resumes from the last "
                                "completed unit")
    p_compare.add_argument("--retry-failed", action="store_true",
                           help="clear failures recorded in the checkpoint so "
                                "those units get a fresh run")
    p_compare.add_argument("--metrics-out", type=Path, default=None,
                           help="record observability metrics (counters, "
                                "timers, events) during the run and export "
                                "them as JSONL to this path")
    p_compare.add_argument("--trace", action="store_true",
                           help="also record nested spans (requires "
                                "--metrics-out); view with 'repro profile'")
    p_compare.add_argument("--workers", type=int, default=1,
                           help="run (dataset, seed) units on N worker "
                                "processes via the job fabric; results are "
                                "identical to the sequential sweep")

    sub.add_parser("experiments", help="list paper artifacts and benches")

    p_profile = sub.add_parser(
        "profile", help="summarize an observability JSONL export"
    )
    p_profile.add_argument("path", type=Path,
                           help="metrics.jsonl written by --metrics-out")
    p_profile.add_argument("--top", type=int, default=15,
                           help="rows per section (default 15)")

    p_report = sub.add_parser("report", help="build a markdown report from bench results")
    p_report.add_argument("--results", type=Path, default=Path("benchmarks/results"))
    p_report.add_argument("--out", type=Path, default=None,
                          help="write the report here instead of stdout")

    p_serve = sub.add_parser(
        "serve-replay",
        help="replay an archive unit through the online serving engine",
    )
    p_serve.add_argument("--dataset", type=str, default="4",
                         help="archive index, or path to a real UCR file")
    p_serve.add_argument("--epochs", type=int, default=3,
                         help="TriAD training epochs for the primary model "
                              "(0 = training-free chain: spectral residual "
                              "-> streaming discord)")
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--max-window", type=int, default=256,
                         help="cap on the window length the plan derives "
                              "from the training split (TriADConfig."
                              "max_window)")
    p_serve.add_argument("--streams", type=int, default=4,
                         help="replay the unit as N concurrent streams")
    p_serve.add_argument("--max-batch", type=int, default=32,
                         help="micro-batch cap for cross-stream scoring")
    p_serve.add_argument("--queue-capacity", type=int, default=512,
                         help="admission-control bound on pending windows")
    p_serve.add_argument("--latency-budget-ms", type=float, default=None,
                         help="per-batch latency budget: the engine adapts "
                              "its micro-batch size to it and the primary "
                              "model degrades when it keeps exceeding it")
    p_serve.add_argument("--sigma", type=float, default=4.0,
                         help="per-stream alert threshold sigma")
    p_serve.add_argument("--fail-primary", type=int, default=None, metavar="N",
                         help="chaos drill: primary model fails after N "
                              "healthy batches, forcing the degradation chain")
    p_serve.add_argument("--chaos", choices=["level-shift", "nan-retrain"],
                         default=None,
                         help="chaos drill: 'level-shift' re-baselines the "
                              "feed mid-replay (pair with --adapt to watch "
                              "the self-healing loop recover); 'nan-retrain' "
                              "additionally poisons the retrainer so the "
                              "shadow gate must reject the candidate")
    p_serve.add_argument("--chaos-at", type=float, default=0.5,
                         help="where the level shift lands, as a fraction "
                              "of the test split (default 0.5)")
    p_serve.add_argument("--chaos-delta", type=float, default=4.0,
                         help="level-shift magnitude added to every point "
                              "after the shift (default 4.0)")
    p_serve.add_argument("--adapt", action="store_true",
                         help="attach the adaptive controller: drift "
                              "signals trigger guarded background retrains, "
                              "shadow-evaluated and auto-promoted "
                              "(docs/ADAPTIVE.md)")
    p_serve.add_argument("--adapt-budget-s", type=float, default=30.0,
                         help="wall-clock RunBudget per retrain attempt")
    p_serve.add_argument("--adapt-journal", type=Path, default=None,
                         help="append every adaptation decision to this "
                              "JSONL audit trail")
    p_serve.add_argument("--load", type=Path, default=None,
                         help="load the primary from a saved detector npz "
                              "instead of training")
    p_serve.add_argument("--json", type=Path, default=None,
                         help="also write the replay report as JSON")
    p_serve.add_argument("--metrics-out", type=Path, default=None,
                         help="export observability metrics recorded during "
                              "the replay as JSONL")
    p_serve.add_argument("--workers", type=int, default=1,
                         help="replay through the sharded multi-worker "
                              "fabric instead of the in-process engine "
                              "(docs/SHARDING.md); incompatible with "
                              "--adapt/--chaos/--fail-primary")

    p_shard = sub.add_parser(
        "serve-shard",
        help="drive the sharded serving fabric over a synthetic stream fleet",
    )
    p_shard.add_argument("--dataset", type=str, default="4",
                         help="archive index, or path to a real UCR file")
    p_shard.add_argument("--detector", type=str, default="spectral-residual",
                         help="jobs.registry detector name each worker "
                              "builds its scorer from")
    p_shard.add_argument("--workers", type=int, default=4,
                         help="worker processes on the hash ring")
    p_shard.add_argument("--streams", type=int, default=64,
                         help="concurrent streams to simulate")
    p_shard.add_argument("--chunk", type=int, default=128,
                         help="points per stream per submit round")
    p_shard.add_argument("--store", choices=["memory", "file", "shm"],
                         default="memory",
                         help="stream-state store backend")
    p_shard.add_argument("--store-dir", type=Path, default=None,
                         help="directory for --store file (default: a "
                              "temporary directory)")
    p_shard.add_argument("--max-window", type=int, default=128,
                         help="window-length cap for the detector plan")
    p_shard.add_argument("--kill-worker", action="store_true",
                         help="chaos drill: SIGKILL one worker mid-run and "
                              "let the supervisor heal it")
    p_shard.add_argument("--seed", type=int, default=0)
    p_shard.add_argument("--json", type=Path, default=None,
                         help="also write the fabric report as JSON")

    p_submit = sub.add_parser(
        "submit", help="submit a resumable bulk-scoring job and run it"
    )
    p_submit.add_argument("--dataset", type=str, default="0",
                          help="archive index, or path to a real UCR file")
    p_submit.add_argument("--detector", type=str, default="spectral-residual",
                          help="a registered job detector (see docs/JOBS.md); "
                               "e.g. triad, spectral-residual, lstm-ae, usad, "
                               "deepant, donut, changepoint, random")
    p_submit.add_argument("--store", type=Path, default=Path("jobstore"),
                          help="job store directory (journals + inputs + "
                               "results); jobs resume from here after a crash")
    p_submit.add_argument("--workers", type=int, default=1,
                          help="chunk-scoring worker processes")
    p_submit.add_argument("--chunk-windows", type=int, default=256,
                          help="windows per chunk (journal/resume granularity)")
    p_submit.add_argument("--epochs", type=int, default=2,
                          help="training epochs for trainable detectors")
    p_submit.add_argument("--seed", type=int, default=0)
    p_submit.add_argument("--retries", type=int, default=None,
                          help="retry a failing chunk up to N times before "
                               "failing the job")
    p_submit.add_argument("--budget-seconds", type=float, default=None,
                          help="wall-clock budget for the run; an over-budget "
                               "job fails cleanly and resumes from the journal")

    p_jobs = sub.add_parser("jobs", help="list jobs in a store")
    p_jobs.add_argument("--store", type=Path, default=Path("jobstore"))

    p_jresult = sub.add_parser(
        "job-result", help="print or save a finished job's stitched scores"
    )
    p_jresult.add_argument("job_id", type=str)
    p_jresult.add_argument("--store", type=Path, default=Path("jobstore"))
    p_jresult.add_argument("--out", type=Path, default=None,
                           help="save scores as .npy instead of summarizing")

    p_jcancel = sub.add_parser(
        "job-cancel", help="cancel a pending or running job"
    )
    p_jcancel.add_argument("job_id", type=str)
    p_jcancel.add_argument("--store", type=Path, default=Path("jobstore"))

    p_tune = sub.add_parser("tune", help="grid-search TriAD hyper-parameters")
    p_tune.add_argument("--size", type=int, default=3)
    p_tune.add_argument("--epochs", type=int, default=2)
    p_tune.add_argument("--alpha", type=str, default="0.2,0.4,0.6",
                        help="comma list of alpha values to sweep")
    p_tune.add_argument("--depth", type=str, default="",
                        help="comma list of encoder depths to sweep")
    return parser


def _cmd_archive(args) -> int:
    from .data import anomaly_length_distribution, make_archive
    from .eval import render_table

    archive = make_archive(
        size=args.size,
        seed=args.seed,
        train_length=args.train_length,
        test_length=args.test_length,
    )
    rows = [
        [
            ds.name,
            ds.spec.family,
            ds.spec.anomaly_type,
            str(ds.anomaly_length),
            f"[{ds.anomaly_interval[0]}, {ds.anomaly_interval[1]})",
        ]
        for ds in archive
    ]
    print(render_table(
        ["Dataset", "Family", "Anomaly", "Length", "Interval"], rows,
        title=f"Synthetic archive (seed={args.seed})",
    ))
    dist = anomaly_length_distribution(archive)
    print("\nLength distribution: " + ", ".join(f"{k}: {v:.0%}" for k, v in dist.items()))

    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        for i, ds in enumerate(archive):
            start, end = ds.anomaly_interval
            train_end = len(ds.train)
            name = (
                f"{i + 1:03d}_UCR_Anomaly_{ds.spec.family}{ds.spec.anomaly_type}"
                f"_{train_end}_{train_end + start + 1}_{train_end + end}.txt"
            )
            np.savetxt(args.out / name, np.concatenate([ds.train, ds.test]))
        print(f"\nwrote {len(archive)} UCR-format files to {args.out}")
    return 0


def _load_dataset(spec: str):
    from .data import load_ucr_file, make_archive

    path = Path(spec)
    if path.exists():
        return load_ucr_file(path)
    index = int(spec)
    return make_archive(size=index + 1, seed=7, train_length=1600, test_length=2000)[index]


def _cmd_detect(args) -> int:
    from . import TriAD, TriADConfig
    from .core import save_detector
    from .metrics import affiliation_metrics, pa_k_auc, window_hits_event

    dataset = _load_dataset(args.dataset)
    print(f"dataset {dataset.name}: train={len(dataset.train)} test={len(dataset.test)}")
    detector = TriAD(TriADConfig(epochs=args.epochs, seed=args.seed, max_window=256))
    detector.fit(dataset.train)
    detection = detector.detect(dataset.test)

    event = dataset.anomaly_interval
    print(f"anomaly       : [{event[0]}, {event[1]})")
    print(f"chosen window : {detection.window} "
          f"(hit={window_hits_event(detection.window, event)})")
    print(f"search region : {detection.search_region}")
    print(f"exception     : {detection.votes.exception_applied}")
    curve = pa_k_auc(detection.predictions, dataset.labels)
    affiliation = affiliation_metrics(detection.predictions, dataset.labels)
    print(f"PA%K F1-AUC   : {curve.f1_auc:.3f}")
    print(f"affiliation F1: {affiliation.f1:.3f}")

    if args.save is not None:
        save_detector(detector, args.save)
        print(f"saved detector to {args.save}")
    return 0


_DETECTOR_FACTORIES = {
    "one-liner": lambda seed, epochs: _b().OneLinerDetector(),
    "random": lambda seed, epochs: _b().RandomScoreDetector(seed=seed),
    "lstm-ae": lambda seed, epochs: _b().LSTMAEDetector(trained=True, epochs=epochs, seed=seed),
    "lstm-ae-random": lambda seed, epochs: _b().LSTMAEDetector(trained=False, seed=seed),
    "usad": lambda seed, epochs: _b().USADDetector(epochs=epochs, seed=seed),
    "ts2vec": lambda seed, epochs: _b().TS2VecDetector(epochs=max(epochs // 2, 1), seed=seed),
    "mtgflow": lambda seed, epochs: _b().MTGFlowDetector(epochs=epochs, seed=seed),
    "dcdetector": lambda seed, epochs: _b().DCdetectorDetector(epochs=max(epochs // 2, 1), seed=seed),
    "anomaly-transformer": lambda seed, epochs: _b().AnomalyTransformerDetector(
        epochs=max(epochs // 2, 1), seed=seed
    ),
    "spectral-residual": lambda seed, epochs: _b().SpectralResidualDetector(),
    "changepoint": lambda seed, epochs: _b().ChangePointDetector(),
    "donut": lambda seed, epochs: _b().DonutDetector(epochs=epochs, seed=seed),
    "deepant": lambda seed, epochs: _b().DeepAnTDetector(epochs=epochs, seed=seed),
}


def _b():
    from . import baselines

    return baselines


def _cmd_compare(args) -> int:
    from . import TriAD, TriADConfig
    from .data import make_archive
    from .eval import (
        METRIC_NAMES,
        SCORE_METRIC_NAMES,
        SweepCheckpoint,
        render_failure_summary,
        render_table,
        run_on_archive,
        run_scores_on_archive,
    )
    from . import obs
    from .eval.persistence import save_results
    from .runtime import RetryPolicy, RunBudget

    if args.trace and args.metrics_out is None:
        print("--trace requires --metrics-out", file=sys.stderr)
        return 2
    session = None
    if args.metrics_out is not None:
        session = obs.install(trace=args.trace)

    archive = make_archive(size=args.size, seed=7, train_length=1600, test_length=2000)
    names = [n.strip() for n in args.detectors.split(",") if n.strip()]

    try:
        policy = None
        if args.retries is not None or args.budget_seconds is not None:
            budget = (
                RunBudget(max_seconds=args.budget_seconds)
                if args.budget_seconds is not None
                else None
            )
            policy = RetryPolicy(max_retries=args.retries or 0, budget=budget)
        aggregates = []
        for name in names:
            if name == "triad":
                if args.mode == "scores":
                    print("triad emits binary predictions; use --mode binary",
                          file=sys.stderr)
                    return 2
                factory = lambda s: TriAD(  # noqa: E731 - tiny adapter
                    TriADConfig(epochs=args.epochs, seed=s, max_window=256)
                )
            elif name in _DETECTOR_FACTORIES:
                base = _DETECTOR_FACTORIES[name]
                factory = lambda s, base=base: base(s, args.epochs)
            else:
                print(f"unknown detector {name!r}", file=sys.stderr)
                return 2
            if args.workers > 1:
                from .jobs import run_archive_job

                def runner(name, factory, archive, seeds, policy, checkpoint):
                    return run_archive_job(
                        name, factory, archive, seeds=seeds, mode=args.mode,
                        workers=args.workers, policy=policy,
                        checkpoint=checkpoint,
                    )
            else:
                runner = run_scores_on_archive if args.mode == "scores" else run_on_archive
            checkpoint = None
            if args.checkpoint is not None:
                args.checkpoint.mkdir(parents=True, exist_ok=True)
                checkpoint = SweepCheckpoint(args.checkpoint / f"{name}.{args.mode}.jsonl")
                if args.retry_failed:
                    cleared = checkpoint.clear_failures()
                    if cleared:
                        print(f"cleared {cleared} recorded failure(s) for {name}",
                              file=sys.stderr)
            aggregates.append(
                runner(name, factory, archive, seeds=(0,),
                       policy=policy, checkpoint=checkpoint)
            )

        metric_names = SCORE_METRIC_NAMES if args.mode == "scores" else METRIC_NAMES
        rows = [agg.row(metrics=metric_names) for agg in aggregates]
        print(render_table(["Model"] + list(metric_names), rows,
                           title=f"Leaderboard: {args.size} datasets ({args.mode})"))
        for agg in aggregates:
            summary = render_failure_summary(agg)
            if summary:
                print(summary)
        if args.json is not None:
            save_results(aggregates, args.json)
            print(f"\nwrote results to {args.json}")
        if session is not None:
            count = session.export_jsonl(args.metrics_out)
            print(f"wrote {count} observability record(s) to {args.metrics_out}"
                  " — summarize with: repro profile " + str(args.metrics_out))
        return 0
    finally:
        if session is not None:
            obs.uninstall()


def _cmd_experiments(_args) -> int:
    from .eval import EXPERIMENTS, render_table

    rows = [
        [e.id, e.paper_artifact, e.bench_module, e.description]
        for e in EXPERIMENTS.values()
    ]
    print(render_table(["Id", "Artifact", "Bench", "What it shows"], rows))
    return 0


def _cmd_profile(args) -> int:
    from .obs import load_records, render_profile

    try:
        records = load_records(args.path)
    except FileNotFoundError:
        print(f"no such export: {args.path}", file=sys.stderr)
        return 2
    print(render_profile(records, top=args.top))
    return 0


def _cmd_report(args) -> int:
    from .eval import build_report

    try:
        report = build_report(args.results)
    except FileNotFoundError as error:
        print(str(error), file=sys.stderr)
        return 2
    if args.out is not None:
        args.out.write_text(report)
        print(f"wrote report to {args.out}")
    else:
        print(report)
    return 0


def _make_store(kind: str, directory=None):
    """Build a stream-state store backend for the shard fabric."""
    from .serve import FileBackedStore, InMemoryStore, SharedMemoryStore

    if kind == "file":
        import tempfile

        return FileBackedStore(directory or tempfile.mkdtemp(prefix="repro-shard-"))
    if kind == "shm":
        return SharedMemoryStore(f"repro-shard-{os.getpid()}")
    return InMemoryStore()


def _run_sharded_replay(
    dataset,
    spec,
    workers: int,
    streams: int,
    chunk: int,
    store_kind: str = "memory",
    store_dir=None,
    kill_worker: bool = False,
    json_out=None,
) -> int:
    """Feed ``dataset.test`` as N identical streams through the fabric."""
    import json as json_module
    import time as time_module

    from .serve import ShardSupervisor

    series = np.asarray(dataset.test, dtype=np.float64)
    ids = [f"{dataset.name}#{i}" for i in range(streams)]
    rounds = max((len(series) + chunk - 1) // chunk, 1)
    kill_round = rounds // 2
    alerts = 0
    with ShardSupervisor(
        spec, workers=workers, store=_make_store(store_kind, store_dir)
    ) as supervisor:
        start_time = time_module.perf_counter()
        for round_index, start in enumerate(range(0, len(series), chunk)):
            if kill_worker and round_index == kill_round:
                victim = supervisor.router.workers[0]
                pid = supervisor.kill_worker(victim)
                print(f"chaos: SIGKILLed worker {victim} (pid {pid})")
            batch = [(sid, series[start : start + chunk]) for sid in ids]
            alerts += len(supervisor.submit(batch))
        duration = time_module.perf_counter() - start_time
        report = supervisor.report()
    points = len(series) * len(ids)
    print(f"\nsharded replay: {points} points over {len(ids)} streams, "
          f"{workers} workers, store={store_kind}")
    print(f"  throughput: {points / max(duration, 1e-9):,.0f} points/s "
          f"({duration:.2f}s)")
    print(f"  alerts: {alerts}   respawns: {report['respawns']}   "
          f"heals: {report['heals']}")
    for name, ring_count in sorted(report["ring"].items()):
        worker = report["workers"].get(name, {})
        scored = worker.get("windows_scored", "?")
        print(f"  {name}: {ring_count} streams, {scored} windows scored")
    if json_out is not None:
        payload = {
            "points": points,
            "streams": len(ids),
            "workers": workers,
            "store": store_kind,
            "duration_s": duration,
            "alerts": alerts,
            "report": report,
        }
        json_out.write_text(
            json_module.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote fabric report to {json_out}")
    return 0


def _cmd_serve_shard(args) -> int:
    from .serve import WorkerSpec

    dataset = _load_dataset(args.dataset)
    print(f"dataset {dataset.name}: test={len(dataset.test)} "
          f"streams={args.streams} workers={args.workers} "
          f"detector={args.detector}")
    spec = WorkerSpec(
        detector=args.detector,
        params={"max_window": args.max_window, "seed": args.seed},
        train=np.asarray(dataset.train, dtype=np.float64),
    )
    return _run_sharded_replay(
        dataset,
        spec,
        workers=args.workers,
        streams=args.streams,
        chunk=args.chunk,
        store_kind=args.store,
        store_dir=args.store_dir,
        kill_worker=args.kill_worker,
        json_out=args.json,
    )


def _cmd_serve_replay(args) -> int:
    import json as json_module

    from . import TriAD, TriADConfig, obs
    from .core import load_detector
    from .pipeline import default_pipeline
    from .runtime import RetryPolicy
    from .serve import build_engine, build_registry, replay_dataset

    dataset = _load_dataset(args.dataset)
    print(f"dataset {dataset.name}: test={len(dataset.test)} "
          f"streams={args.streams}")

    if args.workers > 1 and (
        args.adapt or args.chaos is not None or args.fail_primary is not None
    ):
        print("--workers is incompatible with --adapt/--chaos/--fail-primary "
              "(the sharded fabric runs plain scoring; see docs/SHARDING.md)",
              file=sys.stderr)
        return 2

    config = TriADConfig(
        epochs=args.epochs, seed=args.seed, max_window=args.max_window
    )
    detector = None
    if args.load is not None:
        if not args.load.exists():
            print(f"no saved detector at {args.load} "
                  f"(save one with `repro detect --save`)", file=sys.stderr)
            return 2
        detector = load_detector(args.load)
        print(f"loaded primary from {args.load}")
    elif args.epochs > 0:
        detector = TriAD(config).fit(dataset.train)
        print(f"trained TriAD primary ({args.epochs} epochs)")

    if args.workers > 1:
        import tempfile

        from .core import save_detector
        from .serve import WorkerSpec

        if detector is not None:
            detector_path = Path(tempfile.mkdtemp(prefix="repro-shard-")) / "primary.npz"
            save_detector(detector, detector_path)
            spec = WorkerSpec(detector_file=str(detector_path))
            print(f"workers load the fitted primary from {detector_path}")
        else:
            spec = WorkerSpec(
                detector="spectral-residual",
                params={"max_window": args.max_window, "seed": args.seed},
                train=np.asarray(dataset.train, dtype=np.float64),
            )
            print("workers build the training-free spectral-residual scorer")
        return _run_sharded_replay(
            dataset,
            spec,
            workers=args.workers,
            streams=args.streams,
            chunk=256,
            json_out=args.json,
        )
    if detector is not None:
        plan = detector.plan
    else:
        # Same plan the detector would have trained under — one source
        # of plan truth (the config) instead of a hardcoded max_length.
        plan = default_pipeline().plan_for(dataset.train, config)
        print("training-free chain (spectral residual -> streaming discord)")

    budget_s = (
        args.latency_budget_ms / 1e3 if args.latency_budget_ms is not None else None
    )
    chaos = None
    if args.chaos is not None:
        from .serve import LevelShift

        chaos = LevelShift(
            at=int(len(dataset.test) * args.chaos_at), delta=args.chaos_delta
        )
        print(f"chaos: level shift of {chaos.delta:+g} at index {chaos.at}"
              + (" + NaN-poisoned retrainer" if args.chaos == "nan-retrain" else ""))

    primary = None
    if detector is None and chaos is not None:
        # The training-free scorers z-normalize each window, so a level
        # shift is invisible to them; head the chain with the
        # level-sensitive moment scorer so the drill actually degrades.
        from .serve import MomentShiftScorer

        primary = MomentShiftScorer(dataset.train)
        print("primary: moment-shift (level-sensitive, for the drill)")

    session = obs.install() if args.metrics_out is not None else None
    try:
        registry = build_registry(
            detector,
            policy=RetryPolicy(max_retries=0),
            latency_budget=budget_s,
            fail_primary_after=args.fail_primary,
            train_series=dataset.train,
            primary=primary,
        )
        controller = None
        drift = None
        if args.adapt:
            from .serve import (
                AdaptConfig,
                AdaptiveController,
                DriftMonitor,
                PeriodChangeMonitor,
                ScoreShiftMonitor,
                moment_trainer,
                nan_poisoned,
                triad_trainer,
            )

            # Size the score-shift monitor to the replay length: the
            # production defaults (128-score reference) never freeze a
            # reference on a short archive unit, so drift could never
            # fire before the feed ends.
            scores_expected = max(
                (len(dataset.test) - plan.length) // plan.stride, 4
            )
            reference = int(np.clip(scores_expected // 6, 2, 128))
            recent = int(np.clip(scores_expected // 8, 2, 64))
            drift = DriftMonitor(
                score_monitor=ScoreShiftMonitor(
                    reference_size=reference,
                    recent_size=recent,
                    threshold_sigma=4.0,
                    cooldown=max(2 * recent, 8),
                    statistic="median",
                ),
                period_monitor=PeriodChangeMonitor(plan.period),
            )
            trainer = (
                triad_trainer(config, window_length=plan.length)
                if detector is not None
                else moment_trainer()
            )
            if args.chaos == "nan-retrain":
                trainer = nan_poisoned(trainer)
            settle = max(recent * plan.stride, plan.length)
            history = max(4 * plan.length, 2 * settle)
            adapt_config = AdaptConfig(
                history_points=history,
                min_history=max(2 * plan.length, plan.length + plan.stride),
                # Settling a full ring after the trigger guarantees the
                # retrain sees only post-regime-change data, never a
                # pre/post mixture that trains a washed-out candidate.
                settle_points=history,
                cooldown_points=2 * settle,
                budget_seconds=args.adapt_budget_s,
                probation_points=2 * settle,
                seed=args.seed,
            )
        engine = build_engine(
            registry,
            window_length=plan.length,
            stride=plan.stride,
            expected_period=plan.period,
            drift=drift,
            max_batch=args.max_batch,
            queue_capacity=args.queue_capacity,
            latency_budget_s=budget_s,
            alert_sigma=args.sigma,
        )
        if args.adapt:
            controller = AdaptiveController(
                engine,
                trainer,
                config=adapt_config,
                journal_path=args.adapt_journal,
            )
        report = replay_dataset(
            dataset,
            engine,
            streams=args.streams,
            controller=controller,
            chaos=chaos,
        )
        print()
        print(report.render())
        if args.json is not None:
            args.json.write_text(
                json_module.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n"
            )
            print(f"\nwrote replay report to {args.json}")
        if args.adapt and args.adapt_journal is not None:
            if controller.decisions:
                print(f"wrote adaptation journal to {args.adapt_journal}")
            else:
                print("no adaptation decisions this replay; journal not written "
                      "(drift may need more post-trigger points — try a longer "
                      "replay or a smaller --max-window)")
        if session is not None:
            count = session.export_jsonl(args.metrics_out)
            print(f"wrote {count} observability record(s) to {args.metrics_out}")
        return 0
    finally:
        if session is not None:
            obs.uninstall()


def _build_job_manager(args):
    from .jobs import JobManager
    from .runtime import RetryPolicy, RunBudget

    policy = None
    if getattr(args, "retries", None) is not None:
        policy = RetryPolicy(max_retries=args.retries)
    budget = None
    if getattr(args, "budget_seconds", None) is not None:
        budget = RunBudget(max_seconds=args.budget_seconds)
    return JobManager(
        args.store,
        workers=getattr(args, "workers", 1),
        policy=policy,
        budget=budget,
    )


def _cmd_submit(args) -> int:
    from .jobs import FAILED, JobSpec, job_detectors

    if args.detector not in job_detectors():
        print(f"unknown job detector {args.detector!r}; registered: "
              + ", ".join(job_detectors()), file=sys.stderr)
        return 2
    dataset = _load_dataset(args.dataset)
    series = np.concatenate([dataset.train, dataset.test])
    print(f"dataset {dataset.name}: {len(series)} points "
          f"(train={len(dataset.train)} test={len(dataset.test)})")

    manager = _build_job_manager(args)
    spec = JobSpec(
        detector=args.detector,
        params={"epochs": args.epochs, "seed": args.seed},
        chunk_windows=args.chunk_windows,
    )
    record = manager.submit(spec, series, train=dataset.train)
    print(f"job {record.job_id}: {record.state}, "
          f"{record.chunks_done}/{record.chunks_total} chunks "
          f"(window={record.spec.window_length}, stride={record.spec.stride})")
    record = manager.run(record.job_id)
    print(f"job {record.job_id}: {record.state}, "
          f"{record.chunks_done}/{record.chunks_total} chunks")
    if record.state == FAILED:
        print(f"error: {record.error}", file=sys.stderr)
        print("re-run the same command to resume from the journal",
              file=sys.stderr)
        return 1
    return 0


def _cmd_jobs(args) -> int:
    from .eval import render_table
    from .jobs import JobManager

    records = JobManager(args.store).list_jobs()
    if not records:
        print(f"no jobs in {args.store}")
        return 0
    rows = [
        [
            r.job_id,
            r.spec.detector,
            r.state,
            f"{r.chunks_done}/{r.chunks_total}",
            str(r.n_points),
            r.error or "",
        ]
        for r in records
    ]
    print(render_table(
        ["Job", "Detector", "State", "Chunks", "Points", "Error"], rows,
        title=f"Jobs in {args.store}",
    ))
    return 0


def _cmd_job_result(args) -> int:
    from .jobs import JobManager

    manager = JobManager(args.store)
    try:
        scores = manager.result(args.job_id)
    except (KeyError, RuntimeError) as error:
        print(str(error), file=sys.stderr)
        return 2
    if args.out is not None:
        np.save(args.out, scores)
        print(f"wrote {len(scores)} scores to {args.out}")
        return 0
    top = np.argsort(scores)[::-1][:5]
    print(f"{len(scores)} scores: min={scores.min():.4f} "
          f"mean={scores.mean():.4f} max={scores.max():.4f}")
    print("top indices: " + ", ".join(
        f"{i} ({scores[i]:.4f})" for i in sorted(top)
    ))
    return 0


def _cmd_job_cancel(args) -> int:
    from .jobs import JobManager

    manager = JobManager(args.store)
    try:
        took_effect = manager.cancel(args.job_id)
    except KeyError as error:
        print(str(error), file=sys.stderr)
        return 2
    record = manager.status(args.job_id)
    if took_effect:
        print(f"job {args.job_id}: {record.state}"
              + ("" if record.state == "CANCELLED"
                 else " (cancel requested; honored between chunks)"))
    else:
        print(f"job {args.job_id} already terminal ({record.state})")
    return 0


def _cmd_tune(args) -> int:
    from .core import TriADConfig
    from .data import make_archive
    from .eval import grid_search, render_table

    grid: dict[str, list] = {}
    if args.alpha:
        grid["alpha"] = [float(v) for v in args.alpha.split(",") if v.strip()]
    if args.depth:
        grid["depth"] = [int(v) for v in args.depth.split(",") if v.strip()]
    if not grid:
        print("nothing to sweep: pass --alpha and/or --depth", file=sys.stderr)
        return 2
    archive = make_archive(size=args.size, seed=7, train_length=1200, test_length=1500)
    base = TriADConfig(epochs=args.epochs, max_window=192, seed=0)
    result = grid_search(archive, grid, base_config=base)
    print(render_table(
        ["Configuration", "Tri-window accuracy"],
        result.table_rows(),
        title=f"Grid search over {args.size} datasets",
    ))
    best = ", ".join(f"{k}={v}" for k, v in result.points[0].overrides)
    print(f"\nbest: {best} (accuracy {result.best_score:.3f})")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "archive": _cmd_archive,
        "detect": _cmd_detect,
        "compare": _cmd_compare,
        "experiments": _cmd_experiments,
        "profile": _cmd_profile,
        "report": _cmd_report,
        "serve-replay": _cmd_serve_replay,
        "serve-shard": _cmd_serve_shard,
        "tune": _cmd_tune,
        "submit": _cmd_submit,
        "jobs": _cmd_jobs,
        "job-result": _cmd_job_result,
        "job-cancel": _cmd_job_cancel,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    raise SystemExit(main())
