"""Retry and budget policies for archive-scale runs.

A sweep over hundreds of (dataset, seed) units must survive any single
unit failing: a detector raising, emitting garbage, or spinning without
progress.  :class:`RetryPolicy` bounds how many times a unit is
re-attempted (with deterministic reseeding so a flaky initialization
gets a genuinely different draw) and :class:`RunBudget` bounds how much
work one attempt may consume before it is declared hung.

Budgets are cooperative: long-running loops call :meth:`RunBudget.tick`
(or the runner calls :meth:`RunBudget.check_time` between stages) and a
:class:`BudgetExceededError` is raised once the step or wall allowance
is spent.  The clock is injectable so tests can exhaust a wall budget
without sleeping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["BudgetExceededError", "RunBudget", "RetryPolicy"]


class BudgetExceededError(RuntimeError):
    """A unit of work exhausted its step or wall-clock budget."""


@dataclass
class RunBudget:
    """Cooperative step/wall-clock allowance for one attempt.

    Parameters
    ----------
    max_steps:
        Maximum number of :meth:`tick` increments before the attempt is
        declared hung.  ``None`` disables step accounting.
    max_seconds:
        Wall-clock allowance, checked on every :meth:`tick` and
        :meth:`check_time`.  ``None`` disables the deadline.
    clock:
        Monotonic time source; injectable for deterministic tests.
    """

    max_steps: int | None = None
    max_seconds: float | None = None
    clock: Callable[[], float] = time.monotonic
    steps: int = field(default=0, init=False)
    _start: float = field(default=0.0, init=False, repr=False)

    def __post_init__(self) -> None:
        self._start = self.clock()

    def elapsed(self) -> float:
        return self.clock() - self._start

    def check_time(self) -> None:
        """Raise if the wall-clock allowance is spent."""
        if self.max_seconds is not None and self.elapsed() > self.max_seconds:
            raise BudgetExceededError(
                f"wall budget exhausted: {self.elapsed():.3f}s > {self.max_seconds}s"
            )

    def tick(self, n: int = 1) -> None:
        """Consume ``n`` steps; raise once either allowance is spent."""
        self.steps += n
        if self.max_steps is not None and self.steps > self.max_steps:
            raise BudgetExceededError(
                f"step budget exhausted: {self.steps} > {self.max_steps}"
            )
        self.check_time()

    def spawn(self) -> "RunBudget":
        """A fresh budget with the same limits (zero steps, new deadline)."""
        return RunBudget(
            max_steps=self.max_steps, max_seconds=self.max_seconds, clock=self.clock
        )


@dataclass
class RetryPolicy:
    """Bounded retries with reseeding for one (dataset, seed) unit.

    Passing a policy to the archive runners switches them from
    crash-through (any exception aborts the whole sweep) to isolation
    mode: each unit gets ``max_retries + 1`` attempts, and a unit that
    exhausts them is recorded as a :class:`~repro.runtime.failures.FailureReport`
    instead of killing the sweep.

    Parameters
    ----------
    max_retries:
        Additional attempts after the first (0 = isolate but never retry).
    retry_on:
        Exception types that trigger isolation/retry.  ``KeyboardInterrupt``
        and ``SystemExit`` are never caught, so an interrupted sweep dies
        promptly (and can be resumed from its checkpoint).
    budget:
        Template :class:`RunBudget` applied per attempt via :meth:`spawn_budget`.
    backoff:
        Optional hook mapping the attempt number (1-based for the first
        retry) to a pause in seconds — the place to plug exponential
        backoff.  ``None`` retries immediately.
    sleep:
        Sleep function used by :meth:`pause`; injectable for tests.
    reseed_stride:
        Offset added per retry so re-attempts draw fresh randomness while
        remaining fully deterministic (prime, to avoid colliding with
        user seed grids).
    """

    max_retries: int = 1
    retry_on: tuple[type[BaseException], ...] = (Exception,)
    budget: RunBudget | None = None
    backoff: Callable[[int], float] | None = None
    sleep: Callable[[float], None] = time.sleep
    reseed_stride: int = 100003

    def attempts(self) -> int:
        """Total attempts a unit receives (at least 1, even if
        ``max_retries`` was passed negative)."""
        return max(self.max_retries, 0) + 1

    def reseed(self, seed: int, attempt: int) -> int:
        """Deterministic seed for attempt ``attempt`` (0 = first try)."""
        return seed if attempt == 0 else seed + attempt * self.reseed_stride

    def pause(self, attempt: int) -> None:
        """Sleep before retry ``attempt`` if a backoff hook is configured."""
        if self.backoff is not None:
            delay = float(self.backoff(attempt))
            if delay > 0:
                self.sleep(delay)

    def spawn_budget(self) -> RunBudget | None:
        """A fresh per-attempt budget, or ``None`` if unbudgeted."""
        return self.budget.spawn() if self.budget is not None else None
