"""Structured failure records for archive sweeps.

When a (dataset, seed) unit exhausts its retries, the runner records a
:class:`FailureReport` naming exactly where it died — which dataset,
which seed, which stage (validate / fit / predict / score / evaluate) —
so a thousand-dataset sweep degrades into "998 results + 2 attributed
failures" instead of a stack trace and nothing else.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = ["FailureReport", "InvalidOutputError", "STAGES"]

STAGES = ("validate", "fit", "predict", "score", "evaluate")


class InvalidOutputError(ValueError):
    """A detector returned output the runner cannot score.

    Raised when predictions/scores have the wrong shape or contain
    non-finite values; treated like any other unit failure (retryable,
    then recorded).
    """


@dataclass
class FailureReport:
    """Where and why one (dataset, seed) unit died.

    Attributes
    ----------
    dataset / seed:
        The unit that failed.
    stage:
        One of :data:`STAGES` — the pipeline stage active when the final
        attempt raised.
    error_type / message:
        Exception class name and message of the final attempt.
    attempts:
        Total attempts consumed (1 = failed without retry budget).
    detector:
        Name of the detector being swept, for multi-detector reports.
    """

    dataset: str
    seed: int
    stage: str
    error_type: str
    message: str
    attempts: int = 1
    detector: str = ""

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "FailureReport":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in payload.items() if k in known})

    def describe(self) -> str:
        """One-line human-readable summary."""
        prefix = f"{self.detector}: " if self.detector else ""
        return (
            f"{prefix}{self.dataset} (seed {self.seed}) failed at stage "
            f"'{self.stage}' after {self.attempts} attempt(s): "
            f"{self.error_type}: {self.message}"
        )
