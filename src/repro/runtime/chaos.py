"""Deterministic fault injection for the evaluation runtime.

Testing a fault-tolerant sweep needs faults on demand: this module
wraps any detector factory so that chosen (dataset, seed, stage) units
raise, hang (by spinning against their step budget), emit NaN/Inf
scores, or return wrong-shaped output — on a fixed schedule, so every
degradation path in the runner is provable by an ordinary unit test.

The wrapper identifies datasets by a content fingerprint of their
training split (the runner only hands detectors raw arrays), so plans
are written against human-readable dataset names.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from .policy import BudgetExceededError, RunBudget

__all__ = [
    "InjectedFault",
    "Fault",
    "FaultPlan",
    "ChaosDetector",
    "chaos_factory",
    "fingerprint",
    "flaky",
    "FAULT_MODES",
]

FAULT_MODES = ("raise", "nan", "hang", "shape")


class InjectedFault(RuntimeError):
    """The exception raised by ``mode="raise"`` faults."""


def fingerprint(series: np.ndarray) -> str:
    """Content hash identifying a series regardless of object identity."""
    arr = np.ascontiguousarray(np.asarray(series, dtype=np.float64))
    digest = hashlib.sha1(arr.tobytes())
    digest.update(str(arr.shape).encode())
    return digest.hexdigest()


@dataclass(frozen=True)
class Fault:
    """One scheduled fault.

    Parameters
    ----------
    dataset:
        Dataset name the fault targets.
    stage:
        ``"fit"``, ``"predict"``, or ``"score"``.
    mode:
        ``"raise"``  — raise :class:`InjectedFault`;
        ``"nan"``    — return all-NaN output (``fit``: raises instead);
        ``"hang"``   — spin against the attempt's :class:`RunBudget`
        until the step/wall allowance is exhausted;
        ``"shape"``  — return output of the wrong length (``fit``:
        raises instead).
    seed:
        Restrict to one seed; ``None`` fires for every seed.
    count:
        How many matching calls the fault fires for in total (across
        retries, which reseed the detector), after which the wrapped
        detector behaves normally — ``count=1`` with a retrying policy
        exercises the "transient fault, retry succeeds" path.  ``None``
        fires forever (a deterministic hard failure).  To fault several
        seeds a bounded number of times each, schedule one seed-pinned
        fault per seed.
    """

    dataset: str
    stage: str
    mode: str
    seed: int | None = None
    count: int | None = 1

    def __post_init__(self) -> None:
        if self.mode not in FAULT_MODES:
            raise ValueError(f"unknown fault mode {self.mode!r}; pick from {FAULT_MODES}")
        if self.stage not in ("fit", "predict", "score"):
            raise ValueError(f"unknown fault stage {self.stage!r}")


class FaultPlan:
    """A deterministic schedule of :class:`Fault` entries.

    ``draw`` is stateful: each call that matches a fault consumes one of
    its ``count`` firings.  Charges are global per fault — deliberately
    not keyed by seed, because retries re-attempt a unit under a
    *reseeded* detector and a transient fault must stay spent across
    that reseed.
    """

    def __init__(self, faults: Iterable[Fault] = ()) -> None:
        self.faults = list(faults)
        self._fired: Counter = Counter()

    def draw(self, dataset: str, seed: int, stage: str) -> Fault | None:
        """The fault firing for this call, consuming one charge, or None."""
        for index, fault in enumerate(self.faults):
            if fault.dataset != dataset or fault.stage != stage:
                continue
            if fault.seed is not None and fault.seed != seed:
                continue
            if fault.count is None or self._fired[index] < fault.count:
                self._fired[index] += 1
                return fault
        return None

    def reset(self) -> None:
        """Forget every firing (for reuse across independent sweeps)."""
        self._fired.clear()


class ChaosDetector:
    """Detector wrapper injecting faults from a :class:`FaultPlan`.

    Forwards ``fit`` / ``predict`` / ``score_series`` to the wrapped
    detector unless the plan schedules a fault for the current
    (dataset, seed, stage).  Dataset identity is resolved from the
    training series handed to ``fit`` via ``resolve_name``.
    """

    def __init__(
        self,
        inner,
        plan: FaultPlan,
        seed: int,
        resolve_name: Callable[[np.ndarray], str],
    ) -> None:
        self._inner = inner
        self._plan = plan
        self._seed = seed
        self._resolve_name = resolve_name
        self._dataset = "<unfit>"
        self._budget: RunBudget | None = None

    def set_budget(self, budget: RunBudget) -> None:
        self._budget = budget
        if hasattr(self._inner, "set_budget"):
            self._inner.set_budget(budget)

    def fit(self, train_series: np.ndarray) -> "ChaosDetector":
        self._dataset = self._resolve_name(train_series)
        fault = self._plan.draw(self._dataset, self._seed, "fit")
        if fault is not None:
            self._trip(fault)
        self._inner.fit(train_series)
        return self

    def predict(self, test_series: np.ndarray) -> np.ndarray:
        fault = self._plan.draw(self._dataset, self._seed, "predict")
        if fault is not None and fault.mode in ("raise", "hang"):
            self._trip(fault)
        out = np.asarray(self._inner.predict(test_series))
        return out if fault is None else self._corrupt(out, fault)

    def score_series(self, test_series: np.ndarray) -> np.ndarray:
        fault = self._plan.draw(self._dataset, self._seed, "score")
        if fault is not None and fault.mode in ("raise", "hang"):
            self._trip(fault)
        out = np.asarray(self._inner.score_series(test_series))
        return out if fault is None else self._corrupt(out, fault)

    def detect(self, test_series: np.ndarray):
        return self._inner.detect(test_series)

    def _trip(self, fault: Fault) -> None:
        """Fire a fault that cannot be expressed as corrupted output."""
        if fault.mode == "hang":
            if self._budget is None:
                raise BudgetExceededError(
                    f"injected hang on {self._dataset} with no budget attached"
                )
            while True:  # spins until the budget raises
                self._budget.tick()
        raise InjectedFault(
            f"injected {fault.mode} fault on {self._dataset} "
            f"(seed {self._seed}, stage {fault.stage})"
        )

    def _corrupt(self, out: np.ndarray, fault: Fault) -> np.ndarray:
        if fault.mode == "nan":
            return np.full(out.shape, np.nan)
        if fault.mode == "shape":
            return out[: max(len(out) // 2, 1)]
        raise AssertionError(f"unreachable fault mode {fault.mode!r}")


def chaos_factory(
    base_factory: Callable[[int], object],
    plan: FaultPlan,
    datasets: Sequence,
) -> Callable[[int], ChaosDetector]:
    """Wrap ``base_factory`` so its detectors inject faults from ``plan``.

    ``datasets`` (objects with ``.train`` and ``.name``) supply the
    fingerprint-to-name mapping used to target faults by dataset name.
    """
    names = {fingerprint(ds.train): ds.name for ds in datasets}

    def factory(seed: int) -> ChaosDetector:
        resolve = lambda arr: names.get(fingerprint(arr), "<unknown>")  # noqa: E731
        return ChaosDetector(base_factory(seed), plan, seed, resolve)

    return factory


def flaky(
    fn: Callable[..., np.ndarray],
    fail_calls: Iterable[int],
    mode: str = "raise",
) -> Callable[..., np.ndarray]:
    """Wrap any array-returning callable to misbehave on selected calls.

    ``fail_calls`` are 0-based call indices; ``mode`` is ``"raise"`` or
    ``"nan"``.  Used to poison inner training helpers (e.g. the
    augmentation step) when exercising the trainer's divergence guards.
    """
    if mode not in ("raise", "nan"):
        raise ValueError(f"flaky supports 'raise' and 'nan', got {mode!r}")
    schedule = frozenset(fail_calls)
    counter = {"calls": 0}

    def wrapper(*args, **kwargs):
        index = counter["calls"]
        counter["calls"] += 1
        if index in schedule:
            if mode == "raise":
                raise InjectedFault(f"injected raise on call {index}")
            out = np.asarray(fn(*args, **kwargs), dtype=np.float64)
            return np.full(out.shape, np.nan)
        return fn(*args, **kwargs)

    return wrapper
