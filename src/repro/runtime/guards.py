"""Numerical guard rails for training loops.

Contrastive training on pathological inputs (near-constant windows,
extreme amplitudes) can blow up: NaN/Inf losses poison the optimizer
moments and every later epoch.  :class:`DivergenceGuard` watches epoch
loss and gradient norms, and tells the trainer to roll back to the last
good weights with a learning-rate backoff — or, after too many
rollbacks, to abort and return the best-validation encoder seen so far.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["DivergenceGuard"]


@dataclass
class DivergenceGuard:
    """Epoch-level divergence detector with bounded rollbacks.

    Parameters
    ----------
    max_rollbacks:
        Rollbacks allowed before training is declared divergent and
        aborted (the trainer still returns the best-validation weights).
    lr_backoff:
        Multiplier applied to the learning rate on every rollback.
    max_grad_norm:
        Pre-clip gradient norms above this are treated as an explosion
        even when the loss is still finite.  Generous by default so
        healthy runs never trip it (the trainer clips at ~5 anyway;
        this catches the pathological orders-of-magnitude case).
    min_lr:
        Floor for the backed-off learning rate.
    """

    max_rollbacks: int = 2
    lr_backoff: float = 0.5
    max_grad_norm: float = 1e6
    min_lr: float = 1e-6
    rollbacks: int = field(default=0, init=False)

    def assess(self, loss: float, grad_norm: float | None = None) -> str:
        """Classify one epoch: ``"ok"``, ``"rollback"``, or ``"abort"``."""
        bad = not math.isfinite(loss)
        if grad_norm is not None and (
            not math.isfinite(grad_norm) or grad_norm > self.max_grad_norm
        ):
            bad = True
        if not bad:
            return "ok"
        self.rollbacks += 1
        return "abort" if self.rollbacks > self.max_rollbacks else "rollback"

    def backed_off_lr(self, lr: float) -> float:
        """Learning rate after one backoff step, floored at ``min_lr``."""
        return max(lr * self.lr_backoff, self.min_lr)
