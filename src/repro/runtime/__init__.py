"""Fault-tolerant evaluation runtime.

Resilience primitives for archive-scale sweeps and training runs:
retry/budget policies (:mod:`.policy`), structured failure records
(:mod:`.failures`), training divergence guards (:mod:`.guards`), and a
deterministic fault-injection harness (:mod:`.chaos`) that proves every
degradation path under test.  See ``docs/RESILIENCE.md``.
"""

from .chaos import (
    FAULT_MODES,
    ChaosDetector,
    Fault,
    FaultPlan,
    InjectedFault,
    chaos_factory,
    fingerprint,
    flaky,
)
from .failures import STAGES, FailureReport, InvalidOutputError
from .guards import DivergenceGuard
from .policy import BudgetExceededError, RetryPolicy, RunBudget

__all__ = [
    "BudgetExceededError",
    "RetryPolicy",
    "RunBudget",
    "FailureReport",
    "InvalidOutputError",
    "STAGES",
    "DivergenceGuard",
    "InjectedFault",
    "Fault",
    "FaultPlan",
    "ChaosDetector",
    "chaos_factory",
    "fingerprint",
    "flaky",
    "FAULT_MODES",
]
