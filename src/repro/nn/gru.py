"""Gated Recurrent Unit layers (a lighter-weight LSTM alternative)."""

from __future__ import annotations

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import Tensor, as_tensor, stack

__all__ = ["GRUCell", "GRU"]


class GRUCell(Module):
    """A single GRU step with fused gate weights.

    Gate layout along the first axis of the fused matrices is
    ``[reset, update, new]``.
    """

    def __init__(
        self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(
            init.uniform_fan_in((3 * hidden_size, input_size), hidden_size, rng)
        )
        self.weight_hh = Parameter(
            init.uniform_fan_in((3 * hidden_size, hidden_size), hidden_size, rng)
        )
        self.bias_ih = Parameter(init.uniform_fan_in((3 * hidden_size,), hidden_size, rng))
        self.bias_hh = Parameter(init.uniform_fan_in((3 * hidden_size,), hidden_size, rng))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        """Advance one step: (batch, input) x (batch, hidden) -> hidden."""
        x = as_tensor(x)
        hs = self.hidden_size
        gi = x @ self.weight_ih.transpose() + self.bias_ih
        gh = h @ self.weight_hh.transpose() + self.bias_hh
        reset = (gi[:, 0:hs] + gh[:, 0:hs]).sigmoid()
        update = (gi[:, hs : 2 * hs] + gh[:, hs : 2 * hs]).sigmoid()
        new = (gi[:, 2 * hs : 3 * hs] + reset * gh[:, 2 * hs : 3 * hs]).tanh()
        return (1.0 - update) * new + update * h

    def initial_state(self, batch: int) -> Tensor:
        return Tensor(np.zeros((batch, self.hidden_size)))


class GRU(Module):
    """Unidirectional GRU over ``(batch, time, features)`` input."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_layers: int = 1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.num_layers = num_layers
        self.hidden_size = hidden_size
        self.cells: list[GRUCell] = []
        for layer in range(num_layers):
            cell = GRUCell(input_size if layer == 0 else hidden_size, hidden_size, rng)
            setattr(self, f"cell{layer}", cell)
            self.cells.append(cell)

    def forward(
        self, x: Tensor, state: list[Tensor] | None = None
    ) -> tuple[Tensor, list[Tensor]]:
        """Returns top-layer outputs ``(batch, time, hidden)`` and final
        hidden state per layer."""
        x = as_tensor(x)
        batch, steps, _ = x.shape
        if state is None:
            state = [cell.initial_state(batch) for cell in self.cells]
        outputs: list[Tensor] = []
        for t in range(steps):
            value = x[:, t, :]
            for layer, cell in enumerate(self.cells):
                state[layer] = cell(value, state[layer])
                value = state[layer]
            outputs.append(value)
        return stack(outputs, axis=1), state
