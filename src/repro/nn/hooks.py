"""Timing hook shared by the module system and the autodiff engine.

A single optional callback ``hook(kind, name, seconds)`` receives the
duration of every :class:`~repro.nn.Module` forward call
(``kind="forward"``, ``name`` the module class) and every
``Tensor.backward`` graph walk (``kind="backward"``, ``name="graph"``).
It lives in its own module so :mod:`repro.nn.tensor` and
:mod:`repro.nn.module` can both reach it without a circular import, and
so :mod:`repro.obs` can install instrumentation without :mod:`repro.nn`
depending on it.

No hook (the default) costs one module-attribute read per call.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["set_timing_hook", "get_timing_hook"]

TimingHook = Callable[[str, str, float], None]

_TIMING_HOOK: TimingHook | None = None


def set_timing_hook(hook: TimingHook | None) -> None:
    """Install (or with ``None`` remove) the process-wide timing hook."""
    global _TIMING_HOOK
    _TIMING_HOOK = hook


def get_timing_hook() -> TimingHook | None:
    return _TIMING_HOOK
