"""Weight initialization schemes for :mod:`repro.nn` layers."""

from __future__ import annotations

import math

import numpy as np

__all__ = ["xavier_uniform", "kaiming_uniform", "uniform_fan_in", "zeros"]


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform init; fan counts follow conv/linear conventions."""
    fan_in, fan_out = _fans(shape)
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform init suited to ReLU networks."""
    fan_in, _ = _fans(shape)
    bound = math.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def uniform_fan_in(shape: tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """PyTorch-style default bias init: U(-1/sqrt(fan_in), 1/sqrt(fan_in))."""
    bound = 1.0 / math.sqrt(max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for linear (out,in) or conv (out,in,k) shapes."""
    if len(shape) == 2:
        fan_out, fan_in = shape
        return fan_in, fan_out
    if len(shape) == 3:
        out_channels, in_channels, kernel = shape
        return in_channels * kernel, out_channels * kernel
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    return shape[1] * receptive, shape[0] * receptive
