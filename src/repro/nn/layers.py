"""Standard layers: Linear, Conv1d, norms, dropout, activations."""

from __future__ import annotations

import numpy as np

from . import functional as F
from . import init
from .module import Module, Parameter
from .tensor import Tensor, as_tensor

__all__ = [
    "Linear",
    "Conv1d",
    "LayerNorm",
    "BatchNorm1d",
    "Dropout",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Identity",
]


class Linear(Module):
    """Affine map ``y = x @ W.T + b`` over the last axis of ``x``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng))
        self.bias = (
            Parameter(init.uniform_fan_in((out_features,), in_features, rng))
            if bias
            else None
        )

    def forward(self, x: Tensor) -> Tensor:
        out = as_tensor(x) @ self.weight.transpose()
        if self.bias is not None:
            out = out + self.bias
        return out


class Conv1d(Module):
    """Dilated 1-D convolution over ``(batch, channels, length)`` input."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        dilation: int = 1,
        padding: str | int = "same",
        stride: int = 1,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.dilation = dilation
        self.padding = padding
        self.stride = stride
        shape = (out_channels, in_channels, kernel_size)
        self.weight = Parameter(init.kaiming_uniform(shape, rng))
        self.bias = (
            Parameter(init.uniform_fan_in((out_channels,), in_channels * kernel_size, rng))
            if bias
            else None
        )

    def forward(self, x: Tensor) -> Tensor:
        return F.conv1d(
            x,
            self.weight,
            self.bias,
            dilation=self.dilation,
            padding=self.padding,
            stride=self.stride,
        )


class LayerNorm(Module):
    """Normalize over the last axis, then scale and shift."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.weight = Parameter(np.ones(normalized_shape))
        self.bias = Parameter(np.zeros(normalized_shape))

    def forward(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        normalized = (x - mean) / (var + self.eps).sqrt()
        return normalized * self.weight + self.bias


class BatchNorm1d(Module):
    """Batch normalization over ``(batch, channels, length)`` input.

    Running statistics are tracked as buffers so that ``eval()`` mode
    uses the training-time population estimates.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features))
        self.bias = Parameter(np.zeros(num_features))
        self._buffer_running_mean = np.zeros(num_features)
        self._buffer_running_var = np.ones(num_features)

    def forward(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        if x.ndim != 3:
            raise ValueError("BatchNorm1d expects (batch, channels, length) input")
        if self.training:
            mean = x.mean(axis=(0, 2), keepdims=True)
            var = x.var(axis=(0, 2), keepdims=True)
            m = self.momentum
            # The running buffer tracks the *unbiased* variance estimate
            # (ddof=1), while the batch normalization itself stays biased
            # (ddof=0) — matching the standard BatchNorm convention.
            count = x.shape[0] * x.shape[2]
            correction = count / (count - 1) if count > 1 else 1.0
            self._buffer_running_mean *= 1 - m
            self._buffer_running_mean += m * mean.data.reshape(-1)
            self._buffer_running_var *= 1 - m
            self._buffer_running_var += m * correction * var.data.reshape(-1)
        else:
            mean = Tensor(self._buffer_running_mean.reshape(1, -1, 1))
            var = Tensor(self._buffer_running_var.reshape(1, -1, 1))
        normalized = (x - mean) / (var + self.eps).sqrt()
        return normalized * self.weight.reshape(1, -1, 1) + self.bias.reshape(1, -1, 1)


class Dropout(Module):
    """Inverted dropout; identity in ``eval()`` mode."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.p = p
        self.rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, self.rng)


class ReLU(Module):
    """Rectified linear unit: max(x, 0)."""
    def forward(self, x: Tensor) -> Tensor:
        return as_tensor(x).relu()


class Tanh(Module):
    """Hyperbolic tangent activation."""
    def forward(self, x: Tensor) -> Tensor:
        return as_tensor(x).tanh()


class Sigmoid(Module):
    """Logistic sigmoid activation."""
    def forward(self, x: Tensor) -> Tensor:
        return as_tensor(x).sigmoid()


class Identity(Module):
    """Pass-through module (used as a no-op skip connection)."""
    def forward(self, x: Tensor) -> Tensor:
        return as_tensor(x)
