"""Module system: parameter registration, train/eval mode, state dicts."""

from __future__ import annotations

import time
from typing import Iterator

import numpy as np

from . import hooks
from .tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential", "ModuleList"]


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as trainable by :class:`Module`."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)
        # Parameters must stay trainable even if created inside no_grad().
        self.requires_grad = True


class Module:
    """Base class for all neural network components.

    Assigning a :class:`Parameter` or another :class:`Module` as an
    attribute registers it, so :meth:`parameters` and :meth:`state_dict`
    can discover the full tree without manual bookkeeping — mirroring the
    PyTorch convention the paper's code relies on.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Parameter discovery
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix + name + ".")

    def parameters(self) -> list[Parameter]:
        return [param for _, param in self.named_parameters()]

    def num_parameters(self) -> int:
        return sum(param.size for param in self.parameters())

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Mode switching
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        state = {name: param.data.copy() for name, param in self.named_parameters()}
        for name, buffer in self.named_buffers():
            state[name] = buffer.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        buffers = dict(self.named_buffers())
        for name, param in self.named_parameters():
            if name not in state:
                raise KeyError(f"missing parameter {name!r} in state dict")
            if param.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"{param.shape} vs {state[name].shape}"
                )
            param.data[...] = state[name]
        for name, buffer in buffers.items():
            if name in state:
                buffer[...] = state[name]

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        """Non-trainable persistent arrays (e.g. batch-norm running stats)."""
        for name, value in vars(self).items():
            if name.startswith("_buffer_"):
                yield prefix + name, value
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix + name + ".")

    # ------------------------------------------------------------------
    # Invocation
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        hook = hooks._TIMING_HOOK
        if hook is None:
            return self.forward(*args, **kwargs)
        start = time.perf_counter()
        out = self.forward(*args, **kwargs)
        hook("forward", type(self).__name__, time.perf_counter() - start)
        return out


class Sequential(Module):
    """Chain modules, feeding each output into the next module."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._items: list[Module] = []
        for index, module in enumerate(modules):
            setattr(self, f"m{index}", module)
            self._items.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def forward(self, x):
        for module in self._items:
            x = module(x)
        return x


class ModuleList(Module):
    """A registered list of submodules (no forward of its own)."""

    def __init__(self, modules=()) -> None:
        super().__init__()
        self._items: list[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> None:
        setattr(self, f"m{len(self._items)}", module)
        self._items.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]
