"""Pooling layers over ``(batch, channels, length)`` input."""

from __future__ import annotations

import numpy as np

from .module import Module
from .tensor import Tensor, as_tensor

__all__ = ["MaxPool1d", "AvgPool1d", "GlobalMaxPool1d", "GlobalAvgPool1d"]


def _pooled_view(x: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    """Non-overlapping-or-strided windows view: (B, C, out, kernel)."""
    batch, channels, length = x.shape
    out = (length - kernel) // stride + 1
    view = np.lib.stride_tricks.sliding_window_view(x, kernel, axis=2)
    return view[:, :, ::stride][:, :, :out]


class MaxPool1d(Module):
    """Max pooling with kernel size and stride (defaults to kernel)."""

    def __init__(self, kernel_size: int, stride: int | None = None) -> None:
        super().__init__()
        if kernel_size < 1:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        if x.ndim != 3:
            raise ValueError("MaxPool1d expects (batch, channels, length)")
        view = _pooled_view(x.data, self.kernel_size, self.stride)
        out_data = view.max(axis=-1)
        argmax = view.argmax(axis=-1)

        def backward(grad: np.ndarray) -> None:
            g = np.zeros_like(x.data)
            batch, channels, out = grad.shape
            b_idx, c_idx, o_idx = np.meshgrid(
                np.arange(batch), np.arange(channels), np.arange(out), indexing="ij"
            )
            positions = o_idx * self.stride + argmax
            np.add.at(g, (b_idx, c_idx, positions), grad)
            x._accumulate(g)

        return Tensor._make(out_data, (x,), backward)


class AvgPool1d(Module):
    """Average pooling with kernel size and stride (defaults to kernel)."""

    def __init__(self, kernel_size: int, stride: int | None = None) -> None:
        super().__init__()
        if kernel_size < 1:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        if x.ndim != 3:
            raise ValueError("AvgPool1d expects (batch, channels, length)")
        view = _pooled_view(x.data, self.kernel_size, self.stride)
        out_data = view.mean(axis=-1)
        kernel, stride = self.kernel_size, self.stride

        def backward(grad: np.ndarray) -> None:
            g = np.zeros_like(x.data)
            batch, channels, out = grad.shape
            share = grad / kernel
            for k in range(kernel):
                positions = np.arange(out) * stride + k
                g[:, :, positions] += share
            x._accumulate(g)

        return Tensor._make(out_data, (x,), backward)


class GlobalMaxPool1d(Module):
    """Max over the length axis: (B, C, L) -> (B, C)."""

    def forward(self, x: Tensor) -> Tensor:
        return as_tensor(x).max(axis=2)


class GlobalAvgPool1d(Module):
    """Mean over the length axis: (B, C, L) -> (B, C)."""

    def forward(self, x: Tensor) -> Tensor:
        return as_tensor(x).mean(axis=2)
