"""Multi-head self-attention, used by the attention-based baselines
(AnomalyTransformer-lite and DCdetector-lite)."""

from __future__ import annotations

import math

import numpy as np

from . import functional as F
from .layers import Linear
from .module import Module
from .tensor import Tensor, as_tensor

__all__ = ["MultiHeadSelfAttention"]


class MultiHeadSelfAttention(Module):
    """Scaled dot-product self-attention over ``(batch, time, dim)`` input.

    Returns both the attended values and the attention weights; the
    AnomalyTransformer-lite baseline uses the weights to compute its
    association-discrepancy score.
    """

    def __init__(
        self, dim: int, num_heads: int = 4, rng: np.random.Generator | None = None
    ) -> None:
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError("dim must be divisible by num_heads")
        rng = rng or np.random.default_rng()
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.q_proj = Linear(dim, dim, rng=rng)
        self.k_proj = Linear(dim, dim, rng=rng)
        self.v_proj = Linear(dim, dim, rng=rng)
        self.out_proj = Linear(dim, dim, rng=rng)

    def _split_heads(self, x: Tensor, batch: int, steps: int) -> Tensor:
        # (B, T, D) -> (B, H, T, d)
        return x.reshape(batch, steps, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor) -> tuple[Tensor, Tensor]:
        x = as_tensor(x)
        batch, steps, _ = x.shape
        q = self._split_heads(self.q_proj(x), batch, steps)
        k = self._split_heads(self.k_proj(x), batch, steps)
        v = self._split_heads(self.v_proj(x), batch, steps)

        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / math.sqrt(self.head_dim))
        weights = F.softmax(scores, axis=-1)  # (B, H, T, T)
        attended = weights @ v  # (B, H, T, d)
        merged = attended.transpose(0, 2, 1, 3).reshape(batch, steps, self.dim)
        return self.out_proj(merged), weights
