"""Numerical gradient checking for the autodiff engine.

Every op in :mod:`repro.nn` is validated in the test suite by comparing
its analytic gradient against central finite differences computed here.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_gradient", "check_gradients"]


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central finite-difference gradient of ``fn`` w.r.t. ``inputs[index]``.

    ``fn`` must return a scalar :class:`Tensor`.
    """
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = float(fn(*inputs).data)
        flat[i] = original - eps
        lower = float(fn(*inputs).data)
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2.0 * eps)
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-5,
    rtol: float = 1e-4,
    eps: float = 1e-6,
) -> None:
    """Assert analytic gradients of ``fn`` match finite differences.

    Raises ``AssertionError`` naming the offending input on mismatch.
    """
    for tensor in inputs:
        tensor.zero_grad()
    out = fn(*inputs)
    if out.data.size != 1:
        raise ValueError("gradcheck requires a scalar-valued function")
    out.backward()
    for index, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numerical_gradient(fn, inputs, index, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = float(np.max(np.abs(analytic - numeric)))
            raise AssertionError(
                f"gradient mismatch on input {index}: max abs error {worst:.3e}"
            )
