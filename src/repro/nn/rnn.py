"""Recurrent layers: LSTM cell and a single/multi-layer LSTM.

Used by the LSTM-AE baseline that the paper (following Kim et al., AAAI
2022) treats as the reference benchmark for time series anomaly
detection, in both randomly initialized and trained forms.
"""

from __future__ import annotations

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import Tensor, as_tensor, stack

__all__ = ["LSTMCell", "LSTM"]


class LSTMCell(Module):
    """A single LSTM step with fused gate weights.

    Gate layout along the first axis of the fused matrices is
    ``[input, forget, cell, output]``.
    """

    def __init__(
        self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(
            init.uniform_fan_in((4 * hidden_size, input_size), hidden_size, rng)
        )
        self.weight_hh = Parameter(
            init.uniform_fan_in((4 * hidden_size, hidden_size), hidden_size, rng)
        )
        self.bias = Parameter(init.uniform_fan_in((4 * hidden_size,), hidden_size, rng))

    def forward(
        self, x: Tensor, state: tuple[Tensor, Tensor]
    ) -> tuple[Tensor, Tensor]:
        """Advance one step.

        Parameters
        ----------
        x:
            Input of shape ``(batch, input_size)``.
        state:
            Tuple ``(h, c)`` each of shape ``(batch, hidden_size)``.
        """
        h, c = state
        gates = as_tensor(x) @ self.weight_ih.transpose() + h @ self.weight_hh.transpose()
        gates = gates + self.bias
        hs = self.hidden_size
        i_gate = gates[:, 0 * hs : 1 * hs].sigmoid()
        f_gate = gates[:, 1 * hs : 2 * hs].sigmoid()
        g_gate = gates[:, 2 * hs : 3 * hs].tanh()
        o_gate = gates[:, 3 * hs : 4 * hs].sigmoid()
        c_next = f_gate * c + i_gate * g_gate
        h_next = o_gate * c_next.tanh()
        return h_next, c_next

    def initial_state(self, batch: int) -> tuple[Tensor, Tensor]:
        zeros = np.zeros((batch, self.hidden_size))
        return Tensor(zeros), Tensor(zeros.copy())


class LSTM(Module):
    """Unidirectional LSTM over ``(batch, time, features)`` input."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_layers: int = 1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.num_layers = num_layers
        self.hidden_size = hidden_size
        self.cells: list[LSTMCell] = []
        for layer in range(num_layers):
            cell = LSTMCell(input_size if layer == 0 else hidden_size, hidden_size, rng)
            setattr(self, f"cell{layer}", cell)
            self.cells.append(cell)

    def forward(
        self, x: Tensor, state: list[tuple[Tensor, Tensor]] | None = None
    ) -> tuple[Tensor, list[tuple[Tensor, Tensor]]]:
        """Run the full sequence.

        Returns
        -------
        outputs:
            Hidden states of the top layer, shape ``(batch, time, hidden)``.
        state:
            Final ``(h, c)`` per layer.
        """
        x = as_tensor(x)
        batch, steps, _ = x.shape
        if state is None:
            state = [cell.initial_state(batch) for cell in self.cells]
        outputs: list[Tensor] = []
        for t in range(steps):
            value = x[:, t, :]
            for layer, cell in enumerate(self.cells):
                h, c = cell(value, state[layer])
                state[layer] = (h, c)
                value = h
            outputs.append(value)
        return stack(outputs, axis=1), state
