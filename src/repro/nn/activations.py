"""Additional activation modules: GELU, LeakyReLU, Softplus, ELU."""

from __future__ import annotations

import numpy as np

from .module import Module
from .tensor import Tensor, as_tensor

__all__ = ["GELU", "LeakyReLU", "Softplus", "ELU", "gelu", "leaky_relu", "softplus", "elu"]

_SQRT_2_OVER_PI = np.sqrt(2.0 / np.pi)


def gelu(x: Tensor) -> Tensor:
    """Gaussian Error Linear Unit (tanh approximation)."""
    x = as_tensor(x)
    inner = _SQRT_2_OVER_PI * (x.data + 0.044715 * x.data**3)
    tanh_inner = np.tanh(inner)
    out_data = 0.5 * x.data * (1.0 + tanh_inner)

    def backward(grad: np.ndarray) -> None:
        sech2 = 1.0 - tanh_inner**2
        d_inner = _SQRT_2_OVER_PI * (1.0 + 3 * 0.044715 * x.data**2)
        derivative = 0.5 * (1.0 + tanh_inner) + 0.5 * x.data * sech2 * d_inner
        x._accumulate(grad * derivative)

    return Tensor._make(out_data, (x,), backward)


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """max(x, slope*x)."""
    x = as_tensor(x)
    mask = x.data > 0
    out_data = np.where(mask, x.data, negative_slope * x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * np.where(mask, 1.0, negative_slope))

    return Tensor._make(out_data, (x,), backward)


def softplus(x: Tensor, beta: float = 1.0) -> Tensor:
    """log(1 + exp(beta x)) / beta, numerically stable."""
    x = as_tensor(x)
    z = beta * x.data
    out_data = (np.logaddexp(0.0, z)) / beta
    sigmoid = 1.0 / (1.0 + np.exp(-np.clip(z, -60, 60)))

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * sigmoid)

    return Tensor._make(out_data, (x,), backward)


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    """x for x>0, alpha*(exp(x)-1) otherwise."""
    x = as_tensor(x)
    mask = x.data > 0
    exp_term = alpha * (np.exp(np.minimum(x.data, 0.0)) - 1.0)
    out_data = np.where(mask, x.data, exp_term)

    def backward(grad: np.ndarray) -> None:
        derivative = np.where(mask, 1.0, exp_term + alpha)
        x._accumulate(grad * derivative)

    return Tensor._make(out_data, (x,), backward)


class GELU(Module):
    """Module wrapper for :func:`gelu`."""
    def forward(self, x: Tensor) -> Tensor:
        return gelu(x)


class LeakyReLU(Module):
    """Module wrapper for :func:`leaky_relu`."""
    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return leaky_relu(x, self.negative_slope)


class Softplus(Module):
    """Module wrapper for :func:`softplus`."""
    def __init__(self, beta: float = 1.0) -> None:
        super().__init__()
        self.beta = beta

    def forward(self, x: Tensor) -> Tensor:
        return softplus(x, self.beta)


class ELU(Module):
    """Module wrapper for :func:`elu`."""
    def __init__(self, alpha: float = 1.0) -> None:
        super().__init__()
        self.alpha = alpha

    def forward(self, x: Tensor) -> Tensor:
        return elu(x, self.alpha)
