"""Gradient-descent optimizers: SGD (with momentum), Adam, AdamW, RMSProp.

Every optimizer ships two step implementations behind the one
``Optimizer.step()`` contract:

- **fused** (default) — a single in-place pass per parameter over
  preallocated moment and scratch buffers.  No per-step temporaries
  (``grad + wd * param``, ``m / bias1``, ``grad ** 2`` …) are
  allocated, which matters when the step runs once per contrastive
  batch inside the trainer's hot loop.  The fused sequence performs the
  *same floating-point operations in the same order* as the reference,
  so updates are bit-identical (pinned by ``tests/nn/test_optim_fused``
  and the ``BENCH_nn.json`` gate).
- **reference** — the original allocation-per-step implementation, kept
  verbatim as the equivalence oracle; selected via
  :func:`set_fused_optimizers` / :func:`fused_optimizers`.
"""

from __future__ import annotations

import contextlib
from typing import Iterable

import numpy as np

from .module import Parameter

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "RMSProp",
    "clip_grad_norm",
    "fused_optimizers",
    "fused_enabled",
    "set_fused_optimizers",
]

_FUSED_ENABLED = True


def set_fused_optimizers(enabled: bool) -> bool:
    """Toggle the fused step implementations; returns the previous value."""
    global _FUSED_ENABLED
    previous = _FUSED_ENABLED
    _FUSED_ENABLED = bool(enabled)
    return previous


def fused_enabled() -> bool:
    """Return whether optimizer steps use the fused in-place path."""
    return _FUSED_ENABLED


@contextlib.contextmanager
def fused_optimizers(enabled: bool):
    """Context manager pinning the fused/reference step selection."""
    previous = set_fused_optimizers(enabled)
    try:
        yield
    finally:
        set_fused_optimizers(previous)


class Optimizer:
    """Base optimizer holding a flat list of parameters."""

    def __init__(self, parameters: Iterable[Parameter]) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]
        self._scratch: list[np.ndarray] | None = None

    def step(self) -> None:
        if not _FUSED_ENABLED:
            return self._step_reference()
        if self._scratch is None:
            self._scratch = [np.empty_like(p.data) for p in self.parameters]
        for param, velocity, scratch in zip(
            self.parameters, self._velocity, self._scratch
        ):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                np.multiply(param.data, self.weight_decay, out=scratch)
                np.add(grad, scratch, out=scratch)
                grad = scratch
            if self.momentum:
                np.multiply(velocity, self.momentum, out=velocity)
                np.add(velocity, grad, out=velocity)
                grad = velocity
            np.multiply(grad, self.lr, out=scratch)
            np.subtract(param.data, scratch, out=param.data)

    def _step_reference(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction — the paper's optimizer."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.001,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._scratch: list[tuple[np.ndarray, np.ndarray]] | None = None

    def _ensure_scratch(self) -> list[tuple[np.ndarray, np.ndarray]]:
        if self._scratch is None:
            self._scratch = [
                (np.empty_like(p.data), np.empty_like(p.data))
                for p in self.parameters
            ]
        return self._scratch

    def step(self) -> None:
        if not _FUSED_ENABLED:
            return self._step_reference()
        scratch = self._ensure_scratch()
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v, (s1, s2) in zip(
            self.parameters, self._m, self._v, scratch
        ):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                np.multiply(param.data, self.weight_decay, out=s2)
                np.add(grad, s2, out=s2)
                grad = s2
            np.multiply(m, self.beta1, out=m)
            np.multiply(grad, 1.0 - self.beta1, out=s1)
            np.add(m, s1, out=m)
            np.multiply(grad, grad, out=s1)
            np.multiply(s1, 1.0 - self.beta2, out=s1)
            np.multiply(v, self.beta2, out=v)
            np.add(v, s1, out=v)
            # param -= (lr * m_hat) / (sqrt(v_hat) + eps), rounded exactly
            # like the reference expression.
            np.divide(m, bias1, out=s1)
            np.multiply(s1, self.lr, out=s1)
            np.divide(v, bias2, out=s2)
            np.sqrt(s2, out=s2)
            np.add(s2, self.eps, out=s2)
            np.divide(s1, s2, out=s1)
            np.subtract(param.data, s1, out=param.data)

    def _step_reference(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter).

    Unlike ``Adam(weight_decay=...)`` — which folds the decay into the
    adaptive gradient — AdamW applies it directly to the weights, which
    keeps the effective decay independent of the gradient scale.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.001,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
    ) -> None:
        super().__init__(parameters, lr=lr, betas=betas, eps=eps, weight_decay=0.0)
        self.decoupled_weight_decay = weight_decay

    def step(self) -> None:
        if not _FUSED_ENABLED:
            if self.decoupled_weight_decay:
                for param in self.parameters:
                    if param.grad is not None:
                        param.data -= (
                            self.lr * self.decoupled_weight_decay * param.data
                        )
            return super().step()
        if self.decoupled_weight_decay:
            decay = self.lr * self.decoupled_weight_decay
            for param, (s1, _) in zip(self.parameters, self._ensure_scratch()):
                if param.grad is not None:
                    np.multiply(param.data, decay, out=s1)
                    np.subtract(param.data, s1, out=param.data)
        super().step()


class RMSProp(Optimizer):
    """RMSProp with exponentially-decayed squared-gradient normalization."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        alpha: float = 0.99,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.alpha = alpha
        self.eps = eps
        self._square_avg = [np.zeros_like(p.data) for p in self.parameters]
        self._scratch: list[tuple[np.ndarray, np.ndarray]] | None = None

    def step(self) -> None:
        if not _FUSED_ENABLED:
            return self._step_reference()
        if self._scratch is None:
            self._scratch = [
                (np.empty_like(p.data), np.empty_like(p.data))
                for p in self.parameters
            ]
        for param, square_avg, (s1, s2) in zip(
            self.parameters, self._square_avg, self._scratch
        ):
            if param.grad is None:
                continue
            grad = param.grad
            np.multiply(square_avg, self.alpha, out=square_avg)
            np.multiply(grad, grad, out=s1)
            np.multiply(s1, 1.0 - self.alpha, out=s1)
            np.add(square_avg, s1, out=square_avg)
            np.multiply(grad, self.lr, out=s2)
            np.sqrt(square_avg, out=s1)
            np.add(s1, self.eps, out=s1)
            np.divide(s2, s1, out=s2)
            np.subtract(param.data, s2, out=param.data)

    def _step_reference(self) -> None:
        for param, square_avg in zip(self.parameters, self._square_avg):
            if param.grad is None:
                continue
            square_avg *= self.alpha
            square_avg += (1.0 - self.alpha) * param.grad**2
            param.data -= self.lr * param.grad / (np.sqrt(square_avg) + self.eps)


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in-place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.
    """
    parameters = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in parameters)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for param in parameters:
            param.grad *= scale
    return total
