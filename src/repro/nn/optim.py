"""Gradient-descent optimizers: SGD (with momentum) and Adam."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "AdamW", "RMSProp", "clip_grad_norm"]


class Optimizer:
    """Base optimizer holding a flat list of parameters."""

    def __init__(self, parameters: Iterable[Parameter]) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction — the paper's optimizer."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.001,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter).

    Unlike ``Adam(weight_decay=...)`` — which folds the decay into the
    adaptive gradient — AdamW applies it directly to the weights, which
    keeps the effective decay independent of the gradient scale.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.001,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
    ) -> None:
        super().__init__(parameters, lr=lr, betas=betas, eps=eps, weight_decay=0.0)
        self.decoupled_weight_decay = weight_decay

    def step(self) -> None:
        if self.decoupled_weight_decay:
            for param in self.parameters:
                if param.grad is not None:
                    param.data -= self.lr * self.decoupled_weight_decay * param.data
        super().step()


class RMSProp(Optimizer):
    """RMSProp with exponentially-decayed squared-gradient normalization."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        alpha: float = 0.99,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.alpha = alpha
        self.eps = eps
        self._square_avg = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, square_avg in zip(self.parameters, self._square_avg):
            if param.grad is None:
                continue
            square_avg *= self.alpha
            square_avg += (1.0 - self.alpha) * param.grad**2
            param.data -= self.lr * param.grad / (np.sqrt(square_avg) + self.eps)


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in-place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.
    """
    parameters = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in parameters)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for param in parameters:
            param.grad *= scale
    return total
