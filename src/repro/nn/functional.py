"""Stateless neural-network operations built on :mod:`repro.nn.tensor`.

Includes the dilated same-padding 1-D convolution at the heart of TriAD's
encoders, numerically-stable softmax family ops with custom backward
rules, dropout, and the loss helpers shared by the baselines.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor, is_grad_enabled

__all__ = [
    "conv1d",
    "softmax",
    "log_softmax",
    "logsumexp",
    "dropout",
    "mse_loss",
    "l1_loss",
    "binary_cross_entropy",
    "huber_loss",
    "cosine_similarity",
]


def conv1d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    dilation: int = 1,
    padding: str | int = "same",
    stride: int = 1,
) -> Tensor:
    """Dilated, optionally strided 1-D convolution.

    Parameters
    ----------
    x:
        Input of shape ``(batch, in_channels, length)``.
    weight:
        Kernel of shape ``(out_channels, in_channels, kernel_size)``.
    bias:
        Optional per-output-channel bias of shape ``(out_channels,)``.
    dilation:
        Spacing between kernel taps.  TriAD doubles this per residual
        block to grow the receptive field exponentially.
    padding:
        ``"same"`` (output length equals input length at stride 1),
        ``"valid"``, ``"causal"`` (all padding on the left, so output
        ``t`` never sees input after ``t`` — the TCN convention), or an
        explicit integer amount applied symmetrically.
    stride:
        Hop between output positions.

    Returns
    -------
    Tensor of shape ``(batch, out_channels, out_length)``.
    """
    x = as_tensor(x)
    weight = as_tensor(weight)
    batch, in_channels, length = x.shape
    out_channels, w_in, kernel_size = weight.shape
    if w_in != in_channels:
        raise ValueError(
            f"weight expects {w_in} input channels, got {in_channels}"
        )
    if stride < 1:
        raise ValueError("stride must be positive")

    span = dilation * (kernel_size - 1)
    if padding == "same":
        pad_left = span // 2
        pad_right = span - pad_left
    elif padding == "causal":
        pad_left, pad_right = span, 0
    elif padding == "valid":
        pad_left = pad_right = 0
    else:
        pad_left = pad_right = int(padding)

    padded = np.pad(x.data, ((0, 0), (0, 0), (pad_left, pad_right)))
    full_length = padded.shape[2] - span
    if full_length <= 0:
        raise ValueError("input too short for kernel/dilation combination")
    out_length = (full_length - 1) // stride + 1

    # Gather the K dilated taps as strided views: (B, C_in, K, L_out).
    taps = np.stack(
        [
            padded[:, :, k * dilation : k * dilation + full_length : stride]
            for k in range(kernel_size)
        ],
        axis=2,
    )
    out_data = np.einsum("bckl,ock->bol", taps, weight.data, optimize=True)
    if bias is not None:
        out_data = out_data + bias.data[None, :, None]

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(grad: np.ndarray) -> None:
        if weight.requires_grad:
            weight._accumulate(
                np.einsum("bol,bckl->ock", grad, taps, optimize=True)
            )
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2)))
        if x.requires_grad:
            grad_taps = np.einsum("bol,ock->bckl", grad, weight.data, optimize=True)
            grad_padded = np.zeros_like(padded)
            for k in range(kernel_size):
                grad_padded[
                    :, :, k * dilation : k * dilation + full_length : stride
                ] += grad_taps[:, :, k, :]
            if pad_right:
                grad_padded = grad_padded[:, :, pad_left : grad_padded.shape[2] - pad_right]
            elif pad_left:
                grad_padded = grad_padded[:, :, pad_left:]
            x._accumulate(grad_padded)

    return Tensor._make(out_data, parents, backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        inner = (grad * out_data).sum(axis=axis, keepdims=True)
        x._accumulate(out_data * (grad - inner))

    return Tensor._make(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable ``log(softmax(x))`` along ``axis``."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_norm
    soft = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (x,), backward)


def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Numerically stable ``log(sum(exp(x)))`` along ``axis``."""
    x = as_tensor(x)
    peak = x.data.max(axis=axis, keepdims=True)
    exp = np.exp(x.data - peak)
    total = exp.sum(axis=axis, keepdims=True)
    out_data = np.log(total) + peak
    soft = exp / total
    if not keepdims:
        out_data = np.squeeze(out_data, axis=axis)

    def backward(grad: np.ndarray) -> None:
        g = grad if keepdims else np.expand_dims(grad, axis)
        x._accumulate(g * soft)

    return Tensor._make(out_data, (x,), backward)


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout: zero with probability ``p``, rescale survivors."""
    if not training or p <= 0.0:
        return x
    x = as_tensor(x)
    mask = (rng.random(x.shape) >= p) / (1.0 - p)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    return Tensor._make(x.data * mask, (x,), backward)


def mse_loss(prediction: Tensor, target) -> Tensor:
    """Mean squared error over all elements."""
    diff = as_tensor(prediction) - as_tensor(target)
    return (diff * diff).mean()


def l1_loss(prediction: Tensor, target) -> Tensor:
    """Mean absolute error over all elements."""
    return (as_tensor(prediction) - as_tensor(target)).abs().mean()


def binary_cross_entropy(prediction: Tensor, target, eps: float = 1e-12) -> Tensor:
    """Elementwise BCE averaged over all elements.

    ``prediction`` must already lie in ``(0, 1)`` (e.g. sigmoid output).
    """
    p = as_tensor(prediction)
    t = as_tensor(target)
    p = p * (1 - 2 * eps) + eps  # keep log() finite at the boundaries
    return -(t * p.log() + (1.0 - t) * (1.0 - p).log()).mean()


def huber_loss(prediction: Tensor, target, delta: float = 1.0) -> Tensor:
    """Huber loss: quadratic within ``delta`` of the target, linear beyond.

    Implemented from differentiable primitives (no custom backward):
    ``0.5 r^2`` for |r| <= delta, ``delta (|r| - 0.5 delta)`` otherwise.
    """
    residual = as_tensor(prediction) - as_tensor(target)
    abs_residual = residual.abs()
    clipped = abs_residual - (abs_residual - delta).relu()  # min(|r|, delta)
    return (clipped * abs_residual - 0.5 * clipped * clipped).mean()


def cosine_similarity(a: Tensor, b: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Cosine similarity between ``a`` and ``b`` along ``axis``."""
    a = as_tensor(a)
    b = as_tensor(b)
    dot = (a * b).sum(axis=axis)
    norm_a = ((a * a).sum(axis=axis) + eps).sqrt()
    norm_b = ((b * b).sum(axis=axis) + eps).sqrt()
    return dot / (norm_a * norm_b)
