"""Stateless neural-network operations built on :mod:`repro.nn.tensor`.

Includes the dilated same-padding 1-D convolution at the heart of TriAD's
encoders, numerically-stable softmax family ops with custom backward
rules, dropout, and the loss helpers shared by the baselines.

``conv1d`` ships three implementations behind one contract (see
docs/PERF.md):

- **gemm** — the default fast path.  Small kernels (TriAD's ``K=3``
  encoders) run as ``K`` accumulated batched GEMMs directly against
  strided views of the padded input — no tap matrix is ever
  materialized, and per-call scratch buffers are reused via ``out=``,
  which matters because these convs are memory-bound, not
  compute-bound.  Wide kernels switch to a classic im2col pack: the
  dilated taps exposed as a zero-copy
  :func:`numpy.lib.stride_tricks.sliding_window_view`, packed once into
  a contiguous ``(batch, in_channels * kernel, out_length)`` operand so
  forward and backward are single batched GEMMs.
- **fft** — frequency-domain correlation, auto-selected when the
  dilated kernel span is large enough that the GEMM's ``O(K)`` per-tap
  cost loses to ``O(log n)`` transforms (wide kernels, extreme
  dilations).
- **reference** — the original per-tap ``np.stack`` + einsum gather,
  kept as the equivalence oracle for tests and ``BENCH_nn.json``.

:func:`set_conv1d_mode` / :func:`conv1d_mode` switch between them; the
default ``"auto"`` picks gemm unless the FFT heuristic fires.
"""

from __future__ import annotations

import contextlib

import numpy as np

from .tensor import Tensor, as_tensor, is_grad_enabled

__all__ = [
    "conv1d",
    "conv1d_mode",
    "get_conv1d_mode",
    "set_conv1d_mode",
    "softmax",
    "log_softmax",
    "logsumexp",
    "dropout",
    "mse_loss",
    "l1_loss",
    "binary_cross_entropy",
    "huber_loss",
    "cosine_similarity",
]

_CONV1D_MODES = ("auto", "gemm", "fft", "reference")
_CONV1D_MODE = "auto"

# Kernels up to this many taps skip the im2col pack: K accumulated
# batched GEMMs on strided views beat one big GEMM on a packed matrix
# whenever building the matrix costs more memory traffic than it saves.
TAP_GEMM_MAX_K = 8

# Ceiling on the packed im2col operand (batch * C * K * L_out doubles).
# Beyond it the pack's allocation traffic swamps the single-GEMM win, so
# wide kernels fall back to the per-tap loop.
IM2COL_MAX_BYTES = 8 << 20

# FFT auto-selection heuristic: a GEMM multiplies every output sample by
# all K taps, while the FFT path pays ~log2(n_fft) per sample regardless
# of K — so frequency domain wins once the kernel is genuinely wide.
# Measured at encoder shapes (B=32, C=O=64, L=512): K=32 runs ~2.8x
# faster under FFT even at dilation 1, so the span threshold only rules
# out degenerate few-tap-but-dilated kernels where the pointwise product
# barely beats the GEMM yet the transforms still cost in full.  TriAD's
# K=3 encoders never trip either threshold.
FFT_MIN_TAPS = 32
FFT_MIN_SPAN = 24


def set_conv1d_mode(mode: str) -> str:
    """Select the ``conv1d`` implementation; returns the previous mode.

    ``"auto"`` (default) uses the GEMM formulation, switching to the FFT
    path for large kernel×dilation spans at stride 1; ``"gemm"``,
    ``"fft"`` and ``"reference"`` force one implementation (tests and
    benchmarks).
    """
    global _CONV1D_MODE
    if mode not in _CONV1D_MODES:
        raise ValueError(f"unknown conv1d mode {mode!r}; choose from {_CONV1D_MODES}")
    previous = _CONV1D_MODE
    _CONV1D_MODE = mode
    return previous


def get_conv1d_mode() -> str:
    """Return the active ``conv1d`` implementation mode."""
    return _CONV1D_MODE


@contextlib.contextmanager
def conv1d_mode(mode: str):
    """Context manager pinning the ``conv1d`` implementation."""
    previous = set_conv1d_mode(mode)
    try:
        yield
    finally:
        set_conv1d_mode(previous)


def _conv1d_geometry(
    length: int, kernel_size: int, dilation: int, padding: str | int, stride: int
) -> tuple[int, int, int, int, int]:
    """Padding amounts and output geometry shared by every conv path."""
    span = dilation * (kernel_size - 1)
    if padding == "same":
        pad_left = span // 2
        pad_right = span - pad_left
    elif padding == "causal":
        pad_left, pad_right = span, 0
    elif padding == "valid":
        pad_left = pad_right = 0
    else:
        pad_left = pad_right = int(padding)
    full_length = length + pad_left + pad_right - span
    if full_length <= 0:
        raise ValueError("input too short for kernel/dilation combination")
    out_length = (full_length - 1) // stride + 1
    return span, pad_left, pad_right, full_length, out_length


def conv1d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    dilation: int = 1,
    padding: str | int = "same",
    stride: int = 1,
) -> Tensor:
    """Dilated, optionally strided 1-D convolution.

    Parameters
    ----------
    x:
        Input of shape ``(batch, in_channels, length)``.
    weight:
        Kernel of shape ``(out_channels, in_channels, kernel_size)``.
    bias:
        Optional per-output-channel bias of shape ``(out_channels,)``.
    dilation:
        Spacing between kernel taps.  TriAD doubles this per residual
        block to grow the receptive field exponentially.
    padding:
        ``"same"``, ``"valid"``, ``"causal"`` (all padding on the left,
        so output ``t`` never sees input after ``t`` — the TCN
        convention), or an explicit integer amount applied symmetrically.
    stride:
        Hop between output positions.  Output length is
        ``(padded_length - span - 1) // stride + 1`` where
        ``span = dilation * (kernel_size - 1)`` — i.e. the stride-1
        output subsampled from position 0, *ceil-mode* for the
        length-preserving paddings: ``"same"`` and ``"causal"`` yield
        ``ceil(length / stride)`` outputs for any stride, and
        ``"valid"`` yields ``floor((length - span - 1) / stride) + 1``.

    Returns
    -------
    Tensor of shape ``(batch, out_channels, out_length)``.
    """
    x = as_tensor(x)
    weight = as_tensor(weight)
    batch, in_channels, length = x.shape
    out_channels, w_in, kernel_size = weight.shape
    if w_in != in_channels:
        raise ValueError(
            f"weight expects {w_in} input channels, got {in_channels}"
        )
    if stride < 1:
        raise ValueError("stride must be positive")
    if dilation < 1:
        raise ValueError("dilation must be positive")

    span, pad_left, pad_right, full_length, out_length = _conv1d_geometry(
        length, kernel_size, dilation, padding, stride
    )

    mode = _CONV1D_MODE
    if mode == "reference":
        impl = _conv1d_reference
    elif mode == "fft" or (
        mode == "auto"
        and stride == 1
        and kernel_size >= FFT_MIN_TAPS
        and span >= FFT_MIN_SPAN
    ):
        impl = _conv1d_fft
    elif kernel_size <= TAP_GEMM_MAX_K or (
        batch * in_channels * kernel_size * out_length * 8 > IM2COL_MAX_BYTES
    ):
        impl = _conv1d_taps
    else:
        impl = _conv1d_im2col
    return impl(
        x, weight, bias, dilation, stride,
        pad_left, pad_right, span, full_length, out_length,
    )


def _pad_input(
    data: np.ndarray, pad_left: int, pad_right: int
) -> np.ndarray:
    """Zero-pad the last axis (allocate + slice-assign; ``np.pad`` costs
    ~100µs of pure-Python shape juggling per call, real money at this
    call rate)."""
    if not (pad_left or pad_right):
        return data
    batch, channels, length = data.shape
    padded = np.zeros((batch, channels, length + pad_left + pad_right))
    padded[:, :, pad_left : pad_left + length] = data
    return padded


def _conv1d_taps(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None,
    dilation: int,
    stride: int,
    pad_left: int,
    pad_right: int,
    span: int,
    full_length: int,
    out_length: int,
) -> Tensor:
    """Small-kernel GEMM path: K accumulated batched GEMMs, no packing.

    Each tap ``k`` contributes ``W[:, :, k] @ x_padded[:, :, k·d :]`` —
    a ``(O, C) @ (B, C, L_out)`` batched GEMM against a strided *view*
    of the padded input.  These convs are memory-bound at TriAD's
    shapes, so skipping the im2col pack (3× the input's traffic for
    ``K=3``) and reusing one scratch buffer per call via ``out=`` is
    worth more than any GEMM-efficiency gain from a single big matrix.
    """
    batch, in_channels, length = x.shape
    out_channels, _, kernel_size = weight.shape
    padded = _pad_input(x.data, pad_left, pad_right)
    # (K, O, C) contiguous so each tap's GEMM operand needs no gather.
    w_taps = np.ascontiguousarray(weight.data.transpose(2, 0, 1))

    out_data = np.matmul(w_taps[0], padded[:, :, 0:full_length:stride])
    if kernel_size > 1:
        scratch = np.empty_like(out_data)
        for k in range(1, kernel_size):
            start = k * dilation
            np.matmul(
                w_taps[k],
                padded[:, :, start : start + full_length : stride],
                out=scratch,
            )
            out_data += scratch
    if bias is not None:
        out_data += bias.data[None, :, None]

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(grad: np.ndarray) -> None:
        if weight.requires_grad:
            grad_w = np.empty_like(weight.data)
            scratch = np.empty((batch, out_channels, in_channels))
            for k in range(kernel_size):
                start = k * dilation
                tap = padded[:, :, start : start + full_length : stride]
                np.matmul(grad, tap.transpose(0, 2, 1), out=scratch)
                grad_w[:, :, k] = scratch.sum(axis=0)
            weight._accumulate(grad_w)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2)))
        if x.requires_grad:
            grad_padded = np.zeros_like(padded)
            scratch = np.empty((batch, in_channels, out_length))
            for k in range(kernel_size):
                start = k * dilation
                np.matmul(w_taps[k].transpose(1, 0), grad, out=scratch)
                grad_padded[
                    :, :, start : start + full_length : stride
                ] += scratch
            x._accumulate(grad_padded[:, :, pad_left : pad_left + length])

    return Tensor._make(out_data, parents, backward)


def _conv1d_im2col(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None,
    dilation: int,
    stride: int,
    pad_left: int,
    pad_right: int,
    span: int,
    full_length: int,
    out_length: int,
) -> Tensor:
    """Wide-kernel im2col path: one contiguous tap-matrix, BLAS everywhere.

    ``sliding_window_view`` exposes every dilated tap as a zero-copy
    strided view; a single ``ascontiguousarray`` packs the views into a
    ``(batch, in_channels * kernel, out_length)`` operand (the only data
    movement on the forward path) so the forward pass is one batched
    GEMM producing ``(batch, out_channels, out_length)`` directly, and
    the backward pass is two batched GEMMs plus a K-tap strided
    scatter-add.  Worth the pack only past ``TAP_GEMM_MAX_K`` taps —
    below that :func:`_conv1d_taps` does strictly less memory traffic.
    """
    batch, in_channels, length = x.shape
    out_channels, _, kernel_size = weight.shape
    padded = _pad_input(x.data, pad_left, pad_right)

    # (B, C, K, L_out): tap axis ahead of the output axis, so the packed
    # matrix multiplies against the (O, C*K) kernel with no transposes.
    taps = np.lib.stride_tricks.sliding_window_view(padded, span + 1, axis=2)[
        :, :, ::stride, ::dilation
    ]
    cols = np.ascontiguousarray(taps.transpose(0, 1, 3, 2)).reshape(
        batch, in_channels * kernel_size, out_length
    )
    w2d = weight.data.reshape(out_channels, in_channels * kernel_size)
    out_data = np.matmul(w2d, cols)  # (B, O, L_out)
    if bias is not None:
        out_data += bias.data[None, :, None]

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(grad: np.ndarray) -> None:
        if weight.requires_grad:
            grad_w = np.matmul(grad, cols.transpose(0, 2, 1)).sum(axis=0)
            weight._accumulate(grad_w.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2)))
        if x.requires_grad:
            grad_cols = np.matmul(w2d.T, grad)  # (B, C*K, L_out)
            grad_taps = grad_cols.reshape(
                batch, in_channels, kernel_size, out_length
            )
            grad_padded = np.zeros_like(padded)
            for k in range(kernel_size):
                grad_padded[
                    :, :, k * dilation : k * dilation + full_length : stride
                ] += grad_taps[:, :, k, :]
            x._accumulate(grad_padded[:, :, pad_left : pad_left + length])

    return Tensor._make(out_data, parents, backward)


def _conv1d_fft(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None,
    dilation: int,
    stride: int,
    pad_left: int,
    pad_right: int,
    span: int,
    full_length: int,
    out_length: int,
) -> Tensor:
    """FFT path: correlation as a frequency-domain product.

    The dilated kernel is embedded into a dense ``span + 1`` tap buffer,
    both operands are transformed once, and forward/backward each reduce
    to one complex einsum + inverse transform.  Strides > 1 subsample
    the dense output (and zero-stuff the gradient back up), so this path
    is only auto-selected at stride 1 where nothing is wasted.
    """
    from scipy.fft import next_fast_len  # core dependency; lazy keeps import light

    batch, in_channels, length = x.shape
    out_channels, _, kernel_size = weight.shape
    padded = _pad_input(x.data, pad_left, pad_right)
    n_fft = next_fast_len(padded.shape[2])

    freq_x = np.fft.rfft(padded, n_fft, axis=2)  # (B, C, F)
    dense_kernel = np.zeros((out_channels, in_channels, span + 1))
    dense_kernel[:, :, ::dilation] = weight.data
    freq_w = np.fft.rfft(dense_kernel, n_fft, axis=2)  # (O, C, F)

    # Cross-correlation (the NN convention): X * conj(W) in frequency.
    freq_out = np.einsum("bcf,ocf->bof", freq_x, freq_w.conj(), optimize=True)
    dense = np.fft.irfft(freq_out, n_fft, axis=2)[:, :, :full_length]
    out_data = np.ascontiguousarray(dense[:, :, ::stride]) if stride > 1 else dense
    if bias is not None:
        out_data = out_data + bias.data[None, :, None]

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(grad: np.ndarray) -> None:
        if stride > 1:
            dense_grad = np.zeros((batch, out_channels, full_length))
            dense_grad[:, :, ::stride] = grad
        else:
            dense_grad = grad
        freq_grad = np.fft.rfft(dense_grad, n_fft, axis=2)  # (B, O, F)
        if weight.requires_grad:
            freq_gw = np.einsum(
                "bcf,bof->ocf", freq_x, freq_grad.conj(), optimize=True
            )
            corr = np.fft.irfft(freq_gw, n_fft, axis=2)
            weight._accumulate(corr[:, :, : span + 1 : dilation])
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2)))
        if x.requires_grad:
            # d/dx is the *convolution* of the gradient with the kernel:
            # plain product (no conjugate) in frequency.
            freq_gx = np.einsum("bof,ocf->bcf", freq_grad, freq_w, optimize=True)
            grad_padded = np.fft.irfft(freq_gx, n_fft, axis=2)
            x._accumulate(grad_padded[:, :, pad_left : pad_left + length])

    return Tensor._make(out_data, parents, backward)


def _conv1d_reference(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None,
    dilation: int,
    stride: int,
    pad_left: int,
    pad_right: int,
    span: int,
    full_length: int,
    out_length: int,
) -> Tensor:
    """The original per-tap gather implementation (equivalence oracle).

    Kept verbatim so tests and ``scripts/bench_nn.py`` can pin the fast
    paths against the exact pre-optimization semantics.
    """
    batch, in_channels, length = x.shape
    out_channels, _, kernel_size = weight.shape
    padded = np.pad(x.data, ((0, 0), (0, 0), (pad_left, pad_right)))

    # Gather the K dilated taps as strided views: (B, C_in, K, L_out).
    taps = np.stack(
        [
            padded[:, :, k * dilation : k * dilation + full_length : stride]
            for k in range(kernel_size)
        ],
        axis=2,
    )
    out_data = np.einsum("bckl,ock->bol", taps, weight.data, optimize=True)
    if bias is not None:
        out_data = out_data + bias.data[None, :, None]

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(grad: np.ndarray) -> None:
        if weight.requires_grad:
            weight._accumulate(
                np.einsum("bol,bckl->ock", grad, taps, optimize=True)
            )
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2)))
        if x.requires_grad:
            grad_taps = np.einsum("bol,ock->bckl", grad, weight.data, optimize=True)
            grad_padded = np.zeros_like(padded)
            for k in range(kernel_size):
                grad_padded[
                    :, :, k * dilation : k * dilation + full_length : stride
                ] += grad_taps[:, :, k, :]
            x._accumulate(grad_padded[:, :, pad_left : pad_left + length])

    return Tensor._make(out_data, parents, backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        inner = (grad * out_data).sum(axis=axis, keepdims=True)
        x._accumulate(out_data * (grad - inner))

    return Tensor._make(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable ``log(softmax(x))`` along ``axis``."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_norm
    soft = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (x,), backward)


def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Numerically stable ``log(sum(exp(x)))`` along ``axis``."""
    x = as_tensor(x)
    peak = x.data.max(axis=axis, keepdims=True)
    exp = np.exp(x.data - peak)
    total = exp.sum(axis=axis, keepdims=True)
    out_data = np.log(total) + peak
    soft = exp / total
    if not keepdims:
        out_data = np.squeeze(out_data, axis=axis)

    def backward(grad: np.ndarray) -> None:
        g = grad if keepdims else np.expand_dims(grad, axis)
        x._accumulate(g * soft)

    return Tensor._make(out_data, (x,), backward)


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout: zero with probability ``p``, rescale survivors."""
    if not training or p <= 0.0:
        return x
    x = as_tensor(x)
    mask = (rng.random(x.shape) >= p) / (1.0 - p)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    return Tensor._make(x.data * mask, (x,), backward)


def mse_loss(prediction: Tensor, target) -> Tensor:
    """Mean squared error over all elements."""
    diff = as_tensor(prediction) - as_tensor(target)
    return (diff * diff).mean()


def l1_loss(prediction: Tensor, target) -> Tensor:
    """Mean absolute error over all elements."""
    return (as_tensor(prediction) - as_tensor(target)).abs().mean()


def binary_cross_entropy(prediction: Tensor, target, eps: float = 1e-12) -> Tensor:
    """Elementwise BCE averaged over all elements.

    ``prediction`` must already lie in ``(0, 1)`` (e.g. sigmoid output).
    """
    p = as_tensor(prediction)
    t = as_tensor(target)
    p = p * (1 - 2 * eps) + eps  # keep log() finite at the boundaries
    return -(t * p.log() + (1.0 - t) * (1.0 - p).log()).mean()


def huber_loss(prediction: Tensor, target, delta: float = 1.0) -> Tensor:
    """Huber loss: quadratic within ``delta`` of the target, linear beyond.

    Implemented from differentiable primitives (no custom backward):
    ``0.5 r^2`` for |r| <= delta, ``delta (|r| - 0.5 delta)`` otherwise.
    """
    residual = as_tensor(prediction) - as_tensor(target)
    abs_residual = residual.abs()
    clipped = abs_residual - (abs_residual - delta).relu()  # min(|r|, delta)
    return (clipped * abs_residual - 0.5 * clipped * clipped).mean()


def cosine_similarity(a: Tensor, b: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Cosine similarity between ``a`` and ``b`` along ``axis``."""
    a = as_tensor(a)
    b = as_tensor(b)
    dot = (a * b).sum(axis=axis)
    norm_a = ((a * a).sum(axis=axis) + eps).sqrt()
    norm_b = ((b * b).sum(axis=axis) + eps).sqrt()
    return dot / (norm_a * norm_b)
