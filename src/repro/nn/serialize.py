"""Save/load module state dicts as compressed ``.npz`` archives."""

from __future__ import annotations

import os

import numpy as np

from .module import Module

__all__ = ["save_module", "load_module"]


def save_module(module: Module, path: str | os.PathLike) -> None:
    """Persist ``module.state_dict()`` to ``path`` (npz format).

    Parameter names may contain dots; they are stored verbatim as npz keys.
    """
    state = module.state_dict()
    np.savez_compressed(path, **state)


def load_module(module: Module, path: str | os.PathLike) -> None:
    """Restore a module previously saved with :func:`save_module`."""
    with np.load(path) as archive:
        state = {key: archive[key] for key in archive.files}
    module.load_state_dict(state)
