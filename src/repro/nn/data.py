"""Mini data pipeline: shuffled batch iteration for training loops."""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["BatchIterator"]


class BatchIterator:
    """Shuffled mini-batch iterator over one or more aligned arrays.

    Example
    -------
    >>> import numpy as np
    >>> batches = BatchIterator(np.arange(10).reshape(5, 2), batch_size=2,
    ...                         rng=np.random.default_rng(0))
    >>> total = sum(len(batch[0]) for batch in batches)
    >>> total
    5
    """

    def __init__(
        self,
        *arrays: np.ndarray,
        batch_size: int = 32,
        rng: np.random.Generator | None = None,
        drop_last: bool = False,
        min_batch: int = 1,
    ) -> None:
        if not arrays:
            raise ValueError("at least one array is required")
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        lengths = {len(a) for a in arrays}
        if len(lengths) != 1:
            raise ValueError(f"arrays must share their first dimension, got {lengths}")
        self.arrays = [np.asarray(a) for a in arrays]
        self.batch_size = batch_size
        self.rng = rng or np.random.default_rng()
        self.drop_last = drop_last
        self.min_batch = min_batch

    def __len__(self) -> int:
        count = len(self.arrays[0])
        full, rest = divmod(count, self.batch_size)
        if rest and not self.drop_last and rest >= self.min_batch:
            return full + 1
        return full

    def __iter__(self) -> Iterator[tuple[np.ndarray, ...]]:
        count = len(self.arrays[0])
        order = self.rng.permutation(count)
        for start in range(0, count, self.batch_size):
            index = order[start : start + self.batch_size]
            if len(index) < self.batch_size and self.drop_last:
                return
            if len(index) < self.min_batch:
                return
            yield tuple(array[index] for array in self.arrays)
