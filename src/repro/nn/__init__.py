"""Pure-numpy deep learning substrate (PyTorch stand-in; see DESIGN.md).

Provides reverse-mode autodiff tensors, the layers needed by TriAD's
dilated-convolution encoders and all baseline models, optimizers, and
gradient checking utilities.
"""

from . import functional
from .activations import ELU, GELU, LeakyReLU, Softplus, elu, gelu, leaky_relu, softplus
from .functional import conv1d_mode, get_conv1d_mode, set_conv1d_mode
from .attention import MultiHeadSelfAttention
from .data import BatchIterator
from .gradcheck import check_gradients, numerical_gradient
from .gru import GRU, GRUCell
from .layers import (
    BatchNorm1d,
    Conv1d,
    Dropout,
    Identity,
    LayerNorm,
    Linear,
    ReLU,
    Sigmoid,
    Tanh,
)
from .module import Module, ModuleList, Parameter, Sequential
from .optim import (
    SGD,
    Adam,
    AdamW,
    Optimizer,
    RMSProp,
    clip_grad_norm,
    fused_enabled,
    fused_optimizers,
    set_fused_optimizers,
)
from .pooling import AvgPool1d, GlobalAvgPool1d, GlobalMaxPool1d, MaxPool1d
from .rnn import LSTM, LSTMCell
from .schedulers import CosineAnnealingLR, EarlyStopping, ExponentialLR, StepLR
from .serialize import load_module, save_module
from .tensor import Tensor, as_tensor, concatenate, is_grad_enabled, no_grad, stack

__all__ = [
    "functional",
    "Tensor",
    "as_tensor",
    "concatenate",
    "stack",
    "no_grad",
    "is_grad_enabled",
    "Module",
    "ModuleList",
    "Parameter",
    "Sequential",
    "Linear",
    "Conv1d",
    "LayerNorm",
    "BatchNorm1d",
    "Dropout",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "LSTM",
    "LSTMCell",
    "GRU",
    "GRUCell",
    "MultiHeadSelfAttention",
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "RMSProp",
    "clip_grad_norm",
    "fused_optimizers",
    "fused_enabled",
    "set_fused_optimizers",
    "conv1d_mode",
    "get_conv1d_mode",
    "set_conv1d_mode",
    "MaxPool1d",
    "AvgPool1d",
    "GlobalMaxPool1d",
    "GlobalAvgPool1d",
    "GELU",
    "LeakyReLU",
    "Softplus",
    "ELU",
    "gelu",
    "leaky_relu",
    "softplus",
    "elu",
    "StepLR",
    "ExponentialLR",
    "CosineAnnealingLR",
    "EarlyStopping",
    "BatchIterator",
    "save_module",
    "load_module",
    "check_gradients",
    "numerical_gradient",
]
