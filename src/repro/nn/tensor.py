"""Reverse-mode automatic differentiation over numpy arrays.

This module is the foundation of :mod:`repro.nn`, the pure-numpy deep
learning substrate used in place of PyTorch (see DESIGN.md).  A
:class:`Tensor` wraps an ``ndarray`` and records the operations applied to
it; calling :meth:`Tensor.backward` walks the recorded graph in reverse
topological order and accumulates gradients into ``Tensor.grad``.

The operation set is intentionally small but complete enough to express
every model in the paper: elementwise arithmetic with full numpy
broadcasting, matrix multiplication (2-D and batched), reductions,
shape manipulation, slicing, concatenation, and the nonlinearities used
by the encoders.  Convolution and other structured ops live in
:mod:`repro.nn.functional` and are built from these primitives plus a few
custom backward rules.
"""

from __future__ import annotations

import contextlib
import time
from typing import Callable, Iterable, Sequence

import numpy as np

from . import hooks

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "as_tensor"]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording.

    Used during inference and inside optimizers, where building the
    autodiff graph would waste memory for values that are never
    differentiated.
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autodiff graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    When a forward op broadcast an operand up to a larger shape, the
    gradient flowing back must be reduced over the broadcast axes so it
    matches the operand's original shape.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Array-like payload.  Stored as ``float64`` by default so that
        gradient checks against numerical differentiation are tight.
    requires_grad:
        Whether gradients should be accumulated into this tensor when
        :meth:`backward` is called on a downstream result.
    """

    __slots__ = (
        "data",
        "grad",
        "requires_grad",
        "_backward",
        "_parents",
        "_grad_buffer",
    )

    def __init__(self, data, requires_grad: bool = False) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self._grad_buffer: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        """Clear the gradient, recycling its storage for the next backward.

        Long-lived tensors (parameters) accumulate a same-shaped gradient
        every step; keeping the released array as ``_grad_buffer`` lets
        :meth:`_accumulate` refill it in place instead of allocating a
        fresh copy per batch.
        """
        if self.grad is not None:
            self._grad_buffer = self.grad
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_note})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a result tensor, wiring the graph only when needed."""
        out = Tensor(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            buffer = self._grad_buffer
            if buffer is not None and buffer.shape == np.shape(grad):
                np.copyto(buffer, grad)
                self.grad = buffer
                self._grad_buffer = None
            else:
                self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to ``1.0`` which requires this tensor to be a scalar.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor without grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be supplied for non-scalar output")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)
        hook = hooks._TIMING_HOOK
        started = time.perf_counter() if hook is not None else 0.0

        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
        if hook is not None:
            hook("backward", "graph", time.perf_counter() - started)

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data**2), other.shape)
                )

        return Tensor._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(self.data**exponent, (self,), backward)

    # ------------------------------------------------------------------
    # Matrix multiplication
    # ------------------------------------------------------------------
    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                g = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                g = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(_unbroadcast(g, other.shape))

        return Tensor._make(self.data @ other.data, (self, other), backward)

    # ------------------------------------------------------------------
    # Nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / out_data)

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(self.data * mask, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * sign)

        return Tensor._make(np.abs(self.data), (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(self.data.sum(axis=axis, keepdims=keepdims), (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))

        def backward(grad: np.ndarray) -> None:
            g = grad / count
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(
            self.data.mean(axis=axis, keepdims=keepdims), (self,), backward
        )

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            ref = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                ref = np.expand_dims(ref, axis)
            mask = self.data == ref
            # Split gradient evenly between ties, matching subgradient choice.
            counts = mask.sum(axis=axis, keepdims=True)
            self._accumulate(np.where(mask, g / counts, 0.0))

        return Tensor._make(out_data, (self,), backward)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        centered = self - self.mean(axis=axis, keepdims=True)
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(self.shape))

        return Tensor._make(self.data.reshape(shape), (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(self.data.transpose(axes), (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.swapaxes(grad, a, b))

        return Tensor._make(np.swapaxes(self.data, a, b), (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            g = np.zeros_like(self.data)
            np.add.at(g, index, grad)
            self._accumulate(g)

        return Tensor._make(self.data[index], (self,), backward)

    def pad(self, pad_width) -> "Tensor":
        """Zero-pad; ``pad_width`` follows :func:`numpy.pad` conventions."""
        pad_width = tuple((int(a), int(b)) for a, b in pad_width)

        def backward(grad: np.ndarray) -> None:
            slices = tuple(
                slice(a, grad.shape[i] - b) for i, (a, b) in enumerate(pad_width)
            )
            self._accumulate(grad[slices])

        return Tensor._make(np.pad(self.data, pad_width), (self,), backward)

    # ------------------------------------------------------------------
    # Comparison operators (non-differentiable; return plain arrays)
    # ------------------------------------------------------------------
    def __gt__(self, other) -> np.ndarray:
        return self.data > as_tensor(other).data

    def __lt__(self, other) -> np.ndarray:
        return self.data < as_tensor(other).data


def as_tensor(value) -> Tensor:
    """Coerce ``value`` (Tensor, ndarray, scalar) into a :class:`Tensor`."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, end in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, end)
                tensor._accumulate(grad[tuple(index)])

    data = np.concatenate([t.data for t in tensors], axis=axis)
    return Tensor._make(data, tensors, backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stacking along a new ``axis``."""
    tensors = [as_tensor(t) for t in tensors]

    def backward(grad: np.ndarray) -> None:
        pieces = np.moveaxis(grad, axis, 0)
        for tensor, piece in zip(tensors, pieces):
            if tensor.requires_grad:
                tensor._accumulate(piece)

    data = np.stack([t.data for t in tensors], axis=axis)
    return Tensor._make(data, tensors, backward)
