"""Learning-rate schedulers and early stopping for training loops."""

from __future__ import annotations

import math

from .optim import Optimizer

__all__ = ["StepLR", "CosineAnnealingLR", "ExponentialLR", "EarlyStopping"]


class _Scheduler:
    """Base scheduler: stores the initial lr and steps the optimizer.

    If something else changes ``optimizer.lr`` between steps — the
    trainer's divergence guard backs off the lr after a rollback — the
    scheduler *re-bases* instead of clobbering the external change: the
    schedule is rescaled by the same factor, so subsequent steps continue
    the decay from the reduced level.
    """

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0
        self._last_lr = optimizer.lr

    def get_lr(self) -> float:
        raise NotImplementedError

    def _rebase(self, scale: float) -> None:
        """Rescale the schedule after an external lr change."""
        self.base_lr *= scale

    def step(self) -> float:
        """Advance one epoch; returns (and applies) the new lr."""
        current = self.optimizer.lr
        if current != self._last_lr:
            if self._last_lr:
                self._rebase(current / self._last_lr)
            else:
                self.base_lr = current
        self.epoch += 1
        lr = self.get_lr()
        self.optimizer.lr = lr
        self._last_lr = lr
        return lr


class StepLR(_Scheduler):
    """Multiply lr by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size < 1:
            raise ValueError("step_size must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class ExponentialLR(_Scheduler):
    """Multiply lr by ``gamma`` every epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.95) -> None:
        super().__init__(optimizer)
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma**self.epoch


class CosineAnnealingLR(_Scheduler):
    """Cosine decay from the base lr to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0) -> None:
        super().__init__(optimizer)
        if t_max < 1:
            raise ValueError("t_max must be positive")
        self.t_max = t_max
        self.eta_min = eta_min

    def _rebase(self, scale: float) -> None:
        # Scale the floor too, otherwise a backoff below eta_min would
        # be immediately undone by the next step.
        super()._rebase(scale)
        self.eta_min *= scale

    def get_lr(self) -> float:
        progress = min(self.epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (
            1.0 + math.cos(math.pi * progress)
        )


class EarlyStopping:
    """Stop training when a monitored value stops improving.

    Example
    -------
    >>> stopper = EarlyStopping(patience=3)
    >>> for epoch in range(100):
    ...     val = 1.0
    ...     if stopper.update(val):
    ...         break
    """

    def __init__(self, patience: int = 5, min_delta: float = 0.0) -> None:
        if patience < 1:
            raise ValueError("patience must be positive")
        self.patience = patience
        self.min_delta = min_delta
        self.best = math.inf
        self.bad_epochs = 0
        self.stopped = False

    def update(self, value: float) -> bool:
        """Record a new monitored value; returns True when training
        should stop."""
        if value < self.best - self.min_delta:
            self.best = value
            self.bad_epochs = 0
        else:
            self.bad_epochs += 1
        self.stopped = self.bad_epochs >= self.patience
        return self.stopped
