"""TriAD reproduction: self-supervised tri-domain time series anomaly
detection (Sun et al., ICDE 2024), with every substrate implemented
from scratch -- see DESIGN.md for the system inventory.

Public API quick reference::

    from repro import TriAD, TriADConfig
    from repro.data import make_archive
    from repro.metrics import pa_k_auc, affiliation_metrics

    dataset = make_archive(size=1)[0]
    detector = TriAD(TriADConfig(epochs=5)).fit(dataset.train)
    detection = detector.detect(dataset.test)
"""

from .core import TriAD, TriADConfig, TriADDetection

__version__ = "0.1.0"

__all__ = ["TriAD", "TriADConfig", "TriADDetection", "__version__"]
