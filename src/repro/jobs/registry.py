"""Detector registry for job payloads.

A job names its detector as a string so the spec is JSON-serializable
and a *different process* can rebuild and re-fit the exact model when
resuming.  Builders return a fitted
:class:`repro.pipeline.contracts.WindowScorer` plus the window plan the
job should score under — the same contract the serving registry hosts,
so TriAD, every baseline, and custom scorers are all submittable.

``register_job_detector`` is the extension point: tests and downstream
code can plug custom builders (the kill-resume drills register a
deliberately slow scorer this way).

Heavy imports (``core``, ``baselines``) happen inside the builders, so
importing :mod:`repro.jobs` stays cheap.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..pipeline.contracts import WindowScorer

__all__ = [
    "BuiltScorer",
    "register_job_detector",
    "job_detectors",
    "build_scorer",
    "resolve_plan",
    "BatchedSpectralResidualScorer",
    "BatchedDiscordScorer",
]

#: A builder returns (fitted scorer, window_length, stride).
BuiltScorer = tuple[WindowScorer, int, int]

_Builder = Callable[[np.ndarray, dict], BuiltScorer]
_Plan = Callable[[np.ndarray, dict], tuple[int, int]]
_REGISTRY: dict[str, _Builder] = {}
_PLANS: dict[str, _Plan] = {}


def register_job_detector(
    name: str, builder: _Builder, plan: _Plan | None = None
) -> None:
    """Register (or replace) a job detector builder.

    ``builder(train_series, params)`` must return ``(scorer,
    window_length, stride)`` with the scorer already fitted.  ``plan``
    optionally predicts ``(window_length, stride)`` *without* fitting —
    the manager calls it at submit time to pin the chunk plan cheaply;
    it must agree with what the builder later returns (the run-time
    drift check enforces this).  Omitted, the default TriAD-config plan
    (:func:`repro.pipeline.feature_pipeline.default_pipeline`) is used,
    which matches every built-in builder.
    """
    _REGISTRY[name] = builder
    if plan is not None:
        _PLANS[name] = plan
    else:
        _PLANS.pop(name, None)


def resolve_plan(name: str, train_series: np.ndarray, params: dict) -> tuple[int, int]:
    """Predict the (window_length, stride) a builder will score under.

    Unknown names fall back to the default plan so ``submit`` stays
    cheap and total — a bad detector name fails the *run*, attributed on
    the job record, not the submission.
    """
    planner = _PLANS.get(name)
    if planner is not None:
        return planner(np.asarray(train_series, dtype=np.float64), dict(params))
    plan = _plan(np.asarray(train_series, dtype=np.float64), dict(params))
    return plan.length, plan.stride


def job_detectors() -> tuple[str, ...]:
    """Names submittable as ``JobSpec.detector``, sorted."""
    return tuple(sorted(_REGISTRY))


def build_scorer(name: str, train_series: np.ndarray, params: dict) -> BuiltScorer:
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown job detector {name!r}; known: {', '.join(job_detectors())}"
        )
    return _REGISTRY[name](np.asarray(train_series, dtype=np.float64), dict(params))


def _plan(train_series: np.ndarray, params: dict):
    """Window plan from the TriAD config fields, like the CLI/serve do."""
    from ..core.config import TriADConfig
    from ..pipeline.feature_pipeline import default_pipeline

    config = TriADConfig(
        epochs=int(params.get("epochs", 0)) or 1,
        seed=int(params.get("seed", 0)),
        max_window=int(params.get("max_window", 256)),
    )
    return default_pipeline().plan_for(train_series, config)


# ----------------------------------------------------------------------
# Built-in builders
# ----------------------------------------------------------------------
def _build_triad(train_series: np.ndarray, params: dict) -> BuiltScorer:
    from ..core import TriAD, TriADConfig
    from ..pipeline.adapters import from_triad

    config = TriADConfig(
        epochs=int(params.get("epochs", 3)),
        seed=int(params.get("seed", 0)),
        max_window=int(params.get("max_window", 256)),
    )
    detector = TriAD(config).fit(train_series)
    plan = detector.plan
    return from_triad(detector), plan.length, plan.stride


def _baseline_builder(attr: str, **defaults) -> _Builder:
    def build(train_series: np.ndarray, params: dict) -> BuiltScorer:
        from .. import baselines
        from ..pipeline.adapters import from_baseline

        kwargs = dict(defaults)
        for key in ("epochs", "seed"):
            if key in params and key in kwargs:
                kwargs[key] = params[key]
        detector = getattr(baselines, attr)(**kwargs).fit(train_series)
        plan = _plan(train_series, params)
        return from_baseline(detector), plan.length, plan.stride

    return build


class BatchedSpectralResidualScorer(WindowScorer):
    """Spectral-residual window scoring, vectorized over the batch axis.

    Same per-window math as
    :func:`repro.baselines.spectral_residual.spectral_residual_saliency`
    applied to the z-normed window, but computed for a whole ``(batch,
    length)`` chunk in single array operations — FFT, log-amplitude
    smoothing, inverse FFT, and local-baseline normalization all batch
    along ``axis=-1``.  A window's score is its peak normalized
    saliency (the statistic :class:`~repro.pipeline.adapters.
    BaselineWindowScorer` extracts one window at a time).

    Every operation is row-independent, so scoring windows in chunks of
    any size is bit-identical to scoring them all at once — the
    property the chunked executor's stitching guarantee rests on, and
    the scorer the ``BENCH_jobs.json`` gate runs.
    """

    name = "spectral-residual-batched"

    def __init__(self, average_window: int = 3, baseline_window: int = 21) -> None:
        self.average_window = int(average_window)
        self.baseline_window = int(baseline_window)

    @staticmethod
    def _moving_average(values: np.ndarray, width: int) -> np.ndarray:
        """Edge-padded centered moving average along the last axis —
        the batched form of the reference's pad + convolve, computed in
        O(n) via cumulative sums instead of the O(n * width) per-window
        reduction.  Row-independent, so the result does not depend on
        how rows are batched into chunks."""
        left = (width - 1) // 2
        right = width - 1 - left
        padded = np.pad(
            values, [(0, 0)] * (values.ndim - 1) + [(left, right)], mode="edge"
        )
        sums = np.cumsum(padded, axis=-1)
        sums = np.concatenate(
            [np.zeros(sums.shape[:-1] + (1,), dtype=sums.dtype), sums], axis=-1
        )
        return (sums[..., width:] - sums[..., :-width]) / width

    def saliency(self, windows: np.ndarray) -> np.ndarray:
        """Normalized saliency per point, for a (batch, length) array."""
        windows = np.atleast_2d(np.asarray(windows, dtype=np.float64))
        mean = windows.mean(axis=-1, keepdims=True)
        std = windows.std(axis=-1, keepdims=True)
        z = (windows - mean) / np.maximum(std, 1e-12)
        spectrum = np.fft.fft(z, axis=-1)
        amplitude = np.maximum(np.abs(spectrum), 1e-12)
        log_amplitude = np.log(amplitude)
        averaged = self._moving_average(log_amplitude, self.average_window)
        # exp(log|S| - avg + i*angle(S)) == S * exp(-avg): same residual
        # spectrum without the (slow) complex exp and angle
        saliency = np.abs(np.fft.ifft(spectrum * np.exp(-averaged), axis=-1))
        baseline = self._moving_average(saliency, self.baseline_window)
        return (saliency - baseline) / np.maximum(baseline, 1e-12)

    def score_windows(self, windows: np.ndarray, batch: Sequence) -> np.ndarray:
        return self.saliency(windows).max(axis=-1)


class BatchedDiscordScorer(WindowScorer):
    """Discord-distance window scoring through the shared kernel layer.

    The bulk-inference counterpart of the serving registry's
    ``streaming-discord`` degradation-chain scorer: each window's score
    is the largest left nearest-neighbor distance among its z-normalized
    subsequences (:func:`repro.discord.streaming.left_matrix_profile`,
    which runs on the batched kernels under the active discord mode).
    Windows are scored independently, so chunked execution stitches
    bit-identically — the executor contract every job scorer must meet.
    """

    name = "streaming-discord-batched"

    def __init__(self, subsequence_length: int = 16) -> None:
        if subsequence_length < 2:
            raise ValueError("subsequence_length must be >= 2")
        self.subsequence_length = int(subsequence_length)

    def score_windows(self, windows: np.ndarray, batch: Sequence) -> np.ndarray:
        from ..discord.streaming import left_matrix_profile

        windows = np.atleast_2d(np.asarray(windows, dtype=np.float64))
        # A left-NN needs one fully-past subsequence, so the effective
        # length is capped at half the window.
        length = max(min(self.subsequence_length, windows.shape[1] // 2), 2)
        scores = np.zeros(len(windows))
        for i, window in enumerate(windows):
            profile = left_matrix_profile(window, length)
            finite = profile[np.isfinite(profile)]
            if finite.size:
                scores[i] = float(finite.max())
        return scores


def _build_streaming_discord(train_series: np.ndarray, params: dict) -> BuiltScorer:
    scorer = BatchedDiscordScorer(
        subsequence_length=int(params.get("subsequence_length", 16))
    )
    plan = _plan(train_series, params)
    return scorer, plan.length, plan.stride


def _build_batched_sr(train_series: np.ndarray, params: dict) -> BuiltScorer:
    scorer = BatchedSpectralResidualScorer(
        average_window=int(params.get("average_window", 3)),
        baseline_window=int(params.get("baseline_window", 21)),
    )
    plan = _plan(train_series, params)
    return scorer, plan.length, plan.stride


register_job_detector("triad", _build_triad)
register_job_detector("spectral-residual", _build_batched_sr)
register_job_detector("streaming-discord", _build_streaming_discord)
register_job_detector("lstm-ae", _baseline_builder("LSTMAEDetector", trained=True, epochs=4, seed=0))
register_job_detector("usad", _baseline_builder("USADDetector", epochs=4, seed=0))
register_job_detector("deepant", _baseline_builder("DeepAnTDetector", epochs=4, seed=0))
register_job_detector("donut", _baseline_builder("DonutDetector", epochs=4, seed=0))
register_job_detector("random", _baseline_builder("RandomScoreDetector", seed=0))
register_job_detector("changepoint", _baseline_builder("ChangePointDetector"))
