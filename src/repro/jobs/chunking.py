"""Window-aligned chunking of a long series.

The executor does not split a series into disjoint point ranges — that
would tear windows at chunk boundaries and change scores near the
seams.  Instead the *global window sequence* (exactly the one
:func:`repro.signal.windows.sliding_windows` would produce for the full
series) is partitioned into contiguous runs of windows, and each chunk
carries the point range covering its windows.  Chunks therefore overlap
by up to ``length - stride`` points, every global window is scored by
exactly one chunk, and stitching is plain concatenation of per-window
scores followed by the shared
:func:`repro.pipeline.scores.spread_window_scores` — bit-identical to a
single pass over the full series by construction (given a
row-independent scorer).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..pipeline.scores import spread_window_scores

__all__ = ["Chunk", "window_starts", "plan_chunks", "chunk_windows_view", "stitch"]


@dataclass(frozen=True)
class Chunk:
    """One contiguous run of global windows.

    Attributes
    ----------
    index:
        Position in the chunk sequence (journal key).
    first_window / n_windows:
        Slice of the global window ordering this chunk scores.
    start / stop:
        Point range ``series[start:stop]`` covering the chunk's windows
        (``stop`` exclusive).  Adjacent chunks overlap by up to
        ``length - stride`` points so no window is torn.
    """

    index: int
    first_window: int
    n_windows: int
    start: int
    stop: int


def window_starts(n_points: int, length: int, stride: int) -> np.ndarray:
    """Global window start offsets — the exact sequence
    :func:`repro.signal.windows.sliding_windows` produces (stride grid
    plus the end-anchored final window), without materializing windows.
    """
    if length > n_points:
        raise ValueError(f"window length {length} exceeds series length {n_points}")
    if stride < 1:
        raise ValueError("stride must be positive")
    starts = list(range(0, n_points - length + 1, stride))
    last = n_points - length
    if starts[-1] != last:
        starts.append(last)
    return np.asarray(starts, dtype=np.int64)


def plan_chunks(
    n_points: int, length: int, stride: int, chunk_windows: int
) -> list[Chunk]:
    """Partition the global window sequence into runs of at most
    ``chunk_windows`` windows."""
    if chunk_windows < 1:
        raise ValueError("chunk_windows must be positive")
    starts = window_starts(n_points, length, stride)
    chunks: list[Chunk] = []
    for first in range(0, len(starts), chunk_windows):
        run = starts[first : first + chunk_windows]
        chunks.append(
            Chunk(
                index=len(chunks),
                first_window=first,
                n_windows=len(run),
                start=int(run[0]),
                stop=int(run[-1]) + length,
            )
        )
    return chunks


def chunk_windows_view(
    series: np.ndarray, chunk: Chunk, length: int, stride: int
) -> tuple[np.ndarray, np.ndarray]:
    """Materialize one chunk's windows and their *global* start offsets.

    The windows are gathered at the global grid positions, so their
    content is value-identical to rows ``first_window :
    first_window + n_windows`` of a full-series ``sliding_windows``
    call.
    """
    starts = window_starts(len(series), length, stride)
    run = starts[chunk.first_window : chunk.first_window + chunk.n_windows]
    windows = np.stack([series[s : s + length] for s in run])
    return windows, run


def stitch(
    chunk_scores: dict[int, np.ndarray],
    chunks: list[Chunk],
    length: int,
    stride: int,
    n_points: int,
) -> np.ndarray:
    """Reassemble per-chunk window scores into one point-score array.

    Requires every chunk's scores to be present; raises ``KeyError``
    naming the first missing chunk otherwise (the manager only calls
    this once the journal is complete).
    """
    total_windows = sum(c.n_windows for c in chunks)
    window_scores = np.empty(total_windows, dtype=np.float64)
    for chunk in chunks:
        try:
            scores = np.asarray(chunk_scores[chunk.index], dtype=np.float64)
        except KeyError:
            raise KeyError(
                f"chunk {chunk.index} has no journaled scores; "
                f"{len(chunk_scores)}/{len(chunks)} chunks present"
            ) from None
        if scores.shape != (chunk.n_windows,):
            raise ValueError(
                f"chunk {chunk.index} journaled {scores.shape} scores, "
                f"expected ({chunk.n_windows},)"
            )
        window_scores[chunk.first_window : chunk.first_window + chunk.n_windows] = scores
    starts = window_starts(n_points, length, stride)
    return spread_window_scores(window_scores, starts, length, n_points)
