"""Archive sweeps on the job fabric.

:func:`run_archive_job` evaluates the same (dataset, seed) units as
:func:`repro.eval.run_on_archive` — literally the same unit code, via
:func:`repro.eval.execute_unit` — but schedules them over the job
fabric's fork pool (:func:`repro.jobs.executor.parallel_map`) and
journals every completed unit into the *same*
:class:`repro.eval.persistence.SweepCheckpoint` format the sequential
runner reads.  Offline eval and bulk scoring therefore share one
execution fabric: one pool, one journal idiom, one resume story, and a
sweep started with ``--workers 4`` can be killed and resumed by the
sequential runner (or vice versa).

Units are deterministic given (detector factory, dataset, seed), so the
aggregate is identical to the sequential runner's no matter the worker
count or completion order — outcomes are re-sorted into the canonical
(seed, dataset) order before aggregation.
"""

from __future__ import annotations

from typing import Callable, Iterable

from .. import obs
from ..eval.runner import (
    METRIC_NAMES,
    SCORE_METRIC_NAMES,
    AggregateScores,
    DatasetScores,
    aggregate_runs,
    execute_unit,
)
from ..runtime import FailureReport, RetryPolicy
from .executor import parallel_map

__all__ = ["run_archive_job"]


def run_archive_job(
    name: str,
    factory: Callable[[int], object],
    datasets: list,
    seeds: Iterable[int] = (0,),
    mode: str = "binary",
    workers: int = 1,
    policy: RetryPolicy | None = None,
    checkpoint=None,
) -> AggregateScores:
    """Archive sweep over the job fabric's worker pool.

    Drop-in for :func:`repro.eval.run_on_archive` /
    :func:`~repro.eval.run_scores_on_archive` (pick with ``mode``):
    same units, same aggregation, same checkpoint journal — plus
    ``workers`` parallel unit execution.  With ``workers=1`` the units
    run serially in-process and the result is identical to the
    sequential runner's.

    Worker processes inherit ``factory`` and ``datasets`` by fork, so
    neither needs to be picklable.  A unit that raises inside a worker
    is retried serially in the parent (under ``policy`` when given), so
    pool failures degrade to attributed :class:`FailureReport` entries,
    never a dead sweep.
    """
    seeds = list(seeds)
    metric_names = SCORE_METRIC_NAMES if mode == "scores" else METRIC_NAMES
    required = set(metric_names)

    cached_results: dict[tuple[str, int], DatasetScores] = {}
    cached_failures: dict[tuple[str, int], FailureReport] = {}
    if checkpoint is not None:
        cached_results, cached_failures = checkpoint.load()

    outcomes: dict[tuple[str, int], DatasetScores | FailureReport] = {}
    pending: list[tuple[int, int]] = []  # (dataset index, seed)
    for seed in seeds:
        for di, dataset in enumerate(datasets):
            key = (dataset.name, seed)
            if key in cached_results and required <= set(cached_results[key].metrics):
                outcomes[key] = cached_results[key]
                obs.incr("eval.checkpoint.splice_hits")
            elif key in cached_failures:
                outcomes[key] = cached_failures[key]
                obs.incr("eval.checkpoint.splice_hits")
                obs.incr("eval.checkpoint.spliced_failures")
            else:
                pending.append((di, seed))

    def unit_task(payload: tuple[int, int]):
        di, seed = payload
        return execute_unit(
            name, factory, datasets[di], seed, policy=policy, mode=mode
        )

    def on_result(position: int, outcome) -> None:
        di, seed = pending[position]
        outcomes[(datasets[di].name, seed)] = outcome
        obs.incr("jobs.sweep.units")
        if checkpoint is not None:
            if isinstance(outcome, FailureReport):
                checkpoint.append_failure(outcome)
            else:
                checkpoint.append_result(outcome)

    with obs.span(
        "jobs.sweep", detector=name, units=len(pending), workers=workers
    ):
        _, errors = parallel_map(
            unit_task, pending, workers=workers, on_result=on_result
        )
        # A unit whose *worker* died re-runs serially here so its live
        # exception goes through the retry policy (or propagates,
        # matching the sequential runner's crash-through default).
        for position in sorted(errors):
            obs.incr("jobs.sweep.pool_failures")
            on_result(position, unit_task(pending[position]))

    per_run: list[DatasetScores] = []
    failures: list[FailureReport] = []
    for seed in seeds:
        for dataset in datasets:
            outcome = outcomes.get((dataset.name, seed))
            if outcome is None:
                continue
            if isinstance(outcome, FailureReport):
                failures.append(outcome)
            else:
                per_run.append(outcome)

    return aggregate_runs(
        name,
        per_run,
        failures,
        seeds,
        metric_names,
        total_units=len(seeds) * len(datasets),
    )
