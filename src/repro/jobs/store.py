"""JSONL-journaled job persistence.

One directory holds every job:

- ``jobs.jsonl`` — the lifecycle journal: one line per submit or state
  transition, fsync'd, replayed by :meth:`JobStore.load_jobs` (latest
  event wins per job).
- ``<job_id>/series.npy`` / ``<job_id>/train.npy`` — the input arrays,
  written once at submit so a resumed job scores byte-identical data.
- ``<job_id>/chunks.jsonl`` — one fsync'd line per completed chunk with
  its window scores.  ``json`` round-trips Python floats exactly
  (shortest-repr), so replayed chunk scores are bit-identical to the
  run that produced them.
- ``<job_id>/scores.npy`` — the stitched result of a SUCCEEDED job.
- ``<job_id>/CANCEL`` — cooperative cancellation marker, checked by the
  executor between chunks (works across processes).

Torn trailing lines (a process killed mid-write) are skipped with a
warning, same contract as :class:`repro.eval.persistence.SweepCheckpoint`.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path

import numpy as np

from .spec import JobRecord, valid_transition

__all__ = ["JobStore"]


def _append_jsonl(path: Path, payload: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(payload) + "\n")
        handle.flush()
        os.fsync(handle.fileno())


def _read_jsonl(path: Path) -> list[dict]:
    """Every parseable dict line of ``path``; torn or malformed lines
    are skipped with a warning instead of poisoning the replay."""
    entries: list[dict] = []
    if not path.exists():
        return entries
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as error:
                warnings.warn(
                    f"{path}:{lineno}: skipping unparseable journal line "
                    f"(torn write?): {error}",
                    stacklevel=2,
                )
                continue
            if not isinstance(entry, dict):
                warnings.warn(
                    f"{path}:{lineno}: skipping non-object journal line",
                    stacklevel=2,
                )
                continue
            entries.append(entry)
    return entries


class JobStore:
    """Directory-backed job state that survives process death."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    # Lifecycle journal
    # ------------------------------------------------------------------
    @property
    def journal_path(self) -> Path:
        return self.root / "jobs.jsonl"

    def job_dir(self, job_id: str) -> Path:
        return self.root / job_id

    def append_submit(
        self, record: JobRecord, series: np.ndarray, train: np.ndarray
    ) -> None:
        """Persist the inputs, then journal the submission.

        Array writes precede the journal line, so a journaled job always
        has its inputs on disk (a crash in between leaves an orphaned
        directory the next submit simply overwrites).
        """
        directory = self.job_dir(record.job_id)
        directory.mkdir(parents=True, exist_ok=True)
        np.save(directory / "series.npy", np.asarray(series, dtype=np.float64))
        np.save(directory / "train.npy", np.asarray(train, dtype=np.float64))
        _append_jsonl(self.journal_path, {"kind": "submit", **record.to_dict()})

    def append_state(self, job_id: str, state: str, error: str = "") -> None:
        payload = {"kind": "state", "job_id": job_id, "state": state}
        if error:
            payload["error"] = error
        _append_jsonl(self.journal_path, payload)

    def load_jobs(self) -> dict[str, JobRecord]:
        """Replay the lifecycle journal into records, submit-order
        preserved; later state events win, illegal edges are skipped
        with a warning (a stale writer racing a resume)."""
        records: dict[str, JobRecord] = {}
        for entry in _read_jsonl(self.journal_path):
            kind = entry.pop("kind", None)
            try:
                if kind == "submit":
                    record = JobRecord.from_dict(entry)
                    records[record.job_id] = record
                elif kind == "state":
                    record = records.get(entry["job_id"])
                    if record is None:
                        continue
                    new_state = entry["state"]
                    if record.state != new_state and not valid_transition(
                        record.state, new_state
                    ):
                        warnings.warn(
                            f"{self.journal_path}: ignoring illegal "
                            f"{record.state} -> {new_state} for job "
                            f"{record.job_id}",
                            stacklevel=2,
                        )
                        continue
                    record.state = new_state
                    record.error = entry.get("error", "")
            except (TypeError, KeyError, ValueError) as error:
                warnings.warn(
                    f"{self.journal_path}: skipping malformed "
                    f"{kind or 'journal'} entry: {error}",
                    stacklevel=2,
                )
        for record in records.values():
            record.chunks_done = len(self.load_chunks(record.job_id))
        return records

    def get(self, job_id: str) -> JobRecord:
        records = self.load_jobs()
        if job_id not in records:
            raise KeyError(f"no job {job_id!r} in {self.root}")
        return records[job_id]

    def find_by_key(self, key: str) -> JobRecord | None:
        """The most recently submitted job with this idempotency key."""
        match = None
        for record in self.load_jobs().values():
            if record.key == key:
                match = record
        return match

    # ------------------------------------------------------------------
    # Inputs / chunk journal / result
    # ------------------------------------------------------------------
    def series(self, job_id: str) -> np.ndarray:
        return np.load(self.job_dir(job_id) / "series.npy")

    def train(self, job_id: str) -> np.ndarray:
        return np.load(self.job_dir(job_id) / "train.npy")

    def append_chunk(self, job_id: str, index: int, scores: np.ndarray) -> None:
        _append_jsonl(
            self.job_dir(job_id) / "chunks.jsonl",
            {
                "chunk": int(index),
                "scores": [float(s) for s in np.asarray(scores, dtype=np.float64)],
            },
        )

    def load_chunks(self, job_id: str) -> dict[int, np.ndarray]:
        """Journaled per-chunk window scores (later lines win)."""
        chunks: dict[int, np.ndarray] = {}
        path = self.job_dir(job_id) / "chunks.jsonl"
        for entry in _read_jsonl(path):
            try:
                chunks[int(entry["chunk"])] = np.asarray(
                    entry["scores"], dtype=np.float64
                )
            except (KeyError, TypeError, ValueError) as error:
                warnings.warn(
                    f"{path}: skipping malformed chunk entry: {error}",
                    stacklevel=2,
                )
        return chunks

    def save_result(self, job_id: str, scores: np.ndarray) -> Path:
        path = self.job_dir(job_id) / "scores.npy"
        path.parent.mkdir(parents=True, exist_ok=True)
        np.save(path, np.asarray(scores, dtype=np.float64))
        return path

    def load_result(self, job_id: str) -> np.ndarray:
        path = self.job_dir(job_id) / "scores.npy"
        if not path.exists():
            raise FileNotFoundError(
                f"job {job_id} has no stitched result at {path}"
            )
        return np.load(path)

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------
    def _cancel_marker(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "CANCEL"

    def request_cancel(self, job_id: str) -> None:
        self.job_dir(job_id).mkdir(parents=True, exist_ok=True)
        self._cancel_marker(job_id).touch()

    def cancel_requested(self, job_id: str) -> bool:
        return self._cancel_marker(job_id).exists()

    def clear_cancel(self, job_id: str) -> None:
        self._cancel_marker(job_id).unlink(missing_ok=True)
