"""Job descriptions, states, and idempotency keys.

A :class:`JobSpec` is everything needed to *re-create* a bulk-scoring
run: the detector (by registry name + parameters), the resolved window
plan, and the chunking granularity.  The spec is persisted next to the
input arrays at submit time, so a job directory is self-contained — a
fresh process can resume a half-finished job from its journal without
the submitting process's memory.

Idempotency keys digest the resolved spec together with the *content*
of the series and training split (via
:func:`repro.pipeline.cache.content_key`), so submitting the identical
payload twice lands on the same job instead of scoring it twice.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

from ..pipeline.cache import content_key

__all__ = [
    "PENDING",
    "RUNNING",
    "SUCCEEDED",
    "FAILED",
    "CANCELLED",
    "STATES",
    "TERMINAL_STATES",
    "JobSpec",
    "JobRecord",
    "idempotency_key",
]

PENDING = "PENDING"
RUNNING = "RUNNING"
SUCCEEDED = "SUCCEEDED"
FAILED = "FAILED"
CANCELLED = "CANCELLED"

#: Lifecycle: PENDING -> RUNNING -> SUCCEEDED | FAILED | CANCELLED.
#: CANCELLED can also follow PENDING directly (cancel before run), and a
#: FAILED/CANCELLED job may re-enter RUNNING on resume — completed
#: chunks replay from the journal, only the missing ones re-execute.
STATES = (PENDING, RUNNING, SUCCEEDED, FAILED, CANCELLED)
TERMINAL_STATES = frozenset({SUCCEEDED, FAILED, CANCELLED})

_TRANSITIONS = {
    PENDING: {RUNNING, CANCELLED},
    RUNNING: {SUCCEEDED, FAILED, CANCELLED},
    # Resume paths: a job that died (or was cancelled) may run again.
    FAILED: {RUNNING},
    CANCELLED: {RUNNING},
    SUCCEEDED: set(),
}


def valid_transition(old: str, new: str) -> bool:
    """Whether ``old -> new`` is a legal lifecycle edge."""
    return new in _TRANSITIONS.get(old, set())


@dataclass(frozen=True)
class JobSpec:
    """Everything needed to (re)execute one bulk-scoring job.

    Attributes
    ----------
    detector:
        Name in the job detector registry (:mod:`repro.jobs.registry`).
    params:
        Keyword arguments forwarded to the registry builder (epochs,
        seed, ...).  Must be JSON-serializable.
    window_length / stride:
        The resolved window plan.  ``None`` at construction means
        "derive from the training split at submit time"; the manager
        stores the *resolved* values so a resumed job windows the series
        identically.
    chunk_windows:
        Windows per chunk — the unit of parallelism, journaling, and
        failure isolation.
    """

    detector: str
    params: dict = field(default_factory=dict)
    window_length: int | None = None
    stride: int | None = None
    chunk_windows: int = 256

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "JobSpec":
        known = set(cls.__dataclass_fields__)
        return cls(**{k: v for k, v in payload.items() if k in known})


@dataclass
class JobRecord:
    """The mutable lifecycle view of one job, rebuilt from the journal."""

    job_id: str
    key: str
    spec: JobSpec
    state: str = PENDING
    n_points: int = 0
    chunks_total: int = 0
    chunks_done: int = 0
    error: str = ""

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["spec"] = self.spec.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "JobRecord":
        known = set(cls.__dataclass_fields__)
        fields = {k: v for k, v in payload.items() if k in known}
        fields["spec"] = JobSpec.from_dict(fields.get("spec", {}))
        return cls(**fields)


def idempotency_key(spec: JobSpec, series: np.ndarray, train: np.ndarray) -> str:
    """Content digest of (resolved spec, series, train) — identical
    payloads collide on purpose, so duplicate submits dedupe."""
    return content_key(
        "job",
        spec.detector,
        tuple(sorted(spec.params.items())),
        spec.window_length,
        spec.stride,
        spec.chunk_windows,
        np.ascontiguousarray(series, dtype=np.float64),
        np.ascontiguousarray(train, dtype=np.float64),
    )
