"""Chunked execution with journaling, worker pools, and failure isolation.

Two layers:

* :func:`parallel_map` — the generic fabric: run ``task(payload)`` over
  a list of payloads on a ``multiprocessing`` fork pool (workers
  inherit the parent's context; nothing heavyweight crosses the pipe),
  delivering results to the parent as they complete.  Serial fallback
  when ``workers <= 1`` or fork is unavailable.  Both the bulk-scoring
  executor below and the archive sweep job
  (:mod:`repro.jobs.sweep`) run on this.
* :class:`ChunkedExecutor` — bulk scoring: executes the missing chunks
  of a job (completed ones replay from the journal), scores each
  chunk's windows in one batched ``score_windows`` call, journals every
  completed chunk with an fsync before moving on, honors cooperative
  cancellation between chunks, and isolates per-chunk failures under a
  :class:`~repro.runtime.RetryPolicy` / :class:`~repro.runtime.RunBudget`.

Worker-pool failures are not fatal by themselves: a chunk that raises
in a worker is retried *serially* in the parent under the retry policy,
so one poisoned chunk degrades to an attributed
:class:`ChunkFailedError` instead of a dead pool.
"""

from __future__ import annotations

import multiprocessing
import warnings
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from .. import obs
from ..runtime import RetryPolicy, RunBudget
from .chunking import Chunk, chunk_windows_view
from .store import JobStore

__all__ = ["ChunkFailedError", "ChunkedExecutor", "parallel_map"]

CANCELLED_OUTCOME = "cancelled"
COMPLETED_OUTCOME = "completed"


class ChunkFailedError(RuntimeError):
    """One chunk exhausted its retry budget; names the chunk and cause."""

    def __init__(self, chunk_index: int, attempts: int, cause: BaseException) -> None:
        super().__init__(
            f"chunk {chunk_index} failed after {attempts} attempt(s): "
            f"{type(cause).__name__}: {cause}"
        )
        self.chunk_index = chunk_index
        self.attempts = attempts
        self.cause = cause


# ----------------------------------------------------------------------
# Generic fork-pool fabric
# ----------------------------------------------------------------------

# Context the forked workers inherit.  Set immediately before the pool
# is created and cleared after; fork shares the parent's address space
# at creation time, so arbitrary (even unpicklable) objects ride along
# without serialization.
_WORKER_CONTEXT: dict | None = None


def _pool_task(args):
    """Runs inside a worker: dispatch to the inherited task callable.

    Exceptions are returned, not raised — the parent decides whether to
    retry (serially, under its policy) or fail the run.
    """
    index, payload = args
    task = _WORKER_CONTEXT["task"]
    try:
        return index, task(payload), None
    except BaseException as error:  # noqa: BLE001 - marshalled to the parent
        return index, None, f"{type(error).__name__}: {error}"


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def parallel_map(
    task: Callable,
    payloads: Sequence,
    workers: int,
    on_result: Callable[[int, object], None],
    should_stop: Callable[[], bool] | None = None,
) -> tuple[list[int], dict[int, str]]:
    """Run ``task(payload)`` for every payload, streaming results.

    ``on_result(index, result)`` fires in the parent as each payload
    completes (order is arrival order in pool mode).  Returns
    ``(remaining, errors)``: payload indices never attempted because
    ``should_stop`` fired, and per-index error strings for payloads
    whose task raised (pool mode returns them for the parent to retry;
    serial mode raises through instead, letting the caller's retry
    policy see the live exception).
    """
    indexed = list(enumerate(payloads))
    errors: dict[int, str] = {}
    if workers > 1 and not fork_available():  # pragma: no cover - non-POSIX
        warnings.warn(
            "multiprocessing 'fork' start method unavailable; "
            "running chunks serially",
            stacklevel=2,
        )
        workers = 1

    if workers <= 1:
        for position, (index, payload) in enumerate(indexed):
            if should_stop is not None and should_stop():
                return [i for i, _ in indexed[position:]], errors
            on_result(index, task(payload))
        return [], errors

    global _WORKER_CONTEXT
    context = multiprocessing.get_context("fork")
    _WORKER_CONTEXT = {"task": task}
    try:
        with context.Pool(processes=workers) as pool:
            pending = {i for i, _ in indexed}
            results = pool.imap_unordered(_pool_task, indexed, chunksize=1)
            for index, result, error in results:
                pending.discard(index)
                if error is not None:
                    errors[index] = error
                else:
                    on_result(index, result)
                if should_stop is not None and should_stop():
                    pool.terminate()
                    return sorted(pending), errors
        return [], errors
    finally:
        _WORKER_CONTEXT = None


# ----------------------------------------------------------------------
# Bulk-scoring chunk executor
# ----------------------------------------------------------------------


@dataclass
class _ChunkWindow:
    """Per-window metadata stand-in (scorers that track stream state
    expect :class:`repro.serve.stream.ReadyWindow`-shaped entries)."""

    stream_id: str
    end_index: int
    window: np.ndarray
    mean: float
    std: float

    @property
    def start_index(self) -> int:
        return self.end_index - len(self.window)


def score_chunk(
    scorer,
    series: np.ndarray,
    chunk: Chunk,
    length: int,
    stride: int,
    tag: str = "job",
) -> np.ndarray:
    """Score one chunk's windows in a single batched call."""
    windows, starts = chunk_windows_view(series, chunk, length, stride)
    batch = [
        _ChunkWindow(
            stream_id=tag,
            end_index=int(start) + length,
            window=window,
            mean=float(mean),
            std=float(std),
        )
        for window, start, mean, std in zip(
            windows, starts, windows.mean(axis=1), windows.std(axis=1)
        )
    ]
    scores = np.asarray(scorer.score_windows(windows, batch), dtype=np.float64)
    if scores.shape != (chunk.n_windows,):
        raise ValueError(
            f"scorer returned {scores.shape} scores for chunk {chunk.index}, "
            f"expected ({chunk.n_windows},)"
        )
    return scores


class ChunkedExecutor:
    """Execute a job's missing chunks and journal every completion.

    Parameters
    ----------
    workers:
        Fork-pool width; ``1`` runs serially in-process.
    policy:
        Per-chunk :class:`~repro.runtime.RetryPolicy`.  ``None`` means
        one attempt, crash-through (the manager records the failure).
    budget:
        Template :class:`~repro.runtime.RunBudget` for the whole run; a
        fresh instance is spawned per :meth:`run` and checked between
        chunk completions, so a hung run dies with
        :class:`~repro.runtime.BudgetExceededError` instead of spinning.
    """

    def __init__(
        self,
        workers: int = 1,
        policy: RetryPolicy | None = None,
        budget: RunBudget | None = None,
    ) -> None:
        self.workers = max(int(workers), 1)
        self.policy = policy
        self.budget = budget

    def _retry_serial(
        self,
        scorer,
        series: np.ndarray,
        chunk: Chunk,
        length: int,
        stride: int,
        job_id: str,
    ) -> np.ndarray:
        """Serial per-chunk execution under the retry policy."""
        if self.policy is None:
            return score_chunk(scorer, series, chunk, length, stride, tag=job_id)
        last_error: BaseException | None = None
        for attempt in range(self.policy.attempts()):
            if attempt:
                self.policy.pause(attempt)
                obs.incr("jobs.chunks.retried")
            try:
                return score_chunk(
                    scorer, series, chunk, length, stride, tag=job_id
                )
            except self.policy.retry_on as error:
                last_error = error
        assert last_error is not None
        raise ChunkFailedError(chunk.index, self.policy.attempts(), last_error)

    def run(
        self,
        store: JobStore,
        job_id: str,
        scorer,
        series: np.ndarray,
        chunks: Iterable[Chunk],
        length: int,
        stride: int,
    ) -> str:
        """Execute every chunk not already journaled.

        Returns :data:`COMPLETED_OUTCOME` when all chunks are journaled
        or :data:`CANCELLED_OUTCOME` if a cancel request stopped the run
        between chunks.  Raises :class:`ChunkFailedError` (retry budget
        exhausted) or :class:`~repro.runtime.BudgetExceededError` (run
        budget exhausted) — partial progress stays journaled either way,
        so a re-run resumes instead of restarting.
        """
        chunks = list(chunks)
        series = np.asarray(series, dtype=np.float64)
        journaled = store.load_chunks(job_id)
        pending = [
            c
            for c in chunks
            if c.index not in journaled
            or journaled[c.index].shape != (c.n_windows,)
        ]
        replayed = len(chunks) - len(pending)
        if replayed:
            obs.incr("jobs.chunks.replayed", replayed)
        budget = self.budget.spawn() if self.budget is not None else None

        def record(chunk: Chunk, scores: np.ndarray) -> None:
            store.append_chunk(job_id, chunk.index, scores)
            obs.incr("jobs.chunks.completed")

        def cancelled() -> bool:
            return store.cancel_requested(job_id)

        with obs.span(
            "jobs.chunks",
            job_id=job_id,
            total=len(chunks),
            pending=len(pending),
            workers=self.workers,
        ):
            if cancelled():
                return CANCELLED_OUTCOME
            if self.workers <= 1 or not fork_available():
                for chunk in pending:
                    if cancelled():
                        return CANCELLED_OUTCOME
                    if budget is not None:
                        budget.check_time()
                    record(
                        chunk,
                        self._retry_serial(
                            scorer, series, chunk, length, stride, job_id
                        ),
                    )
                return COMPLETED_OUTCOME

            def task(chunk: Chunk) -> list[float]:
                scores = score_chunk(
                    scorer, series, chunk, length, stride, tag=job_id
                )
                return [float(s) for s in scores]

            def on_result(position: int, scores: list[float]) -> None:
                chunk = pending[position]
                record(chunk, np.asarray(scores, dtype=np.float64))
                if budget is not None:
                    budget.check_time()

            _, errors = parallel_map(
                task,
                pending,
                workers=self.workers,
                on_result=on_result,
                should_stop=cancelled,
            )
            if cancelled():
                return CANCELLED_OUTCOME
            # Pool-side failures retry serially under the policy so the
            # exception type (not a marshalled string) drives retry_on.
            for position in sorted(errors):
                chunk = pending[position]
                obs.incr("jobs.chunks.pool_failures")
                record(
                    chunk,
                    self._retry_serial(
                        scorer, series, chunk, length, stride, job_id
                    ),
                )
                if cancelled():
                    return CANCELLED_OUTCOME
                if budget is not None:
                    budget.check_time()
            return COMPLETED_OUTCOME
