"""Async bulk-inference jobs: resumable chunked scoring at archive scale.

The serving engine (:mod:`repro.serve`) answers "score this window
now"; this package answers "score these 10 million points overnight".
A job is submitted once (``PENDING``), survives process death through
JSONL journals (:class:`JobStore`), executes as overlapping
window-preserving chunks on a fork worker pool
(:class:`ChunkedExecutor`), and stitches per-chunk window scores back
into one contiguous point-score array bit-identical to a single pass.
Lifecycle::

    PENDING -> RUNNING -> SUCCEEDED | FAILED | CANCELLED

Re-submitting an identical payload dedupes onto the existing job
(content-digest idempotency keys), and re-running a job that died —
`kill -9` included — replays completed chunks from the journal and
executes only the rest.  The archive sweep rides the same fabric via
:func:`run_archive_job`.  CLI: ``repro submit`` / ``repro jobs`` /
``repro job-result`` / ``repro job-cancel``.  See ``docs/JOBS.md``.
"""

from .chunking import Chunk, chunk_windows_view, plan_chunks, stitch, window_starts
from .executor import ChunkedExecutor, ChunkFailedError, parallel_map
from .manager import JobManager
from .registry import (
    BatchedSpectralResidualScorer,
    build_scorer,
    job_detectors,
    register_job_detector,
)
from .spec import (
    CANCELLED,
    FAILED,
    PENDING,
    RUNNING,
    STATES,
    SUCCEEDED,
    TERMINAL_STATES,
    JobRecord,
    JobSpec,
    idempotency_key,
)
from .store import JobStore
from .sweep import run_archive_job

__all__ = [
    "JobManager",
    "JobStore",
    "JobSpec",
    "JobRecord",
    "idempotency_key",
    "PENDING",
    "RUNNING",
    "SUCCEEDED",
    "FAILED",
    "CANCELLED",
    "STATES",
    "TERMINAL_STATES",
    "Chunk",
    "plan_chunks",
    "window_starts",
    "chunk_windows_view",
    "stitch",
    "ChunkedExecutor",
    "ChunkFailedError",
    "parallel_map",
    "register_job_detector",
    "job_detectors",
    "build_scorer",
    "BatchedSpectralResidualScorer",
    "run_archive_job",
]
