"""The job lifecycle manager: submit / status / result / cancel.

``submit`` validates the payload, resolves the window plan, dedupes
against prior submissions by content (idempotency key), journals the
job as ``PENDING``, and persists the inputs so any process can pick it
up.  ``run`` drives a job to a terminal state through the chunked
executor: completed chunks replay from the journal, so re-running a job
that died mid-flight (kill -9 included) resumes from the last fsync'd
chunk and produces scores bit-identical to an uninterrupted run.

The manager is synchronous by design — "async" is a property of the
*lifecycle* (submission, inputs, and progress live in the store, not in
any process), so the driver can die and a new one continue.  See
``docs/JOBS.md``.
"""

from __future__ import annotations

import os
from dataclasses import replace

import numpy as np

from .. import obs
from ..runtime import RetryPolicy, RunBudget
from ..validation import ensure_series
from .chunking import plan_chunks, stitch
from .executor import CANCELLED_OUTCOME, ChunkedExecutor
from .registry import build_scorer
from .spec import (
    CANCELLED,
    FAILED,
    PENDING,
    RUNNING,
    SUCCEEDED,
    TERMINAL_STATES,
    JobRecord,
    JobSpec,
    idempotency_key,
)
from .store import JobStore

__all__ = ["JobManager"]


class JobManager:
    """Submit, run, inspect, and cancel bulk-scoring jobs on one store."""

    def __init__(
        self,
        store: JobStore | str | os.PathLike,
        workers: int = 1,
        policy: RetryPolicy | None = None,
        budget: RunBudget | None = None,
    ) -> None:
        self.store = store if isinstance(store, JobStore) else JobStore(store)
        self.executor = ChunkedExecutor(workers=workers, policy=policy, budget=budget)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def submit(
        self,
        spec: JobSpec,
        series: np.ndarray,
        train: np.ndarray | None = None,
    ) -> JobRecord:
        """Validate, dedupe, and journal a job as ``PENDING``.

        ``train`` is the anomaly-free split the detector fits (and the
        window plan derives from); it defaults to ``series`` for
        training-free scorers.  Submitting a payload whose content
        digest matches an earlier job returns that job's record instead
        of creating a duplicate — call :meth:`run` on it to resume or
        re-run.

        Raises ``ValueError`` for empty / non-finite / non-1-D input and
        for a series shorter than one window.
        """
        series = ensure_series(series, "series", min_length=2)
        train = (
            series
            if train is None
            else ensure_series(train, "train", min_length=2)
        )
        spec = self._resolve(spec, train)
        if len(series) < spec.window_length:
            raise ValueError(
                f"series has {len(series)} points but one window needs "
                f"{spec.window_length}; bulk scoring needs at least one "
                f"full window (pass a smaller max_window, or score "
                f"in-process instead)"
            )
        key = idempotency_key(spec, series, train)
        existing = self.store.find_by_key(key)
        if existing is not None:
            obs.incr("jobs.submit.deduped")
            return existing
        chunks = plan_chunks(
            len(series), spec.window_length, spec.stride, spec.chunk_windows
        )
        record = JobRecord(
            job_id=f"job-{key[:16]}",
            key=key,
            spec=spec,
            state=PENDING,
            n_points=len(series),
            chunks_total=len(chunks),
        )
        self.store.append_submit(record, series, train)
        obs.incr("jobs.submitted")
        return record

    def _resolve(self, spec: JobSpec, train: np.ndarray) -> JobSpec:
        """Pin the window plan into the spec so a resumed job windows
        the series exactly as the original submission did."""
        if spec.window_length is not None and spec.stride is not None:
            return spec
        from .registry import resolve_plan

        length, stride = resolve_plan(spec.detector, train, spec.params)
        return replace(
            spec,
            window_length=(
                spec.window_length if spec.window_length is not None else length
            ),
            stride=spec.stride if spec.stride is not None else stride,
        )

    def run(self, job_id: str) -> JobRecord:
        """Drive a job to a terminal state; resumable and idempotent.

        ``SUCCEEDED`` jobs return immediately.  ``FAILED`` / ``CANCELLED``
        / stale-``RUNNING`` jobs (a driver that died) re-enter
        ``RUNNING`` and replay completed chunks from the journal before
        executing the rest.  Failures are recorded on the job (state
        ``FAILED`` with an attributed error) rather than raised.
        """
        record = self.store.get(job_id)
        if record.state == SUCCEEDED:
            return record
        self.store.clear_cancel(job_id)  # a fresh run supersedes old intent
        self._transition(record, RUNNING)
        series = self.store.series(job_id)
        train = self.store.train(job_id)
        spec = record.spec
        with obs.span("jobs.run", job_id=job_id, detector=spec.detector):
            try:
                scorer, length, stride = build_scorer(
                    spec.detector, train, spec.params
                )
                if (length, stride) != (spec.window_length, spec.stride):
                    raise RuntimeError(
                        f"window plan drifted between submit and run: "
                        f"submitted ({spec.window_length}, {spec.stride}), "
                        f"rebuilt ({length}, {stride}) — the registry "
                        f"builder is not deterministic"
                    )
                chunks = plan_chunks(
                    len(series), length, stride, spec.chunk_windows
                )
                outcome = self.executor.run(
                    self.store, job_id, scorer, series, chunks, length, stride
                )
                if outcome == CANCELLED_OUTCOME:
                    obs.incr("jobs.cancelled")
                    self._transition(record, CANCELLED)
                    record.chunks_done = len(self.store.load_chunks(job_id))
                    return record
                scores = stitch(
                    self.store.load_chunks(job_id),
                    chunks,
                    length,
                    stride,
                    len(series),
                )
                self.store.save_result(job_id, scores)
                obs.incr("jobs.succeeded")
                self._transition(record, SUCCEEDED)
            except Exception as error:  # KeyboardInterrupt/SystemExit propagate
                obs.incr("jobs.failed")
                self._transition(
                    record, FAILED, error=f"{type(error).__name__}: {error}"
                )
        record.chunks_done = len(self.store.load_chunks(job_id))
        return record

    def submit_and_run(
        self,
        spec: JobSpec,
        series: np.ndarray,
        train: np.ndarray | None = None,
    ) -> JobRecord:
        """Submit (or dedupe onto an existing job) and drive it to a
        terminal state — the ``repro submit`` entry point."""
        return self.run(self.submit(spec, series, train).job_id)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def status(self, job_id: str) -> JobRecord:
        return self.store.get(job_id)

    def list_jobs(self) -> list[JobRecord]:
        return list(self.store.load_jobs().values())

    def result(self, job_id: str) -> np.ndarray:
        """The stitched point-score array of a ``SUCCEEDED`` job."""
        record = self.store.get(job_id)
        if record.state != SUCCEEDED:
            raise RuntimeError(
                f"job {job_id} is {record.state}, not {SUCCEEDED}"
                + (f": {record.error}" if record.error else "")
            )
        return self.store.load_result(job_id)

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; returns whether the request took effect.

        ``PENDING`` jobs transition to ``CANCELLED`` immediately; a
        ``RUNNING`` job (possibly in another process) gets a cooperative
        marker the executor honors between chunks.  Terminal jobs are
        left alone.
        """
        record = self.store.get(job_id)
        if record.state in TERMINAL_STATES:
            return False
        if record.state == PENDING:
            self._transition(record, CANCELLED)
            obs.incr("jobs.cancelled")
            return True
        self.store.request_cancel(job_id)
        return True

    def _transition(self, record: JobRecord, state: str, error: str = "") -> None:
        self.store.append_state(record.job_id, state, error=error)
        record.state = state
        record.error = error
