"""Evaluation metrics: point-wise F1, PA, PA%K (+AUC), affiliation,
event accuracy, timing."""

from .adjustment import PaKCurve, label_events, pa_k, pa_k_auc, point_adjust
from .affiliation import AffiliationScore, affiliation_metrics
from .auc import average_precision, best_f1_over_thresholds, roc_auc
from .events import event_accuracy, event_detected, window_hits_event
from .pointwise import Confusion, confusion, f1_score, precision_recall_f1
from .ranges import RangeScore, range_precision_recall
from .thresholds import (
    fit_gpd_moments,
    pot_threshold,
    quantile_threshold,
    sigma_threshold,
)
from .timing import Timer

__all__ = [
    "PaKCurve",
    "label_events",
    "pa_k",
    "pa_k_auc",
    "point_adjust",
    "AffiliationScore",
    "affiliation_metrics",
    "event_accuracy",
    "event_detected",
    "window_hits_event",
    "Confusion",
    "confusion",
    "f1_score",
    "precision_recall_f1",
    "Timer",
    "average_precision",
    "best_f1_over_thresholds",
    "roc_auc",
    "RangeScore",
    "range_precision_recall",
    "fit_gpd_moments",
    "pot_threshold",
    "quantile_threshold",
    "sigma_threshold",
]
