"""Range-based precision and recall (Tatbul et al., NeurIPS 2018).

A third event-aware metric family alongside PA%K and affiliation:
predicted and real anomaly *ranges* are matched, and each range's score
combines an existence reward, an overlap-size term, and a positional
bias.  Included because much of the TSAD literature the paper engages
with reports it; the flat/default bias configuration is implemented.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .adjustment import label_events

__all__ = ["RangeScore", "range_precision_recall"]


@dataclass(frozen=True)
class RangeScore:
    precision: float
    recall: float

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def _overlap(a: tuple[int, int], b: tuple[int, int]) -> int:
    return max(0, min(a[1], b[1]) - max(a[0], b[0]))


def _range_reward(
    target: tuple[int, int],
    others: list[tuple[int, int]],
    alpha: float,
) -> float:
    """Score of one range against a set of ranges.

    ``alpha`` weights the existence reward; the remainder is the covered
    fraction of the target range (flat positional bias, cardinality
    factor 1 — the paper-default configuration of Tatbul et al.).
    """
    length = target[1] - target[0]
    if length <= 0:
        return 0.0
    covered = sum(_overlap(target, other) for other in others)
    covered = min(covered, length)
    existence = 1.0 if covered > 0 else 0.0
    return alpha * existence + (1.0 - alpha) * covered / length


def range_precision_recall(
    predictions: np.ndarray,
    labels: np.ndarray,
    alpha: float = 0.0,
) -> RangeScore:
    """Range-based precision/recall between binary arrays.

    Parameters
    ----------
    alpha:
        Existence-reward weight for recall (0 = pure overlap, as in the
        evaluation configuration most TSAD papers use; 1 = any overlap
        counts fully, which degenerates to PA-like behavior).
    """
    predictions = np.asarray(predictions).astype(bool)
    labels = np.asarray(labels).astype(bool)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have the same shape")
    predicted_ranges = label_events(predictions.astype(int))
    real_ranges = label_events(labels.astype(int))

    if not real_ranges:
        raise ValueError("labels contain no anomalous range")

    if predicted_ranges:
        precision = float(
            np.mean([_range_reward(p, real_ranges, alpha=0.0) for p in predicted_ranges])
        )
    else:
        precision = 0.0
    recall = float(
        np.mean([_range_reward(r, predicted_ranges, alpha=alpha) for r in real_ranges])
    )
    return RangeScore(precision=precision, recall=recall)
