"""Point-wise precision / recall / F1 for binary anomaly predictions."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Confusion", "confusion", "precision_recall_f1", "f1_score"]


@dataclass(frozen=True)
class Confusion:
    """Binary confusion counts."""

    tp: int
    fp: int
    fn: int
    tn: int

    @property
    def precision(self) -> float:
        return self.tp / (self.tp + self.fp) if (self.tp + self.fp) else 0.0

    @property
    def recall(self) -> float:
        return self.tp / (self.tp + self.fn) if (self.tp + self.fn) else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def confusion(predictions: np.ndarray, labels: np.ndarray) -> Confusion:
    """Confusion counts between binary arrays of equal length."""
    predictions = np.asarray(predictions).astype(bool)
    labels = np.asarray(labels).astype(bool)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have the same shape")
    tp = int(np.sum(predictions & labels))
    fp = int(np.sum(predictions & ~labels))
    fn = int(np.sum(~predictions & labels))
    tn = int(np.sum(~predictions & ~labels))
    return Confusion(tp=tp, fp=fp, fn=fn, tn=tn)


def precision_recall_f1(
    predictions: np.ndarray, labels: np.ndarray
) -> tuple[float, float, float]:
    """Convenience wrapper returning ``(precision, recall, f1)``."""
    c = confusion(predictions, labels)
    return c.precision, c.recall, c.f1


def f1_score(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Point-wise F1 — the paper's F1(PW) column."""
    return confusion(predictions, labels).f1
