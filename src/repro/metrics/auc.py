"""Threshold-free score metrics: ROC AUC and PR AUC (average precision).

The paper evaluates binary predictions; score-based detectors (all the
reconstruction/likelihood baselines) are often better compared without
committing to a threshold.  Implemented from scratch and validated
against hand-computed values in the tests.
"""

from __future__ import annotations

import numpy as np

__all__ = ["roc_auc", "average_precision", "best_f1_over_thresholds"]


def roc_auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve via the rank statistic.

    Equals the probability a random anomalous point outranks a random
    normal point; ties share rank mass.
    """
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels).astype(bool)
    if scores.shape != labels.shape:
        raise ValueError("scores and labels must have the same shape")
    positives = int(labels.sum())
    negatives = int((~labels).sum())
    if positives == 0 or negatives == 0:
        raise ValueError("both classes must be present")
    order = np.argsort(scores, kind="stable")
    ranks = np.empty(len(scores), dtype=np.float64)
    ranks[order] = np.arange(1, len(scores) + 1)
    # Average ranks over ties.
    sorted_scores = scores[order]
    i = 0
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = ranks[order[i : j + 1]].mean()
        i = j + 1
    rank_sum = ranks[labels].sum()
    return float((rank_sum - positives * (positives + 1) / 2.0) / (positives * negatives))


def average_precision(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the precision-recall curve (step interpolation)."""
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels).astype(bool)
    if scores.shape != labels.shape:
        raise ValueError("scores and labels must have the same shape")
    positives = int(labels.sum())
    if positives == 0:
        raise ValueError("labels contain no positives")
    order = np.argsort(-scores, kind="stable")
    sorted_labels = labels[order]
    tp = np.cumsum(sorted_labels)
    precision = tp / np.arange(1, len(scores) + 1)
    # AP = mean of precision at each positive hit.
    return float(precision[sorted_labels].sum() / positives)


def best_f1_over_thresholds(scores: np.ndarray, labels: np.ndarray) -> tuple[float, float]:
    """Best achievable point-wise F1 over all score thresholds.

    Returns ``(f1, threshold)``.  A standard oracle-threshold summary;
    note the paper cautions that oracle thresholds flatter detectors, so
    this is for analysis, not headline comparison.
    """
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels).astype(bool)
    positives = int(labels.sum())
    if positives == 0:
        raise ValueError("labels contain no positives")
    order = np.argsort(-scores, kind="stable")
    sorted_labels = labels[order]
    tp = np.cumsum(sorted_labels)
    predicted = np.arange(1, len(scores) + 1)
    precision = tp / predicted
    recall = tp / positives
    denominator = precision + recall
    f1 = np.where(denominator > 0, 2 * precision * recall / np.maximum(denominator, 1e-12), 0.0)
    best = int(np.argmax(f1))
    return float(f1[best]), float(scores[order][best])
