"""Affiliation precision and recall (Huet, Navarro & Rossi, KDD 2022;
paper Eq. 10).

Event-wise metrics that compensate near-misses: the timeline is
partitioned into *affiliation zones* (one per ground-truth event, split
at midpoints between events), temporal distances between predictions
and events are converted into probabilities against a
uniformly-random-point baseline within each zone, and those
probabilities are averaged.

- *Precision* of a predicted point ``p`` in zone ``Z`` with event ``A``:
  the probability that a uniform random point of ``Z`` lies at least as
  far from ``A`` as ``p`` does (1 when ``p`` is inside the event).
- *Recall* of an event point ``a``: the probability that a uniform
  random point of ``Z`` is at least as far from ``a`` as the nearest
  prediction is.

A zone with no prediction contributes no precision term (standard
treatment) and zero-ish recall; predictions exactly on the event score
1.0; random dense predictions score about 0.5 on both — the documented
baseline behavior of the affiliation metric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .adjustment import label_events

__all__ = ["AffiliationScore", "affiliation_metrics"]


@dataclass(frozen=True)
class AffiliationScore:
    precision: float
    recall: float

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def _zones(events: list[tuple[int, int]], total: int) -> list[tuple[int, int]]:
    """Voronoi-style affiliation zones: split timeline at event midpoints."""
    zones = []
    for i, (start, end) in enumerate(events):
        left = 0 if i == 0 else (events[i - 1][1] + start) // 2
        right = total if i == len(events) - 1 else (end + events[i + 1][0]) // 2
        zones.append((left, right))
    return zones


def _distance_to_interval(points: np.ndarray, start: int, end: int) -> np.ndarray:
    """Distance from each point to the half-open interval [start, end)."""
    below = np.maximum(start - points, 0)
    above = np.maximum(points - (end - 1), 0)
    return np.maximum(below, above).astype(np.float64)


def _survival_distance_to_event(
    distance: np.ndarray, zone: tuple[int, int], event: tuple[int, int]
) -> np.ndarray:
    """P(dist(U, event) >= distance) for U uniform on the zone."""
    lo, hi = zone
    start, end = event
    positions = np.arange(lo, hi)
    zone_distances = _distance_to_interval(positions, start, end)
    sorted_d = np.sort(zone_distances)
    # Fraction of zone points at distance >= d, via binary search.
    counts = len(sorted_d) - np.searchsorted(sorted_d, distance, side="left")
    return counts / max(len(sorted_d), 1)


def _survival_distance_to_point(
    distance: np.ndarray, zone: tuple[int, int], anchors: np.ndarray
) -> np.ndarray:
    """P(|anchor - U| >= distance) for U uniform on the zone, per anchor."""
    lo, hi = zone
    size = max(hi - lo, 1)
    # For an anchor at position a, the zone mass within radius d is the
    # overlap of [a-d, a+d] with [lo, hi).
    left = np.maximum(anchors - distance, lo)
    right = np.minimum(anchors + distance + 1, hi)
    within = np.maximum(right - left, 0)
    return 1.0 - within / size + 1.0 / size  # count the boundary point as >=


def affiliation_metrics(predictions: np.ndarray, labels: np.ndarray) -> AffiliationScore:
    """Compute affiliation precision/recall between binary arrays."""
    predictions = np.asarray(predictions).astype(bool)
    labels = np.asarray(labels).astype(bool)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have the same shape")
    events = label_events(labels)
    if not events:
        raise ValueError("labels contain no anomalous event")
    total = len(labels)
    zones = _zones(events, total)
    predicted_points = np.flatnonzero(predictions)

    precisions: list[float] = []
    recalls: list[float] = []
    for event, zone in zip(events, zones):
        lo, hi = zone
        in_zone = predicted_points[(predicted_points >= lo) & (predicted_points < hi)]
        # Precision: average survival probability of each predicted point.
        if in_zone.size:
            d_pred = _distance_to_interval(in_zone, *event)
            precisions.append(float(_survival_distance_to_event(d_pred, zone, event).mean()))
        # Recall: average survival probability per event point of the
        # distance to its nearest prediction.
        anchors = np.arange(event[0], event[1])
        if in_zone.size:
            d_event = np.abs(anchors[:, None] - in_zone[None, :]).min(axis=1).astype(np.float64)
            recalls.append(float(np.clip(
                _survival_distance_to_point(d_event, zone, anchors), 0.0, 1.0
            ).mean()))
        else:
            recalls.append(0.0)

    precision = float(np.mean(precisions)) if precisions else 0.0
    recall = float(np.mean(recalls))
    return AffiliationScore(precision=precision, recall=recall)
