"""Label-free threshold calibration strategies.

Detectors output continuous scores; turning them into binary
predictions needs a threshold chosen *without* test labels.  Three
standard strategies:

- :func:`sigma_threshold` — mean + k·std of (training) scores, the
  default the baselines use;
- :func:`quantile_threshold` — an upper quantile of the scores;
- :func:`pot_threshold` — Peaks-Over-Threshold via a generalized Pareto
  fit to the score tail (the SPOT approach of Siffer et al., KDD 2017,
  used by OmniAnomaly and much of the TSAD literature): extrapolates to
  a target exceedance probability far beyond the observed quantiles.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sigma_threshold", "quantile_threshold", "pot_threshold", "fit_gpd_moments"]


def sigma_threshold(scores: np.ndarray, sigma: float = 3.0) -> float:
    """``mean + sigma * std`` of the scores."""
    scores = np.asarray(scores, dtype=np.float64)
    return float(scores.mean() + sigma * scores.std())


def quantile_threshold(scores: np.ndarray, quantile: float = 0.99) -> float:
    """The given upper quantile of the scores."""
    if not 0.0 < quantile < 1.0:
        raise ValueError("quantile must be in (0, 1)")
    return float(np.quantile(np.asarray(scores, dtype=np.float64), quantile))


def fit_gpd_moments(excesses: np.ndarray) -> tuple[float, float]:
    """Method-of-moments fit of a generalized Pareto distribution.

    Returns ``(shape, scale)`` (xi, beta).  For excess mean m and
    variance v:  xi = 0.5 * (1 - m^2 / v),  beta = 0.5 * m * (1 + m^2/v).
    Falls back to an exponential fit (xi = 0) when the variance is
    degenerate.
    """
    excesses = np.asarray(excesses, dtype=np.float64)
    if excesses.size < 2:
        raise ValueError("need at least 2 excesses to fit a GPD")
    mean = float(excesses.mean())
    var = float(excesses.var())
    if var < 1e-12 or mean <= 0:
        return 0.0, max(mean, 1e-12)
    ratio = mean * mean / var
    shape = 0.5 * (1.0 - ratio)
    scale = 0.5 * mean * (1.0 + ratio)
    return shape, max(scale, 1e-12)


def pot_threshold(
    scores: np.ndarray,
    risk: float = 1e-3,
    initial_quantile: float = 0.98,
) -> float:
    """Peaks-Over-Threshold extreme-value threshold.

    Parameters
    ----------
    scores:
        Calibration scores (e.g. from the anomaly-free training split).
    risk:
        Target exceedance probability ``q``: the returned threshold is
        the level a score exceeds with probability ``risk`` under the
        fitted tail model.
    initial_quantile:
        Where the tail starts; excesses over this empirical quantile are
        fed to the GPD fit.

    Returns the extrapolated threshold ``z_q``; when too few excesses
    exist for a fit, falls back to the initial quantile itself.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.size < 10:
        raise ValueError("need at least 10 calibration scores")
    if not 0.0 < risk < 1.0:
        raise ValueError("risk must be in (0, 1)")
    t = float(np.quantile(scores, initial_quantile))
    excesses = scores[scores > t] - t
    n = scores.size
    if excesses.size < 2:
        return t
    shape, scale = fit_gpd_moments(excesses)
    tail_fraction = excesses.size / n
    if abs(shape) < 1e-9:
        # Exponential tail.
        return t + scale * float(np.log(tail_fraction / risk))
    return t + (scale / shape) * float((risk / tail_fraction) ** (-shape) - 1.0)
